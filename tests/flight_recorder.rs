//! Integration tests for the prefetch flight recorder (`telemetry::trace`).
//!
//! The recorder's headline promise is *conservation*: every demand miss
//! lands in exactly one loss bucket (covered, late, evicted-unused,
//! dropped, mispredicted, no-metadata), so the buckets sum to the miss
//! count — attribution never invents or loses a miss. The tests here
//! enforce that on every (workload × roster prefetcher) cell, for both
//! engines, and pin the recorder's covered count to the engine's own
//! coverage numerator when no warmup excludes events from either side.

use domino_repro::sim::{
    run_coverage_observed, run_timing_observed, shared_trace, Scale, System, SystemConfig,
};
use domino_repro::telemetry::Telemetry;
use domino_repro::trace::workload::catalog;

/// A trace-only telemetry handle with a deliberately small ring, so the
/// runs below wrap it many times over — conservation is maintained
/// online and must not depend on which events the ring still holds.
fn traced() -> Telemetry {
    let mut tel = Telemetry::off();
    tel.enable_trace(512);
    tel
}

#[test]
fn coverage_attribution_is_conserved_on_every_roster_cell() {
    let system = SystemConfig::paper();
    let scale = Scale {
        events: 12_000,
        seed: 42,
    };
    for spec in catalog::all() {
        let trace = shared_trace(&spec, scale.events, scale.seed);
        for sys in System::paper_roster() {
            let mut p = sys.build(4);
            let mut tel = traced();
            let report = run_coverage_observed(&system, &trace, p.as_mut(), 0, &mut tel);
            let rec = tel.take_tracer().expect("tracer enabled");
            assert!(rec.wrapped(), "ring of 512 must wrap at this scale");
            let a = rec.attribution();
            let cell = format!("{} / {}", spec.name, sys.label());
            assert!(
                a.is_conserved(),
                "{cell}: buckets {:?} sum to {} but {} misses were seen",
                a.buckets(),
                a.bucket_sum(),
                a.demand_misses
            );
            assert!(a.demand_misses > 0, "{cell}: no demand misses recorded");
            // With no warmup both sides count the same accesses, so the
            // trace-side attribution must agree with the engine exactly.
            assert_eq!(a.demand_misses, report.baseline_misses, "{cell}");
            assert_eq!(a.covered, report.covered, "{cell}");
        }
    }
}

#[test]
fn timing_attribution_is_conserved_on_every_roster_cell() {
    let system = SystemConfig::paper();
    let scale = Scale {
        events: 8_000,
        seed: 42,
    };
    let spec = catalog::oltp();
    let trace = shared_trace(&spec, scale.events, scale.seed);
    for sys in System::paper_roster() {
        let mut p = sys.build(4);
        let mut tel = traced();
        let _report = run_timing_observed(&system, &trace, p.as_mut(), 0, &mut tel);
        let rec = tel.take_tracer().expect("tracer enabled");
        let a = rec.attribution();
        let cell = format!("{} / {}", spec.name, sys.label());
        assert!(
            a.is_conserved(),
            "{cell}: buckets {:?} sum to {} but {} misses were seen",
            a.buckets(),
            a.bucket_sum(),
            a.demand_misses
        );
        assert!(a.demand_misses > 0, "{cell}: no demand misses recorded");
    }
}
