/root/repo/target/debug/deps/domino_mem-aa35eb7b606b0a1b.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/history.rs crates/mem/src/interface.rs crates/mem/src/metadata.rs crates/mem/src/mshr.rs crates/mem/src/prefetch_buffer.rs crates/mem/src/streams.rs Cargo.toml

/root/repo/target/debug/deps/libdomino_mem-aa35eb7b606b0a1b.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/history.rs crates/mem/src/interface.rs crates/mem/src/metadata.rs crates/mem/src/mshr.rs crates/mem/src/prefetch_buffer.rs crates/mem/src/streams.rs Cargo.toml

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/dram.rs:
crates/mem/src/history.rs:
crates/mem/src/interface.rs:
crates/mem/src/metadata.rs:
crates/mem/src/mshr.rs:
crates/mem/src/prefetch_buffer.rs:
crates/mem/src/streams.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
