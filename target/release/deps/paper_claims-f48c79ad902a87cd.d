/root/repo/target/release/deps/paper_claims-f48c79ad902a87cd.d: tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-f48c79ad902a87cd: tests/paper_claims.rs

tests/paper_claims.rs:
