//! Irregular Stream Buffer (Jain & Lin, MICRO 2013) — idealized PC/AC.
//!
//! ISB combines **PC localization** with **address correlation**: the
//! global miss stream is split into per-PC streams, and each PC's stream
//! is linearized into a structural address space so that consecutive
//! correlated addresses become sequential. Following the paper's
//! methodology (§IV-D), we model the *idealized* PC/AC variant with
//! infinite metadata and no structural-space artefacts: for every
//! `(PC, address)` pair we remember where it last occurred in that PC's
//! miss sequence and prefetch the addresses that followed.
//!
//! The paper's point (Figures 1, 11, 13) is that this is the *wrong*
//! localization for server workloads: PC localization breaks the strong
//! global temporal correlation, and predictions are "the following misses
//! of a memory instruction, which may not be the subsequent misses of the
//! workload" — so prefetches arrive far too early and are evicted from
//! the small buffer before their re-execution. Both effects emerge
//! naturally here: the predictions are per-PC successors, and the shared
//! 32-block prefetch buffer does the evicting.

use domino_trace::FxHashMap;

use domino_mem::interface::{PrefetchRequest, PrefetchSink, Prefetcher, TriggerEvent};
use domino_trace::addr::{LineAddr, Pc};

/// Sentinel: no successor recorded yet.
const NO_NODE: u32 = u32::MAX;

/// One logged triggering event in the shared sequence arena: the line and
/// the arena index of the *next* event of the same PC's stream. The
/// per-PC sequences of the idealized design thus live as linked chains in
/// one flat, append-only slab — no per-PC `Vec` to grow per event.
#[derive(Debug, Clone, Copy)]
struct SeqNode {
    line: LineAddr,
    next: u32,
}

/// Idealized PC-localized address-correlation prefetcher.
#[derive(Debug)]
pub struct Isb {
    degree: usize,
    /// Append-only arena holding every PC's miss sequence as linked
    /// chains (infinite idealized storage).
    nodes: Vec<SeqNode>,
    /// Per-PC chain tail: arena index of the PC's most recent event.
    tails: FxHashMap<Pc, u32>,
    /// `(PC, line)` → arena index of the pair's last occurrence.
    last: FxHashMap<(Pc, LineAddr), u32>,
}

impl Isb {
    /// Creates an idealized ISB with the given prefetch degree.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero.
    pub fn new(degree: usize) -> Self {
        assert!(degree > 0, "degree must be positive");
        Isb {
            degree,
            nodes: Vec::new(),
            tails: FxHashMap::default(),
            last: FxHashMap::default(),
        }
    }
}

impl Prefetcher for Isb {
    fn name(&self) -> &str {
        "ISB"
    }

    fn reserve(&mut self, expected_events: usize) {
        // One node per triggering event: pre-sizing the arena keeps the
        // event loop free of `Vec` growth.
        self.nodes.reserve(expected_events);
    }

    fn on_trigger(&mut self, event: &TriggerEvent, sink: &mut dyn PrefetchSink) {
        // Predict: walk the successors of the last occurrence of this
        // address in this PC's stream. Idealized on-chip metadata: no
        // trip delay.
        if let Some(&idx) = self.last.get(&(event.pc, event.line)) {
            let mut cur = idx as usize;
            for _ in 0..self.degree {
                let next = self.nodes[cur].next;
                if next == NO_NODE {
                    break;
                }
                let line = self.nodes[next as usize].line;
                if line != event.line {
                    sink.prefetch(PrefetchRequest::immediate(line));
                }
                cur = next as usize;
            }
        }
        // Train: append the event and link it behind the PC's tail.
        let new_idx = self.nodes.len() as u32;
        self.nodes.push(SeqNode {
            line: event.line,
            next: NO_NODE,
        });
        if let Some(&tail) = self.tails.get(&event.pc) {
            self.nodes[tail as usize].next = new_idx;
        }
        self.tails.insert(event.pc, new_idx);
        self.last.insert((event.pc, event.line), new_idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_mem::interface::CollectSink;

    fn miss(pc: u64, line: u64) -> TriggerEvent {
        TriggerEvent::miss(Pc::new(pc), LineAddr::new(line))
    }

    fn drive(p: &mut Isb, accesses: &[(u64, u64)]) -> Vec<u64> {
        let mut out = Vec::new();
        for &(pc, line) in accesses {
            let mut sink = CollectSink::new();
            p.on_trigger(&miss(pc, line), &mut sink);
            out.extend(sink.requests.iter().map(|r| r.line.raw()));
        }
        out
    }

    #[test]
    fn predicts_per_pc_successors() {
        let mut p = Isb::new(2);
        // PC 1's stream: 10, 20, 30; then re-miss on 10.
        drive(&mut p, &[(1, 10), (1, 20), (1, 30)]);
        let issued = drive(&mut p, &[(1, 10)]);
        assert_eq!(issued, vec![20, 30]);
    }

    #[test]
    fn localization_ignores_other_pcs() {
        let mut p = Isb::new(1);
        // Global stream 10, 99, 20 — but 99 is another PC's miss.
        drive(&mut p, &[(1, 10), (2, 99), (1, 20)]);
        let issued = drive(&mut p, &[(1, 10)]);
        // ISB predicts PC 1's successor (20), not the global one (99).
        assert_eq!(issued, vec![20]);
    }

    #[test]
    fn interleaved_data_structures_break_pc_streams() {
        // The same loop PC walks two different structures alternately:
        // the per-PC successor of each address keeps changing.
        let mut p = Isb::new(1);
        drive(&mut p, &[(1, 10), (1, 50), (1, 11), (1, 51)]);
        // Re-miss on 10: per-PC successor is 50 (what followed last time),
        // even if the program is now in the 10→11 structure.
        let issued = drive(&mut p, &[(1, 10)]);
        assert_eq!(issued, vec![50]);
    }

    #[test]
    fn unknown_address_is_silent() {
        let mut p = Isb::new(4);
        let issued = drive(&mut p, &[(1, 10), (1, 20), (2, 10)]);
        assert!(issued.is_empty(), "PC 2 never saw address 10 before");
    }
}
