//! Synthetic server-workload memory traces for temporal-prefetcher studies.
//!
//! This crate is the data substrate of the Domino (HPCA 2018) reproduction.
//! The paper evaluates prefetchers on L1-D miss sequences collected with the
//! Flexus full-system simulator from nine commercial server workloads
//! (Table II of the paper). Those stacks (Cassandra, Hadoop, Oracle, Apache,
//! ...) cannot be re-run here, so this crate provides *parametric workload
//! models* that reproduce the statistics the paper's mechanisms key on:
//!
//! * **temporal repetition** — sequences of misses that recur (documents
//!   replayed in segments whose length distribution matches the paper's
//!   Figure 12 histogram),
//! * **prefix ambiguity** — shared "junction" addresses followed by different
//!   successors in different streams, the phenomenon that defeats
//!   single-address history lookup and motivates Domino's two-address lookup,
//! * **spatial delta patterns** — page-local strided scans that VLDP captures
//!   and temporal prefetchers do not,
//! * **cold/unpredictable misses** — on-the-fly datasets (SAT Solver),
//! * **large instruction working sets** — loop PCs shared across data
//!   structures, which break PC-localized (ISB-style) correlation.
//!
//! # Quickstart
//!
//! ```
//! use domino_trace::workload::catalog;
//!
//! let spec = catalog::oltp();
//! let trace: Vec<_> = spec.generator(42).take(10_000).collect();
//! assert_eq!(trace.len(), 10_000);
//! ```
//!
//! The full roster of paper workloads lives in [`workload::catalog`].

pub mod addr;
pub mod event;
pub mod hash;
pub mod io;
pub mod reuse;
pub mod rng;
pub mod stats;
pub mod stream;
pub mod workload;

pub use addr::{Addr, LineAddr, Pc, LINE_BYTES};
pub use event::{AccessEvent, AccessKind};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use reuse::ReuseProfile;
pub use rng::SimRng;
pub use stats::TraceStats;
pub use stream::{Codec, EventSource, FileSource, SliceSource, TraceFileError};
pub use workload::{WorkloadGenerator, WorkloadSpec};
