/root/repo/target/debug/examples/spatio_temporal-d7434d87fad362dc.d: examples/spatio_temporal.rs

/root/repo/target/debug/examples/spatio_temporal-d7434d87fad362dc: examples/spatio_temporal.rs

examples/spatio_temporal.rs:
