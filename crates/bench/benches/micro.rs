//! Microbenchmarks of the substrates: per-event prefetcher costs, EIT
//! operations, hasher comparison, Sequitur throughput, workload
//! generation, and the cache model — the hot paths of the whole
//! reproduction.

use domino::{Domino, DominoConfig, Eit, EitConfig};
use domino_bench::Harness;
use domino_mem::cache::{CacheConfig, SetAssocCache};
use domino_mem::interface::{CollectSink, Prefetcher, TriggerEvent};
use domino_prefetchers::{Stms, TemporalConfig};
use domino_sequitur::oracle::{oracle_replay, OracleConfig};
use domino_sequitur::Sequitur;
use domino_trace::addr::{LineAddr, Pc};
use domino_trace::hash::FxHashMap;
use domino_trace::workload::catalog;
use std::collections::HashMap;
use std::hint::black_box;

const N: usize = 20_000;

fn miss_lines() -> Vec<u64> {
    let spec = catalog::oltp();
    spec.generator(42).take(N).map(|e| e.line().raw()).collect()
}

fn workload_generation(h: &mut Harness) {
    h.bench("workload_generation/oltp_events", N as u64, || {
        let spec = catalog::oltp();
        black_box(spec.generator(42).take(N).count())
    });
}

fn cache_model(h: &mut Harness) {
    let lines = miss_lines();
    let n = lines.len() as u64;
    h.bench("cache/l1_access_insert", n, || {
        let mut l1 = SetAssocCache::new(CacheConfig::l1d());
        for &l in &lines {
            let line = LineAddr::new(l);
            if !l1.access(line) {
                l1.insert(line);
            }
        }
        black_box(l1.len())
    });
}

fn prefetcher_event_throughput(h: &mut Harness) {
    let lines = miss_lines();
    let n = lines.len() as u64;
    h.bench("prefetcher_events/stms", n, || {
        let mut p = Stms::new(TemporalConfig::default());
        let mut sink = CollectSink::new();
        for &l in &lines {
            sink.clear();
            p.on_trigger(&TriggerEvent::miss(Pc::new(0), LineAddr::new(l)), &mut sink);
        }
        black_box(sink.requests.len())
    });
    h.bench("prefetcher_events/domino", n, || {
        let mut p = Domino::new(DominoConfig {
            eit: EitConfig {
                rows: 1 << 16,
                ..EitConfig::default()
            },
            ht_entries: 1 << 20,
            ..DominoConfig::default()
        });
        let mut sink = CollectSink::new();
        for &l in &lines {
            sink.clear();
            p.on_trigger(&TriggerEvent::miss(Pc::new(0), LineAddr::new(l)), &mut sink);
        }
        black_box(sink.requests.len())
    });
}

fn eit_operations(h: &mut Harness) {
    let lines = miss_lines();
    let n = lines.len() as u64;
    h.bench("eit/update_lookup", n, || {
        let mut eit = Eit::new(EitConfig {
            rows: 1 << 14,
            ..EitConfig::default()
        });
        let mut hits = 0u64;
        for w in lines.windows(2) {
            eit.update(LineAddr::new(w[0]), LineAddr::new(w[1]), 0);
            if eit.lookup(LineAddr::new(w[1])).is_some() {
                hits += 1;
            }
        }
        black_box(hits)
    });
}

/// Head-to-head: std SipHash map vs the FxHash map now used on the EIT
/// lookup path, on the exact access pattern the EIT sees (update the
/// predecessor's entry, probe the successor).
fn hasher_comparison(h: &mut Harness) {
    let lines = miss_lines();
    let n = lines.len() as u64;
    h.bench("hasher/siphash_map_update_lookup", n, || {
        let mut m: HashMap<u64, u64> = HashMap::new();
        let mut hits = 0u64;
        for w in lines.windows(2) {
            *m.entry(w[0]).or_insert(0) = w[1];
            if m.contains_key(&w[1]) {
                hits += 1;
            }
        }
        black_box(hits)
    });
    h.bench("hasher/fxhash_map_update_lookup", n, || {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        let mut hits = 0u64;
        for w in lines.windows(2) {
            *m.entry(w[0]).or_insert(0) = w[1];
            if m.contains_key(&w[1]) {
                hits += 1;
            }
        }
        black_box(hits)
    });
}

fn sequitur_throughput(h: &mut Harness) {
    let lines: Vec<u64> = miss_lines().into_iter().take(6_000).collect();
    let n = lines.len() as u64;
    h.bench("sequitur/grammar_build", n, || {
        let gr = Sequitur::from_sequence(lines.iter().copied());
        black_box(gr.rule_count())
    });
    h.bench("sequitur/oracle_replay", n, || {
        black_box(oracle_replay(&lines, &OracleConfig::default()).covered)
    });
}

fn main() {
    let mut h = Harness::new("micro");
    workload_generation(&mut h);
    cache_model(&mut h);
    prefetcher_event_throughput(&mut h);
    eit_operations(&mut h);
    hasher_comparison(&mut h);
    sequitur_throughput(&mut h);
}
