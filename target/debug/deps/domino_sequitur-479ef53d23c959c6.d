/root/repo/target/debug/deps/domino_sequitur-479ef53d23c959c6.d: crates/sequitur/src/lib.rs crates/sequitur/src/analysis.rs crates/sequitur/src/grammar.rs crates/sequitur/src/histogram.rs crates/sequitur/src/node.rs crates/sequitur/src/oracle.rs

/root/repo/target/debug/deps/libdomino_sequitur-479ef53d23c959c6.rlib: crates/sequitur/src/lib.rs crates/sequitur/src/analysis.rs crates/sequitur/src/grammar.rs crates/sequitur/src/histogram.rs crates/sequitur/src/node.rs crates/sequitur/src/oracle.rs

/root/repo/target/debug/deps/libdomino_sequitur-479ef53d23c959c6.rmeta: crates/sequitur/src/lib.rs crates/sequitur/src/analysis.rs crates/sequitur/src/grammar.rs crates/sequitur/src/histogram.rs crates/sequitur/src/node.rs crates/sequitur/src/oracle.rs

crates/sequitur/src/lib.rs:
crates/sequitur/src/analysis.rs:
crates/sequitur/src/grammar.rs:
crates/sequitur/src/histogram.rs:
crates/sequitur/src/node.rs:
crates/sequitur/src/oracle.rs:
