#!/usr/bin/env python3
"""Validates the observability-plane artifacts of an armed domino-serve run.

Usage: validate_obs.py <dir>

The directory is what `domino-serve --obs DIR` leaves behind:
OBS_report.json plus the per-shard binary rings (metrics_shard*.bin,
spans_shard*.bin). Everything is re-parsed from scratch here — an
independent stdlib-only implementation of both binary formats
(DMNOMTR1, DMNOSPN1) and of the deterministic span sampler — so a bug
in the Rust serializers cannot hide behind its own reader. Checks:

- OBS_report.json: domino-obs/1 schema, field presence and types,
  per-shard consistency (spans_stored <= spans_recorded), SLO block
  shape (objective breach flags consistent with the overall verdict).
- metrics rings: header sanity, row count == min(sampled, capacity),
  nondecreasing stamps, and counter conservation (sum of stored deltas
  == final totals) whenever the ring has not wrapped.
- span rings: record chronology (submit <= enqueue <= dequeue <= step
  <= reply) and sampler membership — every stored span must be one the
  pure (seed, tenant, seq) hash would have selected.
- cross-checks: binary totals must equal the numbers OBS_report.json
  claims for the same shard.

Exits non-zero with a message on the first problem, so tools/check.sh
can gate on it.
"""

import json
import struct
import sys
from pathlib import Path

SCHEMA = "domino-obs/1"
RING_MAGIC = b"DMNOMTR1"
SPAN_MAGIC = b"DMNOSPN1"
U64_MAX = 2**64 - 1
MASK = U64_MAX


def fail(path, msg):
    sys.exit(f"validate_obs: {path}: {msg}")


def is_u64(v):
    return isinstance(v, int) and not isinstance(v, bool) and 0 <= v <= U64_MAX


def sampled(rate, seed, tenant, seq):
    """The SpanSampler hash, bit-for-bit: SplitMix64 finalizer over the
    mixed (seed, tenant, seq) key, modulo the 1-in-N rate."""
    if rate == 0:
        return False
    if rate == 1:
        return True
    x = (seed + tenant * 0x9E3779B97F4A7C15 + seq * 0xBF58476D1CE4E5B9) & MASK
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & MASK
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & MASK
    x ^= x >> 31
    return x % rate == 0


class Cursor:
    def __init__(self, path, data):
        self.path = path
        self.data = data
        self.pos = 0

    def take(self, n):
        if self.pos + n > len(self.data):
            fail(self.path, f"truncated: need {n} bytes at offset {self.pos}")
        out = self.data[self.pos : self.pos + n]
        self.pos += n
        return out

    def u8(self):
        return self.take(1)[0]

    def u32(self):
        return struct.unpack("<I", self.take(4))[0]

    def u64(self):
        return struct.unpack("<Q", self.take(8))[0]

    def string(self):
        return self.take(self.u32()).decode("utf-8")

    def done(self):
        if self.pos != len(self.data):
            fail(self.path, f"{len(self.data) - self.pos} trailing bytes")


def parse_ring(path):
    c = Cursor(path, path.read_bytes())
    if c.take(8) != RING_MAGIC:
        fail(path, "bad magic: not a domino metrics ring")
    if c.u32() != 1:
        fail(path, "unsupported ring version")
    if c.u32() != 0:
        fail(path, "nonzero reserved field")
    source = c.string()
    interval = c.u64()
    capacity = c.u64()
    width = c.u64()
    sampled_rows = c.u64()
    if capacity == 0 or width == 0:
        fail(path, "zero capacity or width")
    specs = [(c.string(), c.u8()) for _ in range(width)]
    for name, kind in specs:
        if not name or kind not in (0, 1):
            fail(path, f"bad metric spec {name!r} kind {kind}")
    if len({name for name, _ in specs}) != width:
        fail(path, "duplicate metric names")
    totals = [c.u64() for _ in range(width)]
    count = c.u64()
    if count != min(sampled_rows, capacity):
        fail(path, f"stored {count} rows, want min(sampled={sampled_rows}, cap={capacity})")
    rows = []
    for _ in range(count):
        stamp = c.u64()
        rows.append((stamp, [c.u64() for _ in range(width)]))
    c.done()
    for prev, cur in zip(rows, rows[1:]):
        if cur[0] < prev[0]:
            fail(path, f"stamps regress: {prev[0]} then {cur[0]}")
    if sampled_rows <= capacity:  # unwrapped: deltas must conserve
        for col, (name, kind) in enumerate(specs):
            if kind != 0:
                continue
            delta_sum = sum(v[col] for _, v in rows)
            if delta_sum != totals[col]:
                fail(path, f"counter {name!r}: stored deltas sum to {delta_sum}, total {totals[col]}")
    return {
        "source": source,
        "interval": interval,
        "sampled": sampled_rows,
        "wrapped": sampled_rows > capacity,
        "totals": dict(zip((n for n, _ in specs), totals)),
    }


def parse_spans(path):
    c = Cursor(path, path.read_bytes())
    if c.take(8) != SPAN_MAGIC:
        fail(path, "bad magic: not a domino span file")
    if c.u32() != 1:
        fail(path, "unsupported span version")
    if c.u32() != 0:
        fail(path, "nonzero reserved field")
    source = c.string()
    rate = c.u32()
    seed = c.u64()
    capacity = c.u64()
    recorded = c.u64()
    count = c.u64()
    if count != min(recorded, capacity):
        fail(path, f"stored {count} spans, want min(recorded={recorded}, cap={capacity})")
    for i in range(count):
        tenant, seq = struct.unpack("<QQ", c.take(16))
        shard, events = struct.unpack("<II", c.take(8))
        stamps = struct.unpack("<5Q", c.take(40))
        if events == 0:
            fail(path, f"span {i}: empty batch")
        if any(b < a for a, b in zip(stamps, stamps[1:])):
            fail(path, f"span {i} (tenant {tenant}, seq {seq}): stamps out of order {stamps}")
        if not sampled(rate, seed, tenant, seq):
            fail(path, f"span {i} (tenant {tenant}, seq {seq}): sampler would not select it")
    c.done()
    return {"source": source, "rate": rate, "seed": seed, "recorded": recorded, "stored": count}


SHARD_U64_FIELDS = (
    "intervals",
    "events",
    "batches",
    "shed",
    "blocked",
    "evictions",
    "resets",
    "spans_recorded",
    "spans_stored",
)
OBJECTIVE_FIELDS = ("threshold", "value", "fast_burn", "slow_burn")


def check_slo(path, slo):
    if not isinstance(slo, dict):
        fail(path, "slo is not an object")
    if not isinstance(slo.get("spec"), str):
        fail(path, "slo: missing string field 'spec'")
    for key in ("fast_window", "slow_window"):
        if not is_u64(slo.get(key)):
            fail(path, f"slo: missing or non-u64 field {key!r}")
    if not isinstance(slo.get("breached"), bool):
        fail(path, "slo: missing bool field 'breached'")
    objectives = slo.get("objectives")
    if not isinstance(objectives, list):
        fail(path, "slo: objectives must be a list")
    any_breach = False
    for i, o in enumerate(objectives):
        where = f"slo.objectives[{i}]"
        if not isinstance(o, dict) or not isinstance(o.get("name"), str):
            fail(path, f"{where}: not an object with a name")
        for key in OBJECTIVE_FIELDS:
            v = o.get(key)
            if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
                fail(path, f"{where}: bad field {key!r}: {v!r}")
        if not isinstance(o.get("breached"), bool):
            fail(path, f"{where}: missing bool field 'breached'")
        any_breach = any_breach or o["breached"]
    if slo["spec"] and any_breach != slo["breached"]:
        fail(path, f"slo: objective breaches say {any_breach}, overall verdict says {slo['breached']}")


def check_report(path, r, rings, spans):
    if not isinstance(r, dict):
        fail(path, "report is not an object")
    if r.get("schema") != SCHEMA:
        fail(path, f"schema is {r.get('schema')!r}, want {SCHEMA!r}")
    for key in ("interval_events", "ring_rows", "span_rate", "span_seed"):
        if not is_u64(r.get(key)):
            fail(path, f"missing or non-u64 field {key!r}")
    shards = r.get("per_shard")
    if not isinstance(shards, list) or not shards:
        fail(path, "per_shard must be a non-empty list")
    for i, s in enumerate(shards):
        where = f"per_shard[{i}]"
        if not isinstance(s, dict):
            fail(path, f"{where}: not an object")
        if not isinstance(s.get("source"), str) or not s["source"]:
            fail(path, f"{where}: missing source label")
        for key in SHARD_U64_FIELDS:
            if not is_u64(s.get(key)):
                fail(path, f"{where}: missing or non-u64 field {key!r}")
        for key in ("wrapped", "spans_chronological"):
            if not isinstance(s.get(key), bool):
                fail(path, f"{where}: missing bool field {key!r}")
        if s["spans_stored"] > s["spans_recorded"]:
            fail(path, f"{where}: more spans stored than ever recorded")
        if not s["spans_chronological"]:
            fail(path, f"{where}: spans out of chronological order")
        # Cross-check the binary artifacts for the same shard.
        ring = rings.get(s["source"])
        if ring is None:
            fail(path, f"{where}: no metrics_*.bin for source {s['source']!r}")
        if ring["sampled"] != s["intervals"] or ring["wrapped"] != s["wrapped"]:
            fail(path, f"{where}: ring header disagrees with report")
        for key in ("events", "batches", "shed", "blocked", "evictions", "resets"):
            if ring["totals"].get(key) != s[key]:
                fail(path, f"{where}: ring total {key}={ring['totals'].get(key)}, report says {s[key]}")
        span = spans.get(s["source"])
        if span is None:
            fail(path, f"{where}: no spans_*.bin for source {s['source']!r}")
        if span["rate"] != r["span_rate"] or span["seed"] != r["span_seed"]:
            fail(path, f"{where}: span sampler header disagrees with report")
        if (span["recorded"], span["stored"]) != (s["spans_recorded"], s["spans_stored"]):
            fail(path, f"{where}: span counts disagree with report")
    check_slo(path, r.get("slo"))


def main(argv):
    if len(argv) != 2:
        sys.exit(__doc__.strip())
    root = Path(argv[1])
    report_path = root / "OBS_report.json"
    try:
        report = json.loads(report_path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        fail(report_path, str(e))
    rings = {}
    spans = {}
    for path in sorted(root.glob("metrics_shard*.bin")):
        ring = parse_ring(path)
        rings[ring["source"]] = ring
    for path in sorted(root.glob("spans_shard*.bin")):
        span = parse_spans(path)
        spans[span["source"]] = span
    if not rings:
        fail(root, "no metrics_shard*.bin files")
    check_report(report_path, report, rings, spans)
    shard_n = len(report["per_shard"])
    print(f"validate_obs: {root}: OK ({shard_n} shards, {len(spans)} span files)")


if __name__ == "__main__":
    main(sys.argv)
