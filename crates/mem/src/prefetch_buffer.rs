//! The small prefetch buffer next to the L1-D cache.
//!
//! The paper's methodology (§IV-D): "all prefetchers prefetch into a small
//! prefetch buffer near the L1-D cache with the capacity of 32 cache
//! blocks". Prefetched blocks that are evicted (or discarded with their
//! stream) before any demand hit are the paper's **overpredictions**.
//!
//! Entries carry an arrival timestamp so the timing model can distinguish
//! *timely* hits (block already arrived) from *partial* hits (block still
//! in flight; the demand access waits the residual latency).

use std::collections::VecDeque;

use domino_telemetry::CounterSink;
use domino_trace::addr::LineAddr;

/// One buffered prefetch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferedPrefetch {
    /// Prefetched line.
    pub line: LineAddr,
    /// Simulated time (ns) at which the data arrives from memory.
    pub ready_at: f64,
    /// Stream that issued the prefetch (for stream-replacement discards).
    pub stream: Option<u32>,
}

/// Lifetime accounting for the buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchBufferStats {
    /// Prefetches inserted.
    pub inserted: u64,
    /// Demand hits (useful prefetches).
    pub hits: u64,
    /// Entries evicted by capacity pressure before any use.
    pub evicted_unused: u64,
    /// Entries discarded when their stream was replaced.
    pub discarded_unused: u64,
    /// Inserts that were dropped because the line was already buffered.
    pub duplicate_inserts: u64,
}

impl PrefetchBufferStats {
    /// All prefetched-but-never-used blocks — the overprediction count.
    pub fn overpredictions(&self) -> u64 {
        self.evicted_unused + self.discarded_unused
    }
}

/// What [`PrefetchBuffer::insert`] did with the request, so callers
/// (e.g. the flight recorder) can attribute the block's fate without
/// re-deriving buffer policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InsertOutcome {
    /// The line was buffered.
    Inserted,
    /// The line was already buffered; the insert was dropped.
    Duplicate,
    /// The line was buffered after evicting this LRU victim unused.
    Evicted(BufferedPrefetch),
}

/// LRU prefetch buffer with a fixed capacity in cache blocks.
///
/// ```
/// use domino_mem::prefetch_buffer::PrefetchBuffer;
/// use domino_trace::addr::LineAddr;
///
/// let mut buf = PrefetchBuffer::new(32);
/// buf.insert(LineAddr::new(7), 0.0, None);
/// assert!(buf.take(LineAddr::new(7)).is_some());
/// assert!(buf.take(LineAddr::new(7)).is_none(), "hit consumes the entry");
/// ```
#[derive(Debug, Clone)]
pub struct PrefetchBuffer {
    capacity: usize,
    /// Front = LRU victim end; back = most recent.
    entries: VecDeque<BufferedPrefetch>,
    stats: PrefetchBufferStats,
}

impl PrefetchBuffer {
    /// Creates a buffer holding up to `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "prefetch buffer needs capacity");
        PrefetchBuffer {
            capacity,
            entries: VecDeque::with_capacity(capacity),
            stats: PrefetchBufferStats::default(),
        }
    }

    /// The paper's configuration: 32 blocks.
    pub fn paper() -> Self {
        PrefetchBuffer::new(32)
    }

    /// Inserts a prefetched line arriving at `ready_at`. Duplicate lines
    /// are dropped (counted), full buffers evict the LRU entry (counted as
    /// an unused eviction — it was never hit). The returned
    /// [`InsertOutcome`] reports which of the three happened.
    pub fn insert(&mut self, line: LineAddr, ready_at: f64, stream: Option<u32>) -> InsertOutcome {
        self.stats.inserted += 1;
        if self.entries.iter().any(|e| e.line == line) {
            self.stats.duplicate_inserts += 1;
            return InsertOutcome::Duplicate;
        }
        // Injected bug for the checker self-test: a capacity eviction
        // happens but is never counted, silently deflating the
        // overprediction statistics.
        #[cfg(domino_mutate)]
        let count_eviction = !crate::mutate_active("buffer_missing_evict_count");
        #[cfg(not(domino_mutate))]
        let count_eviction = true;
        let victim = if self.entries.len() == self.capacity {
            let v = self.entries.pop_front();
            if count_eviction {
                self.stats.evicted_unused += 1;
            }
            v
        } else {
            None
        };
        self.entries.push_back(BufferedPrefetch {
            line,
            ready_at,
            stream,
        });
        match victim {
            Some(v) => InsertOutcome::Evicted(v),
            None => InsertOutcome::Inserted,
        }
    }

    /// Demand lookup: on hit, removes and returns the entry (the block
    /// moves into the L1) and counts a useful prefetch.
    pub fn take(&mut self, line: LineAddr) -> Option<BufferedPrefetch> {
        let pos = self.entries.iter().position(|e| e.line == line)?;
        self.stats.hits += 1;
        // Injected bug for the checker self-test: the hit is counted but
        // the entry stays resident, so it can be hit or evicted again.
        #[cfg(domino_mutate)]
        if crate::mutate_active("buffer_sticky_take") {
            return self.entries.get(pos).copied();
        }
        self.entries.remove(pos)
    }

    /// Peeks without consuming (used by tests and debug displays).
    pub fn contains(&self, line: LineAddr) -> bool {
        self.entries.iter().any(|e| e.line == line)
    }

    /// Discards all entries belonging to `stream` (stream replacement —
    /// "which means discarding the contents of the prefetch buffer ...
    /// related to the replaced stream", paper §III-B).
    pub fn discard_stream(&mut self, stream: u32) -> usize {
        self.discard_stream_with(stream, |_| {})
    }

    /// [`PrefetchBuffer::discard_stream`], invoking `observe` on each
    /// discarded entry (flight-recorder emission) before it is dropped.
    pub fn discard_stream_with(
        &mut self,
        stream: u32,
        mut observe: impl FnMut(&BufferedPrefetch),
    ) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| {
            let keep = e.stream != Some(stream);
            if !keep {
                observe(e);
            }
            keep
        });
        let discarded = before - self.entries.len();
        self.stats.discarded_unused += discarded as u64;
        discarded
    }

    /// Restores the freshly-constructed state (no entries, zeroed stats)
    /// while keeping the entry storage allocated, so sweep cells can
    /// reuse the buffer without reallocating.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.stats = PrefetchBufferStats::default();
    }

    /// Number of buffered blocks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> PrefetchBufferStats {
        self.stats
    }

    /// Capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Reports lifetime buffer counters (`buffer.inserted`, …).
    pub fn emit_counters(&self, sink: &mut dyn CounterSink) {
        sink.counter("buffer.inserted", self.stats.inserted);
        sink.counter("buffer.hits", self.stats.hits);
        sink.counter("buffer.evicted_unused", self.stats.evicted_unused);
        sink.counter("buffer.discarded_unused", self.stats.discarded_unused);
        sink.counter("buffer.duplicate_inserts", self.stats.duplicate_inserts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn insert_take_roundtrip() {
        let mut b = PrefetchBuffer::new(4);
        b.insert(line(1), 10.0, Some(0));
        let e = b.take(line(1)).unwrap();
        assert_eq!(e.ready_at, 10.0);
        assert_eq!(e.stream, Some(0));
        assert_eq!(b.stats().hits, 1);
    }

    #[test]
    fn capacity_eviction_counts_overprediction() {
        let mut b = PrefetchBuffer::new(2);
        b.insert(line(1), 0.0, None);
        b.insert(line(2), 0.0, None);
        b.insert(line(3), 0.0, None); // evicts line 1
        assert!(!b.contains(line(1)));
        assert_eq!(b.stats().evicted_unused, 1);
        assert_eq!(b.stats().overpredictions(), 1);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn duplicates_are_dropped() {
        let mut b = PrefetchBuffer::new(4);
        b.insert(line(9), 0.0, None);
        b.insert(line(9), 5.0, None);
        assert_eq!(b.len(), 1);
        assert_eq!(b.stats().duplicate_inserts, 1);
    }

    #[test]
    fn stream_discard() {
        let mut b = PrefetchBuffer::new(8);
        b.insert(line(1), 0.0, Some(0));
        b.insert(line(2), 0.0, Some(1));
        b.insert(line(3), 0.0, Some(0));
        assert_eq!(b.discard_stream(0), 2);
        assert!(b.contains(line(2)));
        assert_eq!(b.stats().discarded_unused, 2);
    }

    #[test]
    fn hits_are_not_overpredictions() {
        let mut b = PrefetchBuffer::new(2);
        b.insert(line(1), 0.0, None);
        b.take(line(1));
        b.insert(line(2), 0.0, None);
        b.insert(line(3), 0.0, None);
        b.insert(line(4), 0.0, None);
        // line1 was used; lines 2 evicted unused.
        assert_eq!(b.stats().overpredictions(), 1);
    }

    #[test]
    fn insert_reports_its_outcome() {
        let mut b = PrefetchBuffer::new(2);
        assert_eq!(b.insert(line(1), 0.0, Some(7)), InsertOutcome::Inserted);
        assert_eq!(b.insert(line(1), 1.0, None), InsertOutcome::Duplicate);
        assert_eq!(b.insert(line(2), 0.0, None), InsertOutcome::Inserted);
        match b.insert(line(3), 0.0, None) {
            InsertOutcome::Evicted(victim) => {
                assert_eq!(victim.line, line(1));
                assert_eq!(victim.stream, Some(7));
            }
            other => panic!("expected an eviction, got {other:?}"),
        }
    }

    #[test]
    fn discard_stream_with_observes_each_victim() {
        let mut b = PrefetchBuffer::new(8);
        b.insert(line(1), 0.0, Some(0));
        b.insert(line(2), 0.0, Some(1));
        b.insert(line(3), 0.0, Some(0));
        let mut seen = Vec::new();
        let n = b.discard_stream_with(0, |e| seen.push(e.line));
        assert_eq!(n, 2);
        assert_eq!(seen, vec![line(1), line(3)]);
        assert_eq!(b.stats().discarded_unused, 2);
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_panics() {
        PrefetchBuffer::new(0);
    }
}
