//! Bucketed histogram for stream lengths (paper Figure 12).

use std::fmt;

/// Bucket upper bounds used by the paper's Figure 12 x-axis.
pub const FIG12_BOUNDS: [u64; 8] = [2, 4, 8, 16, 32, 64, 128, u64::MAX];

/// A histogram over `u64` values with fixed inclusive upper bounds.
///
/// ```
/// use domino_sequitur::Histogram;
///
/// let mut h = Histogram::fig12();
/// h.record(1);
/// h.record(3);
/// h.record(500);
/// assert_eq!(h.total(), 3);
/// let cum = h.cumulative_fractions();
/// assert!((cum[0] - 1.0 / 3.0).abs() < 1e-12);
/// assert!((cum.last().unwrap() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
    sum: u64,
}

impl Histogram {
    /// Creates a histogram with the given inclusive upper bounds
    /// (must be strictly increasing; the last bound is treated as open).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn with_bounds(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram requires at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len()],
            total: 0,
            sum: 0,
        }
    }

    /// The paper's Figure 12 bucketing (≤2, ≤4, ≤8, …, ≤128, 128+).
    pub fn fig12() -> Self {
        Histogram::with_bounds(&FIG12_BOUNDS)
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total number of recorded values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Per-bucket counts, in bound order.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bucket bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Cumulative fraction of values at or below each bound
    /// (Figure 12's y-axis). Empty histogram yields zeros.
    pub fn cumulative_fractions(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.counts.len());
        let mut run = 0u64;
        for &c in &self.counts {
            run += c;
            out.push(if self.total == 0 {
                0.0
            } else {
                run as f64 / self.total as f64
            });
        }
        out
    }

    /// Merges another histogram with identical bounds into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bounds differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds must match");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fracs = self.cumulative_fractions();
        for (i, (&b, frac)) in self.bounds.iter().zip(fracs).enumerate() {
            if i > 0 {
                write!(f, "  ")?;
            }
            if b == u64::MAX {
                write!(f, "rest:{:.1}%", frac * 100.0)?;
            } else {
                write!(f, "≤{}:{:.1}%", b, frac * 100.0)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_correct_buckets() {
        let mut h = Histogram::with_bounds(&[2, 4, 8]);
        for v in [1, 2, 3, 4, 5, 8, 100] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[2, 2, 3]);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn mean_tracks_values() {
        let mut h = Histogram::fig12();
        h.record(4);
        h.record(8);
        assert_eq!(h.mean(), 6.0);
    }

    #[test]
    fn cumulative_reaches_one() {
        let mut h = Histogram::fig12();
        for v in 0..200 {
            h.record(v);
        }
        let c = h.cumulative_fractions();
        assert!((c.last().unwrap() - 1.0).abs() < 1e-12);
        assert!(c.windows(2).all(|w| w[0] <= w[1]), "must be monotonic");
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::fig12();
        let mut b = Histogram::fig12();
        a.record(1);
        b.record(3);
        b.record(200);
        a.merge(&b);
        assert_eq!(a.total(), 3);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_panic() {
        Histogram::with_bounds(&[4, 2]);
    }

    #[test]
    fn empty_histogram_display_and_fractions() {
        let h = Histogram::fig12();
        assert_eq!(h.mean(), 0.0);
        assert!(h.cumulative_fractions().iter().all(|&f| f == 0.0));
        assert!(!format!("{h}").is_empty());
    }
}
