/root/repo/target/release/deps/domino_prefetchers-6d1139c5b98f21ad.d: crates/prefetchers/src/lib.rs crates/prefetchers/src/adaptive.rs crates/prefetchers/src/composite.rs crates/prefetchers/src/config.rs crates/prefetchers/src/digram.rs crates/prefetchers/src/ghb.rs crates/prefetchers/src/isb.rs crates/prefetchers/src/markov.rs crates/prefetchers/src/nextline.rs crates/prefetchers/src/ngram.rs crates/prefetchers/src/sms.rs crates/prefetchers/src/stms.rs crates/prefetchers/src/stride.rs crates/prefetchers/src/vldp.rs

/root/repo/target/release/deps/libdomino_prefetchers-6d1139c5b98f21ad.rlib: crates/prefetchers/src/lib.rs crates/prefetchers/src/adaptive.rs crates/prefetchers/src/composite.rs crates/prefetchers/src/config.rs crates/prefetchers/src/digram.rs crates/prefetchers/src/ghb.rs crates/prefetchers/src/isb.rs crates/prefetchers/src/markov.rs crates/prefetchers/src/nextline.rs crates/prefetchers/src/ngram.rs crates/prefetchers/src/sms.rs crates/prefetchers/src/stms.rs crates/prefetchers/src/stride.rs crates/prefetchers/src/vldp.rs

/root/repo/target/release/deps/libdomino_prefetchers-6d1139c5b98f21ad.rmeta: crates/prefetchers/src/lib.rs crates/prefetchers/src/adaptive.rs crates/prefetchers/src/composite.rs crates/prefetchers/src/config.rs crates/prefetchers/src/digram.rs crates/prefetchers/src/ghb.rs crates/prefetchers/src/isb.rs crates/prefetchers/src/markov.rs crates/prefetchers/src/nextline.rs crates/prefetchers/src/ngram.rs crates/prefetchers/src/sms.rs crates/prefetchers/src/stms.rs crates/prefetchers/src/stride.rs crates/prefetchers/src/vldp.rs

crates/prefetchers/src/lib.rs:
crates/prefetchers/src/adaptive.rs:
crates/prefetchers/src/composite.rs:
crates/prefetchers/src/config.rs:
crates/prefetchers/src/digram.rs:
crates/prefetchers/src/ghb.rs:
crates/prefetchers/src/isb.rs:
crates/prefetchers/src/markov.rs:
crates/prefetchers/src/nextline.rs:
crates/prefetchers/src/ngram.rs:
crates/prefetchers/src/sms.rs:
crates/prefetchers/src/stms.rs:
crates/prefetchers/src/stride.rs:
crates/prefetchers/src/vldp.rs:
