/root/repo/target/debug/examples/lookup_depth_study-5afe6c20c0fe666b.d: examples/lookup_depth_study.rs Cargo.toml

/root/repo/target/debug/examples/liblookup_depth_study-5afe6c20c0fe666b.rmeta: examples/lookup_depth_study.rs Cargo.toml

examples/lookup_depth_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
