/root/repo/target/debug/deps/properties-88db59a52956864a.d: crates/mem/tests/properties.rs

/root/repo/target/debug/deps/properties-88db59a52956864a: crates/mem/tests/properties.rs

crates/mem/tests/properties.rs:
