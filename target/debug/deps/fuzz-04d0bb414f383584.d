/root/repo/target/debug/deps/fuzz-04d0bb414f383584.d: crates/core/tests/fuzz.rs

/root/repo/target/debug/deps/fuzz-04d0bb414f383584: crates/core/tests/fuzz.rs

crates/core/tests/fuzz.rs:
