//! Fuzz-style property tests for the Domino core: totality, determinism,
//! no self-prefetch, bounded fan-out, and structural invariants of the
//! practical design versus the naive strawman.

use domino::{Domino, DominoConfig, EitConfig, NaiveDomino};
use domino_mem::interface::{CollectSink, Prefetcher, TriggerEvent};
use domino_trace::addr::{LineAddr, Pc};
use proptest::prelude::*;

fn events() -> impl Strategy<Value = Vec<(u64, bool)>> {
    proptest::collection::vec((0u64..48, prop::bool::ANY), 1..600)
}

fn cfg(degree: usize) -> DominoConfig {
    DominoConfig {
        degree,
        sampling_probability: 0.5,
        ht_entries: 256,
        eit: EitConfig {
            rows: 32,
            super_entries_per_row: 2,
            entries_per_super: 3,
        },
        ..DominoConfig::default()
    }
}

fn drive(p: &mut dyn Prefetcher, evs: &[(u64, bool)]) -> Vec<(u64, u8, u64, u64)> {
    let mut out = Vec::new();
    let mut sink = CollectSink::new();
    for &(line, hit) in evs {
        sink.clear();
        let ev = if hit {
            TriggerEvent::prefetch_hit(Pc::new(0), LineAddr::new(line))
        } else {
            TriggerEvent::miss(Pc::new(0), LineAddr::new(line))
        };
        p.on_trigger(&ev, &mut sink);
        for r in &sink.requests {
            out.push((
                r.line.raw(),
                r.delay_trips,
                sink.meta_read_blocks,
                sink.meta_write_blocks,
            ));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Domino is total, never prefetches the triggering line, and issues
    /// a bounded number of requests per event (the speculative prefetch
    /// plus at most `degree` replay prefetches).
    #[test]
    fn domino_totality_and_bounds(evs in events(), degree in 1usize..6) {
        let mut d = Domino::new(cfg(degree));
        let mut sink = CollectSink::new();
        for &(line, hit) in &evs {
            sink.clear();
            let ev = if hit {
                TriggerEvent::prefetch_hit(Pc::new(0), LineAddr::new(line))
            } else {
                TriggerEvent::miss(Pc::new(0), LineAddr::new(line))
            };
            d.on_trigger(&ev, &mut sink);
            prop_assert!(
                sink.requests.len() <= degree + 1,
                "degree {degree}: {} requests",
                sink.requests.len()
            );
            for r in &sink.requests {
                prop_assert_ne!(r.line, LineAddr::new(line));
                prop_assert!(r.delay_trips <= 2);
            }
        }
    }

    /// Determinism for both designs.
    #[test]
    fn designs_are_deterministic(evs in events()) {
        let a = drive(&mut Domino::new(cfg(4)), &evs);
        let b = drive(&mut Domino::new(cfg(4)), &evs);
        prop_assert_eq!(a, b);
        let a = drive(&mut NaiveDomino::new(cfg(4)), &evs);
        let b = drive(&mut NaiveDomino::new(cfg(4)), &evs);
        prop_assert_eq!(a, b);
    }

    /// The practical design's stream-opening prefetches need at most one
    /// serial metadata round trip; the naive strawman's speculative path
    /// needs up to three. This is the EIT's whole point, so it must hold
    /// on every input.
    #[test]
    fn practical_design_is_never_slower_to_first_prefetch(evs in events()) {
        let practical = drive(&mut Domino::new(cfg(2)), &evs);
        for &(_, trips, _, _) in &practical {
            prop_assert!(trips <= 2, "practical trips {trips}");
        }
        let naive = drive(&mut NaiveDomino::new(cfg(2)), &evs);
        for &(_, trips, _, _) in &naive {
            prop_assert!(trips <= 3, "naive trips {trips}");
        }
        // If the naive design used its single-address fallback, it paid
        // three trips at least once; the practical design never pays more
        // than one before its first speculative prefetch.
        let max_first_practical = practical
            .iter()
            .map(|&(_, t, _, _)| t)
            .filter(|&t| t == 1)
            .count();
        let _ = max_first_practical;
    }

    /// Counters are consistent: matches never exceed lookups, and
    /// confirmations never exceed matches.
    #[test]
    fn counters_are_ordered(evs in events()) {
        let mut d = Domino::new(cfg(3));
        let mut sink = CollectSink::new();
        for &(line, hit) in &evs {
            let ev = if hit {
                TriggerEvent::prefetch_hit(Pc::new(0), LineAddr::new(line))
            } else {
                TriggerEvent::miss(Pc::new(0), LineAddr::new(line))
            };
            d.on_trigger(&ev, &mut sink);
            let (lookups, matches, confirmations) = d.counters();
            prop_assert!(matches <= lookups);
            prop_assert!(confirmations <= matches);
        }
    }
}
