//! Global History Buffer prefetcher (Nesbit & Smith, HPCA 2004) —
//! G/AC organisation.
//!
//! The paper's reference \[11\] and the architectural ancestor of STMS's
//! metadata layout: a small **on-chip** circular buffer of recent misses
//! whose entries are chained by address-correlation link pointers, plus an
//! index table mapping a miss address to its most recent occurrence.
//! Following the chain backwards finds earlier occurrences; the entries
//! *after* the most recent occurrence are the prefetch candidates.
//!
//! Where STMS moved these structures off-chip to make them multi-megabyte
//! (and paid two round trips per lookup), the GHB keeps them small and
//! on-chip: zero metadata round trips, but the history covers only the
//! last few thousand misses — long reuse distances fall out of the
//! buffer. Including it in the roster shows *why* temporal prefetching
//! for servers needs off-chip metadata (paper §III-A).

use domino_trace::FxHashMap;

use domino_mem::interface::{PrefetchRequest, PrefetchSink, Prefetcher, TriggerEvent, TriggerKind};
use domino_trace::addr::LineAddr;

/// GHB configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GhbConfig {
    /// Circular buffer entries (classic configurations: 256–4096).
    pub entries: usize,
    /// Prefetch degree.
    pub degree: usize,
}

impl Default for GhbConfig {
    fn default() -> Self {
        GhbConfig {
            entries: 2048,
            degree: 4,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct GhbEntry {
    line: LineAddr,
    /// Global sequence number of the previous occurrence of `line`.
    prev_occurrence: Option<u64>,
}

/// The G/AC Global History Buffer prefetcher.
#[derive(Debug)]
pub struct Ghb {
    cfg: GhbConfig,
    /// Ring of the last `entries` misses; index = seq % entries.
    ring: Vec<Option<GhbEntry>>,
    /// Total misses recorded (next sequence number).
    seq: u64,
    /// Index table: address → most recent sequence number.
    index: FxHashMap<LineAddr, u64>,
}

impl Ghb {
    /// Creates a GHB.
    ///
    /// # Panics
    ///
    /// Panics if entries or degree are zero.
    pub fn new(cfg: GhbConfig) -> Self {
        assert!(cfg.entries > 0, "GHB needs entries");
        assert!(cfg.degree > 0, "degree must be positive");
        Ghb {
            ring: vec![None; cfg.entries],
            seq: 0,
            index: FxHashMap::default(),
            cfg,
        }
    }

    fn live(&self, seq: u64) -> bool {
        seq < self.seq && self.seq - seq <= self.cfg.entries as u64
    }

    fn at(&self, seq: u64) -> Option<GhbEntry> {
        if self.live(seq) {
            self.ring[(seq % self.cfg.entries as u64) as usize]
        } else {
            None
        }
    }

    /// Number of still-resident occurrences of `line`, walking the
    /// address-correlation chain (diagnostics; bounded by the buffer).
    pub fn chain_length(&self, line: LineAddr) -> usize {
        let mut len = 0;
        let mut cur = self.index.get(&line).copied().filter(|&s| self.live(s));
        while let Some(seq) = cur {
            len += 1;
            cur = self
                .at(seq)
                .and_then(|e| e.prev_occurrence)
                .filter(|&s| self.live(s));
        }
        len
    }
}

impl Prefetcher for Ghb {
    fn name(&self) -> &str {
        "GHB"
    }

    fn on_trigger(&mut self, event: &TriggerEvent, sink: &mut dyn PrefetchSink) {
        if event.kind != TriggerKind::Miss {
            return;
        }
        let line = event.line;
        // Predict from the previous occurrence (before recording this one).
        if let Some(&prev) = self.index.get(&line) {
            if self.live(prev) {
                for d in 1..=self.cfg.degree as u64 {
                    match self.at(prev + d) {
                        Some(e) if e.line != line => {
                            sink.prefetch(PrefetchRequest::immediate(e.line));
                        }
                        Some(_) => {}
                        None => break,
                    }
                }
            }
        }
        // Record, chaining to the previous occurrence.
        let prev_occurrence = self.index.get(&line).copied().filter(|&p| self.live(p));
        let idx = (self.seq % self.cfg.entries as u64) as usize;
        self.ring[idx] = Some(GhbEntry {
            line,
            prev_occurrence,
        });
        self.index.insert(line, self.seq);
        self.seq += 1;
        // Bound the index to live entries (an on-chip index table would).
        if self.seq.is_multiple_of(self.cfg.entries as u64 * 4) {
            let cutoff = self.seq.saturating_sub(self.cfg.entries as u64);
            self.index.retain(|_, &mut s| s >= cutoff);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_mem::interface::CollectSink;
    use domino_trace::addr::Pc;

    fn miss(line: u64) -> TriggerEvent {
        TriggerEvent::miss(Pc::new(0), LineAddr::new(line))
    }

    fn run(g: &mut Ghb, lines: &[u64]) -> Vec<u64> {
        let mut out = Vec::new();
        for &l in lines {
            let mut sink = CollectSink::new();
            g.on_trigger(&miss(l), &mut sink);
            out.extend(sink.requests.iter().map(|r| r.line.raw()));
        }
        out
    }

    #[test]
    fn replays_recent_history() {
        let mut g = Ghb::new(GhbConfig {
            entries: 64,
            degree: 2,
        });
        run(&mut g, &[1, 2, 3, 4, 5]);
        let issued = run(&mut g, &[1]);
        assert_eq!(issued, vec![2, 3]);
    }

    #[test]
    fn no_metadata_traffic() {
        let mut g = Ghb::new(GhbConfig::default());
        let mut sink = CollectSink::new();
        for l in [1u64, 2, 3, 1] {
            g.on_trigger(&miss(l), &mut sink);
        }
        assert_eq!(sink.meta_read_blocks, 0, "GHB is on-chip");
        assert_eq!(sink.meta_write_blocks, 0);
    }

    #[test]
    fn long_reuse_distances_fall_out_of_the_buffer() {
        let mut g = Ghb::new(GhbConfig {
            entries: 16,
            degree: 1,
        });
        run(&mut g, &[1, 2, 3]);
        // 20 unrelated misses overwrite the 16-entry ring.
        let filler: Vec<u64> = (100..120).collect();
        run(&mut g, &filler);
        let issued = run(&mut g, &[1]);
        assert!(
            issued.is_empty(),
            "history of 1 was overwritten: {issued:?}"
        );
    }

    #[test]
    fn prefetch_hits_do_not_retrain() {
        let mut g = Ghb::new(GhbConfig::default());
        let mut sink = CollectSink::new();
        g.on_trigger(
            &TriggerEvent::prefetch_hit(Pc::new(0), LineAddr::new(1)),
            &mut sink,
        );
        assert_eq!(g.seq, 0, "classic GHB records misses only");
    }

    #[test]
    fn chain_walk_counts_live_occurrences() {
        let mut g = Ghb::new(GhbConfig {
            entries: 64,
            degree: 1,
        });
        run(&mut g, &[7, 1, 7, 2, 7, 3]);
        assert_eq!(g.chain_length(LineAddr::new(7)), 3);
        assert_eq!(g.chain_length(LineAddr::new(1)), 1);
        assert_eq!(g.chain_length(LineAddr::new(99)), 0);
        // Overwriting the ring truncates chains.
        let filler: Vec<u64> = (100..170).collect();
        run(&mut g, &filler);
        assert_eq!(g.chain_length(LineAddr::new(7)), 0);
    }

    #[test]
    fn index_is_pruned_to_live_entries() {
        let mut g = Ghb::new(GhbConfig {
            entries: 8,
            degree: 1,
        });
        let lines: Vec<u64> = (0..200).collect();
        run(&mut g, &lines);
        assert!(
            g.index.len() <= 8 * 4 + 8,
            "index must stay bounded: {}",
            g.index.len()
        );
    }
}
