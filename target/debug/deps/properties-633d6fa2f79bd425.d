/root/repo/target/debug/deps/properties-633d6fa2f79bd425.d: crates/mem/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-633d6fa2f79bd425.rmeta: crates/mem/tests/properties.rs Cargo.toml

crates/mem/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
