/root/repo/target/debug/deps/domino_bench-01785ab8e2831366.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdomino_bench-01785ab8e2831366.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
