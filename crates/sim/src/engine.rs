//! Trace-driven coverage engine — the paper's trace-based methodology
//! (§IV-C): in-order trace, no timing, prefetchers trained on the L1-D
//! miss sequence, prefetching into a 32-block buffer near the L1-D.
//!
//! For every access the engine consults the L1; on an L1 miss it checks
//! the prefetch buffer. A buffer hit is a **covered** miss and a
//! `PrefetchHit` triggering event; a buffer miss is an **uncovered** miss
//! and a `Miss` triggering event. Prefetched blocks that are never hit
//! before being evicted or discarded are **overpredictions**, normalised
//! against baseline misses exactly as in Figures 11 and 13.
//!
//! Note the L1's behaviour is identical with and without a prefetcher:
//! prefetches fill only the buffer, and a block enters the L1 on its
//! demand access either way — so "baseline misses" can be counted in the
//! same run.

use domino_mem::cache::SetAssocCache;
use domino_mem::interface::{CollectSink, Prefetcher, TriggerBatch, TriggerEvent};
use domino_mem::prefetch_buffer::{InsertOutcome, PrefetchBuffer};
use domino_sequitur::Histogram;
use domino_telemetry::{CounterSink, Telemetry, DISTANCE_BOUNDS};
use domino_trace::addr::{LineAddr, Pc, LINE_BYTES};
use domino_trace::event::AccessEvent;
use domino_trace::stream::{EventSource, TraceFileError};

use crate::batch::{L1Lanes, TriggerLanes};
use crate::config::SystemConfig;
use crate::scratch;

/// Result of a coverage run.
#[derive(Debug, Clone)]
pub struct CoverageReport {
    /// Prefetcher display name.
    pub name: String,
    /// Accesses processed.
    pub accesses: u64,
    /// L1 hits (invisible to the prefetcher).
    pub l1_hits: u64,
    /// Demand misses in the baseline sense (buffer hits + real misses).
    pub baseline_misses: u64,
    /// Misses eliminated by prefetching (buffer hits).
    pub covered: u64,
    /// Read-only subset of `baseline_misses` (the paper's Figure 1 is
    /// *read* miss coverage).
    pub read_misses: u64,
    /// Read-only subset of `covered`.
    pub read_covered: u64,
    /// Prefetch requests issued.
    pub prefetches_issued: u64,
    /// Prefetched blocks never used (evicted, discarded, or left over).
    pub overpredictions: u64,
    /// Metadata blocks read from memory.
    pub meta_read_blocks: u64,
    /// Metadata blocks written to memory.
    pub meta_write_blocks: u64,
    /// Lengths of runs of consecutive covered misses ("streams",
    /// Figure 2's definition).
    pub stream_lengths: Histogram,
    /// Sum of `delay_trips` over stream-opening prefetches, for the
    /// Figure 6 timeliness comparison.
    pub first_prefetch_trips: u64,
    /// Number of stream-opening prefetches (delay-trip denominators).
    pub first_prefetch_count: u64,
}

impl CoverageReport {
    /// Covered fraction of baseline misses.
    pub fn coverage(&self) -> f64 {
        if self.baseline_misses == 0 {
            0.0
        } else {
            self.covered as f64 / self.baseline_misses as f64
        }
    }

    /// Covered fraction of *read* misses (Figure 1's metric; writes are a
    /// small minority in the workload models, so this tracks
    /// [`CoverageReport::coverage`] closely).
    pub fn read_coverage(&self) -> f64 {
        if self.read_misses == 0 {
            0.0
        } else {
            self.read_covered as f64 / self.read_misses as f64
        }
    }

    /// Uncovered fraction.
    pub fn uncovered(&self) -> f64 {
        1.0 - self.coverage()
    }

    /// Overpredictions normalised to baseline misses (may exceed 1).
    pub fn overprediction_rate(&self) -> f64 {
        if self.baseline_misses == 0 {
            0.0
        } else {
            self.overpredictions as f64 / self.baseline_misses as f64
        }
    }

    /// Mean length of covered runs (Figure 2).
    pub fn mean_stream_length(&self) -> f64 {
        self.stream_lengths.mean()
    }

    /// Mean serial metadata round trips before a stream's first prefetch
    /// (Figure 6's timeliness argument: 2 for STMS, 1 for Domino).
    pub fn mean_first_prefetch_trips(&self) -> f64 {
        if self.first_prefetch_count == 0 {
            0.0
        } else {
            self.first_prefetch_trips as f64 / self.first_prefetch_count as f64
        }
    }

    /// Baseline demand traffic in bytes (for Figure 15 normalisation).
    pub fn demand_bytes(&self) -> u64 {
        self.baseline_misses * LINE_BYTES
    }

    /// Incorrect-prefetch traffic in bytes.
    pub fn incorrect_prefetch_bytes(&self) -> u64 {
        self.overpredictions * LINE_BYTES
    }

    /// Metadata read traffic in bytes.
    pub fn metadata_read_bytes(&self) -> u64 {
        self.meta_read_blocks * LINE_BYTES
    }

    /// Metadata write traffic in bytes.
    pub fn metadata_write_bytes(&self) -> u64 {
        self.meta_write_blocks * LINE_BYTES
    }
}

/// Runs `prefetcher` over `trace` under the paper's methodology.
///
/// Takes a borrowed slice so one generated trace can be shared across
/// many runs (and across the threads of [`crate::exec`]).
pub fn run_coverage(
    system: &SystemConfig,
    trace: &[AccessEvent],
    prefetcher: &mut dyn Prefetcher,
) -> CoverageReport {
    run_coverage_warmed(system, trace, prefetcher, 0)
}

/// [`run_coverage`] with a warmup prefix: the first `warmup` accesses
/// train the caches and the prefetcher but are excluded from every
/// metric — the paper's SimFlex methodology of measuring from warmed
/// checkpoints (§IV-C).
pub fn run_coverage_warmed(
    system: &SystemConfig,
    trace: &[AccessEvent],
    prefetcher: &mut dyn Prefetcher,
    warmup: usize,
) -> CoverageReport {
    run_coverage_observed(system, trace, prefetcher, warmup, &mut Telemetry::off())
}

/// Emits one cumulative telemetry snapshot row of a coverage run. The
/// column order here is the schema of coverage epoch rows; it must stay
/// identical across every epoch of a run.
fn emit_coverage_row(
    row: &mut dyn CounterSink,
    report: &CoverageReport,
    l1: &SetAssocCache,
    buffer: &PrefetchBuffer,
    prefetcher: &dyn Prefetcher,
) {
    row.counter("accesses", report.accesses);
    l1.emit_counters("l1", row);
    row.counter("baseline_misses", report.baseline_misses);
    row.counter("covered", report.covered);
    row.counter("issued", report.prefetches_issued);
    row.counter("meta_read_blocks", report.meta_read_blocks);
    row.counter("meta_write_blocks", report.meta_write_blocks);
    buffer.emit_counters(row);
    prefetcher.emit_counters(row);
}

/// [`run_coverage_warmed`] with a telemetry handle: every access ticks
/// the epoch clock, every epoch boundary snapshots the cumulative
/// counters (engine metrics, L1, buffer, and the prefetcher's own
/// counters), and covered misses record their prefetch-to-use distance
/// in demand accesses. With a disabled handle this is exactly
/// [`run_coverage_warmed`] — one dead branch per access.
///
/// Unobserved runs take the batched structure-of-arrays hot path when
/// the effective [`crate::observe::batch_size`] is greater than one;
/// observed runs (epoch telemetry or flight recorder) always take the
/// scalar path, whose per-event hooks the observation machinery needs.
/// Both paths produce byte-identical reports.
pub fn run_coverage_observed(
    system: &SystemConfig,
    trace: &[AccessEvent],
    prefetcher: &mut dyn Prefetcher,
    warmup: usize,
    tel: &mut Telemetry,
) -> CoverageReport {
    let batch = crate::observe::batch_size();
    if batch > 1 && !tel.is_on() && !tel.has_tracer() {
        run_coverage_batched(system, trace, prefetcher, warmup, batch as usize)
    } else {
        run_coverage_scalar(system, trace, prefetcher, warmup, tel)
    }
}

/// [`run_coverage`] at an explicit batch size, ignoring the process-wide
/// knob — the entry point for batched-vs-scalar differential checks
/// (`batch = 1` forces the scalar loop).
pub fn run_coverage_with_batch(
    system: &SystemConfig,
    trace: &[AccessEvent],
    prefetcher: &mut dyn Prefetcher,
    warmup: usize,
    batch: u32,
) -> CoverageReport {
    if batch > 1 {
        run_coverage_batched(system, trace, prefetcher, warmup, batch as usize)
    } else {
        run_coverage_scalar(system, trace, prefetcher, warmup, &mut Telemetry::off())
    }
}

/// The scalar one-event-at-a-time loop (and the only loop that supports
/// telemetry and tracing).
fn run_coverage_scalar(
    system: &SystemConfig,
    trace: &[AccessEvent],
    prefetcher: &mut dyn Prefetcher,
    warmup: usize,
    tel: &mut Telemetry,
) -> CoverageReport {
    let dist_hist = tel.register_histogram("prefetch_to_use_distance", DISTANCE_BOUNDS);
    let mut l1 = scratch::cache(system.l1d);
    let mut buffer = scratch::buffer(system.prefetch_buffer_blocks);
    let mut sink = scratch::sink();
    prefetcher.reserve(trace.len());
    let mut report = CoverageReport {
        name: prefetcher.name().to_string(),
        accesses: 0,
        l1_hits: 0,
        baseline_misses: 0,
        covered: 0,
        read_misses: 0,
        read_covered: 0,
        prefetches_issued: 0,
        overpredictions: 0,
        meta_read_blocks: 0,
        meta_write_blocks: 0,
        stream_lengths: Histogram::fig12(),
        first_prefetch_trips: 0,
        first_prefetch_count: 0,
    };
    let mut run = 0u64;
    // Buffer statistics at the measurement boundary, subtracted from the
    // final counts so warmup overpredictions are not charged.
    let mut warmup_overpredictions = 0u64;
    let mut measuring = warmup == 0;
    for (i, &ev) in trace.iter().enumerate() {
        if !measuring && i >= warmup {
            measuring = true;
            warmup_overpredictions = buffer.stats().overpredictions();
        }
        if measuring {
            report.accesses += 1;
        }
        let line = ev.line();
        if l1.access(line) {
            if measuring {
                report.l1_hits += 1;
            }
            continue;
        }
        // The coverage engine never uses arrival times, so `ready_at`
        // carries the inserting access's index instead — the difference
        // on a hit is the prefetch-to-use distance in demand accesses.
        let taken = buffer.take(line);
        if let Some(entry) = taken {
            let distance = (i as f64 - entry.ready_at).max(0.0) as u64;
            tel.record(dist_hist, distance);
            if let Some(rec) = tel.tracer() {
                rec.demand_hit(i as u64, line.raw(), entry.stream, distance);
            }
        } else if tel.has_tracer() {
            // Probe the metadata before this event trains on the miss, so
            // the mispredicted / no-metadata split reflects what the
            // prefetcher knew when it failed to cover the line.
            let knows = prefetcher.knows_line(line);
            if let Some(rec) = tel.tracer() {
                rec.demand_miss(i as u64, line.raw(), knows);
            }
        }
        let covered = taken.is_some();
        if measuring {
            report.baseline_misses += 1;
            if ev.kind.is_read() {
                report.read_misses += 1;
            }
            if covered {
                report.covered += 1;
                if ev.kind.is_read() {
                    report.read_covered += 1;
                }
                run += 1;
            } else if run > 0 {
                report.stream_lengths.record(run);
                run = 0;
            }
        }
        let trigger = if covered {
            TriggerEvent::prefetch_hit(ev.pc, line)
        } else {
            TriggerEvent::miss(ev.pc, line)
        };
        l1.insert(line);
        sink.clear();
        prefetcher.on_trigger(&trigger, &mut *sink);
        match tel.tracer() {
            Some(rec) => {
                if sink.meta_read_blocks > 0 {
                    // The coverage engine is un-timed: the lookup begins
                    // and ends at the same access index.
                    rec.meta_start(i as u64, sink.meta_read_blocks);
                    rec.meta_end(i as u64, 0);
                }
                for &tag in &sink.replaced {
                    rec.eit_replace(i as u64, tag.raw());
                }
                for &stream in &sink.discarded_streams {
                    buffer.discard_stream_with(stream, |e| {
                        rec.evict_unused(i as u64, e.line.raw(), e.stream);
                    });
                }
            }
            None => {
                for &stream in &sink.discarded_streams {
                    buffer.discard_stream(stream);
                }
            }
        }
        let mut first_of_event = true;
        for req in &sink.requests {
            if measuring {
                report.prefetches_issued += 1;
                if first_of_event && req.delay_trips > 0 {
                    // A request needing metadata trips in this event opens
                    // or re-points a stream; track its timeliness.
                    report.first_prefetch_trips += u64::from(req.delay_trips);
                    report.first_prefetch_count += 1;
                    first_of_event = false;
                }
            }
            if let Some(rec) = tel.tracer() {
                rec.issue(i as u64, req.line.raw(), req.stream, req.delay_trips);
            }
            if !l1.contains(req.line) {
                let outcome = buffer.insert(req.line, i as f64, req.stream);
                if let Some(rec) = tel.tracer() {
                    match outcome {
                        InsertOutcome::Inserted => {
                            rec.fill(i as u64, req.line.raw(), req.stream, i as u64);
                        }
                        InsertOutcome::Duplicate => {
                            rec.drop_unbuffered(i as u64, req.line.raw(), req.stream, 1);
                        }
                        InsertOutcome::Evicted(victim) => {
                            rec.evict_unused(i as u64, victim.line.raw(), victim.stream);
                            rec.fill(i as u64, req.line.raw(), req.stream, i as u64);
                        }
                    }
                }
            } else if let Some(rec) = tel.tracer() {
                // Already in the L1: the engine drops the request.
                rec.drop_unbuffered(i as u64, req.line.raw(), req.stream, 2);
            }
        }
        if measuring {
            report.meta_read_blocks += sink.meta_read_blocks;
            report.meta_write_blocks += sink.meta_write_blocks;
        }
        if tel.tick() {
            tel.snapshot(|row| emit_coverage_row(row, &report, &l1, &buffer, &*prefetcher));
        }
    }
    tel.flush(|row| emit_coverage_row(row, &report, &l1, &buffer, &*prefetcher));
    if run > 0 {
        report.stream_lengths.record(run);
    }
    let stats = buffer.stats();
    // Everything still sitting in the buffer at the end was never used;
    // warmup-era overpredictions are excluded.
    report.overpredictions =
        (stats.overpredictions() - warmup_overpredictions) + buffer.len() as u64;
    report
}

/// FNV-1a fold step for the decision digest.
fn fold(h: &mut u64, v: u64) {
    *h = (*h ^ v).wrapping_mul(0x0000_0100_0000_01B3);
}

/// FNV-1a offset basis — the digest's starting value.
const DIGEST_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// The coverage engine's [`TriggerBatch`]: one staged chunk's compacted
/// triggering events (L1 misses only — hits never reach the prefetcher),
/// resolved against the prefetch buffer one pull at a time.
struct CoverageDriver<'a> {
    l1: &'a SetAssocCache,
    lanes: &'a L1Lanes,
    buffer: &'a mut PrefetchBuffer,
    report: &'a mut CoverageReport,
    run: &'a mut u64,
    measuring: bool,
    /// Absolute trace indices of the chunk's triggering events.
    idx: &'a [u32],
    /// Demand lines, PCs, and read flags, parallel to `idx`.
    lines: &'a [LineAddr],
    pcs: &'a [Pc],
    reads: &'a [bool],
    cursor: usize,
    /// When present, every metadata decision — trigger kinds, issued
    /// prefetches, stream discards, replacement victims, metadata
    /// traffic — folds into this FNV accumulator in replay order.
    digest: Option<&'a mut u64>,
}

impl CoverageDriver<'_> {
    /// Applies trigger `k`'s sink outputs: stream discards, buffer
    /// fills gated on as-of-event-`k` L1 membership, and metadata
    /// traffic — the exact tail of the scalar event loop.
    fn apply(&mut self, k: usize, sink: &CollectSink) {
        let i = self.idx[k];
        if let Some(h) = self.digest.as_deref_mut() {
            for &stream in &sink.discarded_streams {
                fold(h, 0x10);
                fold(h, u64::from(stream));
            }
            for req in &sink.requests {
                fold(h, 0x20);
                fold(h, req.line.raw());
                fold(h, u64::from(req.delay_trips));
                fold(h, req.stream.map_or(u64::MAX, u64::from));
            }
            for &line in &sink.replaced {
                fold(h, 0x30);
                fold(h, line.raw());
            }
            fold(h, sink.meta_read_blocks);
            fold(h, sink.meta_write_blocks);
        }
        for &stream in &sink.discarded_streams {
            self.buffer.discard_stream(stream);
        }
        let mut first_of_event = true;
        for req in &sink.requests {
            if self.measuring {
                self.report.prefetches_issued += 1;
                if first_of_event && req.delay_trips > 0 {
                    self.report.first_prefetch_trips += u64::from(req.delay_trips);
                    self.report.first_prefetch_count += 1;
                    first_of_event = false;
                }
            }
            if !self.lanes.contains_at(self.l1, i, req.line) {
                self.buffer.insert(req.line, f64::from(i), req.stream);
            }
        }
        if self.measuring {
            self.report.meta_read_blocks += sink.meta_read_blocks;
            self.report.meta_write_blocks += sink.meta_write_blocks;
        }
    }
}

impl TriggerBatch for CoverageDriver<'_> {
    fn pending_lines(&self) -> &[LineAddr] {
        &self.lines[self.cursor..]
    }

    fn pending_pcs(&self) -> &[Pc] {
        &self.pcs[self.cursor..]
    }

    fn next(&mut self, sink: &mut CollectSink) -> Option<TriggerEvent> {
        if self.cursor > 0 {
            self.apply(self.cursor - 1, sink);
        }
        sink.clear();
        if self.cursor == self.idx.len() {
            return None;
        }
        let k = self.cursor;
        self.cursor += 1;
        let line = self.lines[k];
        let covered = self.buffer.take(line).is_some();
        if self.measuring {
            self.report.baseline_misses += 1;
            if self.reads[k] {
                self.report.read_misses += 1;
            }
            if covered {
                self.report.covered += 1;
                if self.reads[k] {
                    self.report.read_covered += 1;
                }
                *self.run += 1;
            } else if *self.run > 0 {
                self.report.stream_lengths.record(*self.run);
                *self.run = 0;
            }
        }
        if let Some(h) = self.digest.as_deref_mut() {
            fold(h, u64::from(covered));
            fold(h, self.pcs[k].raw());
            fold(h, line.raw());
        }
        Some(if covered {
            TriggerEvent::prefetch_hit(self.pcs[k], line)
        } else {
            TriggerEvent::miss(self.pcs[k], line)
        })
    }
}

/// An incremental coverage run: the batched structure-of-arrays engine
/// ([`L1Lanes::stage_coverage`] pre-pass, [`CoverageDriver`] replay,
/// [`Prefetcher::train_predict_batch`]) packaged as a resumable session
/// that accepts the trace in arbitrary increments.
///
/// Any partition of the trace into [`CoverageSession::step`] calls
/// produces a report byte-identical to the scalar engine — the same
/// property the `domino-check` batched-vs-scalar oracle enforces for
/// [`run_coverage_with_batch`] — so callers that receive a stream in
/// pieces (the `domino-service` metadata service feeds one session per
/// tenant, one request batch at a time) never need to align their chunk
/// boundaries with anything.
///
/// The session carries the per-run engine state (L1 model, prefetch
/// buffer, staging lanes) but **not** the prefetcher, which is passed to
/// every `step`; the prefetcher is owned by the caller so it can be
/// probed ([`Prefetcher::knows_line`]) or sized
/// ([`Prefetcher::footprint_bytes`]) between steps.
pub struct CoverageSession {
    l1: scratch::Pooled<SetAssocCache>,
    buffer: scratch::Pooled<PrefetchBuffer>,
    sink: scratch::Pooled<CollectSink>,
    lanes: L1Lanes,
    trig: TriggerLanes,
    report: CoverageReport,
    run: u64,
    warmup: usize,
    warmup_overpredictions: u64,
    /// Accesses consumed so far — the absolute trace index the next
    /// [`CoverageSession::step`] resumes from.
    seen: usize,
    /// Decision digest accumulator ([`CoverageSession::enable_digest`]).
    digest: Option<u64>,
}

impl CoverageSession {
    /// Creates a session for one run of `name` under `system`, with the
    /// first `warmup` accesses excluded from metrics as in
    /// [`run_coverage_warmed`].
    pub fn new(system: &SystemConfig, name: &str, warmup: usize) -> Self {
        CoverageSession {
            l1: scratch::cache(system.l1d),
            buffer: scratch::buffer(system.prefetch_buffer_blocks),
            sink: scratch::sink(),
            lanes: L1Lanes::new(),
            trig: TriggerLanes::new(),
            report: CoverageReport {
                name: name.to_string(),
                accesses: 0,
                l1_hits: 0,
                baseline_misses: 0,
                covered: 0,
                read_misses: 0,
                read_covered: 0,
                prefetches_issued: 0,
                overpredictions: 0,
                meta_read_blocks: 0,
                meta_write_blocks: 0,
                stream_lengths: Histogram::fig12(),
                first_prefetch_trips: 0,
                first_prefetch_count: 0,
            },
            run: 0,
            warmup,
            warmup_overpredictions: 0,
            seen: 0,
            digest: None,
        }
    }

    /// Turns on the decision digest: an order-sensitive FNV-1a fold over
    /// every metadata decision of the run — trigger kinds, issued
    /// prefetches (line, delay trips, stream), stream discards,
    /// replacement victims, and metadata traffic. Two runs that made
    /// identical decisions in identical order have equal digests
    /// regardless of how their traces were partitioned into steps; the
    /// service-equivalence oracle leans on exactly that.
    pub fn enable_digest(&mut self) {
        self.digest = Some(DIGEST_BASIS);
    }

    /// The digest accumulated so far (the FNV basis when no decision has
    /// folded yet; 0 if the digest was never enabled).
    pub fn digest(&self) -> u64 {
        self.digest.unwrap_or(0)
    }

    /// Accesses consumed so far — the next step resumes here.
    pub fn processed(&self) -> usize {
        self.seen
    }

    /// Metrics accumulated so far. `overpredictions` is only final after
    /// [`CoverageSession::finish`] (leftover buffered prefetches count).
    pub fn report(&self) -> &CoverageReport {
        &self.report
    }

    /// Skips forward to absolute trace index `index` without processing
    /// the events in between — the service's accounting for request
    /// batches lost to load shedding. The skipped events are simply
    /// never replayed (the L1 and metadata keep their pre-gap state), so
    /// a skipping run is *not* comparable to a contiguous one.
    ///
    /// # Panics
    ///
    /// Panics if `index` would rewind the session.
    pub fn skip_to(&mut self, index: usize) {
        assert!(
            index >= self.seen,
            "coverage session cannot rewind: at {}, asked for {}",
            self.seen,
            index
        );
        self.seen = index;
    }

    /// Processes `trace[processed()..end]` as staged chunks, splitting at
    /// the warmup boundary so `measuring` stays constant within a chunk
    /// (the scalar loop flips mid-stream).
    pub fn step(&mut self, prefetcher: &mut dyn Prefetcher, trace: &[AccessEvent], end: usize) {
        let n = end.min(trace.len());
        if self.seen < n {
            self.feed(prefetcher, &trace[self.seen..n]);
        }
    }

    /// Processes one streamed chunk whose first event sits at the
    /// session's current absolute position ([`CoverageSession::processed`]),
    /// splitting at the warmup boundary. This is the out-of-core twin of
    /// [`CoverageSession::step`]: the chunk need not be a window into any
    /// materialized trace, and because the session is partition-invariant
    /// the result is byte-identical to a cached-slice run over the same
    /// events no matter how the stream was chunked.
    pub fn feed(&mut self, prefetcher: &mut dyn Prefetcher, chunk: &[AccessEvent]) {
        let mut off = 0usize;
        while off < chunk.len() {
            let s = self.seen;
            let mut len = chunk.len() - off;
            if s < self.warmup && s + len > self.warmup {
                len = self.warmup - s;
            }
            self.feed_chunk(prefetcher, &chunk[off..off + len], s);
            off += len;
            self.seen = s + len;
        }
    }

    /// One staged chunk whose first event is absolute index `s`;
    /// `measuring` is constant across it.
    fn feed_chunk(&mut self, prefetcher: &mut dyn Prefetcher, chunk: &[AccessEvent], s: usize) {
        let measuring = s >= self.warmup;
        if measuring && s == self.warmup && self.warmup > 0 {
            self.warmup_overpredictions = self.buffer.stats().overpredictions();
        }
        let hits = self
            .lanes
            .stage_coverage_at(&mut self.l1, chunk, s as u32, &mut self.trig);
        if measuring {
            self.report.accesses += chunk.len() as u64;
            self.report.l1_hits += hits;
        }
        let mut driver = CoverageDriver {
            l1: &self.l1,
            lanes: &self.lanes,
            buffer: &mut self.buffer,
            report: &mut self.report,
            run: &mut self.run,
            measuring,
            idx: &self.trig.idx,
            lines: &self.trig.lines,
            pcs: &self.trig.pcs,
            reads: &self.trig.reads,
            cursor: 0,
            digest: self.digest.as_mut(),
        };
        prefetcher.train_predict_batch(&mut driver, &mut self.sink);
        debug_assert_eq!(
            driver.cursor,
            self.trig.len(),
            "train_predict_batch must drain the batch"
        );
    }

    /// Closes the run: records the trailing covered-run length and
    /// charges leftover buffered prefetches as overpredictions, exactly
    /// like the scalar engine's epilogue.
    pub fn finish(mut self) -> CoverageReport {
        if self.run > 0 {
            self.report.stream_lengths.record(self.run);
        }
        let stats = self.buffer.stats();
        self.report.overpredictions =
            (stats.overpredictions() - self.warmup_overpredictions) + self.buffer.len() as u64;
        self.report
    }
}

/// Runs a whole trace through a [`CoverageSession`] with the decision
/// digest enabled, stepping in `batch`-sized increments, and returns the
/// report plus digest — the single-tenant reference side of the
/// service-equivalence oracle.
pub fn run_coverage_session(
    system: &SystemConfig,
    trace: &[AccessEvent],
    prefetcher: &mut dyn Prefetcher,
    batch: usize,
) -> (CoverageReport, u64) {
    let mut session = CoverageSession::new(system, prefetcher.name(), 0);
    session.enable_digest();
    prefetcher.reserve(trace.len());
    let step = batch.max(1);
    let n = trace.len();
    let mut s = 0usize;
    while s < n {
        let e = (s + step).min(n);
        session.step(prefetcher, trace, e);
        s = e;
    }
    let digest = session.digest();
    (session.finish(), digest)
}

/// The batched structure-of-arrays loop: one fused pre-pass per
/// fixed-size chunk ([`L1Lanes::stage_coverage`]) advances the L1,
/// compacts the misses into trigger lanes, and counts the hits, then
/// the whole chunk goes to the prefetcher via
/// [`Prefetcher::train_predict_batch`]. Byte-identical to
/// [`run_coverage_scalar`] by construction; the `domino-check`
/// batched-vs-scalar oracle enforces it. Implemented on
/// [`CoverageSession`], which owns the chunk mechanics.
fn run_coverage_batched(
    system: &SystemConfig,
    trace: &[AccessEvent],
    prefetcher: &mut dyn Prefetcher,
    warmup: usize,
    batch: usize,
) -> CoverageReport {
    let mut session = CoverageSession::new(system, prefetcher.name(), warmup);
    prefetcher.reserve(trace.len());
    let n = trace.len();
    let mut s = 0usize;
    while s < n {
        let e = (s + batch).min(n);
        session.step(prefetcher, trace, e);
        s = e;
    }
    session.finish()
}

/// The batched coverage loop over a streaming [`EventSource`]: identical
/// decision sequence to [`run_coverage_with_batch`] on the materialized
/// trace (the session is partition-invariant, and staging is offset-aware
/// via [`L1Lanes::stage_coverage_at`]), but only one source chunk of
/// events is resident at a time. The streaming parity oracle in
/// `domino-check` holds this byte-identical to the cached path for every
/// roster system.
///
/// # Errors
///
/// Propagates decode/I/O errors from the source.
pub fn run_coverage_streamed(
    system: &SystemConfig,
    source: &mut dyn EventSource,
    prefetcher: &mut dyn Prefetcher,
    warmup: usize,
    batch: usize,
) -> Result<CoverageReport, TraceFileError> {
    let mut session = CoverageSession::new(system, prefetcher.name(), warmup);
    prefetcher.reserve(source.total_events() as usize);
    let step = batch.max(1);
    let mut chunk = Vec::new();
    loop {
        let n = source.next_chunk(&mut chunk)?;
        if n == 0 {
            break;
        }
        // Re-split at batch granularity so the staged chunk size matches
        // the cached batched run exactly (any split is byte-identical;
        // matching sizes keeps the performance profile comparable too).
        let mut off = 0usize;
        while off < n {
            let e = (off + step).min(n);
            session.feed(prefetcher, &chunk[off..e]);
            off = e;
        }
    }
    Ok(session.finish())
}

/// Streamed twin of [`run_coverage_session`]: digest-enabled, no warmup,
/// `batch`-sized steps — the streaming side of the parity oracle.
///
/// # Errors
///
/// Propagates decode/I/O errors from the source.
pub fn run_coverage_streamed_session(
    system: &SystemConfig,
    source: &mut dyn EventSource,
    prefetcher: &mut dyn Prefetcher,
    batch: usize,
) -> Result<(CoverageReport, u64), TraceFileError> {
    let mut session = CoverageSession::new(system, prefetcher.name(), 0);
    session.enable_digest();
    prefetcher.reserve(source.total_events() as usize);
    let step = batch.max(1);
    let mut chunk = Vec::new();
    loop {
        let n = source.next_chunk(&mut chunk)?;
        if n == 0 {
            break;
        }
        let mut off = 0usize;
        while off < n {
            let e = (off + step).min(n);
            session.feed(prefetcher, &chunk[off..e]);
            off = e;
        }
    }
    let digest = session.digest();
    Ok((session.finish(), digest))
}

/// Convenience: the baseline miss sequence (line addresses, reads and
/// writes) after L1 filtering — the input for Sequitur/oracle analyses
/// and the lookup-depth studies.
pub fn baseline_miss_sequence(system: &SystemConfig, trace: &[AccessEvent]) -> Vec<u64> {
    let mut l1 = scratch::cache(system.l1d);
    let mut out = Vec::new();
    for ev in trace {
        let line = ev.line();
        if !l1.access(line) {
            l1.insert(line);
            out.push(line.raw());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_mem::interface::NoPrefetcher;
    use domino_prefetchers::{Stms, TemporalConfig};
    use domino_trace::addr::{Addr, Pc};
    use domino_trace::event::AccessEvent;
    use domino_trace::workload::catalog;

    fn system() -> SystemConfig {
        SystemConfig::paper()
    }

    fn synthetic_repeating(n_reps: usize, len: u64) -> Vec<AccessEvent> {
        let mut out = Vec::new();
        for _ in 0..n_reps {
            for i in 0..len {
                // Spread lines so they always miss a 64 KB L1? No: keep a
                // footprint larger than L1 (1024 sets * 2 ways): stride by
                // lines over a large region.
                let line = i * 131 + 7;
                out.push(AccessEvent::read(Pc::new(4), Addr::new(line << 6)));
            }
        }
        out
    }

    #[test]
    fn baseline_has_zero_coverage() {
        let trace = synthetic_repeating(3, 4096);
        let mut p = NoPrefetcher;
        let r = run_coverage(&system(), &trace, &mut p);
        assert_eq!(r.covered, 0);
        assert_eq!(r.coverage(), 0.0);
        assert_eq!(r.overpredictions, 0);
        assert!(r.baseline_misses > 0);
    }

    #[test]
    fn stms_covers_repeating_sequences() {
        // Footprint 4096 lines * 131 stride: far beyond L1 → every access
        // misses; the sequence repeats → STMS should cover plenty.
        let trace = synthetic_repeating(6, 4096);
        let mut p = Stms::new(TemporalConfig {
            sampling_probability: 1.0,
            stream_end_detection: false,
            ..TemporalConfig::default()
        });
        let r = run_coverage(&system(), &trace, &mut p);
        assert!(
            r.coverage() > 0.5,
            "coverage {} of {} misses",
            r.coverage(),
            r.baseline_misses
        );
        assert!(r.mean_stream_length() > 1.0);
        assert!(r.meta_read_blocks > 0);
    }

    #[test]
    fn l1_filters_hot_lines() {
        // A tiny loop fits in the L1: after the first pass, no misses.
        let mut trace = Vec::new();
        for _ in 0..10 {
            for i in 0..16u64 {
                trace.push(AccessEvent::read(Pc::new(4), Addr::new(i * 64)));
            }
        }
        let mut p = NoPrefetcher;
        let r = run_coverage(&system(), &trace, &mut p);
        assert_eq!(r.baseline_misses, 16);
        assert_eq!(r.l1_hits, 9 * 16);
    }

    #[test]
    fn baseline_miss_counts_match_with_and_without_prefetcher() {
        let spec = catalog::oltp();
        let trace: Vec<_> = spec.generator(11).take(30_000).collect();
        let mut none = NoPrefetcher;
        let base = run_coverage(&system(), &trace, &mut none);
        let mut stms = Stms::new(TemporalConfig::default());
        let with = run_coverage(&system(), &trace, &mut stms);
        assert_eq!(
            base.baseline_misses, with.baseline_misses,
            "prefetching must not perturb the baseline miss count"
        );
    }

    #[test]
    fn miss_sequence_matches_engine_count() {
        let spec = catalog::web_search();
        let trace: Vec<_> = spec.generator(5).take(20_000).collect();
        let seq = baseline_miss_sequence(&system(), &trace);
        let mut p = NoPrefetcher;
        let r = run_coverage(&system(), &trace, &mut p);
        assert_eq!(seq.len() as u64, r.baseline_misses);
    }

    #[test]
    fn read_coverage_tracks_overall_coverage() {
        let spec = catalog::oltp();
        let trace: Vec<_> = spec.generator(4).take(50_000).collect();
        let mut p = Stms::new(TemporalConfig::default());
        let r = run_coverage(&system(), &trace, &mut p);
        assert!(r.read_misses > 0 && r.read_misses < r.baseline_misses);
        assert!(
            (r.read_coverage() - r.coverage()).abs() < 0.05,
            "read {:.3} vs overall {:.3}",
            r.read_coverage(),
            r.coverage()
        );
    }

    #[test]
    fn warmup_excludes_cold_metrics() {
        let spec = catalog::oltp();
        let trace: Vec<_> = spec.generator(21).take(40_000).collect();
        let mut cold = Stms::new(TemporalConfig::default());
        let cold_r = run_coverage(&system(), &trace, &mut cold);
        let mut warm = Stms::new(TemporalConfig::default());
        let warm_r = super::run_coverage_warmed(&system(), &trace, &mut warm, 10_000);
        // The warmed run measures fewer accesses but higher coverage: the
        // cold-start region (empty tables, first touches) is excluded.
        assert!(warm_r.accesses < cold_r.accesses);
        assert!(
            warm_r.coverage() > cold_r.coverage(),
            "warmed {:.3} vs cold {:.3}",
            warm_r.coverage(),
            cold_r.coverage()
        );
    }

    #[test]
    fn warmup_longer_than_trace_measures_nothing() {
        let spec = catalog::oltp();
        let trace: Vec<_> = spec.generator(21).take(1_000).collect();
        let mut p = NoPrefetcher;
        let r = super::run_coverage_warmed(&system(), &trace, &mut p, 5_000);
        assert_eq!(r.accesses, 0);
        assert_eq!(r.baseline_misses, 0);
    }

    #[test]
    fn batched_coverage_is_byte_identical_to_scalar() {
        let spec = catalog::oltp();
        let trace: Vec<_> = spec.generator(17).take(30_000).collect();
        for warmup in [0usize, 10_000, 29_999] {
            let mut scalar_p = Stms::new(TemporalConfig::default());
            let scalar = run_coverage_with_batch(&system(), &trace, &mut scalar_p, warmup, 1);
            for batch in [2u32, 7, 64, 4096] {
                let mut p = Stms::new(TemporalConfig::default());
                let batched = run_coverage_with_batch(&system(), &trace, &mut p, warmup, batch);
                assert_eq!(
                    format!("{scalar:?}"),
                    format!("{batched:?}"),
                    "batch {batch}, warmup {warmup}"
                );
            }
        }
    }

    #[test]
    fn session_steps_of_any_size_match_scalar() {
        let spec = catalog::oltp();
        let trace: Vec<_> = spec.generator(23).take(20_000).collect();
        let mut scalar_p = Stms::new(TemporalConfig::default());
        let scalar = run_coverage_with_batch(&system(), &trace, &mut scalar_p, 0, 1);
        // Feed the session in ragged increments (growing, then tiny).
        let mut p = Stms::new(TemporalConfig::default());
        let mut session = CoverageSession::new(&system(), p.name(), 0);
        p.reserve(trace.len());
        let mut end = 0usize;
        let mut stride = 1usize;
        while end < trace.len() {
            end = (end + stride).min(trace.len());
            session.step(&mut p, &trace, end);
            assert_eq!(session.processed(), end);
            stride = (stride * 3 + 1) % 977 + 1;
        }
        let report = session.finish();
        assert_eq!(format!("{scalar:?}"), format!("{report:?}"));
    }

    #[test]
    fn session_digest_is_partition_invariant() {
        let spec = catalog::web_search();
        let trace: Vec<_> = spec.generator(13).take(15_000).collect();
        let mut digests = Vec::new();
        let mut reports = Vec::new();
        for batch in [1usize, 7, 64, 4096] {
            let mut p = Stms::new(TemporalConfig::default());
            let (report, digest) = run_coverage_session(&system(), &trace, &mut p, batch);
            digests.push(digest);
            reports.push(format!("{report:?}"));
        }
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "digests diverge across partitions: {digests:?}"
        );
        assert!(reports.windows(2).all(|w| w[0] == w[1]));
        // The digest actually covers decisions: a different trace (or a
        // truncated one) must not collide.
        let mut p = Stms::new(TemporalConfig::default());
        let (_, shorter) = run_coverage_session(&system(), &trace[..14_000], &mut p, 64);
        assert_ne!(shorter, digests[0]);
    }

    #[test]
    fn session_skip_to_jumps_forward() {
        let spec = catalog::oltp();
        let trace: Vec<_> = spec.generator(2).take(4_000).collect();
        let mut p = NoPrefetcher;
        let mut session = CoverageSession::new(&system(), p.name(), 0);
        session.step(&mut p, &trace, 1_000);
        session.skip_to(3_000);
        session.step(&mut p, &trace, trace.len());
        assert_eq!(session.processed(), 4_000);
        let report = session.finish();
        // Only the non-skipped 2000 events were measured.
        assert_eq!(report.accesses, 2_000);
    }

    #[test]
    fn stms_beats_nothing_on_oltp() {
        let spec = catalog::oltp();
        let trace: Vec<_> = spec.generator(3).take(60_000).collect();
        let mut stms = Stms::new(TemporalConfig::default());
        let r = run_coverage(&system(), &trace, &mut stms);
        assert!(r.coverage() > 0.1, "OLTP coverage {}", r.coverage());
    }
}
