//! The acceptance-scale run: one thousand concurrent tenant streams
//! through the sharded service under the deterministic load generator,
//! every tenant bit-identical to its independent single-tenant run.
//!
//! This is deliberately the same shape as `domino-serve --smoke`, but
//! checked exhaustively: per-tenant decision digests and coverage
//! reports are compared against a freshly computed reference for *all*
//! tenants, not a sample. Stms keeps per-tenant metadata proportional
//! to the short streams, so a thousand resident sessions stay cheap.

use domino_service::{run_load, tenant_stream, LoadPlan, MetadataService, ServiceConfig};
use domino_sim::engine::run_coverage_session;
use domino_sim::roster::System;
use domino_sim::SystemConfig;

#[test]
fn thousand_tenants_complete_bit_identically() {
    let plan = LoadPlan {
        tenants: 1_000,
        events_per_tenant: 120,
        request_batch: 32,
        clients: 4,
        seed: 0xD0_5E,
        system: System::Stms,
        base_events: 50_000,
        trace_file: None,
    };
    let cfg = ServiceConfig {
        shards: 4,
        queue_depth: 64,
        degree: 4,
        ..ServiceConfig::default()
    };
    let degree = cfg.degree;
    let service = MetadataService::start(cfg);
    let load = {
        let client = service.client();
        run_load(&client, &plan)
    };
    let result = service.shutdown();

    // Every stream completes: no sheds under the blocking policy, every
    // offered event served, one final per tenant, none evicted.
    assert_eq!(load.shed_rejections, 0);
    assert_eq!(result.total_shed(), 0);
    assert_eq!(result.total_events(), load.events_offered);
    assert_eq!(result.finals().count(), plan.tenants as usize);
    assert_eq!(
        result.total_batches(),
        load.submitted_batches,
        "every accepted batch was served"
    );

    // Exhaustive per-tenant equivalence against single-tenant runs.
    for tenant in 0..plan.tenants {
        let fin = result.tenant(tenant).expect("exactly one final per tenant");
        assert!(!fin.evicted);
        assert_eq!(fin.gap_events, 0);
        assert_eq!(fin.processed, plan.events_per_tenant);
        let slice = tenant_stream(&plan, tenant);
        let mut reference = plan.system.build(degree);
        let (ref_report, ref_digest) = run_coverage_session(
            &SystemConfig::paper(),
            slice.events(),
            reference.as_mut(),
            64,
        );
        assert_eq!(
            fin.digest, ref_digest,
            "tenant {tenant}: decision digest diverged from single-tenant run"
        );
        assert_eq!(
            format!("{:?}", fin.report),
            format!("{ref_report:?}"),
            "tenant {tenant}: coverage report diverged from single-tenant run"
        );
    }

    // Shard sanity: tenants spread across all shards, and the per-shard
    // event counts add up.
    let spread = result
        .shards
        .iter()
        .filter(|s| !s.finals.is_empty())
        .count();
    assert_eq!(spread, 4, "tenant hashing left a shard idle");
    let per_shard: u64 = result.shards.iter().map(|s| s.stats.events).sum();
    assert_eq!(per_shard, load.events_offered);
}
