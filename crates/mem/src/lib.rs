//! Memory-hierarchy substrate for the Domino reproduction.
//!
//! The paper's evaluation platform (Table I) is a four-core SPARC server
//! with 64 KB 2-way L1-D caches, a 4 MB 16-way LLC, 45 ns memory latency
//! and 37.5 GB/s of off-chip bandwidth, plus — for the prefetchers — a
//! 32-block prefetch buffer next to each L1-D and multi-megabyte metadata
//! tables resident in main memory. This crate provides each of those
//! components as an independently tested model:
//!
//! * [`cache`] — set-associative caches with pluggable replacement;
//! * [`prefetch_buffer`] — the small LRU prefetch buffer, with
//!   used/unused-eviction accounting (the source of the paper's
//!   *overprediction* metric);
//! * [`mshr`] — miss-status holding registers (bounding MLP);
//! * [`dram`] — latency + shared-bandwidth queue model with per-category
//!   traffic accounting (Figure 15's stacked bars);
//! * [`metadata`] — the off-chip metadata channel used by temporal
//!   prefetchers (round-trip counting, sampled updates);
//! * [`interface`] — the [`interface::Prefetcher`] trait that
//!   every prefetcher in the reproduction implements, including the Domino
//!   core library.

/// Whether the named injected bug is active. Only compiled under
/// `--cfg domino_mutate` (the `domino-check --self-test` build); the
/// selected mutation comes from the `DOMINO_MUTATE` environment
/// variable, so one mutant binary can replay every known bug.
#[cfg(domino_mutate)]
pub(crate) fn mutate_active(name: &str) -> bool {
    std::env::var("DOMINO_MUTATE")
        .map(|v| v == name)
        .unwrap_or(false)
}

pub mod cache;
pub mod dram;
pub mod history;
pub mod interface;
pub mod metadata;
pub mod mshr;
pub mod prefetch_buffer;
pub mod streams;

pub use cache::{CacheConfig, Replacement, SetAssocCache};
pub use dram::{Dram, DramConfig, TrafficCategory, TrafficStats};
pub use history::{HistoryEntry, HistoryTable, ROW_ENTRIES};
pub use interface::{
    CollectSink, PrefetchRequest, PrefetchSink, Prefetcher, TriggerEvent, TriggerKind,
};
pub use metadata::{MetadataChannel, UpdateSampler};
pub use mshr::MshrFile;
pub use prefetch_buffer::{PrefetchBuffer, PrefetchBufferStats};
pub use streams::{top_up, ReplacePolicy, Stream, StreamTable};
