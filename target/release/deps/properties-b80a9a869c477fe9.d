/root/repo/target/release/deps/properties-b80a9a869c477fe9.d: crates/mem/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-b80a9a869c477fe9.rmeta: crates/mem/tests/properties.rs Cargo.toml

crates/mem/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
