/root/repo/target/debug/deps/domino_repro-9bdb007c18c3ec5b.d: src/lib.rs

/root/repo/target/debug/deps/libdomino_repro-9bdb007c18c3ec5b.rlib: src/lib.rs

/root/repo/target/debug/deps/libdomino_repro-9bdb007c18c3ec5b.rmeta: src/lib.rs

src/lib.rs:
