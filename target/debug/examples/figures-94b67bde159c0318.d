/root/repo/target/debug/examples/figures-94b67bde159c0318.d: examples/figures.rs Cargo.toml

/root/repo/target/debug/examples/libfigures-94b67bde159c0318.rmeta: examples/figures.rs Cargo.toml

examples/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
