//! Variable Length Delta Prefetcher (Shevgoor et al., MICRO 2015).
//!
//! VLDP is the spatial prefetcher the paper compares against (and stacks
//! with Domino in Figure 16). It predicts the next line *within a page*
//! from the sequence of recent line-strides (deltas) on that page:
//!
//! * **DHB** — Delta History Buffer: per-page last offset and recent
//!   deltas (16 entries, LRU);
//! * **DPTs** — Delta Prediction Tables: table *k* maps the last *k*
//!   deltas to the next delta; the longest matching table wins
//!   (the multi-delta lookup the Domino paper calls "similar" to its own
//!   mechanism, §IV-D);
//! * **OPT** — Offset Prediction Table: predicts the first delta of a
//!   page from the offset of its first access, so even cold pages get a
//!   prefetch.
//!
//! For degree > 1, predicted deltas are fed back as inputs to predict
//! further — the mechanism the paper notes becomes inaccurate for server
//! workloads as degree grows (§V-B).

use domino_trace::FxHashMap;

use domino_mem::interface::{PrefetchRequest, PrefetchSink, Prefetcher, TriggerEvent};
use domino_trace::addr::{LineAddr, LINES_PER_PAGE};

/// VLDP sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VldpConfig {
    /// Delta History Buffer entries (paper: 16).
    pub dhb_entries: usize,
    /// Offset Prediction Table entries (paper: 64 = one per page offset).
    pub opt_entries: usize,
    /// Number of Delta Prediction Tables (paper: 3, "infinite-size").
    pub num_dpts: usize,
    /// Prefetch degree.
    pub degree: usize,
}

impl Default for VldpConfig {
    fn default() -> Self {
        VldpConfig {
            dhb_entries: 16,
            opt_entries: 64,
            num_dpts: 3,
            degree: 4,
        }
    }
}

/// Upper bound on tracked delta-context length (`num_dpts` plus one
/// transient slot during trimming). Contexts and DPT keys live in inline
/// arrays of this size so the per-event path never allocates.
const MAX_DELTAS: usize = 8;

/// A DPT key: the last `k` deltas of a context, left-aligned and
/// zero-padded. Table `k-1` only ever stores keys whose first `k` slots
/// are meaningful, so padding cannot collide across context lengths.
type DeltaKey = [i64; MAX_DELTAS];

fn key_of(context: &[i64], k: usize) -> DeltaKey {
    let mut key = [0i64; MAX_DELTAS];
    key[..k].copy_from_slice(&context[context.len() - k..]);
    key
}

/// Fixed-capacity delta sequence (most recent last) — the inline
/// replacement for the per-page `Vec<i64>` history.
#[derive(Debug, Clone, Copy, Default)]
struct DeltaSeq {
    buf: [i64; MAX_DELTAS],
    len: u8,
}

impl DeltaSeq {
    fn as_slice(&self) -> &[i64] {
        &self.buf[..self.len as usize]
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn push(&mut self, delta: i64) {
        self.buf[self.len as usize] = delta;
        self.len += 1;
    }

    /// Drops the oldest delta (the `Vec::remove(0)` of the old layout).
    fn drop_oldest(&mut self) {
        self.buf.copy_within(1..self.len as usize, 0);
        self.len -= 1;
    }

    fn from_slice(context: &[i64]) -> Self {
        let mut seq = DeltaSeq::default();
        seq.buf[..context.len()].copy_from_slice(context);
        seq.len = context.len() as u8;
        seq
    }
}

#[derive(Debug, Clone, Copy)]
struct DhbEntry {
    page: u64,
    last_offset: i64,
    /// Recent deltas, most recent last; at most `num_dpts` kept.
    deltas: DeltaSeq,
}

/// The VLDP prefetcher.
#[derive(Debug)]
pub struct Vldp {
    cfg: VldpConfig,
    /// LRU order: front = victim.
    dhb: Vec<DhbEntry>,
    /// `dpts[k]` maps the last `k+1` deltas to the next delta.
    dpts: Vec<FxHashMap<DeltaKey, i64>>,
    /// First-access offset → first delta.
    opt: Vec<Option<i64>>,
}

impl Vldp {
    /// Creates a VLDP instance.
    ///
    /// # Panics
    ///
    /// Panics on zero-sized structures or more than [`MAX_DELTAS`]` - 1`
    /// delta prediction tables.
    pub fn new(cfg: VldpConfig) -> Self {
        assert!(cfg.dhb_entries > 0, "DHB needs entries");
        assert!(cfg.num_dpts > 0, "need at least one DPT");
        assert!(
            cfg.num_dpts < MAX_DELTAS,
            "num_dpts exceeds inline delta storage"
        );
        assert!(cfg.degree > 0, "degree must be positive");
        Vldp {
            dhb: Vec::with_capacity(cfg.dhb_entries),
            dpts: vec![FxHashMap::default(); cfg.num_dpts],
            opt: vec![None; cfg.opt_entries.max(1)],
            cfg,
        }
    }

    /// Longest-match DPT lookup over a delta context.
    fn predict_delta(&self, context: &[i64]) -> Option<i64> {
        for k in (1..=self.cfg.num_dpts.min(context.len())).rev() {
            if let Some(&d) = self.dpts[k - 1].get(&key_of(context, k)) {
                return Some(d);
            }
        }
        None
    }

    /// Updates every DPT whose context length is available.
    fn train_dpts(&mut self, context: &[i64], next: i64) {
        for k in 1..=self.cfg.num_dpts.min(context.len()) {
            self.dpts[k - 1].insert(key_of(context, k), next);
        }
    }

    fn opt_index(&self, offset: i64) -> usize {
        (offset as usize) % self.opt.len()
    }

    /// Issues up to `degree` chained predictions starting from `offset`.
    fn issue(&self, page: u64, offset: i64, context: &[i64], sink: &mut dyn PrefetchSink) {
        let mut ctx = DeltaSeq::from_slice(context);
        let mut cur = offset;
        for _ in 0..self.cfg.degree {
            let Some(delta) = self.predict_delta(ctx.as_slice()) else {
                break;
            };
            let next = cur + delta;
            if next < 0 || next >= LINES_PER_PAGE as i64 {
                break; // VLDP never crosses a page
            }
            // A chained walk can loop back to the demand line; that block
            // is already being fetched, so skip the request but keep
            // following the chain.
            if next != offset {
                sink.prefetch(PrefetchRequest::immediate(LineAddr::new(
                    page * LINES_PER_PAGE + next as u64,
                )));
            }
            ctx.push(delta);
            if ctx.len as usize > self.cfg.num_dpts {
                ctx.drop_oldest();
            }
            cur = next;
        }
    }
}

impl Prefetcher for Vldp {
    fn name(&self) -> &str {
        "VLDP"
    }

    fn on_trigger(&mut self, event: &TriggerEvent, sink: &mut dyn PrefetchSink) {
        let page = event.line.page();
        let offset = event.line.page_offset() as i64;
        if let Some(pos) = self.dhb.iter().position(|e| e.page == page) {
            let mut entry = self.dhb.remove(pos);
            let delta = offset - entry.last_offset;
            if delta != 0 {
                if entry.deltas.is_empty() {
                    // First delta of the page trains the OPT.
                    let idx = self.opt_index(entry.last_offset);
                    self.opt[idx] = Some(delta);
                } else {
                    self.train_dpts(entry.deltas.as_slice(), delta);
                }
                entry.deltas.push(delta);
                if entry.deltas.len as usize > self.cfg.num_dpts {
                    entry.deltas.drop_oldest();
                }
                entry.last_offset = offset;
            }
            self.issue(page, offset, entry.deltas.as_slice(), sink);
            self.dhb.push(entry);
        } else {
            if self.dhb.len() == self.cfg.dhb_entries {
                self.dhb.remove(0);
            }
            self.dhb.push(DhbEntry {
                page,
                last_offset: offset,
                deltas: DeltaSeq::default(),
            });
            // Cold page: OPT predicts the first delta from the offset.
            if let Some(delta) = self.opt[self.opt_index(offset)] {
                let next = offset + delta;
                if (0..LINES_PER_PAGE as i64).contains(&next) {
                    sink.prefetch(PrefetchRequest::immediate(LineAddr::new(
                        page * LINES_PER_PAGE + next as u64,
                    )));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_mem::interface::CollectSink;
    use domino_trace::addr::Pc;

    fn miss(line: u64) -> TriggerEvent {
        TriggerEvent::miss(Pc::new(0), LineAddr::new(line))
    }

    fn drive(p: &mut Vldp, lines: &[u64]) -> Vec<u64> {
        let mut out = Vec::new();
        for &l in lines {
            let mut sink = CollectSink::new();
            p.on_trigger(&miss(l), &mut sink);
            out.extend(sink.requests.iter().map(|r| r.line.raw()));
        }
        out
    }

    fn cfg(degree: usize) -> VldpConfig {
        VldpConfig {
            degree,
            ..VldpConfig::default()
        }
    }

    #[test]
    fn learns_constant_stride_across_pages() {
        let mut p = Vldp::new(cfg(1));
        // Page 0: walk offsets 0,2,4,6 — trains delta 2.
        drive(&mut p, &[0, 2, 4, 6]);
        // Page 1 (lines 64..): after two accesses the DPT predicts +2.
        let issued = drive(&mut p, &[64, 66]);
        assert!(issued.contains(&68), "issued: {issued:?}");
    }

    #[test]
    fn never_crosses_pages() {
        let mut p = Vldp::new(cfg(4));
        drive(&mut p, &[0, 16, 32, 48]); // delta 16 learned
        let issued = drive(&mut p, &[64, 80]);
        for l in issued {
            assert!(l < 128, "prefetch {l} crossed the page");
        }
    }

    #[test]
    fn opt_predicts_first_delta_on_cold_pages() {
        let mut p = Vldp::new(cfg(1));
        // Several pages whose first access at offset 0 is followed by +3.
        drive(&mut p, &[0, 3, 64, 67, 128, 131]);
        // Cold page at offset 0: OPT should fire +3 immediately.
        let issued = drive(&mut p, &[192]);
        assert_eq!(issued, vec![195]);
    }

    #[test]
    fn variable_pattern_uses_longer_context() {
        let mut p = Vldp::new(cfg(1));
        // Pattern 1,3 repeating: after delta 1 comes 3, after 3 comes 1,
        // but DPT-2 disambiguates (1,3)->1 vs (3,1)->3.
        drive(&mut p, &[0, 1, 4, 5, 8, 9, 12, 13, 16]);
        // Fresh page, walk two steps to give context (1, 3):
        let issued = drive(&mut p, &[64, 65, 68]);
        assert!(issued.contains(&69), "expected next delta 1: {issued:?}");
    }

    #[test]
    fn degree_chains_predictions() {
        let mut p = Vldp::new(cfg(3));
        drive(&mut p, &[0, 1, 2, 3, 4, 5]);
        let issued = drive(&mut p, &[64, 65]);
        // OPT fires +1 on the cold page (65), then chained +1 DPT
        // predictions: 66, 67, 68.
        assert_eq!(issued, vec![65, 66, 67, 68]);
    }

    #[test]
    fn dhb_capacity_is_bounded() {
        let mut p = Vldp::new(VldpConfig {
            dhb_entries: 2,
            ..VldpConfig::default()
        });
        drive(&mut p, &[0, 64, 128, 192]);
        assert!(p.dhb.len() <= 2);
    }
}
