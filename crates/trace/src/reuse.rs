//! Reuse-distance analysis — the cache-behaviour fingerprint of a trace.
//!
//! The *reuse distance* of an access is the number of **distinct** lines
//! touched since the previous access to the same line (∞ for first
//! touches). A fully-associative LRU cache of capacity `C` hits exactly
//! the accesses with reuse distance < `C`, so the reuse-distance
//! histogram predicts the miss ratio of every cache size at once — the
//! tool used to validate that the workload models really have
//! "vast datasets beyond what can be captured by on-chip caches"
//! (paper §I) at the L1 while still revisiting lines within the trace.
//!
//! Implemented with the classic treap-free approach: a balanced order
//! index over last-access timestamps (a Fenwick tree over access time),
//! O(log n) per access.

use crate::hash::FxHashMap;

use crate::addr::LineAddr;
use crate::event::AccessEvent;

/// Fenwick (binary-indexed) tree counting live timestamps.
#[derive(Debug)]
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i64) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta) as u64;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i`.
    fn prefix(&self, mut i: usize) -> u64 {
        i += 1;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Reuse-distance histogram with power-of-two buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReuseProfile {
    /// `buckets[k]` counts accesses with distance in `[2^k, 2^(k+1))`
    /// (bucket 0 covers distances 0 and 1).
    pub buckets: Vec<u64>,
    /// First touches (infinite distance).
    pub cold: u64,
    /// Total accesses profiled.
    pub total: u64,
}

impl ReuseProfile {
    /// Computes the profile of an event stream (line granularity).
    pub fn from_events<I: IntoIterator<Item = AccessEvent>>(events: I) -> Self {
        let events: Vec<AccessEvent> = events.into_iter().collect();
        let n = events.len();
        let mut fenwick = Fenwick::new(n);
        let mut last_seen: FxHashMap<LineAddr, usize> = FxHashMap::default();
        let mut buckets = vec![0u64; 40];
        let mut cold = 0u64;
        for (t, ev) in events.iter().enumerate() {
            let line = ev.line();
            match last_seen.get(&line).copied() {
                Some(prev) => {
                    // Distinct lines touched strictly between prev and t:
                    // live timestamps in (prev, t).
                    let between = fenwick.prefix(t) - fenwick.prefix(prev);
                    let distance = between;
                    let bucket = (64 - distance.max(1).leading_zeros() - 1) as usize;
                    buckets[bucket.min(39)] += 1;
                    fenwick.add(prev, -1);
                }
                None => cold += 1,
            }
            fenwick.add(t, 1);
            last_seen.insert(line, t);
        }
        ReuseProfile {
            buckets,
            cold,
            total: n as u64,
        }
    }

    /// Fraction of accesses with reuse distance < `capacity` lines — the
    /// hit ratio of an ideal fully-associative LRU cache of that size.
    pub fn hit_ratio_at(&self, capacity: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut hits = 0u64;
        for (k, &count) in self.buckets.iter().enumerate() {
            let lo = 1u64 << k;
            let hi = 1u64 << (k + 1);
            if hi <= capacity {
                hits += count;
            } else if lo < capacity {
                // Partial bucket: assume uniform within the bucket.
                let frac = (capacity - lo) as f64 / (hi - lo) as f64;
                hits += (count as f64 * frac) as u64;
            }
        }
        hits as f64 / self.total as f64
    }

    /// Fraction of first-touch (cold) accesses.
    pub fn cold_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.cold as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Addr, Pc};
    use crate::workload::catalog;

    fn read(line: u64) -> AccessEvent {
        AccessEvent::read(Pc::new(0), Addr::new(line << 6))
    }

    #[test]
    fn empty_trace() {
        let p = ReuseProfile::from_events(std::iter::empty());
        assert_eq!(p.total, 0);
        assert_eq!(p.hit_ratio_at(1024), 0.0);
    }

    #[test]
    fn all_cold_for_distinct_lines() {
        let p = ReuseProfile::from_events((0..100).map(read));
        assert_eq!(p.cold, 100);
        assert_eq!(p.cold_fraction(), 1.0);
    }

    #[test]
    fn tight_loop_has_small_distances() {
        // Loop over 8 lines, 10 times: reuse distance 7 for every
        // non-cold access.
        let mut evs = Vec::new();
        for _ in 0..10 {
            for l in 0..8 {
                evs.push(read(l));
            }
        }
        let p = ReuseProfile::from_events(evs);
        assert_eq!(p.cold, 8);
        // Distance 7 lands in bucket [4,8): index 2.
        assert_eq!(p.buckets[2], 72);
        // A 8-line LRU cache hits all of them; a 4-line one, none.
        assert!(p.hit_ratio_at(8) > 0.85);
        assert!(p.hit_ratio_at(4) < 0.05);
    }

    #[test]
    fn hit_ratio_is_monotonic_in_capacity() {
        let spec = catalog::oltp();
        let p = ReuseProfile::from_events(spec.generator(3).take(30_000));
        let mut prev = 0.0;
        for k in 0..22 {
            let h = p.hit_ratio_at(1 << k);
            assert!(h + 1e-9 >= prev, "not monotonic at 2^{k}");
            prev = h;
        }
    }

    #[test]
    fn workload_models_exceed_l1_but_revisit() {
        // The paper's premise: datasets far beyond the L1 (1024 lines),
        // yet temporally revisited within a trace.
        let spec = catalog::oltp();
        let p = ReuseProfile::from_events(spec.generator(3).take(60_000));
        let l1_lines = 1024;
        assert!(
            p.hit_ratio_at(l1_lines) < 0.5,
            "L1-sized cache must miss most accesses: {}",
            p.hit_ratio_at(l1_lines)
        );
        assert!(
            p.hit_ratio_at(1 << 20) > 0.5,
            "a huge cache must capture the revisits: {}",
            p.hit_ratio_at(1 << 20)
        );
    }
}
