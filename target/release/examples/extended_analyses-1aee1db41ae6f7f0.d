/root/repo/target/release/examples/extended_analyses-1aee1db41ae6f7f0.d: examples/extended_analyses.rs Cargo.toml

/root/repo/target/release/examples/libextended_analyses-1aee1db41ae6f7f0.rmeta: examples/extended_analyses.rs Cargo.toml

examples/extended_analyses.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
