//! Proof of the zero-allocation steady-state invariant (see
//! `DESIGN.md`, "Data layout").
//!
//! A counting `#[global_allocator]` wraps the system allocator in this
//! test binary only. For every prefetcher in the paper roster (plus the
//! baseline) and both engines, we replay a repeating trace until every
//! structure has saturated — prefetcher metadata maps hold their full key
//! set, thread-local scratch pools are populated, arenas are carved —
//! then measure the allocation count of a short run and of a 4× longer
//! run. If the event loop allocated per event, the long run would show
//! thousands more allocations; instead both runs must cost the same
//! per-run constant (report strings, one histogram, at most one arena
//! `reserve` growth), which the delta comparison cancels out.

use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::sync::atomic::{AtomicU64, Ordering};

use domino_mem::interface::Prefetcher;
use domino_sim::{run_coverage, run_timing, System, SystemConfig};
use domino_trace::workload::catalog;
use domino_trace::AccessEvent;

/// Counts every allocation and reallocation (frees are irrelevant: the
/// invariant is about acquiring memory mid-run).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        SystemAlloc.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        SystemAlloc.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        SystemAlloc.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        SystemAlloc.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn counted<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = f();
    (result, ALLOCATIONS.load(Ordering::Relaxed) - before)
}

/// `base` repeated `reps` times: the repetition is what lets unbounded
/// metadata (index maps, the ISB arena's key set) saturate during warmup.
fn repeated(base: &[AccessEvent], reps: usize) -> Vec<AccessEvent> {
    let mut out = Vec::with_capacity(base.len() * reps);
    for _ in 0..reps {
        out.extend_from_slice(base);
    }
    out
}

/// Per-run constant overhead allowed in the delta comparison: at most one
/// `reserve` growth per arena-backed structure when the run extends an
/// already-large arena (ISB nodes, history-table ring).
const RESERVE_SLACK: u64 = 2;

/// Absolute per-run overhead ceiling (report name strings, the Figure 12
/// histogram, reserve growths). Orders of magnitude below one-per-event.
const PER_RUN_CEILING: u64 = 64;

#[derive(Clone, Copy, Debug)]
enum Engine {
    Coverage,
    Timing,
}

fn run_once(engine: Engine, sys: &SystemConfig, trace: &[AccessEvent], p: &mut dyn Prefetcher) {
    match engine {
        Engine::Coverage => {
            run_coverage(sys, trace, p);
        }
        Engine::Timing => {
            run_timing(sys, trace, p);
        }
    }
}

fn roster() -> Vec<System> {
    let mut systems = vec![System::Baseline];
    systems.extend(System::paper_roster());
    // The post-Domino rivals live outside the paper roster but hold the
    // same steady-state invariant: their slabs are fixed at build time
    // and their index maps saturate during warmup.
    systems.push(System::Pangloss);
    systems.push(System::Triangel);
    systems
}

fn assert_allocation_free(engine: Engine) {
    let sys = SystemConfig::paper();
    let base: Vec<AccessEvent> = catalog::oltp().generator(7).take(1500).collect();
    let small = repeated(&base, 2);
    let large = repeated(&base, 8);
    for system in roster() {
        let mut p = system.build(4);
        // Warmup: saturate metadata, carve arenas, populate the
        // thread-local scratch pools. Large first so the small runs
        // never see a structure at a new high-water mark.
        run_once(engine, &sys, &large, &mut *p);
        run_once(engine, &sys, &small, &mut *p);
        let ((), small_allocs) = counted(|| run_once(engine, &sys, &small, &mut *p));
        let ((), large_allocs) = counted(|| run_once(engine, &sys, &large, &mut *p));
        assert!(
            large_allocs <= small_allocs + RESERVE_SLACK,
            "{} / {engine:?}: {large_allocs} allocations over {} events vs \
             {small_allocs} over {} — the event loop allocates per event",
            system.label(),
            large.len(),
            small.len(),
        );
        assert!(
            small_allocs <= PER_RUN_CEILING,
            "{} / {engine:?}: {small_allocs} allocations in a warmed run \
             exceeds the per-run constant ceiling of {PER_RUN_CEILING}",
            system.label(),
        );
    }
}

/// The harness itself must have teeth: a run that demonstrably allocates
/// per event must be counted as such.
#[test]
fn counting_allocator_sees_per_event_allocations() {
    let (boxes, allocs) = counted(|| (0..100).map(Box::new).collect::<Vec<Box<i32>>>());
    assert_eq!(boxes.len(), 100);
    assert!(allocs >= 100, "only {allocs} allocations counted");
}

#[test]
fn coverage_engine_is_allocation_free_per_event() {
    assert_allocation_free(Engine::Coverage);
}

#[test]
fn timing_engine_is_allocation_free_per_event() {
    assert_allocation_free(Engine::Timing);
}
