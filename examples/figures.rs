//! Regenerates every table and figure of the paper's evaluation at full
//! scale and prints them in order. This is the reproduction's main
//! deliverable; EXPERIMENTS.md records one run of it against the paper's
//! numbers.
//!
//! ```sh
//! cargo run --release --example figures                     # full scale
//! cargo run --release --example figures -- 100000           # events/workload
//! cargo run --release --example figures -- 100000 out_dir   # + SVG & CSV files
//! ```

use domino_repro::sim::figures::{
    bandwidth_utilization, fig01, fig02, fig03, fig04, fig05, fig06, fig09, fig10, fig11, fig12,
    fig13, fig14, fig15, fig16, table1, table2, Scale,
};

fn main() {
    let events: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400_000);
    let out_dir: Option<std::path::PathBuf> = std::env::args().nth(2).map(Into::into);
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    let scale = Scale { events, seed: 42 };
    eprintln!(
        "running all figures at {} events per workload...",
        scale.events
    );

    println!("{}", table1());
    println!("{}", table2());

    let save = |name: &str, table: &domino_repro::sim::FigureTable| {
        if let Some(dir) = &out_dir {
            let svg = domino_repro::sim::svg::render_bar_chart(table);
            std::fs::write(dir.join(format!("{name}.svg")), svg).expect("write svg");
            std::fs::write(dir.join(format!("{name}.csv")), table.to_csv()).expect("write csv");
        }
    };
    let t0 = std::time::Instant::now();
    macro_rules! show {
        ($name:literal, $figure:expr) => {{
            let start = std::time::Instant::now();
            let result = $figure;
            eprintln!("  {} done in {:.1}s", $name, start.elapsed().as_secs_f32());
            result
        }};
    }
    let mut singles: Vec<(&str, domino_repro::sim::FigureTable)> = vec![
        ("fig01", show!("fig01", fig01(&scale))),
        ("fig02", show!("fig02", fig02(&scale))),
        ("fig03", show!("fig03", fig03(&scale))),
        ("fig04", show!("fig04", fig04(&scale))),
    ];
    for (i, t) in show!("fig05", fig05(&scale)).into_iter().enumerate() {
        singles.push(if i == 0 { ("fig05a", t) } else { ("fig05b", t) });
    }
    singles.push(("fig06", show!("fig06", fig06(&scale))));
    singles.push(("fig09", show!("fig09", fig09(&scale))));
    singles.push(("fig10", show!("fig10", fig10(&scale))));
    for (i, t) in show!("fig11", fig11(&scale)).into_iter().enumerate() {
        singles.push(if i == 0 { ("fig11a", t) } else { ("fig11b", t) });
    }
    singles.push(("fig12", show!("fig12", fig12(&scale))));
    for (i, t) in show!("fig13", fig13(&scale)).into_iter().enumerate() {
        singles.push(if i == 0 { ("fig13a", t) } else { ("fig13b", t) });
    }
    singles.push(("fig14", show!("fig14", fig14(&scale))));
    singles.push(("fig15", show!("fig15", fig15(&scale))));
    singles.push(("fig16", show!("fig16", fig16(&scale))));
    singles.push((
        "bandwidth",
        show!("bandwidth (§V-D)", bandwidth_utilization(&scale)),
    ));
    for (name, table) in &singles {
        println!("{table}");
        save(name, table);
    }
    eprintln!("all figures in {:.1}s", t0.elapsed().as_secs_f32());
}
