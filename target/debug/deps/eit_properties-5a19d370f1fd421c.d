/root/repo/target/debug/deps/eit_properties-5a19d370f1fd421c.d: crates/core/tests/eit_properties.rs

/root/repo/target/debug/deps/eit_properties-5a19d370f1fd421c: crates/core/tests/eit_properties.rs

crates/core/tests/eit_properties.rs:
