//! Obviously-correct reference models for the optimized structures.
//!
//! Each model keeps the *semantics* of a production component in the
//! most transparent representation available — nested `Vec`s in
//! replacement order, linear scans, no slabs, no heaps, no packed
//! prefixes — so the differential oracles can drive both through the
//! same op stream and compare step-for-step. Where the production code
//! had a pre-optimization layout (the per-set-`Vec` cache, the
//! nested-`Vec` EIT rows) the model *is* that layout, resurrected.
//!
//! The models are deliberately slow (linear everything); they exist to
//! be read and believed, not to be fast.

use domino::eit::EitEntry;
use domino_mem::cache::{CacheConfig, Replacement};
use domino_mem::prefetch_buffer::{BufferedPrefetch, InsertOutcome, PrefetchBufferStats};
use domino_trace::addr::LineAddr;

/// One reference super-entry: a tag plus its continuations, oldest
/// first — exactly the nested-`Vec` picture of paper Figure 7.
#[derive(Debug, Clone)]
struct RefSuper {
    tag: LineAddr,
    /// LRU list, front = oldest, back = most recent.
    entries: Vec<EitEntry>,
}

/// Nested-`Vec` Enhanced Index Table with two-level LRU: rows hold
/// super-entries oldest-first, super-entries hold continuations
/// oldest-first, and both levels promote with `remove` + `push`.
///
/// Mirrors `domino::eit::Eit` with a finite row count; the row hash is
/// the same multiplicative hash, so a given tag lands in the same row
/// in both implementations.
#[derive(Debug, Clone)]
pub struct ReferenceEit {
    rows: Vec<Vec<RefSuper>>,
    super_cap: usize,
    entry_cap: usize,
}

impl ReferenceEit {
    /// Creates an empty table with `rows` rows, `super_cap` super-entries
    /// per row, and `entry_cap` entries per super-entry.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(rows: usize, super_cap: usize, entry_cap: usize) -> Self {
        assert!(rows > 0 && super_cap > 0 && entry_cap > 0, "degenerate EIT");
        ReferenceEit {
            rows: vec![Vec::new(); rows],
            super_cap,
            entry_cap,
        }
    }

    /// The production row hash (multiplicative), verbatim.
    fn row_index(&self, tag: LineAddr) -> usize {
        let h = tag.raw().wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (h % self.rows.len() as u64) as usize
    }

    /// Looks up `tag`, promoting its super-entry to MRU. Returns the
    /// entries oldest-first (a clone; the model is not hot-path code).
    pub fn lookup(&mut self, tag: LineAddr) -> Option<Vec<EitEntry>> {
        let r = self.row_index(tag);
        let row = &mut self.rows[r];
        let pos = row.iter().position(|se| se.tag == tag)?;
        let se = row.remove(pos);
        row.push(se);
        Some(row.last().expect("just pushed").entries.clone())
    }

    /// Side-effect-free membership probe.
    pub fn probe(&self, tag: LineAddr) -> bool {
        let r = self.row_index(tag);
        self.rows[r].iter().any(|se| se.tag == tag)
    }

    /// Records `tag → (next, pointer)` with LRU at both levels; returns
    /// the tag of a super-entry evicted by capacity pressure, if any.
    pub fn update(&mut self, tag: LineAddr, next: LineAddr, pointer: u64) -> Option<LineAddr> {
        let r = self.row_index(tag);
        let super_cap = self.super_cap;
        let entry_cap = self.entry_cap;
        let row = &mut self.rows[r];
        let mut evicted = None;
        match row.iter().position(|se| se.tag == tag) {
            Some(pos) => {
                let se = row.remove(pos);
                row.push(se);
            }
            None => {
                if row.len() == super_cap {
                    evicted = Some(row.remove(0).tag);
                }
                row.push(RefSuper {
                    tag,
                    entries: Vec::new(),
                });
            }
        }
        let entries = &mut row.last_mut().expect("just placed").entries;
        if let Some(p) = entries.iter().position(|e| e.addr == next) {
            let mut e = entries.remove(p);
            e.pointer = pointer;
            entries.push(e);
        } else {
            if entries.len() == entry_cap {
                entries.remove(0);
            }
            entries.push(EitEntry {
                addr: next,
                pointer,
            });
        }
        evicted
    }
}

/// Linear-scan MSHR file: one `Vec` of live `(line, done_at)` pairs.
/// Mirrors `domino_mem::mshr::MshrFile` (slab + free list + min-heap)
/// semantically: merge on duplicate lines, stall when full, retire at
/// an *inclusive* time boundary.
#[derive(Debug, Clone)]
pub struct ReferenceMshr {
    capacity: usize,
    live: Vec<(LineAddr, f64)>,
    allocations: u64,
    merges: u64,
    stalls: u64,
}

impl ReferenceMshr {
    /// Creates a file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file needs capacity");
        ReferenceMshr {
            capacity,
            live: Vec::new(),
            allocations: 0,
            merges: 0,
            stalls: 0,
        }
    }

    /// Tracks a miss on `line` completing at `done_at`; merges secondary
    /// misses, returns `None` (and counts a stall) when full.
    pub fn allocate(&mut self, line: LineAddr, done_at: f64) -> Option<f64> {
        if let Some(&(_, t)) = self.live.iter().find(|(l, _)| *l == line) {
            self.merges += 1;
            return Some(t);
        }
        if self.live.len() == self.capacity {
            self.stalls += 1;
            return None;
        }
        self.live.push((line, done_at));
        self.allocations += 1;
        Some(done_at)
    }

    /// Merges with an in-flight miss on `line`, if any.
    pub fn completion_of(&mut self, line: LineAddr) -> Option<f64> {
        if let Some(&(_, t)) = self.live.iter().find(|(l, _)| *l == line) {
            self.merges += 1;
            return Some(t);
        }
        None
    }

    /// Releases every register whose miss completed at or before `now`.
    pub fn retire_until(&mut self, now: f64) {
        self.live.retain(|&(_, t)| t > now);
    }

    /// Earliest completion among outstanding misses.
    pub fn earliest_completion(&self) -> Option<f64> {
        self.live
            .iter()
            .map(|&(_, t)| t)
            .fold(None, |acc: Option<f64>, t| {
                Some(acc.map_or(t, |a| a.min(t)))
            })
    }

    /// Outstanding miss count.
    pub fn in_flight(&self) -> usize {
        self.live.len()
    }

    /// `(allocations, merges, structural_stalls)` counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.allocations, self.merges, self.stalls)
    }
}

/// `Vec`-based prefetch buffer, index 0 = LRU victim end. Mirrors
/// `domino_mem::prefetch_buffer::PrefetchBuffer` including its lifetime
/// statistics, so buffer-conservation claims can be cross-checked
/// against a model whose accounting is visibly correct.
#[derive(Debug, Clone)]
pub struct ReferenceBuffer {
    capacity: usize,
    entries: Vec<BufferedPrefetch>,
    stats: PrefetchBufferStats,
}

impl ReferenceBuffer {
    /// Creates a buffer of `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "prefetch buffer needs capacity");
        ReferenceBuffer {
            capacity,
            entries: Vec::new(),
            stats: PrefetchBufferStats::default(),
        }
    }

    /// Inserts a prefetched line; duplicates drop, full buffers evict
    /// the LRU entry (counted unused).
    pub fn insert(&mut self, line: LineAddr, ready_at: f64, stream: Option<u32>) -> InsertOutcome {
        self.stats.inserted += 1;
        if self.entries.iter().any(|e| e.line == line) {
            self.stats.duplicate_inserts += 1;
            return InsertOutcome::Duplicate;
        }
        let victim = if self.entries.len() == self.capacity {
            self.stats.evicted_unused += 1;
            Some(self.entries.remove(0))
        } else {
            None
        };
        self.entries.push(BufferedPrefetch {
            line,
            ready_at,
            stream,
        });
        match victim {
            Some(v) => InsertOutcome::Evicted(v),
            None => InsertOutcome::Inserted,
        }
    }

    /// Demand lookup: removes and returns the entry on a hit.
    pub fn take(&mut self, line: LineAddr) -> Option<BufferedPrefetch> {
        let pos = self.entries.iter().position(|e| e.line == line)?;
        self.stats.hits += 1;
        Some(self.entries.remove(pos))
    }

    /// Membership peek.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.entries.iter().any(|e| e.line == line)
    }

    /// Discards all entries of `stream`; returns how many.
    pub fn discard_stream(&mut self, stream: u32) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.stream != Some(stream));
        let discarded = before - self.entries.len();
        self.stats.discarded_unused += discarded as u64;
        discarded
    }

    /// Buffered block count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> PrefetchBufferStats {
        self.stats
    }
}

/// The pre-flat set-associative cache: per-set `Vec`s in replacement
/// order (index 0 the victim end), exactly as the original
/// implementation kept them. Mirrors `domino_mem::cache::SetAssocCache`
/// including the Random-policy RNG advancing on every insert *before*
/// the presence check.
#[derive(Debug, Clone)]
pub struct ReferenceCache {
    config: CacheConfig,
    set_mask: u64,
    sets: Vec<Vec<LineAddr>>,
    rand_state: u64,
    hits: u64,
    misses: u64,
}

impl ReferenceCache {
    /// Creates an empty cache of the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        ReferenceCache {
            config,
            set_mask: sets as u64 - 1,
            sets: vec![Vec::with_capacity(config.ways); sets],
            rand_state: 0x9e37_79b9_7f4a_7c15,
            hits: 0,
            misses: 0,
        }
    }

    fn set_index(&self, line: LineAddr) -> usize {
        (line.raw() & self.set_mask) as usize
    }

    /// Demand access: hit/miss plus LRU promotion.
    pub fn access(&mut self, line: LineAddr) -> bool {
        let promote = self.config.replacement == Replacement::Lru;
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            if promote {
                let l = set.remove(pos);
                set.push(l);
            }
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Membership peek (no counters, no promotion).
    pub fn contains(&self, line: LineAddr) -> bool {
        self.sets[self.set_index(line)].contains(&line)
    }

    /// Fills `line`, returning an evicted victim if the set was full.
    pub fn insert(&mut self, line: LineAddr) -> Option<LineAddr> {
        let replacement = self.config.replacement;
        let ways = self.config.ways;
        let idx = self.set_index(line);
        // The RNG advances on every insert under Random — before the
        // presence check — matching the production cache exactly.
        if replacement == Replacement::Random {
            self.rand_state ^= self.rand_state << 13;
            self.rand_state ^= self.rand_state >> 7;
            self.rand_state ^= self.rand_state << 17;
        }
        let victim_pos = (self.rand_state % ways as u64) as usize;
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            if replacement == Replacement::Lru {
                let l = set.remove(pos);
                set.push(l);
            }
            return None;
        }
        if set.len() == ways {
            let evict_pos = match replacement {
                Replacement::Lru | Replacement::Fifo => 0,
                Replacement::Random => victim_pos,
            };
            let evicted = set.remove(evict_pos);
            set.push(line);
            Some(evicted)
        } else {
            set.push(line);
            None
        }
    }

    /// Drops `line` if present; reports whether it was.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            set.remove(pos);
            true
        } else {
            false
        }
    }

    /// `(hits, misses)` counters.
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Total resident lines across sets.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether no line is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn reference_eit_two_level_lru() {
        let mut eit = ReferenceEit::new(1, 2, 2);
        assert_eq!(eit.update(line(1), line(10), 0), None);
        assert_eq!(eit.update(line(2), line(20), 1), None);
        // Promote tag 1; the next capacity eviction takes tag 2.
        assert!(eit.lookup(line(1)).is_some());
        assert_eq!(eit.update(line(3), line(30), 2), Some(line(2)));
        assert!(!eit.probe(line(2)));
        // Entry LRU: refresh promotes, capacity drops the oldest.
        eit.update(line(1), line(11), 3);
        eit.update(line(1), line(10), 4); // refresh 10 → MRU
        eit.update(line(1), line(12), 5); // evicts 11
        let entries = eit.lookup(line(1)).unwrap();
        let addrs: Vec<u64> = entries.iter().map(|e| e.addr.raw()).collect();
        assert_eq!(addrs, vec![10, 12]);
    }

    #[test]
    fn reference_mshr_merges_stalls_retires() {
        let mut m = ReferenceMshr::new(2);
        assert_eq!(m.allocate(line(1), 50.0), Some(50.0));
        assert_eq!(m.allocate(line(1), 99.0), Some(50.0), "merged");
        assert_eq!(m.allocate(line(2), 60.0), Some(60.0));
        assert_eq!(m.allocate(line(3), 70.0), None, "full");
        assert_eq!(m.counters(), (2, 1, 1));
        assert_eq!(m.earliest_completion(), Some(50.0));
        m.retire_until(50.0); // inclusive boundary
        assert_eq!(m.in_flight(), 1);
    }

    #[test]
    fn reference_buffer_counts_lifetimes() {
        let mut b = ReferenceBuffer::new(2);
        b.insert(line(1), 0.0, Some(0));
        b.insert(line(1), 1.0, None);
        b.insert(line(2), 0.0, Some(1));
        b.insert(line(3), 0.0, Some(0)); // evicts line 1
        assert!(b.take(line(2)).is_some());
        assert_eq!(b.discard_stream(0), 1);
        let s = b.stats();
        assert_eq!(
            (
                s.inserted,
                s.duplicate_inserts,
                s.hits,
                s.evicted_unused,
                s.discarded_unused
            ),
            (4, 1, 1, 1, 1)
        );
        assert!(b.is_empty());
    }
}
