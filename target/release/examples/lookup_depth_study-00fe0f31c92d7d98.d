/root/repo/target/release/examples/lookup_depth_study-00fe0f31c92d7d98.d: examples/lookup_depth_study.rs Cargo.toml

/root/repo/target/release/examples/liblookup_depth_study-00fe0f31c92d7d98.rmeta: examples/lookup_depth_study.rs Cargo.toml

examples/lookup_depth_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
