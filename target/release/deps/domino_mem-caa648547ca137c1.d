/root/repo/target/release/deps/domino_mem-caa648547ca137c1.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/history.rs crates/mem/src/interface.rs crates/mem/src/metadata.rs crates/mem/src/mshr.rs crates/mem/src/prefetch_buffer.rs crates/mem/src/streams.rs

/root/repo/target/release/deps/domino_mem-caa648547ca137c1: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/history.rs crates/mem/src/interface.rs crates/mem/src/metadata.rs crates/mem/src/mshr.rs crates/mem/src/prefetch_buffer.rs crates/mem/src/streams.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/dram.rs:
crates/mem/src/history.rs:
crates/mem/src/interface.rs:
crates/mem/src/metadata.rs:
crates/mem/src/mshr.rs:
crates/mem/src/prefetch_buffer.rs:
crates/mem/src/streams.rs:
