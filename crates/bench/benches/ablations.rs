//! Ablation benches for the design choices DESIGN.md calls out. Each
//! bench prints the metric being ablated (coverage / traffic) before
//! timing, so `cargo bench` doubles as an ablation report.

use criterion::{criterion_group, criterion_main, Criterion};
use domino::{Domino, DominoConfig, EitConfig, NaiveDomino};
use domino_sim::{run_coverage, SystemConfig};
use domino_trace::workload::catalog;
use std::hint::black_box;
use std::time::Duration;

const EVENTS: usize = 40_000;

fn trace() -> Vec<domino_trace::event::AccessEvent> {
    catalog::oltp().generator(42).take(EVENTS).collect()
}

fn run(cfg: DominoConfig) -> domino_sim::CoverageReport {
    let system = SystemConfig::paper();
    let mut p = Domino::new(cfg);
    run_coverage(&system, trace(), &mut p)
}

/// Entries per super-entry (paper: 3).
fn ablation_eit_entries(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_eit_entries");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(5));
    for entries in [1usize, 2, 3, 6] {
        let cfg = DominoConfig {
            eit: EitConfig {
                entries_per_super: entries,
                ..EitConfig::default()
            },
            ..DominoConfig::default()
        };
        let r = run(cfg);
        println!(
            "eit entries/super={entries}: coverage {:.1}%, overpred {:.1}%",
            r.coverage() * 100.0,
            r.overprediction_rate() * 100.0
        );
        g.bench_function(format!("entries_{entries}"), |b| {
            b.iter(|| black_box(run(cfg)))
        });
    }
    g.finish();
}

/// Metadata update sampling probability (paper: 12.5 %).
fn ablation_sampling(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_sampling");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(5));
    for (label, p) in [
        ("3pct", 0.03125),
        ("12.5pct", 0.125),
        ("50pct", 0.5),
        ("100pct", 1.0),
    ] {
        let cfg = DominoConfig {
            sampling_probability: p,
            ..DominoConfig::default()
        };
        let r = run(cfg);
        println!(
            "sampling={label}: coverage {:.1}%, metadata writes {} blocks",
            r.coverage() * 100.0,
            r.meta_write_blocks
        );
        g.bench_function(label, |b| b.iter(|| black_box(run(cfg))));
    }
    g.finish();
}

/// Number of active streams (paper: 4).
fn ablation_streams(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_streams");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(5));
    for streams in [1usize, 2, 4, 8] {
        let cfg = DominoConfig {
            max_streams: streams,
            ..DominoConfig::default()
        };
        let r = run(cfg);
        println!("streams={streams}: coverage {:.1}%", r.coverage() * 100.0);
        g.bench_function(format!("streams_{streams}"), |b| {
            b.iter(|| black_box(run(cfg)))
        });
    }
    g.finish();
}

/// Stream-end detection on/off.
fn ablation_stream_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_stream_end");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(5));
    for (label, on) in [("on", true), ("off", false)] {
        let cfg = DominoConfig {
            stream_end_detection: on,
            ..DominoConfig::default()
        };
        let r = run(cfg);
        println!(
            "stream_end={label}: coverage {:.1}%, overpred {:.1}%",
            r.coverage() * 100.0,
            r.overprediction_rate() * 100.0
        );
        g.bench_function(label, |b| b.iter(|| black_box(run(cfg))));
    }
    g.finish();
}

/// Practical EIT design versus the naive two-index-table strawman
/// (paper §III-A): same lookup semantics, different metadata cost.
fn ablation_lookup_design(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_lookup_design");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(5));
    let system = SystemConfig::paper();
    let practical = run(DominoConfig::default());
    let mut naive = NaiveDomino::new(DominoConfig::default());
    let naive_r = run_coverage(&system, trace(), &mut naive);
    println!(
        "practical EIT : coverage {:.1}%, metadata reads {}",
        practical.coverage() * 100.0,
        practical.meta_read_blocks
    );
    println!(
        "naive two-IT  : coverage {:.1}%, metadata reads {}",
        naive_r.coverage() * 100.0,
        naive_r.meta_read_blocks
    );
    g.bench_function("practical", |b| {
        b.iter(|| black_box(run(DominoConfig::default())))
    });
    g.bench_function("naive_two_it", |b| {
        b.iter(|| {
            let mut p = NaiveDomino::new(DominoConfig::default());
            black_box(run_coverage(&system, trace(), &mut p))
        })
    });
    g.finish();
}

/// Stream replacement policy: the paper's round-robin versus LRU.
fn ablation_stream_replacement(c: &mut Criterion) {
    use domino_mem::streams::ReplacePolicy;
    let mut g = c.benchmark_group("ablation_stream_replacement");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(5));
    for (label, policy) in [
        ("round_robin", ReplacePolicy::RoundRobin),
        ("lru", ReplacePolicy::Lru),
    ] {
        let cfg = DominoConfig {
            stream_replacement: policy,
            ..DominoConfig::default()
        };
        let r = run(cfg);
        println!(
            "stream_replacement={label}: coverage {:.1}%, overpred {:.1}%",
            r.coverage() * 100.0,
            r.overprediction_rate() * 100.0
        );
        g.bench_function(label, |b| b.iter(|| black_box(run(cfg))));
    }
    g.finish();
}

/// Feedback throttling (extension): fixed-degree Domino versus the
/// accuracy-adaptive wrapper on an overprediction-prone workload.
fn ablation_adaptive(c: &mut Criterion) {
    use domino_prefetchers::AdaptiveDegree;
    let mut g = c.benchmark_group("ablation_adaptive");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(5));
    let system = SystemConfig::paper();
    let sat: Vec<_> = catalog::sat_solver().generator(42).take(EVENTS).collect();
    let fixed = {
        let mut p = Domino::new(DominoConfig::default());
        run_coverage(&system, sat.clone(), &mut p)
    };
    let adaptive = {
        let mut p = AdaptiveDegree::new(Domino::new(DominoConfig::default()));
        run_coverage(&system, sat.clone(), &mut p)
    };
    println!(
        "fixed Domino   : coverage {:.1}%, overpred {:.1}%",
        fixed.coverage() * 100.0,
        fixed.overprediction_rate() * 100.0
    );
    println!(
        "adaptive Domino: coverage {:.1}%, overpred {:.1}%",
        adaptive.coverage() * 100.0,
        adaptive.overprediction_rate() * 100.0
    );
    g.bench_function("fixed", |b| {
        b.iter(|| {
            let mut p = Domino::new(DominoConfig::default());
            black_box(run_coverage(&system, sat.clone(), &mut p))
        })
    });
    g.bench_function("adaptive", |b| {
        b.iter(|| {
            let mut p = AdaptiveDegree::new(Domino::new(DominoConfig::default()));
            black_box(run_coverage(&system, sat.clone(), &mut p))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    ablation_eit_entries,
    ablation_sampling,
    ablation_streams,
    ablation_stream_end,
    ablation_stream_replacement,
    ablation_adaptive,
    ablation_lookup_design
);
criterion_main!(benches);
