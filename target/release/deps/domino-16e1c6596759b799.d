/root/repo/target/release/deps/domino-16e1c6596759b799.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/domino.rs crates/core/src/eit.rs crates/core/src/naive.rs

/root/repo/target/release/deps/libdomino-16e1c6596759b799.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/domino.rs crates/core/src/eit.rs crates/core/src/naive.rs

/root/repo/target/release/deps/libdomino-16e1c6596759b799.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/domino.rs crates/core/src/eit.rs crates/core/src/naive.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/domino.rs:
crates/core/src/eit.rs:
crates/core/src/naive.rs:
