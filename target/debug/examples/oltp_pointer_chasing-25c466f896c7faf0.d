/root/repo/target/debug/examples/oltp_pointer_chasing-25c466f896c7faf0.d: examples/oltp_pointer_chasing.rs Cargo.toml

/root/repo/target/debug/examples/liboltp_pointer_chasing-25c466f896c7faf0.rmeta: examples/oltp_pointer_chasing.rs Cargo.toml

examples/oltp_pointer_chasing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
