//! Prefetch flight recorder: a zero-alloc, ring-buffered event log with
//! causal coverage-loss attribution.
//!
//! The epoch counters in this crate say *how much* coverage a prefetcher
//! achieved; the flight recorder says *why the rest was lost*. Engines
//! emit fixed-size binary [`TraceEvent`] records — prefetch issue,
//! metadata-lookup start/end, buffer fill, demand hit, late arrival,
//! unused eviction, dropped insert, EIT replacement — into a
//! preallocated ring that keeps the most recent `capacity` events. In
//! parallel, a bounded [correlation table](CorrelationTable) remembers
//! the disposition of recently prefetched lines, so that when a demand
//! miss arrives *uncovered* the recorder can attribute it to the
//! prefetch that should have covered it:
//!
//! * **covered** — the miss hit the prefetch buffer (timely);
//! * **late** — it hit a block still in flight (timing engine only);
//! * **evicted-unused** — the block was prefetched but evicted or
//!   discarded from the buffer before use;
//! * **dropped** — the prefetch was issued but never buffered (duplicate
//!   insert or the line was already cached);
//! * **mispredicted** — no prefetch targeted the line although the
//!   prefetcher's metadata had recorded it (a wrong prediction was made
//!   instead);
//! * **no-metadata** — the prefetcher's metadata never recorded the line
//!   (cold miss or lost metadata).
//!
//! The six buckets are maintained **online** as exact counters
//! ([`Attribution`]): every demand miss increments `demand_misses` and
//! exactly one bucket, so `covered + late + evicted_unused + dropped +
//! mispredicted + no_metadata == demand_misses` holds by construction —
//! independently of ring wraparound. When the ring did *not* wrap, a
//! replay of the stored events reproduces the same buckets
//! ([`TraceFile::verify`] cross-checks both).
//!
//! The hot path allocates nothing: the ring and the correlation table
//! are preallocated at construction, a record is a bounds-checked index
//! write, and a disabled recorder costs the caller one `Option` branch
//! (see `Telemetry::tracer`).
//!
//! # Binary file format (`trace_*.bin`, version 1, little-endian)
//!
//! ```text
//! offset  size  field
//! 0       8     magic "DMNOFLT1"
//! 8       4     version (u32, = 1)
//! 12      4     reserved (u32, = 0)
//! 16      ...   workload  (u32 length + UTF-8 bytes)
//! ...     ...   component (u32 length + UTF-8 bytes)
//! ...     ...   kind      (u32 length + UTF-8 bytes)
//! ...     8×3   events, seed, warmup (u64 each)
//! ...     8×2   ring capacity, total events recorded (u64 each)
//! ...     8×7   attribution: demand_misses, covered, late,
//!               evicted_unused, dropped, mispredicted, no_metadata
//! ...     8     stored record count N (u64)
//! ...     32×N  records, oldest first
//! ```
//!
//! Each 32-byte record is `kind: u8, cause: u8, pad: u16 (= 0),
//! stream: u32 (u32::MAX = none), time: u64, line: u64, aux: u64`.
//! `time` is the demand-access index in the coverage engine and
//! simulated nanoseconds in the timing engine; `aux` carries a
//! kind-specific payload (delay trips on issue, arrival time on fill,
//! prefetch-to-use distance on hit, residual wait on late arrival, a
//! drop reason on dropped inserts).

/// File magic of a recorded trace.
pub const TRACE_MAGIC: &[u8; 8] = b"DMNOFLT1";

/// Binary format version written by [`FlightRecorder::to_bytes`].
pub const TRACE_VERSION: u32 = 1;

/// Size of one encoded [`TraceEvent`].
pub const RECORD_BYTES: usize = 32;

/// Default ring capacity (events) when a knob enables tracing without a
/// size (`--trace` with no value, `DOMINO_TRACE=1`... any positive value
/// is used verbatim; callers pass this for "just turn it on").
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// `stream` field value meaning "no stream tag".
pub const NO_STREAM: u32 = u32::MAX;

/// Slots in the bounded in-flight correlation table (power of two).
const CORRELATION_SLOTS: usize = 4096;

/// Fibonacci multiplier for the correlation-table hash.
const HASH_MUL: u64 = 0x9e37_79b9_7f4a_7c15;

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A prefetch request was issued; `aux` = serial metadata trips.
    Issue = 1,
    /// An off-chip metadata lookup started; `aux` = blocks read.
    MetaStart = 2,
    /// The metadata lookup completed; `aux` = round-trip time.
    MetaEnd = 3,
    /// A prefetched block filled the buffer; `aux` = arrival time.
    Fill = 4,
    /// A demand miss hit the buffer (covered); `aux` = use distance.
    DemandHit = 5,
    /// A demand miss hit a block still in flight; `aux` = residual wait.
    LateArrival = 6,
    /// A buffered block was evicted or discarded before any use.
    EvictUnused = 7,
    /// A prefetch was issued but never buffered; `aux` = drop reason
    /// (1 = duplicate insert, 2 = line already cached).
    DropBufferFull = 8,
    /// An index/EIT entry was replaced (metadata loss); `line` = the
    /// evicted tag.
    EitReplace = 9,
    /// An uncovered demand miss; `cause` carries its [`LossCause`].
    DemandMiss = 10,
}

impl EventKind {
    /// Decodes a stored kind byte.
    pub fn from_u8(v: u8) -> Option<EventKind> {
        Some(match v {
            1 => EventKind::Issue,
            2 => EventKind::MetaStart,
            3 => EventKind::MetaEnd,
            4 => EventKind::Fill,
            5 => EventKind::DemandHit,
            6 => EventKind::LateArrival,
            7 => EventKind::EvictUnused,
            8 => EventKind::DropBufferFull,
            9 => EventKind::EitReplace,
            10 => EventKind::DemandMiss,
            _ => return None,
        })
    }

    /// Stable lowercase name (CSV / rendering).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Issue => "issue",
            EventKind::MetaStart => "meta_start",
            EventKind::MetaEnd => "meta_end",
            EventKind::Fill => "fill",
            EventKind::DemandHit => "demand_hit",
            EventKind::LateArrival => "late_arrival",
            EventKind::EvictUnused => "evict_unused",
            EventKind::DropBufferFull => "drop",
            EventKind::EitReplace => "eit_replace",
            EventKind::DemandMiss => "demand_miss",
        }
    }
}

/// Why a demand miss was (or was not) covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum LossCause {
    /// Not a miss-classifying event.
    None = 0,
    /// Covered: buffer hit with the data ready.
    Covered = 1,
    /// Covered but the block was still in flight.
    Late = 2,
    /// The covering prefetch was evicted/discarded unused.
    EvictedUnused = 3,
    /// The covering prefetch was issued but never buffered.
    Dropped = 4,
    /// Metadata knew the line but the prefetcher predicted elsewhere.
    Mispredicted = 5,
    /// Metadata never recorded the line.
    NoMetadata = 6,
}

impl LossCause {
    /// Decodes a stored cause byte.
    pub fn from_u8(v: u8) -> Option<LossCause> {
        Some(match v {
            0 => LossCause::None,
            1 => LossCause::Covered,
            2 => LossCause::Late,
            3 => LossCause::EvictedUnused,
            4 => LossCause::Dropped,
            5 => LossCause::Mispredicted,
            6 => LossCause::NoMetadata,
            _ => return None,
        })
    }

    /// Stable lowercase name (CSV / rendering).
    pub fn name(self) -> &'static str {
        match self {
            LossCause::None => "none",
            LossCause::Covered => "covered",
            LossCause::Late => "late",
            LossCause::EvictedUnused => "evicted_unused",
            LossCause::Dropped => "dropped",
            LossCause::Mispredicted => "mispredicted",
            LossCause::NoMetadata => "no_metadata",
        }
    }
}

/// One fixed-size flight-recorder record (32 bytes encoded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// [`EventKind`] discriminant.
    pub kind: u8,
    /// [`LossCause`] discriminant (miss-classifying events only).
    pub cause: u8,
    /// Stream id, [`NO_STREAM`] when untagged.
    pub stream: u32,
    /// Cycle timestamp: access index (coverage) or sim-ns (timing).
    pub time: u64,
    /// Cache-line address (raw).
    pub line: u64,
    /// Kind-specific payload.
    pub aux: u64,
}

impl TraceEvent {
    /// Appends the 32-byte little-endian encoding to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.kind);
        out.push(self.cause);
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&self.stream.to_le_bytes());
        out.extend_from_slice(&self.time.to_le_bytes());
        out.extend_from_slice(&self.line.to_le_bytes());
        out.extend_from_slice(&self.aux.to_le_bytes());
    }

    /// Decodes one 32-byte record.
    pub fn decode(b: &[u8; RECORD_BYTES]) -> TraceEvent {
        TraceEvent {
            kind: b[0],
            cause: b[1],
            stream: u32::from_le_bytes(b[4..8].try_into().expect("4 bytes")),
            time: u64::from_le_bytes(b[8..16].try_into().expect("8 bytes")),
            line: u64::from_le_bytes(b[16..24].try_into().expect("8 bytes")),
            aux: u64::from_le_bytes(b[24..32].try_into().expect("8 bytes")),
        }
    }
}

/// Exact online loss-attribution counters: every demand miss increments
/// `demand_misses` and exactly one bucket, so the buckets sum to
/// `demand_misses` by construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Attribution {
    /// All demand misses seen by the recorder (covered or not).
    pub demand_misses: u64,
    /// Buffer hits with the data ready.
    pub covered: u64,
    /// Buffer hits on blocks still in flight.
    pub late: u64,
    /// Misses whose covering prefetch was evicted/discarded unused.
    pub evicted_unused: u64,
    /// Misses whose covering prefetch was never buffered.
    pub dropped: u64,
    /// Misses the metadata knew but the prefetcher predicted elsewhere.
    pub mispredicted: u64,
    /// Misses the metadata never recorded.
    pub no_metadata: u64,
}

/// Bucket names, in the order of [`Attribution::buckets`].
pub const BUCKET_NAMES: [&str; 6] = [
    "covered",
    "late",
    "evicted_unused",
    "dropped",
    "mispredicted",
    "no_metadata",
];

impl Attribution {
    /// The six bucket values in [`BUCKET_NAMES`] order.
    pub fn buckets(&self) -> [u64; 6] {
        [
            self.covered,
            self.late,
            self.evicted_unused,
            self.dropped,
            self.mispredicted,
            self.no_metadata,
        ]
    }

    /// Sum of the six buckets.
    pub fn bucket_sum(&self) -> u64 {
        self.buckets().iter().sum()
    }

    /// The conservation invariant: buckets sum to total demand misses.
    pub fn is_conserved(&self) -> bool {
        self.bucket_sum() == self.demand_misses
    }

    /// Covered fraction (timely + late) of demand misses.
    pub fn coverage(&self) -> f64 {
        if self.demand_misses == 0 {
            0.0
        } else {
            (self.covered + self.late) as f64 / self.demand_misses as f64
        }
    }
}

/// Disposition states of a correlation-table slot.
const SLOT_EMPTY: u8 = 0;
const SLOT_BUFFERED: u8 = 1;
const SLOT_EVICTED: u8 = 2;
const SLOT_DROPPED: u8 = 3;

/// One direct-mapped slot: the line a prefetch targeted plus what became
/// of it.
#[derive(Debug, Clone, Copy)]
struct Slot {
    line: u64,
    state: u8,
}

/// Bounded, direct-mapped table matching demand misses back to the
/// prefetch that should have covered them. Collisions overwrite (the
/// table answers "what happened to the *most recent* prefetch of this
/// line", which is exactly the causal question); the memory bound and
/// the absence of allocation are what make it hot-path safe.
#[derive(Debug, Clone)]
pub struct CorrelationTable {
    slots: Vec<Slot>,
    shift: u32,
}

impl CorrelationTable {
    fn new(slots: usize) -> Self {
        assert!(slots.is_power_of_two(), "slot count must be a power of two");
        CorrelationTable {
            slots: vec![
                Slot {
                    line: 0,
                    state: SLOT_EMPTY
                };
                slots
            ],
            shift: 64 - slots.trailing_zeros(),
        }
    }

    #[inline]
    fn index(&self, line: u64) -> usize {
        (line.wrapping_mul(HASH_MUL) >> self.shift) as usize
    }

    #[inline]
    fn mark(&mut self, line: u64, state: u8) {
        let i = self.index(line);
        self.slots[i] = Slot { line, state };
    }

    /// Removes and returns the disposition recorded for `line`
    /// ([`SLOT_EMPTY`] when unknown or displaced by a collision).
    #[inline]
    fn consume(&mut self, line: u64) -> u8 {
        let i = self.index(line);
        let slot = self.slots[i];
        if slot.state != SLOT_EMPTY && slot.line == line {
            self.slots[i].state = SLOT_EMPTY;
            slot.state
        } else {
            SLOT_EMPTY
        }
    }
}

/// Run identity stored in a trace file header (mirrors the labelling of
/// `RunReport`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceMeta {
    /// Workload display name.
    pub workload: String,
    /// Prefetcher / system label.
    pub component: String,
    /// Run kind (`coverage`, `timing`).
    pub kind: String,
    /// Trace events generated per workload.
    pub events: u64,
    /// Workload generator seed.
    pub seed: u64,
    /// Warmup prefix in accesses.
    pub warmup: u64,
}

/// The flight recorder: ring of recent events + correlation table +
/// online attribution. Cloneable so `Telemetry` handles stay cloneable.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    ring: Vec<TraceEvent>,
    /// Total events ever recorded (the ring keeps the last `capacity`).
    recorded: u64,
    attribution: Attribution,
    table: CorrelationTable,
}

impl FlightRecorder {
    /// Creates a recorder keeping the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder needs capacity");
        FlightRecorder {
            capacity,
            ring: Vec::with_capacity(capacity),
            recorded: 0,
            attribution: Attribution::default(),
            table: CorrelationTable::new(CORRELATION_SLOTS),
        }
    }

    #[inline]
    fn push(
        &mut self,
        kind: EventKind,
        cause: LossCause,
        stream: u32,
        time: u64,
        line: u64,
        aux: u64,
    ) {
        let ev = TraceEvent {
            kind: kind as u8,
            cause: cause as u8,
            stream,
            time,
            line,
            aux,
        };
        if self.ring.len() < self.capacity {
            self.ring.push(ev);
        } else {
            // Injected bug for the checker self-test: overwrite one slot
            // past the true wrap position, scrambling the ring's
            // oldest-first order once it wraps.
            #[cfg(domino_mutate)]
            let wrap_skew = u64::from(crate::mutate_active("ring_wrap_off_by_one"));
            #[cfg(not(domino_mutate))]
            let wrap_skew = 0u64;
            let idx = ((self.recorded + wrap_skew) % self.capacity as u64) as usize;
            self.ring[idx] = ev;
        }
        self.recorded += 1;
    }

    #[inline]
    fn tag(stream: Option<u32>) -> u32 {
        stream.unwrap_or(NO_STREAM)
    }

    /// A prefetch request was issued (`trips` serial metadata trips).
    #[inline]
    pub fn issue(&mut self, time: u64, line: u64, stream: Option<u32>, trips: u8) {
        self.push(
            EventKind::Issue,
            LossCause::None,
            Self::tag(stream),
            time,
            line,
            u64::from(trips),
        );
    }

    /// An off-chip metadata lookup of `blocks` blocks started.
    #[inline]
    pub fn meta_start(&mut self, time: u64, blocks: u64) {
        self.push(
            EventKind::MetaStart,
            LossCause::None,
            NO_STREAM,
            time,
            0,
            blocks,
        );
    }

    /// A metadata lookup completed after `round_trip` time units.
    #[inline]
    pub fn meta_end(&mut self, time: u64, round_trip: u64) {
        self.push(
            EventKind::MetaEnd,
            LossCause::None,
            NO_STREAM,
            time,
            0,
            round_trip,
        );
    }

    /// A prefetched block entered the buffer, arriving at `ready_at`.
    #[inline]
    pub fn fill(&mut self, time: u64, line: u64, stream: Option<u32>, ready_at: u64) {
        self.table.mark(line, SLOT_BUFFERED);
        self.push(
            EventKind::Fill,
            LossCause::None,
            Self::tag(stream),
            time,
            line,
            ready_at,
        );
    }

    /// A buffered block was evicted or discarded before any use.
    #[inline]
    pub fn evict_unused(&mut self, time: u64, line: u64, stream: Option<u32>) {
        self.table.mark(line, SLOT_EVICTED);
        self.push(
            EventKind::EvictUnused,
            LossCause::None,
            Self::tag(stream),
            time,
            line,
            0,
        );
    }

    /// A prefetch was issued but never buffered (`reason`: 1 = duplicate
    /// insert, 2 = line already cached).
    #[inline]
    pub fn drop_unbuffered(&mut self, time: u64, line: u64, stream: Option<u32>, reason: u64) {
        self.table.mark(line, SLOT_DROPPED);
        self.push(
            EventKind::DropBufferFull,
            LossCause::None,
            Self::tag(stream),
            time,
            line,
            reason,
        );
    }

    /// An index/EIT entry for `line` was replaced (metadata loss).
    #[inline]
    pub fn eit_replace(&mut self, time: u64, line: u64) {
        self.push(
            EventKind::EitReplace,
            LossCause::None,
            NO_STREAM,
            time,
            line,
            0,
        );
    }

    /// A demand miss hit the buffer with its data ready (covered);
    /// `distance` is the prefetch-to-use distance.
    #[inline]
    pub fn demand_hit(&mut self, time: u64, line: u64, stream: Option<u32>, distance: u64) {
        self.attribution.demand_misses += 1;
        self.attribution.covered += 1;
        self.table.consume(line);
        self.push(
            EventKind::DemandHit,
            LossCause::Covered,
            Self::tag(stream),
            time,
            line,
            distance,
        );
    }

    /// A demand miss hit a block still in flight; `residual` is the
    /// extra wait.
    #[inline]
    pub fn late_arrival(&mut self, time: u64, line: u64, stream: Option<u32>, residual: u64) {
        self.attribution.demand_misses += 1;
        self.attribution.late += 1;
        self.table.consume(line);
        self.push(
            EventKind::LateArrival,
            LossCause::Late,
            Self::tag(stream),
            time,
            line,
            residual,
        );
    }

    /// An uncovered demand miss. The correlation table decides between
    /// evicted-unused and dropped; otherwise `metadata_knows` (the
    /// prefetcher's own metadata probe) splits mispredicted from
    /// no-metadata.
    #[inline]
    pub fn demand_miss(&mut self, time: u64, line: u64, metadata_knows: bool) {
        self.attribution.demand_misses += 1;
        let cause = match self.table.consume(line) {
            SLOT_EVICTED => {
                self.attribution.evicted_unused += 1;
                LossCause::EvictedUnused
            }
            SLOT_DROPPED => {
                self.attribution.dropped += 1;
                LossCause::Dropped
            }
            _ if metadata_knows => {
                self.attribution.mispredicted += 1;
                LossCause::Mispredicted
            }
            _ => {
                self.attribution.no_metadata += 1;
                LossCause::NoMetadata
            }
        };
        self.push(EventKind::DemandMiss, cause, NO_STREAM, time, line, 0);
    }

    /// The online attribution counters.
    pub fn attribution(&self) -> Attribution {
        self.attribution
    }

    /// Total events ever recorded (≥ [`FlightRecorder::len`]).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events currently stored.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no event was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.recorded == 0
    }

    /// Whether the ring discarded old events.
    pub fn wrapped(&self) -> bool {
        self.recorded > self.capacity as u64
    }

    /// Stored events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        let split = if self.wrapped() {
            (self.recorded % self.capacity as u64) as usize
        } else {
            0
        };
        self.ring[split..].iter().chain(self.ring[..split].iter())
    }

    /// Serializes the recorder (header + stored events) in the
    /// [module-level](self) binary format.
    pub fn to_bytes(&self, meta: &TraceMeta) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.ring.len() * RECORD_BYTES);
        out.extend_from_slice(TRACE_MAGIC);
        put_u32(&mut out, TRACE_VERSION);
        put_u32(&mut out, 0);
        put_str(&mut out, &meta.workload);
        put_str(&mut out, &meta.component);
        put_str(&mut out, &meta.kind);
        put_u64(&mut out, meta.events);
        put_u64(&mut out, meta.seed);
        put_u64(&mut out, meta.warmup);
        put_u64(&mut out, self.capacity as u64);
        put_u64(&mut out, self.recorded);
        let a = self.attribution;
        for v in [
            a.demand_misses,
            a.covered,
            a.late,
            a.evicted_unused,
            a.dropped,
            a.mispredicted,
            a.no_metadata,
        ] {
            put_u64(&mut out, v);
        }
        put_u64(&mut out, self.ring.len() as u64);
        for ev in self.events() {
            ev.encode(&mut out);
        }
        out
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Little-endian cursor over a serialized trace.
struct Cursor<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.b.len() {
            return Err(format!(
                "truncated trace: need {n} bytes at offset {}, have {}",
                self.pos,
                self.b.len() - self.pos
            ));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn string(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("invalid UTF-8 label: {e}"))
    }
}

/// A parsed trace file: header + events, ready for replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFile {
    /// Run identity.
    pub meta: TraceMeta,
    /// Ring capacity of the producing recorder.
    pub capacity: u64,
    /// Total events the recorder ever saw.
    pub recorded: u64,
    /// Online attribution counters from the header.
    pub attribution: Attribution,
    /// Stored events, oldest first.
    pub events: Vec<TraceEvent>,
}

impl TraceFile {
    /// Parses a serialized trace.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformation found (bad magic,
    /// unsupported version, truncation, invalid labels).
    pub fn from_bytes(b: &[u8]) -> Result<TraceFile, String> {
        let mut c = Cursor { b, pos: 0 };
        if c.take(8)? != TRACE_MAGIC {
            return Err("bad magic: not a domino flight-recorder trace".into());
        }
        let version = c.u32()?;
        if version != TRACE_VERSION {
            return Err(format!("unsupported trace version {version}"));
        }
        let _reserved = c.u32()?;
        let meta = TraceMeta {
            workload: c.string()?,
            component: c.string()?,
            kind: c.string()?,
            events: c.u64()?,
            seed: c.u64()?,
            warmup: c.u64()?,
        };
        let capacity = c.u64()?;
        let recorded = c.u64()?;
        let attribution = Attribution {
            demand_misses: c.u64()?,
            covered: c.u64()?,
            late: c.u64()?,
            evicted_unused: c.u64()?,
            dropped: c.u64()?,
            mispredicted: c.u64()?,
            no_metadata: c.u64()?,
        };
        let count = c.u64()? as usize;
        let mut events = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let rec: &[u8; RECORD_BYTES] =
                c.take(RECORD_BYTES)?.try_into().expect("fixed record size");
            events.push(TraceEvent::decode(rec));
        }
        if c.pos != b.len() {
            return Err(format!("{} trailing bytes after records", b.len() - c.pos));
        }
        Ok(TraceFile {
            meta,
            capacity,
            recorded,
            attribution,
            events,
        })
    }

    /// Whether the producing ring discarded old events.
    pub fn wrapped(&self) -> bool {
        self.recorded > self.capacity
    }

    /// Recomputes the attribution by replaying the stored
    /// miss-classifying events (exact only when the ring did not wrap).
    pub fn replayed_attribution(&self) -> Attribution {
        let mut a = Attribution::default();
        for ev in &self.events {
            match EventKind::from_u8(ev.kind) {
                Some(EventKind::DemandHit) => {
                    a.demand_misses += 1;
                    a.covered += 1;
                }
                Some(EventKind::LateArrival) => {
                    a.demand_misses += 1;
                    a.late += 1;
                }
                Some(EventKind::DemandMiss) => {
                    a.demand_misses += 1;
                    match LossCause::from_u8(ev.cause) {
                        Some(LossCause::EvictedUnused) => a.evicted_unused += 1,
                        Some(LossCause::Dropped) => a.dropped += 1,
                        Some(LossCause::Mispredicted) => a.mispredicted += 1,
                        _ => a.no_metadata += 1,
                    }
                }
                _ => {}
            }
        }
        a
    }

    /// Checks the file's invariants: every stored event decodes, the
    /// header buckets sum to the header miss count, and — when the ring
    /// did not wrap — replaying the events reproduces the header
    /// attribution exactly.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn verify(&self) -> Result<(), String> {
        for (i, ev) in self.events.iter().enumerate() {
            if EventKind::from_u8(ev.kind).is_none() {
                return Err(format!("record {i}: unknown event kind {}", ev.kind));
            }
            if LossCause::from_u8(ev.cause).is_none() {
                return Err(format!("record {i}: unknown loss cause {}", ev.cause));
            }
        }
        let a = self.attribution;
        if !a.is_conserved() {
            return Err(format!(
                "attribution not conserved: buckets sum to {} but demand_misses = {}",
                a.bucket_sum(),
                a.demand_misses
            ));
        }
        if !self.wrapped() {
            if self.events.len() as u64 != self.recorded {
                return Err(format!(
                    "unwrapped ring stores {} events but recorded {}",
                    self.events.len(),
                    self.recorded
                ));
            }
            let replayed = self.replayed_attribution();
            if replayed != a {
                return Err(format!(
                    "replayed attribution {replayed:?} disagrees with header {a:?}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> TraceMeta {
        TraceMeta {
            workload: "OLTP".into(),
            component: "Domino".into(),
            kind: "coverage".into(),
            events: 1000,
            seed: 42,
            warmup: 250,
        }
    }

    #[test]
    fn ring_wraps_and_keeps_the_tail() {
        let mut r = FlightRecorder::new(4);
        for t in 0..10u64 {
            r.issue(t, 100 + t, None, 1);
        }
        assert_eq!(r.recorded(), 10);
        assert_eq!(r.len(), 4);
        assert!(r.wrapped());
        let times: Vec<u64> = r.events().map(|e| e.time).collect();
        assert_eq!(times, vec![6, 7, 8, 9], "chronological tail");
    }

    #[test]
    fn unwrapped_ring_is_chronological_from_zero() {
        let mut r = FlightRecorder::new(8);
        for t in 0..5u64 {
            r.issue(t, t, Some(3), 0);
        }
        assert!(!r.wrapped());
        let times: Vec<u64> = r.events().map(|e| e.time).collect();
        assert_eq!(times, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn attribution_buckets_always_sum_to_misses() {
        let mut r = FlightRecorder::new(4); // tiny ring: wraps constantly
        for t in 0..100u64 {
            let line = t % 7;
            match t % 5 {
                0 => {
                    r.fill(t, line, None, t);
                    r.demand_hit(t, line, None, 1);
                }
                1 => r.late_arrival(t, line, None, 10),
                2 => {
                    r.fill(t, line, None, t);
                    r.evict_unused(t, line, None);
                    r.demand_miss(t, line, true);
                }
                3 => {
                    r.drop_unbuffered(t, line, None, 1);
                    r.demand_miss(t, line, true);
                }
                _ => r.demand_miss(t, line, false),
            }
        }
        let a = r.attribution();
        assert!(a.is_conserved(), "{a:?}");
        assert_eq!(a.demand_misses, 100);
        assert!(a.covered > 0 && a.late > 0 && a.evicted_unused > 0);
        assert!(a.dropped > 0 && a.no_metadata > 0);
    }

    #[test]
    fn correlation_table_classifies_causes() {
        let mut r = FlightRecorder::new(64);
        // Evicted before use → evicted_unused.
        r.fill(0, 10, Some(1), 0);
        r.evict_unused(1, 10, Some(1));
        r.demand_miss(2, 10, true);
        // Dropped insert → dropped.
        r.drop_unbuffered(3, 20, None, 2);
        r.demand_miss(4, 20, false);
        // Unknown line, metadata knows it → mispredicted.
        r.demand_miss(5, 30, true);
        // Unknown line, no metadata → no_metadata.
        r.demand_miss(6, 40, false);
        let a = r.attribution();
        assert_eq!(
            (a.evicted_unused, a.dropped, a.mispredicted, a.no_metadata),
            (1, 1, 1, 1)
        );
        // Each disposition is consumed: a second miss on 10 falls through
        // to the metadata probe.
        r.demand_miss(7, 10, false);
        assert_eq!(r.attribution().no_metadata, 2);
    }

    #[test]
    fn roundtrip_and_verify() {
        let mut r = FlightRecorder::new(128);
        r.meta_start(0, 1);
        r.meta_end(45, 45);
        r.issue(45, 7, Some(2), 1);
        r.fill(45, 7, Some(2), 90);
        r.demand_hit(100, 7, Some(2), 55);
        r.eit_replace(101, 99);
        r.demand_miss(102, 11, false);
        let bytes = r.to_bytes(&meta());
        let f = TraceFile::from_bytes(&bytes).expect("parse");
        assert_eq!(f.meta, meta());
        assert_eq!(f.recorded, 7);
        assert!(!f.wrapped());
        assert_eq!(f.events.len(), 7);
        assert_eq!(f.attribution, r.attribution());
        f.verify().expect("invariants hold");
        assert_eq!(f.replayed_attribution(), f.attribution);
    }

    #[test]
    fn wrapped_file_still_verifies_header_conservation() {
        let mut r = FlightRecorder::new(2);
        for t in 0..50u64 {
            r.demand_miss(t, t, false);
        }
        let bytes = r.to_bytes(&meta());
        let f = TraceFile::from_bytes(&bytes).expect("parse");
        assert!(f.wrapped());
        assert_eq!(f.events.len(), 2);
        assert_eq!(f.attribution.demand_misses, 50);
        f.verify().expect("header conservation is wrap-independent");
    }

    #[test]
    fn verify_rejects_broken_conservation() {
        let mut r = FlightRecorder::new(8);
        r.demand_hit(0, 1, None, 0);
        let bytes = r.to_bytes(&meta());
        let mut f = TraceFile::from_bytes(&bytes).expect("parse");
        f.attribution.covered = 5; // corrupt a bucket
        assert!(f.verify().is_err());
    }

    #[test]
    fn max_u64_payloads_roundtrip() {
        let mut r = FlightRecorder::new(4);
        r.push(
            EventKind::Issue,
            LossCause::None,
            u32::MAX - 1,
            u64::MAX,
            u64::MAX,
            u64::MAX,
        );
        let bytes = r.to_bytes(&meta());
        let f = TraceFile::from_bytes(&bytes).expect("parse");
        let ev = f.events[0];
        assert_eq!((ev.time, ev.line, ev.aux), (u64::MAX, u64::MAX, u64::MAX));
        assert_eq!(ev.stream, u32::MAX - 1);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TraceFile::from_bytes(b"not a trace").is_err());
        let mut bytes = FlightRecorder::new(2).to_bytes(&meta());
        bytes[8] = 9; // version
        assert!(TraceFile::from_bytes(&bytes).is_err());
        let mut truncated = FlightRecorder::new(2).to_bytes(&meta());
        truncated.truncate(truncated.len() - 1);
        // Truncation inside the header/labels is caught.
        assert!(TraceFile::from_bytes(&truncated[..20]).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = FlightRecorder::new(2).to_bytes(&meta());
        bytes.push(0);
        assert!(TraceFile::from_bytes(&bytes).is_err());
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_panics() {
        FlightRecorder::new(0);
    }
}
