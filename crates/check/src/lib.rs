//! Differential simulation checker for the Domino reproduction.
//!
//! The repo carries two independent replay engines (`sim::engine`
//! coverage and `sim::timing` interval timing) over aggressively
//! optimized flat data structures. Nothing about a single engine run
//! says whether those layers are *right* — a layout bug would silently
//! skew every reproduced figure. This crate turns the cross-checks into
//! enforceable tooling:
//!
//! * [`gen`] — a deterministic trace fuzzer: seeded generators for
//!   stride, pointer-chase, irregular, and adversarial-alias workloads,
//!   plus seeded mutations of the cached workload-model traces;
//! * [`oracle`] — three oracle tiers. **Cross-engine differential**:
//!   wherever the coverage and timing engines overlap semantically
//!   (demand-miss counts, covered misses, metadata traffic, final
//!   `knows_line` state) they must agree, and a one-core multicore run
//!   must be bit-identical to the single-core timing engine.
//!   **Model-based**: the same event stream drives the optimized
//!   structures and small obviously-correct [`reference`] models
//!   (nested-`Vec` EIT vs the flat slab, linear-scan MSHRs vs the
//!   min-heap, `Vec` prefetch buffer, per-set-`Vec` cache)
//!   step-for-step. **Invariant audit**: flight-recorder bucket
//!   conservation, ring chronology, per-epoch counter monotonicity, and
//!   prefetch-buffer lifetime conservation, read through the existing
//!   telemetry hooks;
//! * [`shrink`] — on failure, halving plus single-event-deletion passes
//!   rerun the oracle to find a minimal reproducing trace;
//! * [`repro`] — the `DMNOCHK1` reproducer file format (a sibling of
//!   the flight recorder's `DMNOFLT1`), replayed exactly by
//!   `domino-check --replay`;
//! * [`selftest`] — known bugs injected behind `#[cfg(domino_mutate)]`
//!   across the core/mem/telemetry/sim crates; the self-test asserts
//!   the fuzzer catches every one, proving the oracles have teeth.
//!
//! The `domino-check` binary drives all of this; see `TESTING.md` at
//! the repo root for the operational guide.

pub mod gen;
pub mod oracle;
pub mod reference;
pub mod repro;
pub mod selftest;
pub mod shrink;

pub use gen::Generator;
pub use oracle::{check_reference_models, check_system_trace, check_trace, Violation};
pub use repro::Reproducer;
pub use shrink::shrink;
