//! Minimal SVG rendering of [`FigureTable`]s as grouped bar charts —
//! no dependencies, just enough to eyeball a figure next to the paper's.
//!
//! ```no_run
//! use domino_sim::figures::{fig02, Scale};
//! use domino_sim::svg::render_bar_chart;
//!
//! let table = fig02(&Scale::small());
//! std::fs::write("fig02.svg", render_bar_chart(&table)).unwrap();
//! ```

use crate::report::FigureTable;

/// Series colours (colour-blind-safe qualitative palette).
const PALETTE: [&str; 8] = [
    "#4477AA", "#EE6677", "#228833", "#CCBB44", "#66CCEE", "#AA3377", "#BBBBBB", "#222255",
];

/// Geometry of the rendered chart.
#[derive(Debug, Clone, Copy)]
struct Layout {
    width: f64,
    height: f64,
    margin_left: f64,
    margin_bottom: f64,
    margin_top: f64,
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders the table as a grouped bar chart (rows on the x-axis, one bar
/// per column within each group). `NaN` cells are skipped.
pub fn render_bar_chart(table: &FigureTable) -> String {
    let layout = Layout {
        width: 80.0 + table.rows.len() as f64 * (table.columns.len() as f64 * 14.0 + 18.0),
        height: 360.0,
        margin_left: 56.0,
        margin_bottom: 90.0,
        margin_top: 42.0,
    };
    let max_value = table
        .values
        .iter()
        .flatten()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let plot_h = layout.height - layout.margin_bottom - layout.margin_top;
    let mut out = String::new();
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
         viewBox=\"0 0 {w} {h}\" font-family=\"sans-serif\" font-size=\"11\">\n",
        w = layout.width.ceil(),
        h = layout.height
    ));
    out.push_str(&format!(
        "<text x=\"{}\" y=\"20\" font-size=\"13\" font-weight=\"bold\">{}</text>\n",
        layout.margin_left,
        esc(&table.title)
    ));
    // Y axis with 5 gridlines.
    for k in 0..=5 {
        let frac = k as f64 / 5.0;
        let y = layout.margin_top + plot_h * (1.0 - frac);
        let label = if table.percent {
            format!("{:.0}%", max_value * frac * 100.0)
        } else {
            format!("{:.2}", max_value * frac)
        };
        out.push_str(&format!(
            "<line x1=\"{x1}\" y1=\"{y:.1}\" x2=\"{x2}\" y2=\"{y:.1}\" \
             stroke=\"#dddddd\"/>\n<text x=\"{tx}\" y=\"{ty:.1}\" \
             text-anchor=\"end\">{label}</text>\n",
            x1 = layout.margin_left,
            x2 = layout.width - 8.0,
            tx = layout.margin_left - 6.0,
            ty = y + 4.0,
        ));
    }
    // Bars.
    let group_w = table.columns.len() as f64 * 14.0;
    for (r, (label, row)) in table.rows.iter().zip(&table.values).enumerate() {
        let gx = layout.margin_left + 8.0 + r as f64 * (group_w + 18.0);
        for (c, &v) in row.iter().enumerate() {
            if v.is_nan() {
                continue;
            }
            let h = (v / max_value).clamp(0.0, 1.0) * plot_h;
            let x = gx + c as f64 * 14.0;
            let y = layout.margin_top + plot_h - h;
            out.push_str(&format!(
                "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"12\" height=\"{h:.1}\" \
                 fill=\"{}\"><title>{}: {} = {v:.4}</title></rect>\n",
                PALETTE[c % PALETTE.len()],
                esc(label),
                esc(&table.columns[c]),
            ));
        }
        // Rotated row label.
        let lx = gx + group_w / 2.0;
        let ly = layout.margin_top + plot_h + 10.0;
        out.push_str(&format!(
            "<text x=\"{lx:.1}\" y=\"{ly:.1}\" text-anchor=\"end\" \
             transform=\"rotate(-40 {lx:.1} {ly:.1})\">{}</text>\n",
            esc(label)
        ));
    }
    // Legend.
    let mut lx = layout.margin_left;
    let ly = layout.height - 12.0;
    for (c, col) in table.columns.iter().enumerate() {
        out.push_str(&format!(
            "<rect x=\"{lx:.1}\" y=\"{y:.1}\" width=\"10\" height=\"10\" fill=\"{}\"/>\n\
             <text x=\"{tx:.1}\" y=\"{ty:.1}\">{}</text>\n",
            PALETTE[c % PALETTE.len()],
            esc(col),
            y = ly - 9.0,
            tx = lx + 14.0,
            ty = ly,
        ));
        lx += 14.0 + 7.0 * col.len() as f64 + 18.0;
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureTable {
        let mut t = FigureTable::new("Test figure", "w", vec!["A".into(), "B".into()]);
        t.percent = true;
        t.push_row("alpha", vec![0.25, 0.5]);
        t.push_row("beta", vec![0.75, f64::NAN]);
        t
    }

    #[test]
    fn renders_wellformed_svg() {
        let svg = render_bar_chart(&sample());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<svg").count(), 1);
        // Three bars (NaN skipped), two legend swatches.
        assert_eq!(svg.matches("<rect").count(), 3 + 2);
        assert!(svg.contains("Test figure"));
        assert!(svg.contains("alpha"));
    }

    #[test]
    fn escapes_markup_in_labels() {
        let mut t = FigureTable::new("a <b> & c", "w", vec!["x".into()]);
        t.push_row("r<1>", vec![1.0]);
        let svg = render_bar_chart(&t);
        assert!(svg.contains("a &lt;b&gt; &amp; c"));
        assert!(svg.contains("r&lt;1&gt;"));
        assert!(!svg.contains("r<1>"));
    }

    #[test]
    fn empty_table_still_renders() {
        let t = FigureTable::new("empty", "w", vec!["x".into()]);
        let svg = render_bar_chart(&t);
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn bar_heights_scale_with_values() {
        let svg = render_bar_chart(&sample());
        // Max value 0.75 gets the full plot height; 0.25 a third of it.
        let heights: Vec<f64> = svg
            .lines()
            .filter(|l| l.contains("<rect") && l.contains("<title>"))
            .map(|l| {
                let h = l.split("height=\"").nth(1).unwrap();
                h.split('"').next().unwrap().parse().unwrap()
            })
            .collect();
        let max = heights.iter().copied().fold(0.0f64, f64::max);
        let min = heights.iter().copied().fold(f64::MAX, f64::min);
        assert!((min / max - 1.0 / 3.0).abs() < 0.01, "{min} vs {max}");
    }
}
