/root/repo/target/release/deps/explore-cc3b5b3342518040.d: crates/sim/src/bin/explore.rs

/root/repo/target/release/deps/explore-cc3b5b3342518040: crates/sim/src/bin/explore.rs

crates/sim/src/bin/explore.rs:
