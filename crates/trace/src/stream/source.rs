//! Streaming event sources: the abstraction the engines consume.
//!
//! An [`EventSource`] hands out the trace as consecutive chunks of
//! [`AccessEvent`]s. The engines (`run_coverage_streamed`,
//! `run_timing_streamed` in `domino-sim`) are chunk-agnostic — the batched
//! SoA loop is byte-identical under any partition of the trace — so the
//! source only controls *where the bytes live*:
//!
//! * [`SliceSource`] — an in-memory slice (the cached path, for parity
//!   checks and as the adapter from `Arc<[AccessEvent]>`);
//! * [`FileSource`] — a `DMNOTRC1` file (raw or Sequitur-compressed)
//!   decoded chunk-by-chunk on a **background read-ahead thread** with
//!   three recycled buffers, so decode and file I/O overlap simulation and
//!   peak resident trace memory stays bounded by a small multiple of the
//!   chunk size regardless of trace length.
//!
//! Every source reports `peak_resident_bytes()` from its own allocation
//! accounting and `budget_bytes()` as the documented bound, which is what
//! the out-of-core acceptance test asserts.

use std::io::{Read, Seek};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::event::AccessEvent;
use crate::stream::format::{TraceFileError, TraceReader, RECORD_BYTES};

/// A stream of trace events delivered in chunks.
///
/// `next_chunk` fills `out` with the next chunk (clearing it first) and
/// returns the number of events delivered; `0` means end of trace. Chunk
/// sizes are a property of the source; consumers must not assume any
/// particular granularity — the engines re-split at batch boundaries.
pub trait EventSource: Send {
    /// Total events the source will deliver.
    fn total_events(&self) -> u64;

    /// The source's chunk granularity in events (the last chunk may be
    /// short).
    fn chunk_events(&self) -> u32;

    /// Delivers the next chunk into `out`, returning its length (0 = EOF).
    ///
    /// # Errors
    ///
    /// Decode or I/O failure in the underlying trace.
    fn next_chunk(&mut self, out: &mut Vec<AccessEvent>) -> Result<usize, TraceFileError>;

    /// Peak trace-resident bytes this source has used so far, from its own
    /// allocation accounting.
    fn peak_resident_bytes(&self) -> u64;

    /// Documented upper bound on [`EventSource::peak_resident_bytes`] for
    /// this source. For file-backed sources this is a small multiple of
    /// the chunk size, independent of trace length; for in-memory slices
    /// it is the whole slice.
    fn budget_bytes(&self) -> u64;
}

/// An in-memory trace served in fixed-size chunks.
#[derive(Debug, Clone)]
pub struct SliceSource {
    trace: Arc<[AccessEvent]>,
    chunk_events: u32,
    pos: usize,
}

impl SliceSource {
    /// Wraps a shared slice.
    pub fn new(trace: Arc<[AccessEvent]>, chunk_events: u32) -> Self {
        SliceSource {
            trace,
            chunk_events: chunk_events.max(1),
            pos: 0,
        }
    }

    /// Wraps an owned vector.
    pub fn from_vec(trace: Vec<AccessEvent>, chunk_events: u32) -> Self {
        SliceSource::new(trace.into(), chunk_events)
    }
}

impl EventSource for SliceSource {
    fn total_events(&self) -> u64 {
        self.trace.len() as u64
    }

    fn chunk_events(&self) -> u32 {
        self.chunk_events
    }

    fn next_chunk(&mut self, out: &mut Vec<AccessEvent>) -> Result<usize, TraceFileError> {
        out.clear();
        let end = (self.pos + self.chunk_events as usize).min(self.trace.len());
        out.extend_from_slice(&self.trace[self.pos..end]);
        let n = end - self.pos;
        self.pos = end;
        Ok(n)
    }

    fn peak_resident_bytes(&self) -> u64 {
        // The whole slice is resident for the source's lifetime; honest
        // accounting is what makes the cached-vs-streamed comparison mean
        // something.
        (self.trace.len() * RECORD_BYTES) as u64 + (self.chunk_events as u64) * RECORD_BYTES as u64
    }

    fn budget_bytes(&self) -> u64 {
        self.peak_resident_bytes()
    }
}

/// How many chunk-sized buffer footprints [`FileSource`] is allowed: three
/// ring buffers (one draining, up to two decoded ahead), the
/// encoded-payload scratch, and codec dictionary/grammar temporaries, each
/// bounded by roughly one chunk of records (compressed payloads of
/// repetitive traces are smaller; pathological incompressible chunks still
/// fit the slack multiple).
pub const FILE_SOURCE_BUDGET_CHUNKS: u64 = 7;

/// Fixed allowance for channel plumbing and small codec overheads.
pub const FILE_SOURCE_BUDGET_SLACK: u64 = 4096;

enum Delivery {
    Chunk(Vec<AccessEvent>, u64),
    Failed(TraceFileError),
}

/// A `DMNOTRC1` file streamed with double-buffered read-ahead.
///
/// A background thread owns the [`TraceReader`] and decodes upcoming
/// chunks into recycled buffers while the consumer drains the current
/// one, so file I/O and (for compressed traces) grammar expansion overlap
/// simulation. Exactly three event buffers circulate; peak resident memory
/// is `budget_bytes()` — a multiple of the chunk size, never of the trace.
#[derive(Debug)]
pub struct FileSource {
    total: u64,
    chunk_events: u32,
    full_rx: Option<Receiver<Delivery>>,
    recycle_tx: Option<Sender<Vec<AccessEvent>>>,
    handle: Option<JoinHandle<()>>,
    peak: Arc<AtomicU64>,
    done: bool,
}

impl std::fmt::Debug for Delivery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Delivery::Chunk(events, peak) => {
                write!(f, "Chunk({} events, peak {peak})", events.len())
            }
            Delivery::Failed(e) => write!(f, "Failed({e})"),
        }
    }
}

impl FileSource {
    /// Opens a trace file and starts the read-ahead thread.
    ///
    /// # Errors
    ///
    /// Any [`TraceFileError`] from opening/validating the file.
    pub fn open(path: &Path) -> Result<Self, TraceFileError> {
        let reader = TraceReader::open(path)?;
        Ok(FileSource::from_reader(reader))
    }

    /// Starts a read-ahead stream over an already-validated reader.
    pub fn from_reader<R>(mut reader: TraceReader<R>) -> Self
    where
        R: Read + Seek + Send + 'static,
    {
        let total = reader.events();
        let chunk_events = reader.chunk_events();
        let chunks = reader.chunk_count();
        let peak = Arc::new(AtomicU64::new(0));
        // Capacity-2 data channel + three circulating buffers = the
        // decoder runs up to two chunks ahead of the consumer, so a
        // scheduling hiccup on either side does not stall the other.
        let (full_tx, full_rx): (SyncSender<Delivery>, _) = sync_channel(2);
        let (recycle_tx, recycle_rx) = channel::<Vec<AccessEvent>>();
        for _ in 0..3 {
            recycle_tx
                .send(Vec::with_capacity(chunk_events as usize))
                .expect("receiver alive");
        }
        let thread_peak = Arc::clone(&peak);
        let buffer_bytes = 3 * u64::from(chunk_events) * RECORD_BYTES as u64;
        let handle = std::thread::spawn(move || {
            for idx in 0..chunks {
                // A closed recycle channel means the consumer is gone.
                let Ok(mut buf) = recycle_rx.recv() else {
                    return;
                };
                match reader.read_chunk_into(idx, &mut buf) {
                    Ok(()) => {
                        let resident = buffer_bytes + reader.peak_scratch_bytes();
                        thread_peak.fetch_max(resident, Ordering::Relaxed);
                        if full_tx.send(Delivery::Chunk(buf, resident)).is_err() {
                            return;
                        }
                    }
                    Err(e) => {
                        let _ = full_tx.send(Delivery::Failed(e));
                        return;
                    }
                }
            }
        });
        FileSource {
            total,
            chunk_events,
            full_rx: Some(full_rx),
            recycle_tx: Some(recycle_tx),
            handle: Some(handle),
            peak,
            done: chunks == 0,
        }
    }
}

impl EventSource for FileSource {
    fn total_events(&self) -> u64 {
        self.total
    }

    fn chunk_events(&self) -> u32 {
        self.chunk_events
    }

    fn next_chunk(&mut self, out: &mut Vec<AccessEvent>) -> Result<usize, TraceFileError> {
        out.clear();
        if self.done {
            return Ok(0);
        }
        let rx = self.full_rx.as_ref().expect("receiver lives until drop");
        match rx.recv() {
            Ok(Delivery::Chunk(mut buf, _)) => {
                std::mem::swap(out, &mut buf);
                // Hand the drained buffer back for the chunk after next;
                // a finished thread just leaves it unconsumed.
                if let Some(tx) = &self.recycle_tx {
                    let _ = tx.send(buf);
                }
                Ok(out.len())
            }
            Ok(Delivery::Failed(e)) => {
                self.done = true;
                Err(e)
            }
            // Sender dropped: the thread delivered every chunk and exited.
            Err(_) => {
                self.done = true;
                Ok(0)
            }
        }
    }

    fn peak_resident_bytes(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    fn budget_bytes(&self) -> u64 {
        FILE_SOURCE_BUDGET_CHUNKS * u64::from(self.chunk_events) * RECORD_BYTES as u64
            + FILE_SOURCE_BUDGET_SLACK
    }
}

impl Drop for FileSource {
    fn drop(&mut self) {
        // Closing both channels unblocks the thread wherever it is
        // (recv on recycle or send on full), then join for a clean exit.
        self.full_rx.take();
        self.recycle_tx.take();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Drains a source to completion (tool/test convenience).
///
/// # Errors
///
/// Any decode error from the source.
pub fn collect_source(source: &mut dyn EventSource) -> Result<Vec<AccessEvent>, TraceFileError> {
    let mut all = Vec::new();
    let mut chunk = Vec::new();
    while source.next_chunk(&mut chunk)? > 0 {
        all.extend_from_slice(&chunk);
    }
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::format::{write_trace_file, Codec};
    use crate::workload::catalog;

    fn sample(n: usize) -> Vec<AccessEvent> {
        catalog::media_streaming().generator(9).take(n).collect()
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("domino-source-{tag}-{}.dmno", std::process::id()))
    }

    #[test]
    fn slice_source_delivers_everything_in_order() {
        let events = sample(1000);
        for chunk in [1u32, 37, 1000, 5000] {
            let mut src = SliceSource::from_vec(events.clone(), chunk);
            assert_eq!(src.total_events(), 1000);
            assert_eq!(collect_source(&mut src).unwrap(), events);
        }
    }

    #[test]
    fn file_source_round_trips_raw_and_compressed() {
        let events = sample(3000);
        for (tag, codec) in [("raw", Codec::Raw), ("seq", Codec::Sequitur)] {
            let path = temp_path(tag);
            write_trace_file(&path, &events, 256, codec).unwrap();
            let mut src = FileSource::open(&path).unwrap();
            assert_eq!(src.total_events(), 3000);
            assert_eq!(src.chunk_events(), 256);
            assert_eq!(collect_source(&mut src).unwrap(), events);
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn file_source_peak_memory_stays_within_budget_on_10x_trace() {
        // The out-of-core acceptance bound: a trace at least 10x the
        // source's memory budget must stream with peak resident trace
        // bytes inside the budget.
        let chunk_events = 256u32;
        for (tag, codec) in [("big-raw", Codec::Raw), ("big-seq", Codec::Sequitur)] {
            let path = temp_path(tag);
            let mut w =
                super::super::format::TraceWriter::create(&path, chunk_events, codec).unwrap();
            let budget = FILE_SOURCE_BUDGET_CHUNKS * u64::from(chunk_events) * RECORD_BYTES as u64
                + FILE_SOURCE_BUDGET_SLACK;
            let need_events = (budget * 10).div_ceil(RECORD_BYTES as u64) as usize;
            let mut gen = catalog::oltp().generator(5);
            let mut written = 0usize;
            while written < need_events {
                let ev = gen.next().expect("infinite generator");
                w.push(ev).unwrap();
                written += 1;
            }
            w.finish().unwrap();
            let mut src = FileSource::open(&path).unwrap();
            assert!(
                src.total_events() * RECORD_BYTES as u64 >= 10 * src.budget_bytes(),
                "trace must be >= 10x the budget"
            );
            let mut chunk = Vec::new();
            let mut seen = 0u64;
            while src.next_chunk(&mut chunk).unwrap() > 0 {
                seen += chunk.len() as u64;
            }
            assert_eq!(seen, src.total_events());
            let peak = src.peak_resident_bytes();
            assert!(peak > 0, "accounting must have run");
            assert!(
                peak <= src.budget_bytes(),
                "peak {peak} exceeds budget {} ({tag})",
                src.budget_bytes()
            );
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn dropping_a_half_drained_source_joins_cleanly() {
        let events = sample(2000);
        let path = temp_path("drop");
        write_trace_file(&path, &events, 64, Codec::Raw).unwrap();
        let mut src = FileSource::open(&path).unwrap();
        let mut chunk = Vec::new();
        src.next_chunk(&mut chunk).unwrap();
        drop(src); // must not deadlock or panic
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn decode_errors_surface_through_the_source() {
        let events = sample(500);
        let path = temp_path("corrupt");
        write_trace_file(&path, &events, 128, Codec::Raw).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[40 + 130 * RECORD_BYTES] ^= 1; // corrupt chunk 1's payload
        std::fs::write(&path, &bytes).unwrap();
        let mut src = FileSource::open(&path).unwrap();
        let mut chunk = Vec::new();
        assert_eq!(src.next_chunk(&mut chunk).unwrap(), 128);
        let err = loop {
            match src.next_chunk(&mut chunk) {
                Ok(0) => panic!("corruption must surface"),
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert!(
            matches!(err, TraceFileError::DigestMismatch { chunk: 1, .. }),
            "{err}"
        );
        std::fs::remove_file(&path).unwrap();
    }
}
