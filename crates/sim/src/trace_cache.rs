//! Process-wide cache of generated workload traces.
//!
//! Figure runners used to call `spec.generator(seed).take(n)` afresh for
//! every (prefetcher × degree × sweep-point) cell — regenerating the
//! same 300k-event vector four or more times per figure and dozens of
//! times per full `figures` run. This cache generates each distinct
//! `(spec, seed, events)` trace once and hands out `Arc<[AccessEvent]>`
//! clones, which are cheap to share across the [`crate::exec`] worker
//! threads (events are plain `Copy` data, so the slices are `Sync`).
//!
//! Keys use the spec's `Debug` rendering: workload specs are plain
//! config structs whose debug output covers every field, so two specs
//! key equal exactly when they generate identical traces (this also
//! distinguishes the mutated specs of e.g. the MLP-sensitivity study).
//!
//! # Byte budget
//!
//! `DOMINO_TRACE_CACHE_BYTES=N` caps the resident bytes of cached
//! traces (generated and file-backed alike). When a lookup pushes the
//! total over the cap, whole least-recently-used entries are dropped —
//! never partial traces — until the rest fit. Callers already holding
//! an `Arc` keep their trace; eviction only stops *new* lookups from
//! sharing it, so the cap bounds what the cache itself keeps alive.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use domino_trace::event::AccessEvent;
use domino_trace::rng::SimRng;
use domino_trace::stream::{TraceFileError, TraceReader};
use domino_trace::workload::WorkloadSpec;

use crate::config::SystemConfig;
use crate::engine::baseline_miss_sequence;

type Key = (String, u64, usize);
type Cell<T> = Arc<OnceLock<T>>;
type CellMap<T> = OnceLock<Mutex<HashMap<Key, Cell<T>>>>;

/// One trace entry plus its LRU stamp (the global tick at last lookup).
struct TraceSlot {
    cell: Cell<Arc<[AccessEvent]>>,
    stamp: u64,
}

/// The trace map with its LRU clock.
#[derive(Default)]
struct TraceLru {
    map: HashMap<Key, TraceSlot>,
    tick: u64,
}

static TRACES: OnceLock<Mutex<TraceLru>> = OnceLock::new();
static MISS_SEQS: CellMap<Arc<Vec<u64>>> = OnceLock::new();

fn traces() -> &'static Mutex<TraceLru> {
    TRACES.get_or_init(Mutex::default)
}

fn key_of(spec: &WorkloadSpec, events: usize, seed: u64) -> Key {
    (format!("{spec:?}"), seed, events)
}

/// `DOMINO_TRACE_CACHE=0` disables the cache (every call regenerates),
/// restoring the pre-cache behaviour for benchmarking comparisons.
fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("DOMINO_TRACE_CACHE").map_or(true, |v| v.trim() != "0"))
}

/// Sentinel for "no test override in place" in [`BUDGET_OVERRIDE`].
const NO_OVERRIDE: u64 = u64::MAX;

/// Test override for the byte budget (tests can't safely mutate the
/// environment of a threaded process).
static BUDGET_OVERRIDE: AtomicU64 = AtomicU64::new(NO_OVERRIDE);

/// The resident-byte cap on cached traces, if any: the test override
/// when set, else `DOMINO_TRACE_CACHE_BYTES`.
fn cache_budget() -> Option<u64> {
    let over = BUDGET_OVERRIDE.load(Ordering::Relaxed);
    if over != NO_OVERRIDE {
        return Some(over);
    }
    static ENV: OnceLock<Option<u64>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("DOMINO_TRACE_CACHE_BYTES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
    })
}

/// Forces the trace-cache byte budget regardless of the environment.
/// Test hook — the budget tests run in their own integration-test
/// process so this cannot race the figure runners.
#[doc(hidden)]
pub fn set_cache_budget_for_tests(bytes: Option<u64>) {
    BUDGET_OVERRIDE.store(bytes.unwrap_or(NO_OVERRIDE), Ordering::Relaxed);
}

fn trace_bytes(trace: &Arc<[AccessEvent]>) -> u64 {
    (trace.len() * std::mem::size_of::<AccessEvent>()) as u64
}

/// Total bytes of materialized traces the cache currently keeps alive.
pub fn resident_trace_bytes() -> u64 {
    let lru = traces().lock().expect("unpoisoned");
    lru.map
        .values()
        .filter_map(|slot| slot.cell.get().map(trace_bytes))
        .sum()
}

/// Number of materialized trace entries currently cached.
pub fn resident_trace_entries() -> usize {
    let lru = traces().lock().expect("unpoisoned");
    lru.map.values().filter(|s| s.cell.get().is_some()).count()
}

/// Fetches (or inserts) `key`'s cell and stamps it most-recently-used.
fn touch(key: Key) -> Cell<Arc<[AccessEvent]>> {
    let mut lru = traces().lock().expect("unpoisoned");
    lru.tick += 1;
    let tick = lru.tick;
    let slot = lru.map.entry(key).or_insert_with(|| TraceSlot {
        cell: Cell::default(),
        stamp: 0,
    });
    slot.stamp = tick;
    Arc::clone(&slot.cell)
}

/// Drops least-recently-used materialized entries (whole traces, never
/// partial) until the cache fits the byte budget. `keep` — the entry
/// the caller just materialized — is never dropped: evicting the trace
/// being handed out would defeat the sharing the cache exists for.
fn enforce_budget(keep: &Key) {
    let Some(budget) = cache_budget() else {
        return;
    };
    let mut lru = traces().lock().expect("unpoisoned");
    loop {
        let total: u64 = lru
            .map
            .values()
            .filter_map(|slot| slot.cell.get().map(trace_bytes))
            .sum();
        if total <= budget {
            return;
        }
        // Oldest materialized entry other than `keep`. Cells still
        // generating are skipped: their size is unknown and their
        // generating thread holds the cell regardless.
        let victim = lru
            .map
            .iter()
            .filter(|(k, slot)| slot.cell.get().is_some() && *k != keep)
            .min_by_key(|(_, slot)| slot.stamp)
            .map(|(k, _)| k.clone());
        match victim {
            Some(k) => {
                lru.map.remove(&k);
            }
            None => return,
        }
    }
}

/// Returns the `events`-long trace of `spec` at `seed`, generating it at
/// most once per process. Concurrent callers for the *same* key block
/// only on that key's generation (the map lock is held just to fetch the
/// cell), so distinct workloads generate in parallel.
pub fn shared_trace(spec: &WorkloadSpec, events: usize, seed: u64) -> Arc<[AccessEvent]> {
    if !enabled() {
        return spec.generator(seed).take(events).collect::<Vec<_>>().into();
    }
    let key = key_of(spec, events, seed);
    let cell = touch(key.clone());
    let out = cell
        .get_or_init(|| spec.generator(seed).take(events).collect::<Vec<_>>().into())
        .clone();
    enforce_budget(&key);
    out
}

/// Returns up to `max_events` events of the `DMNOTRC1` file at `path`,
/// decoded at most once per process and shared as an `Arc` slice — the
/// file-backed analogue of [`shared_trace`], letting thousands of
/// service tenants window one decoded trace. Counts against the same
/// byte budget (and LRU) as generated traces.
///
/// `max_events = 0` means the whole file. Keyed by `(path, max_events)`;
/// a file that changes on disk mid-process is not re-read.
pub fn shared_file_trace(
    path: &Path,
    max_events: usize,
) -> Result<Arc<[AccessEvent]>, TraceFileError> {
    let load = || -> Result<Arc<[AccessEvent]>, TraceFileError> {
        let mut reader = TraceReader::open(path)?;
        let want = if max_events == 0 {
            usize::try_from(reader.events()).unwrap_or(usize::MAX)
        } else {
            max_events
        };
        let mut events: Vec<AccessEvent> = Vec::new();
        let mut chunk = Vec::new();
        for idx in 0..reader.chunk_count() {
            if events.len() >= want {
                break;
            }
            reader.read_chunk_into(idx, &mut chunk)?;
            let take = chunk.len().min(want - events.len());
            events.extend_from_slice(&chunk[..take]);
        }
        Ok(events.into())
    };
    if !enabled() {
        return load();
    }
    let key = (format!("file:{}", path.display()), 0, max_events);
    let cell = touch(key.clone());
    // `OnceLock::get_or_init` cannot fail out, so decode before filling:
    // a read error is returned (and retried next call), never cached.
    let out = match cell.get() {
        Some(t) => t.clone(),
        None => {
            let fresh = load()?;
            cell.get_or_init(|| fresh).clone()
        }
    };
    enforce_budget(&key);
    Ok(out)
}

/// A tenant's view into a shared base trace: a contiguous window of a
/// cached `Arc<[AccessEvent]>`. Thousands of tenant streams share one
/// base allocation per `(spec, seed)` instead of generating thousands of
/// private traces — the memory model behind the metadata service's load
/// generator.
#[derive(Debug, Clone)]
pub struct TenantSlice {
    /// The shared base trace the window points into.
    pub trace: Arc<[AccessEvent]>,
    /// Window start within `trace`.
    pub start: usize,
    /// Window length in events.
    pub len: usize,
}

impl TenantSlice {
    /// The window's events.
    pub fn events(&self) -> &[AccessEvent] {
        &self.trace[self.start..self.start + self.len]
    }
}

/// Derives tenant `tenant`'s miss-stream window: `events` consecutive
/// events of the shared `(spec, seed)` base trace of `base_events`
/// events, at an offset drawn deterministically from `(seed, tenant)`.
/// Same inputs → byte-identical window, across processes and thread
/// schedules, so a service run and its single-tenant reference replay
/// exactly the same stream.
///
/// `base_events` is clamped up to `events` so the window always fits;
/// distinct tenants overlap freely (their sessions are independent).
pub fn shared_tenant_slice(
    spec: &WorkloadSpec,
    base_events: usize,
    seed: u64,
    tenant: u64,
    events: usize,
) -> TenantSlice {
    let base_events = base_events.max(events);
    let trace = shared_trace(spec, base_events, seed);
    tenant_slice_of(trace, seed, tenant, events)
}

/// Derives tenant `tenant`'s window of an arbitrary shared trace — the
/// same seeded offset derivation as [`shared_tenant_slice`], for base
/// traces that are not generated from a spec (e.g. a file-backed trace
/// from [`shared_file_trace`]). A file cannot be extended, so `events`
/// is clamped down to the trace length.
pub fn tenant_slice_of(
    trace: Arc<[AccessEvent]>,
    seed: u64,
    tenant: u64,
    events: usize,
) -> TenantSlice {
    let events = events.min(trace.len());
    let mut rng = SimRng::seed(seed ^ 0x7e6a_5d4c_3b2a_1908);
    let mut rng = rng.fork(tenant);
    let start = rng.index(trace.len() - events + 1);
    TenantSlice {
        trace,
        start,
        len: events,
    }
}

/// The L1-filtered baseline miss sequence of `spec`'s trace under
/// `system`, cached per `(spec, seed, events)`. Valid because the miss
/// sequence is independent of any prefetcher (prefetches fill only the
/// buffer) — and every figure currently consumes it under the single
/// paper [`SystemConfig`].
pub fn shared_miss_sequence(
    system: &SystemConfig,
    spec: &WorkloadSpec,
    events: usize,
    seed: u64,
) -> Arc<Vec<u64>> {
    if !enabled() {
        let trace = shared_trace(spec, events, seed);
        return Arc::new(baseline_miss_sequence(system, &trace));
    }
    let cell = {
        let map = MISS_SEQS.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = map.lock().expect("unpoisoned");
        Arc::clone(map.entry(key_of(spec, events, seed)).or_default())
    };
    cell.get_or_init(|| {
        let trace = shared_trace(spec, events, seed);
        Arc::new(baseline_miss_sequence(system, &trace))
    })
    .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_trace::workload::catalog;

    #[test]
    fn same_key_shares_the_allocation() {
        let spec = catalog::oltp();
        let a = shared_trace(&spec, 1_000, 42);
        let b = shared_trace(&spec, 1_000, 42);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 1_000);
    }

    #[test]
    fn distinct_seeds_get_distinct_traces() {
        let spec = catalog::oltp();
        let a = shared_trace(&spec, 500, 1);
        let b = shared_trace(&spec, 500, 2);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a[..], b[..]);
    }

    #[test]
    fn mutated_specs_key_separately() {
        let base = catalog::oltp();
        let mut tweaked = catalog::oltp();
        tweaked.temporal.junction_frac += 0.1;
        let a = shared_trace(&base, 300, 7);
        let b = shared_trace(&tweaked, 300, 7);
        assert!(!Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn cached_trace_matches_direct_generation() {
        let spec = catalog::web_search();
        let cached = shared_trace(&spec, 800, 9);
        let direct: Vec<_> = spec.generator(9).take(800).collect();
        assert_eq!(&cached[..], &direct[..]);
    }

    #[test]
    fn tenant_slices_share_the_base_allocation() {
        let spec = catalog::web_search();
        let a = shared_tenant_slice(&spec, 5_000, 77, 0, 400);
        let b = shared_tenant_slice(&spec, 5_000, 77, 1, 400);
        assert!(Arc::ptr_eq(&a.trace, &b.trace));
        assert_eq!(a.events().len(), 400);
        // Same tenant → same window; the derivation is deterministic.
        let a2 = shared_tenant_slice(&spec, 5_000, 77, 0, 400);
        assert_eq!(a.start, a2.start);
        // Windows land inside the base trace.
        assert!(a.start + a.len <= a.trace.len());
        assert!(b.start + b.len <= b.trace.len());
    }

    #[test]
    fn tenant_slice_clamps_short_base() {
        let spec = catalog::oltp();
        let s = shared_tenant_slice(&spec, 10, 3, 9, 250);
        assert_eq!(s.len, 250);
        assert_eq!(s.start, 0);
        assert_eq!(s.trace.len(), 250);
    }

    #[test]
    fn miss_sequence_is_cached_and_correct() {
        let system = SystemConfig::paper();
        let spec = catalog::oltp();
        let a = shared_miss_sequence(&system, &spec, 2_000, 3);
        let b = shared_miss_sequence(&system, &spec, 2_000, 3);
        assert!(Arc::ptr_eq(&a, &b));
        let trace = shared_trace(&spec, 2_000, 3);
        assert_eq!(*a, baseline_miss_sequence(&system, &trace));
    }
}
