//! Per-thread pools of engine scratch state, reused across sweep cells.
//!
//! Every figure cell used to construct its own L1/L2 models, prefetch
//! buffer, MSHR file, collect sink, and ROB queue from scratch — for the
//! default L2 alone that is a megabyte-scale allocation per cell. The
//! pools here hand each engine run recycled storage instead: a component
//! checked out of the pool is [`reset`]-to-construction-state, so a run
//! on pooled state is byte-identical to a run on fresh state, and the
//! guard returns it on drop for the next cell on the same thread.
//!
//! Pools are thread-local. With `--jobs 1` the whole figure sweep runs on
//! the calling thread, so every cell after the first reuses storage; with
//! N workers each worker warms its own pool on its first cell and reuses
//! it for the rest of the sweep.
//!
//! [`reset`]: SetAssocCache::reset

use std::cell::RefCell;
use std::collections::VecDeque;
use std::ops::{Deref, DerefMut};

use domino_mem::cache::{CacheConfig, SetAssocCache};
use domino_mem::interface::CollectSink;
use domino_mem::mshr::MshrFile;
use domino_mem::prefetch_buffer::PrefetchBuffer;

/// The timing model's retirement-constraint queue: `(instruction limit,
/// data-ready time)` per outstanding independent miss.
pub(crate) type RobQueue = VecDeque<(u64, f64)>;

/// Retained items per shelf. Bounds pool growth if a caller ever holds
/// many components at once (e.g. multicore runs with one engine per
/// core); excess returns are simply dropped.
const SHELF_CAP: usize = 16;

#[derive(Default)]
pub(crate) struct Shelves {
    caches: Vec<SetAssocCache>,
    buffers: Vec<PrefetchBuffer>,
    mshrs: Vec<MshrFile>,
    sinks: Vec<CollectSink>,
    robs: Vec<RobQueue>,
}

thread_local! {
    static SHELVES: RefCell<Shelves> = RefCell::new(Shelves::default());
}

/// A pool-allocated component; returns itself to this thread's pool on
/// drop. Dereferences to the component, so engine code is unchanged.
pub(crate) struct Pooled<T: PoolItem>(Option<T>);

pub(crate) trait PoolItem: Sized {
    fn shelf(shelves: &mut Shelves) -> &mut Vec<Self>;
}

impl PoolItem for SetAssocCache {
    fn shelf(shelves: &mut Shelves) -> &mut Vec<Self> {
        &mut shelves.caches
    }
}

impl PoolItem for PrefetchBuffer {
    fn shelf(shelves: &mut Shelves) -> &mut Vec<Self> {
        &mut shelves.buffers
    }
}

impl PoolItem for MshrFile {
    fn shelf(shelves: &mut Shelves) -> &mut Vec<Self> {
        &mut shelves.mshrs
    }
}

impl PoolItem for CollectSink {
    fn shelf(shelves: &mut Shelves) -> &mut Vec<Self> {
        &mut shelves.sinks
    }
}

impl PoolItem for RobQueue {
    fn shelf(shelves: &mut Shelves) -> &mut Vec<Self> {
        &mut shelves.robs
    }
}

impl<T: PoolItem> Deref for Pooled<T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.0.as_ref().expect("present until drop")
    }
}

impl<T: PoolItem> DerefMut for Pooled<T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("present until drop")
    }
}

impl<T: PoolItem> Drop for Pooled<T> {
    fn drop(&mut self) {
        if let Some(item) = self.0.take() {
            // try_with: the thread-local may already be gone during
            // thread teardown; dropping the item then is fine.
            let _ = SHELVES.try_with(|s| {
                let mut shelves = s.borrow_mut();
                let shelf = T::shelf(&mut shelves);
                if shelf.len() < SHELF_CAP {
                    shelf.push(item);
                }
            });
        }
    }
}

/// Takes the first pooled item matching `matches` off its shelf.
fn take_match<T: PoolItem>(matches: impl Fn(&T) -> bool) -> Option<T> {
    SHELVES.with(|s| {
        let mut shelves = s.borrow_mut();
        let shelf = T::shelf(&mut shelves);
        let pos = shelf.iter().position(matches)?;
        Some(shelf.swap_remove(pos))
    })
}

/// A cache with the given geometry: recycled (and reset) when this
/// thread's pool has one, freshly built otherwise.
pub(crate) fn cache(config: CacheConfig) -> Pooled<SetAssocCache> {
    Pooled(Some(
        match take_match(|c: &SetAssocCache| *c.config() == config) {
            Some(mut c) => {
                c.reset();
                c
            }
            None => SetAssocCache::new(config),
        },
    ))
}

/// A prefetch buffer of the given capacity, recycled when possible.
pub(crate) fn buffer(capacity: usize) -> Pooled<PrefetchBuffer> {
    Pooled(Some(
        match take_match(|b: &PrefetchBuffer| b.capacity() == capacity) {
            Some(mut b) => {
                b.reset();
                b
            }
            None => PrefetchBuffer::new(capacity),
        },
    ))
}

/// An MSHR file of the given capacity, recycled when possible.
pub(crate) fn mshrs(capacity: usize) -> Pooled<MshrFile> {
    Pooled(Some(
        match take_match(|m: &MshrFile| m.capacity() == capacity) {
            Some(mut m) => {
                m.reset();
                m
            }
            None => MshrFile::new(capacity),
        },
    ))
}

/// An empty collect sink whose request vectors keep their high-water
/// capacity across cells.
pub(crate) fn sink() -> Pooled<CollectSink> {
    Pooled(Some(match take_match(|_: &CollectSink| true) {
        Some(mut s) => {
            s.clear();
            s
        }
        None => CollectSink::new(),
    }))
}

/// An empty ROB retirement queue with retained capacity.
pub(crate) fn rob_queue() -> Pooled<RobQueue> {
    Pooled(Some(match take_match(|_: &RobQueue| true) {
        Some(mut q) => {
            q.clear();
            q
        }
        None => RobQueue::new(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_trace::addr::LineAddr;

    #[test]
    fn pooled_cache_comes_back_clean() {
        let cfg = CacheConfig::l1d();
        {
            let mut c = cache(cfg);
            c.insert(LineAddr::new(7));
            c.access(LineAddr::new(7));
            assert_eq!(c.hit_miss(), (1, 0));
        }
        // Same thread: the next checkout recycles the dirty cache, reset.
        let c = cache(cfg);
        assert!(c.is_empty());
        assert_eq!(c.hit_miss(), (0, 0));
    }

    #[test]
    fn distinct_geometries_do_not_mix() {
        let small = cache(CacheConfig::l1d());
        let big = cache(CacheConfig::llc());
        assert_ne!(small.config().size_bytes, big.config().size_bytes);
    }

    #[test]
    fn sink_checkout_is_empty() {
        {
            let mut s = sink();
            s.requests
                .push(domino_mem::interface::PrefetchRequest::immediate(
                    LineAddr::new(1),
                ));
        }
        let s = sink();
        assert!(s.requests.is_empty());
    }
}
