//! Sampling statistics for multi-seed measurements.
//!
//! The paper's methodology uses SimFlex statistical sampling —
//! "performance measurements are computed with 95 % confidence and an
//! error of less than 4 %" (§IV-C). This module provides the same
//! machinery for the reproduction: run a figure over several workload
//! seeds and report mean ± confidence half-width.

/// Mean, standard deviation, and a 95 % confidence half-width for a
/// sample of measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub stddev: f64,
    /// 95 % confidence half-width around the mean (normal approximation;
    /// 0 for n < 2).
    pub ci95: f64,
    /// Number of observations.
    pub n: usize,
}

impl Sample {
    /// Computes statistics over `values`.
    pub fn of(values: &[f64]) -> Self {
        let n = values.len();
        if n == 0 {
            return Sample {
                mean: 0.0,
                stddev: 0.0,
                ci95: 0.0,
                n: 0,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        if n < 2 {
            return Sample {
                mean,
                stddev: 0.0,
                ci95: 0.0,
                n,
            };
        }
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        let stddev = var.sqrt();
        let ci95 = 1.96 * stddev / (n as f64).sqrt();
        Sample {
            mean,
            stddev,
            ci95,
            n,
        }
    }

    /// Relative error of the confidence interval (the paper targets
    /// < 4 %); 0 when the mean is 0.
    pub fn relative_error(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.ci95 / self.mean.abs()
        }
    }
}

/// Runs `measure` over `seeds` and summarises the results.
pub fn over_seeds<F>(seeds: &[u64], mut measure: F) -> Sample
where
    F: FnMut(u64) -> f64,
{
    let values: Vec<f64> = seeds.iter().map(|&s| measure(s)).collect();
    Sample::of(&values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_coverage;
    use crate::roster::System;
    use crate::SystemConfig;
    use domino_trace::workload::catalog;

    #[test]
    fn empty_and_singleton_samples() {
        let e = Sample::of(&[]);
        assert_eq!(e.n, 0);
        assert_eq!(e.mean, 0.0);
        let s = Sample::of(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn known_values() {
        let s = Sample::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.stddev - 1.5811388).abs() < 1e-6);
        assert!((s.ci95 - 1.96 * 1.5811388 / 5f64.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn constant_sample_has_zero_spread() {
        let s = Sample::of(&[2.0; 10]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.relative_error(), 0.0);
    }

    #[test]
    fn coverage_is_stable_across_seeds() {
        // The paper targets < 4 % relative error; our deterministic
        // workload models at modest scale should land well within ~10 %
        // across seeds, or the figures would be seed-lottery.
        let system = SystemConfig::paper();
        let spec = catalog::oltp();
        let sample = over_seeds(&[1, 2, 3, 4], |seed| {
            let trace: Vec<_> = spec.generator(seed).take(40_000).collect();
            let mut p = System::Domino.build(4);
            run_coverage(&system, &trace, p.as_mut()).coverage()
        });
        assert_eq!(sample.n, 4);
        assert!(sample.mean > 0.05);
        assert!(
            sample.relative_error() < 0.10,
            "coverage too seed-sensitive: {:?}",
            sample
        );
    }
}
