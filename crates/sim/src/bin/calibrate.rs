//! Calibration tool: prints per-workload coverage/overprediction/stream
//! statistics for the main systems, plus the oracle opportunity — the
//! quantities the workload models are tuned against (paper Figures 1, 2,
//! 11, 13).
//!
//! Usage: `cargo run -p domino-sim --release --bin calibrate [events]`

use domino_sim::figures::Scale;
use domino_sim::{baseline_miss_sequence, run_coverage, System, SystemConfig};

use domino_sequitur::oracle::{oracle_replay, OracleConfig};
use domino_trace::workload::catalog;

fn main() {
    let events: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    let scale = Scale { events, seed: 42 };
    let system = SystemConfig::paper();
    println!("events per workload: {}", scale.events);
    println!(
        "{:<16} {:>7} {:>7} | {:>6} {:>6} {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6} | {:>5} {:>5} {:>5}",
        "workload", "misses", "opp%", "vldp", "isb", "stms", "digrm", "domin",
        "ov-s", "ov-dg", "ov-do", "sl-s", "sl-dg", "sl-or"
    );
    for spec in catalog::all() {
        let trace: Vec<_> = spec.generator(scale.seed).take(scale.events).collect();
        let seq = baseline_miss_sequence(&system, &trace);
        let opp = oracle_replay(&seq, &OracleConfig::default());
        let run = |sys: System, degree: usize| {
            let mut p = sys.build(degree);
            run_coverage(&system, &trace, p.as_mut())
        };
        let vldp = run(System::Vldp, 1);
        let isb = run(System::Isb, 1);
        let stms = run(System::Stms, 1);
        let digram = run(System::Digram, 1);
        let domino = run(System::Domino, 1);
        println!(
            "{:<16} {:>7} {:>6.1}% | {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}% | {:>5.1}% {:>5.1}% {:>5.1}% | {:>5.2} {:>5.2} {:>5.2}",
            spec.name,
            seq.len(),
            opp.coverage() * 100.0,
            vldp.coverage() * 100.0,
            isb.coverage() * 100.0,
            stms.coverage() * 100.0,
            digram.coverage() * 100.0,
            domino.coverage() * 100.0,
            stms.overprediction_rate() * 100.0,
            digram.overprediction_rate() * 100.0,
            domino.overprediction_rate() * 100.0,
            stms.mean_stream_length(),
            digram.mean_stream_length(),
            opp.mean_stream_length(),
        );
    }
}
