//! Fixed-capacity time-series metrics: a zero-alloc ring of per-interval
//! snapshots.
//!
//! The epoch machinery in this crate serves post-mortem analysis of one
//! simulated run; the metrics ring serves *live* observation of a running
//! service. A producer (one shard worker, one engine loop) registers a
//! fixed set of metrics once, then calls [`MetricsRing::sample`] on an
//! event-count cadence with the *current cumulative value* of every
//! metric. The ring stores one row per interval:
//!
//! * **counters** ([`MetricKind::Counter`]) are stored as the *delta*
//!   since the previous sample — a per-interval rate, readable directly
//!   off a row;
//! * **gauges** ([`MetricKind::Gauge`]) are stored as the sampled
//!   *level* (queue depth, footprint bytes, wall-clock offset).
//!
//! The ring keeps the most recent `capacity` rows and, independently of
//! wraparound, the final cumulative value of every metric
//! ([`MetricsRing::totals`]). That gives consumers two invariants:
//!
//! * **conservation** — while the ring has not wrapped, the per-counter
//!   sum of stored deltas equals its total (counters start at zero);
//! * **stamp chronology** — sample stamps are nondecreasing oldest
//!   first.
//!
//! Everything is preallocated at construction: a sample is a handful of
//! indexed slab writes, so an armed producer's hot path allocates
//! nothing (proven by `crates/telemetry/tests/ring_alloc.rs`).
//!
//! # Binary file format (`metrics_*.bin`, version 1, little-endian)
//!
//! ```text
//! offset  size  field
//! 0       8     magic "DMNOMTR1"
//! 8       4     version (u32, = 1)
//! 12      4     reserved (u32, = 0)
//! 16      ...   source (u32 length + UTF-8 bytes, e.g. "shard-0")
//! ...     8     interval stride in events (u64; 0 = caller-defined)
//! ...     8×3   ring capacity, width, rows ever sampled (u64 each)
//! ...     ...   width × metric spec: name (u32 length + UTF-8) + kind (u8)
//! ...     8×W   per-metric cumulative totals (counters) / last levels (gauges)
//! ...     8     stored row count N (u64)
//! ...     ...   N rows, oldest first: stamp (u64) + width × u64 values
//! ```

/// File magic of a serialized metrics ring.
pub const RING_MAGIC: &[u8; 8] = b"DMNOMTR1";

/// Binary format version written by [`MetricsRing::to_bytes`].
pub const RING_VERSION: u32 = 1;

/// What a metric's per-interval row value means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MetricKind {
    /// Cumulative, monotone; rows store the delta since the last sample.
    Counter = 0,
    /// Instantaneous level; rows store the sampled value verbatim.
    Gauge = 1,
}

impl MetricKind {
    /// Decodes a stored kind byte.
    pub fn from_u8(v: u8) -> Option<MetricKind> {
        match v {
            0 => Some(MetricKind::Counter),
            1 => Some(MetricKind::Gauge),
            _ => None,
        }
    }
}

/// One registered metric: a stable name plus its [`MetricKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSpec {
    /// Dot/underscore-namespaced stable name (`events`, `queue_depth`,
    /// `lat_le_1000`).
    pub name: String,
    /// Row-value semantics.
    pub kind: MetricKind,
}

impl MetricSpec {
    /// A counter spec.
    pub fn counter(name: impl Into<String>) -> Self {
        MetricSpec {
            name: name.into(),
            kind: MetricKind::Counter,
        }
    }

    /// A gauge spec.
    pub fn gauge(name: impl Into<String>) -> Self {
        MetricSpec {
            name: name.into(),
            kind: MetricKind::Gauge,
        }
    }
}

/// The fixed-capacity per-interval snapshot ring. See the [module
/// docs](self) for semantics and the file format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsRing {
    specs: Vec<MetricSpec>,
    capacity: usize,
    /// `capacity` sample stamps, indexed `sampled % capacity`.
    stamps: Vec<u64>,
    /// `capacity × width` row slab, row-major.
    rows: Vec<u64>,
    /// Rows ever sampled (the ring keeps the last `capacity`).
    sampled: u64,
    /// Last cumulative value per metric (counter delta baseline).
    last: Vec<u64>,
    /// Cumulative totals (counters) / last levels (gauges).
    totals: Vec<u64>,
}

impl MetricsRing {
    /// Creates a ring of `capacity` rows over `specs`, preallocating
    /// every slab.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero, `specs` is empty, or two metrics
    /// share a name.
    pub fn new(capacity: usize, specs: Vec<MetricSpec>) -> Self {
        assert!(capacity > 0, "metrics ring needs capacity");
        assert!(!specs.is_empty(), "metrics ring needs at least one metric");
        for (i, a) in specs.iter().enumerate() {
            for b in &specs[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate metric name {:?}", a.name);
            }
        }
        let width = specs.len();
        MetricsRing {
            specs,
            capacity,
            stamps: vec![0; capacity],
            rows: vec![0; capacity * width],
            sampled: 0,
            last: vec![0; width],
            totals: vec![0; width],
        }
    }

    /// Registered metrics, in row-column order.
    pub fn specs(&self) -> &[MetricSpec] {
        &self.specs
    }

    /// Columns per row.
    pub fn width(&self) -> usize {
        self.specs.len()
    }

    /// Ring capacity in rows.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Rows ever sampled (≥ [`MetricsRing::len`]).
    pub fn sampled(&self) -> u64 {
        self.sampled
    }

    /// Rows currently stored.
    pub fn len(&self) -> usize {
        self.sampled.min(self.capacity as u64) as usize
    }

    /// Whether no row was ever sampled.
    pub fn is_empty(&self) -> bool {
        self.sampled == 0
    }

    /// Whether old rows have been discarded.
    pub fn wrapped(&self) -> bool {
        self.sampled > self.capacity as u64
    }

    /// Final cumulative value per counter / last sampled level per
    /// gauge, in spec order. Wrap-independent.
    pub fn totals(&self) -> &[u64] {
        &self.totals
    }

    /// Column index of the metric named `name`.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.specs.iter().position(|s| s.name == name)
    }

    /// Records one interval row. `values` holds the *current cumulative*
    /// value of every metric in spec order; counters must not move
    /// backwards (a regression is clamped to a zero delta in release
    /// builds and panics in debug builds). Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics when `values.len()` differs from the registered width.
    pub fn sample(&mut self, stamp: u64, values: &[u64]) {
        let width = self.specs.len();
        assert_eq!(values.len(), width, "sample width mismatch");
        let row = (self.sampled % self.capacity as u64) as usize;
        self.stamps[row] = stamp;
        let slab = &mut self.rows[row * width..(row + 1) * width];
        for (i, (&v, spec)) in values.iter().zip(&self.specs).enumerate() {
            slab[i] = match spec.kind {
                MetricKind::Counter => {
                    debug_assert!(
                        v >= self.last[i],
                        "counter {:?} moved backwards: {} -> {v}",
                        spec.name,
                        self.last[i]
                    );
                    v.saturating_sub(self.last[i])
                }
                MetricKind::Gauge => v,
            };
            self.last[i] = v;
            self.totals[i] = v;
        }
        self.sampled += 1;
    }

    /// Stored rows oldest first, as `(stamp, values)` where counter
    /// columns hold per-interval deltas and gauge columns hold levels.
    pub fn iter_rows(&self) -> impl Iterator<Item = (u64, &[u64])> + '_ {
        let width = self.specs.len();
        let len = self.len();
        let split = if self.wrapped() {
            (self.sampled % self.capacity as u64) as usize
        } else {
            0
        };
        (0..len).map(move |i| {
            let row = (split + i) % self.capacity;
            (self.stamps[row], &self.rows[row * width..(row + 1) * width])
        })
    }

    /// Sums the last `window` stored rows of column `col` (counter
    /// columns: events in that span; gauge columns: a sum, rarely
    /// useful). Fewer rows than `window` sums everything stored.
    pub fn window_sum(&self, col: usize, window: usize) -> u64 {
        let len = self.len();
        let skip = len.saturating_sub(window);
        self.iter_rows().skip(skip).map(|(_, row)| row[col]).sum()
    }

    /// Serializes the ring in the [module-level](self) binary format.
    /// `source` labels the producer (e.g. `shard-0`); `interval` records
    /// the sampling stride in events (0 when caller-defined).
    pub fn to_bytes(&self, source: &str, interval: u64) -> Vec<u8> {
        let width = self.specs.len();
        let mut out = Vec::with_capacity(128 + width * 24 + self.len() * (width + 1) * 8);
        out.extend_from_slice(RING_MAGIC);
        put_u32(&mut out, RING_VERSION);
        put_u32(&mut out, 0);
        put_str(&mut out, source);
        put_u64(&mut out, interval);
        put_u64(&mut out, self.capacity as u64);
        put_u64(&mut out, width as u64);
        put_u64(&mut out, self.sampled);
        for spec in &self.specs {
            put_str(&mut out, &spec.name);
            out.push(spec.kind as u8);
        }
        for &t in &self.totals {
            put_u64(&mut out, t);
        }
        put_u64(&mut out, self.len() as u64);
        for (stamp, row) in self.iter_rows() {
            put_u64(&mut out, stamp);
            for &v in row {
                put_u64(&mut out, v);
            }
        }
        out
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Little-endian cursor over a serialized ring.
struct Cursor<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.b.len() {
            return Err(format!(
                "truncated ring: need {n} bytes at offset {}, have {}",
                self.pos,
                self.b.len() - self.pos
            ));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn string(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("invalid UTF-8 label: {e}"))
    }
}

/// A parsed metrics-ring file, ready for rendering (`domino-top`) or
/// auditing (`domino-check`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingFile {
    /// Producer label from the header.
    pub source: String,
    /// Sampling stride in events (0 = caller-defined).
    pub interval: u64,
    /// Ring capacity of the producer.
    pub capacity: u64,
    /// Registered metrics, in column order.
    pub specs: Vec<MetricSpec>,
    /// Rows the producer ever sampled.
    pub sampled: u64,
    /// Final cumulative totals / last levels per metric.
    pub totals: Vec<u64>,
    /// Stored rows oldest first: `(stamp, values)`.
    pub rows: Vec<(u64, Vec<u64>)>,
}

impl RingFile {
    /// Parses a serialized metrics ring.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformation found.
    pub fn from_bytes(b: &[u8]) -> Result<RingFile, String> {
        let mut c = Cursor { b, pos: 0 };
        if c.take(8)? != RING_MAGIC {
            return Err("bad magic: not a domino metrics ring".into());
        }
        let version = c.u32()?;
        if version != RING_VERSION {
            return Err(format!("unsupported ring version {version}"));
        }
        let _reserved = c.u32()?;
        let source = c.string()?;
        let interval = c.u64()?;
        let capacity = c.u64()?;
        let width = c.u64()? as usize;
        let sampled = c.u64()?;
        let mut specs = Vec::with_capacity(width.min(1 << 12));
        for _ in 0..width {
            let name = c.string()?;
            let kind = MetricKind::from_u8(c.u8()?)
                .ok_or_else(|| format!("metric {name:?}: unknown kind byte"))?;
            specs.push(MetricSpec { name, kind });
        }
        let mut totals = Vec::with_capacity(width);
        for _ in 0..width {
            totals.push(c.u64()?);
        }
        let count = c.u64()? as usize;
        let mut rows = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            let stamp = c.u64()?;
            let mut vals = Vec::with_capacity(width);
            for _ in 0..width {
                vals.push(c.u64()?);
            }
            rows.push((stamp, vals));
        }
        if c.pos != b.len() {
            return Err(format!("{} trailing bytes after rows", b.len() - c.pos));
        }
        Ok(RingFile {
            source,
            interval,
            capacity,
            specs,
            sampled,
            totals,
            rows,
        })
    }

    /// Whether the producing ring discarded old rows.
    pub fn wrapped(&self) -> bool {
        self.sampled > self.capacity
    }

    /// Column index of the metric named `name`.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.specs.iter().position(|s| s.name == name)
    }

    /// The final cumulative total of the metric named `name`.
    pub fn total(&self, name: &str) -> Option<u64> {
        self.column(name).map(|i| self.totals[i])
    }

    /// Checks the file's invariants: stored row count matches the
    /// header, stamps are nondecreasing oldest first, and — while the
    /// ring has not wrapped — every counter's stored deltas sum to its
    /// total (interval-counter conservation).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn verify(&self) -> Result<(), String> {
        let expect = self.sampled.min(self.capacity) as usize;
        if self.rows.len() != expect {
            return Err(format!(
                "header promises {expect} stored rows, found {}",
                self.rows.len()
            ));
        }
        let mut last_stamp = 0u64;
        for (i, (stamp, vals)) in self.rows.iter().enumerate() {
            if vals.len() != self.specs.len() {
                return Err(format!(
                    "row {i}: width {} != {}",
                    vals.len(),
                    self.specs.len()
                ));
            }
            if *stamp < last_stamp {
                return Err(format!(
                    "row {i}: stamp {stamp} before predecessor {last_stamp}"
                ));
            }
            last_stamp = *stamp;
        }
        if !self.wrapped() {
            for (col, spec) in self.specs.iter().enumerate() {
                if spec.kind != MetricKind::Counter {
                    continue;
                }
                let sum: u64 = self.rows.iter().map(|(_, v)| v[col]).sum();
                if sum != self.totals[col] {
                    return Err(format!(
                        "counter {:?}: stored deltas sum to {sum} but total is {}",
                        spec.name, self.totals[col]
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs() -> Vec<MetricSpec> {
        vec![
            MetricSpec::counter("events"),
            MetricSpec::counter("batches"),
            MetricSpec::gauge("queue_depth"),
        ]
    }

    #[test]
    fn counters_store_deltas_and_gauges_levels() {
        let mut ring = MetricsRing::new(8, specs());
        ring.sample(10, &[100, 3, 5]);
        ring.sample(20, &[250, 7, 2]);
        let rows: Vec<_> = ring.iter_rows().map(|(s, v)| (s, v.to_vec())).collect();
        assert_eq!(rows, vec![(10, vec![100, 3, 5]), (20, vec![150, 4, 2])]);
        assert_eq!(ring.totals(), &[250, 7, 2]);
    }

    #[test]
    fn ring_wraps_and_keeps_the_tail_with_totals_intact() {
        let mut ring = MetricsRing::new(3, specs());
        for i in 1..=10u64 {
            ring.sample(i, &[i * 10, i, i % 4]);
        }
        assert!(ring.wrapped());
        assert_eq!(ring.len(), 3);
        let stamps: Vec<u64> = ring.iter_rows().map(|(s, _)| s).collect();
        assert_eq!(stamps, vec![8, 9, 10], "chronological tail");
        // Deltas in the tail are 10 events each; totals survive the wrap.
        for (_, row) in ring.iter_rows() {
            assert_eq!(row[0], 10);
            assert_eq!(row[1], 1);
        }
        assert_eq!(ring.totals(), &[100, 10, 2]);
    }

    #[test]
    fn window_sum_spans_recent_rows() {
        let mut ring = MetricsRing::new(8, specs());
        for i in 1..=5u64 {
            ring.sample(i, &[i * 100, i, 0]);
        }
        let col = ring.column("events").unwrap();
        assert_eq!(ring.window_sum(col, 2), 200, "last two 100-deltas");
        assert_eq!(ring.window_sum(col, 100), 500, "clamped to stored rows");
    }

    #[test]
    fn roundtrip_and_verify() {
        let mut ring = MetricsRing::new(4, specs());
        ring.sample(5, &[50, 2, 1]);
        ring.sample(9, &[90, 4, 0]);
        let bytes = ring.to_bytes("shard-0", 256);
        let f = RingFile::from_bytes(&bytes).expect("parse");
        assert_eq!(f.source, "shard-0");
        assert_eq!(f.interval, 256);
        assert_eq!(f.capacity, 4);
        assert_eq!(f.sampled, 2);
        assert_eq!(f.specs, specs());
        assert_eq!(f.totals, vec![90, 4, 0]);
        assert_eq!(f.rows.len(), 2);
        assert_eq!(f.total("events"), Some(90));
        f.verify().expect("invariants hold");
    }

    #[test]
    fn wrapped_file_skips_conservation_but_checks_chronology() {
        let mut ring = MetricsRing::new(2, specs());
        for i in 1..=6u64 {
            ring.sample(i, &[i, i, 0]);
        }
        let f = RingFile::from_bytes(&ring.to_bytes("s", 0)).expect("parse");
        assert!(f.wrapped());
        f.verify().expect("wrap exempts conservation");
    }

    #[test]
    fn verify_rejects_broken_conservation() {
        let mut ring = MetricsRing::new(4, specs());
        ring.sample(1, &[10, 1, 0]);
        let mut f = RingFile::from_bytes(&ring.to_bytes("s", 0)).expect("parse");
        f.totals[0] = 99;
        let err = f.verify().expect_err("corrupt total must fail");
        assert!(err.contains("events"), "{err}");
    }

    #[test]
    fn verify_rejects_unsorted_stamps() {
        let mut ring = MetricsRing::new(4, specs());
        ring.sample(9, &[1, 1, 0]);
        ring.sample(9, &[2, 2, 0]); // equal stamps are fine...
        let mut f = RingFile::from_bytes(&ring.to_bytes("s", 0)).expect("parse");
        f.verify().expect("equal stamps pass");
        f.rows[1].0 = 3; // ...rewinds are not
        assert!(f.verify().is_err());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(RingFile::from_bytes(b"nope").is_err());
        let ring = MetricsRing::new(2, specs());
        let mut bytes = ring.to_bytes("s", 0);
        bytes[8] = 7; // version
        assert!(RingFile::from_bytes(&bytes).is_err());
        let mut trailing = ring.to_bytes("s", 0);
        trailing.push(0);
        assert!(RingFile::from_bytes(&trailing).is_err());
    }

    #[test]
    fn counter_regression_clamps_in_release() {
        let mut ring = MetricsRing::new(4, vec![MetricSpec::counter("c")]);
        ring.sample(1, &[10]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ring.sample(2, &[5]);
        }));
        if cfg!(debug_assertions) {
            assert!(result.is_err(), "debug builds panic on regressions");
        } else {
            result.expect("release builds clamp");
        }
    }

    #[test]
    fn max_u64_values_roundtrip() {
        let mut ring = MetricsRing::new(2, vec![MetricSpec::gauge("g")]);
        ring.sample(u64::MAX, &[u64::MAX]);
        let f = RingFile::from_bytes(&ring.to_bytes("s", u64::MAX)).expect("parse");
        assert_eq!(f.rows[0], (u64::MAX, vec![u64::MAX]));
        f.verify().expect("gauges skip conservation");
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_panics() {
        MetricsRing::new(0, specs());
    }

    #[test]
    #[should_panic(expected = "duplicate metric name")]
    fn duplicate_names_panic() {
        MetricsRing::new(2, vec![MetricSpec::counter("x"), MetricSpec::gauge("x")]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn ragged_sample_panics() {
        let mut ring = MetricsRing::new(2, specs());
        ring.sample(0, &[1, 2]);
    }
}
