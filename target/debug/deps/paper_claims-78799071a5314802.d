/root/repo/target/debug/deps/paper_claims-78799071a5314802.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-78799071a5314802: tests/paper_claims.rs

tests/paper_claims.rs:
