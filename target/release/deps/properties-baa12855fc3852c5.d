/root/repo/target/release/deps/properties-baa12855fc3852c5.d: crates/sequitur/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-baa12855fc3852c5.rmeta: crates/sequitur/tests/properties.rs Cargo.toml

crates/sequitur/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
