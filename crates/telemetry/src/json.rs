//! Dependency-free JSON: a writer helper and a minimal recursive-descent
//! parser.
//!
//! The build environment is offline (no serde); telemetry reports are
//! written by hand and read back by the `report` CLI and the schema
//! tests. The parser accepts standard JSON with the subset of escapes
//! the writer produces and returns a plain [`Json`] tree.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Objects use a [`BTreeMap`]: report consumers
/// look fields up by name and never rely on source order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers up to 2^53 round-trip exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer (rejects negatives/fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Escapes `s` as a JSON string literal (with quotes).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a `u64` slice as a compact JSON array.
pub fn u64_array(values: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    out
}

/// Parses a JSON document.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("empty string tail")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3], "b": {"c": "x", "d": true}, "e": null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("e"), Some(&Json::Null));
    }

    #[test]
    fn quote_and_parse_roundtrip() {
        let nasty = "a\"b\\c\nd\te\u{1}ü";
        let quoted = quote(nasty);
        let v = parse(&quoted).unwrap();
        assert_eq!(v.as_str(), Some(nasty));
    }

    #[test]
    fn u64_arrays_roundtrip() {
        let arr = u64_array(&[0, 1, u64::MAX >> 12]);
        let v = parse(&arr).unwrap();
        let back: Vec<u64> = v
            .as_arr()
            .unwrap()
            .iter()
            .map(|x| x.as_u64().unwrap())
            .collect();
        assert_eq!(back, vec![0, 1, u64::MAX >> 12]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("123 456").is_err());
        assert!(parse("nope").is_err());
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Obj(BTreeMap::new()));
    }
}
