/root/repo/target/debug/deps/domino-833383b44cf259a6.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/domino.rs crates/core/src/eit.rs crates/core/src/naive.rs Cargo.toml

/root/repo/target/debug/deps/libdomino-833383b44cf259a6.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/domino.rs crates/core/src/eit.rs crates/core/src/naive.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/domino.rs:
crates/core/src/eit.rs:
crates/core/src/naive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
