//! Irregular Stream Buffer (Jain & Lin, MICRO 2013) — idealized PC/AC.
//!
//! ISB combines **PC localization** with **address correlation**: the
//! global miss stream is split into per-PC streams, and each PC's stream
//! is linearized into a structural address space so that consecutive
//! correlated addresses become sequential. Following the paper's
//! methodology (§IV-D), we model the *idealized* PC/AC variant with
//! infinite metadata and no structural-space artefacts: for every
//! `(PC, address)` pair we remember where it last occurred in that PC's
//! miss sequence and prefetch the addresses that followed.
//!
//! The paper's point (Figures 1, 11, 13) is that this is the *wrong*
//! localization for server workloads: PC localization breaks the strong
//! global temporal correlation, and predictions are "the following misses
//! of a memory instruction, which may not be the subsequent misses of the
//! workload" — so prefetches arrive far too early and are evicted from
//! the small buffer before their re-execution. Both effects emerge
//! naturally here: the predictions are per-PC successors, and the shared
//! 32-block prefetch buffer does the evicting.

use domino_trace::FxHashMap;

use domino_mem::interface::{PrefetchRequest, PrefetchSink, Prefetcher, TriggerEvent};
use domino_trace::addr::{LineAddr, Pc};

/// Idealized PC-localized address-correlation prefetcher.
#[derive(Debug)]
pub struct Isb {
    degree: usize,
    /// Per-PC miss sequences (infinite idealized storage).
    seqs: FxHashMap<Pc, Vec<LineAddr>>,
    /// `(PC, line)` → index of the last occurrence in that PC's sequence.
    last: FxHashMap<(Pc, LineAddr), u32>,
}

impl Isb {
    /// Creates an idealized ISB with the given prefetch degree.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero.
    pub fn new(degree: usize) -> Self {
        assert!(degree > 0, "degree must be positive");
        Isb {
            degree,
            seqs: FxHashMap::default(),
            last: FxHashMap::default(),
        }
    }
}

impl Prefetcher for Isb {
    fn name(&self) -> &str {
        "ISB"
    }

    fn on_trigger(&mut self, event: &TriggerEvent, sink: &mut dyn PrefetchSink) {
        let seq = self.seqs.entry(event.pc).or_default();
        // Predict: successors of the last occurrence of this address in
        // this PC's stream. Idealized on-chip metadata: no trip delay.
        if let Some(&idx) = self.last.get(&(event.pc, event.line)) {
            let idx = idx as usize;
            for d in 1..=self.degree {
                match seq.get(idx + d) {
                    Some(&line) if line != event.line => {
                        sink.prefetch(PrefetchRequest::immediate(line));
                    }
                    Some(_) => {}
                    None => break,
                }
            }
        }
        // Train.
        self.last.insert((event.pc, event.line), seq.len() as u32);
        seq.push(event.line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_mem::interface::CollectSink;

    fn miss(pc: u64, line: u64) -> TriggerEvent {
        TriggerEvent::miss(Pc::new(pc), LineAddr::new(line))
    }

    fn drive(p: &mut Isb, accesses: &[(u64, u64)]) -> Vec<u64> {
        let mut out = Vec::new();
        for &(pc, line) in accesses {
            let mut sink = CollectSink::new();
            p.on_trigger(&miss(pc, line), &mut sink);
            out.extend(sink.requests.iter().map(|r| r.line.raw()));
        }
        out
    }

    #[test]
    fn predicts_per_pc_successors() {
        let mut p = Isb::new(2);
        // PC 1's stream: 10, 20, 30; then re-miss on 10.
        drive(&mut p, &[(1, 10), (1, 20), (1, 30)]);
        let issued = drive(&mut p, &[(1, 10)]);
        assert_eq!(issued, vec![20, 30]);
    }

    #[test]
    fn localization_ignores_other_pcs() {
        let mut p = Isb::new(1);
        // Global stream 10, 99, 20 — but 99 is another PC's miss.
        drive(&mut p, &[(1, 10), (2, 99), (1, 20)]);
        let issued = drive(&mut p, &[(1, 10)]);
        // ISB predicts PC 1's successor (20), not the global one (99).
        assert_eq!(issued, vec![20]);
    }

    #[test]
    fn interleaved_data_structures_break_pc_streams() {
        // The same loop PC walks two different structures alternately:
        // the per-PC successor of each address keeps changing.
        let mut p = Isb::new(1);
        drive(&mut p, &[(1, 10), (1, 50), (1, 11), (1, 51)]);
        // Re-miss on 10: per-PC successor is 50 (what followed last time),
        // even if the program is now in the 10→11 structure.
        let issued = drive(&mut p, &[(1, 10)]);
        assert_eq!(issued, vec![50]);
    }

    #[test]
    fn unknown_address_is_silent() {
        let mut p = Isb::new(4);
        let issued = drive(&mut p, &[(1, 10), (1, 20), (2, 10)]);
        assert!(issued.is_empty(), "PC 2 never saw address 10 before");
    }
}
