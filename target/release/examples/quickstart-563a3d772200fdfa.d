/root/repo/target/release/examples/quickstart-563a3d772200fdfa.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-563a3d772200fdfa: examples/quickstart.rs

examples/quickstart.rs:
