//! Cross-crate invariants of the evaluation pipeline, checked over random
//! workload configurations drawn from a seeded deterministic RNG.

use domino_repro::sim::{baseline_miss_sequence, run_coverage, System, SystemConfig};
use domino_repro::trace::rng::SimRng;
use domino_repro::trace::workload::{MixWeights, WorkloadSpec};

fn arbitrary_spec(rng: &mut SimRng) -> (WorkloadSpec, u64) {
    let temporal = 0.2 + rng.unit() * 0.7;
    let spatial = rng.unit() * 0.4;
    let noise = rng.unit() * 0.4;
    let junctions = rng.unit() * 0.5;
    let seed = 1 + rng.below(999);
    let mut spec = WorkloadSpec::named("prop");
    spec.mix = MixWeights {
        temporal,
        spatial: spatial + 0.01,
        noise: noise + 0.01,
    };
    spec.temporal.junction_frac = junctions;
    (spec, seed)
}

/// Coverage accounting is consistent for every system on any workload:
/// covered ≤ baseline misses, rates in range, and the baseline miss
/// count is identical with and without prefetching.
#[test]
fn coverage_accounting_holds() {
    for case in 0..12u64 {
        let mut rng = SimRng::seed(0xE26_0000 + case);
        let (spec, seed) = arbitrary_spec(&mut rng);
        let system = SystemConfig::paper();
        let trace: Vec<_> = spec.generator(seed).take(20_000).collect();
        let mut none = System::Baseline.build(1);
        let base = run_coverage(&system, &trace, none.as_mut());
        assert_eq!(base.covered, 0);
        for sys in [System::Stms, System::Domino, System::Vldp, System::NextLine] {
            let mut p = sys.build(2);
            let r = run_coverage(&system, &trace, p.as_mut());
            assert_eq!(r.baseline_misses, base.baseline_misses);
            assert!(r.covered <= r.baseline_misses);
            assert!((0.0..=1.0).contains(&r.coverage()));
            assert!(r.overprediction_rate() >= 0.0);
            // Streams sum to covered misses.
            let stream_sum: u64 = r.stream_lengths.counts().iter().sum();
            assert!(stream_sum <= r.covered + 1);
        }
    }
}

/// The miss sequence is deterministic and independent of prefetching.
#[test]
fn miss_sequence_is_deterministic() {
    for case in 0..12u64 {
        let mut rng = SimRng::seed(0x315_0000 + case);
        let (spec, seed) = arbitrary_spec(&mut rng);
        let system = SystemConfig::paper();
        let t1: Vec<_> = spec.generator(seed).take(10_000).collect();
        let t2: Vec<_> = spec.generator(seed).take(10_000).collect();
        assert_eq!(
            baseline_miss_sequence(&system, &t1),
            baseline_miss_sequence(&system, &t2)
        );
    }
}
