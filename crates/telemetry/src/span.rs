//! Request span tracing: fixed-size binary records decomposing one
//! batch's life into queue wait vs. compute, in the `DMNOFLT1` style of
//! [`crate::trace`].
//!
//! A span follows one sampled [`BatchRequest`]-shaped unit of work
//! through the service: **submit** (client stamps the request) →
//! **enqueue** (request handed to the shard queue) → **dequeue** (shard
//! worker picks it up) → **step** (engine finished replaying the batch)
//! → **reply** (bookkeeping done, latency recorded). All five stamps
//! are nanosecond offsets from one run-wide origin instant, so
//! `dequeue - enqueue` is queue wait and `step - dequeue` is engine
//! compute without any cross-thread clock mixing.
//!
//! Spans are sampled 1-in-N by [`SpanSampler`], a pure hash of
//! `(seed, tenant, seq)` — no RNG state, no atomics — so *which*
//! requests carry spans is byte-identical across runs of the same plan.
//! The timestamps inside a span are wall-clock and vary run to run;
//! determinism here means deterministic *selection*, which is what
//! makes sampled output diffable and the overhead reproducible.
//!
//! # Binary file format (`spans_*.bin`, version 1, little-endian)
//!
//! ```text
//! offset  size  field
//! 0       8     magic "DMNOSPN1"
//! 8       4     version (u32, = 1)
//! 12      4     reserved (u32, = 0)
//! 16      ...   source (u32 length + UTF-8 bytes, e.g. "shard-0")
//! ...     4     sample rate N (u32; 0 = disabled, 1 = every request)
//! ...     8     sampler seed (u64)
//! ...     8×2   ring capacity, spans ever recorded (u64 each)
//! ...     8     stored span count M (u64)
//! ...     64×M  spans, oldest first (see SpanRecord::to_bytes)
//! ```

/// File magic of a serialized span ring.
pub const SPAN_MAGIC: &[u8; 8] = b"DMNOSPN1";

/// Binary format version written by [`SpanRing::to_bytes`].
pub const SPAN_VERSION: u32 = 1;

/// Serialized size of one span record.
pub const SPAN_RECORD_BYTES: usize = 64;

/// One request's five-stage timeline. All `*_ns` fields are offsets
/// from the run origin; the service guarantees
/// `submit ≤ enqueue ≤ dequeue ≤ step ≤ reply` (audited by
/// `domino-check`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Tenant the batch belongs to.
    pub tenant: u64,
    /// Per-tenant sequence key (the batch's stream start offset).
    pub seq: u64,
    /// Shard that served the batch.
    pub shard: u32,
    /// Events in the batch.
    pub events: u32,
    /// Client stamped the request.
    pub submit_ns: u64,
    /// Request handed to the shard queue.
    pub enqueue_ns: u64,
    /// Shard worker received the request.
    pub dequeue_ns: u64,
    /// Engine finished replaying the batch.
    pub step_ns: u64,
    /// Shard bookkeeping done, latency recorded.
    pub reply_ns: u64,
}

impl SpanRecord {
    /// Queue wait: dequeue − enqueue (includes client blocking under
    /// the `Block` policy).
    pub fn queue_ns(&self) -> u64 {
        self.dequeue_ns.saturating_sub(self.enqueue_ns)
    }

    /// Engine compute: step − dequeue.
    pub fn compute_ns(&self) -> u64 {
        self.step_ns.saturating_sub(self.dequeue_ns)
    }

    /// Post-step bookkeeping (budget checks, eviction): reply − step.
    pub fn overhead_ns(&self) -> u64 {
        self.reply_ns.saturating_sub(self.step_ns)
    }

    /// Whether the five stamps are nondecreasing in pipeline order.
    pub fn chronological(&self) -> bool {
        self.submit_ns <= self.enqueue_ns
            && self.enqueue_ns <= self.dequeue_ns
            && self.dequeue_ns <= self.step_ns
            && self.step_ns <= self.reply_ns
    }

    fn to_bytes(self) -> [u8; SPAN_RECORD_BYTES] {
        let mut b = [0u8; SPAN_RECORD_BYTES];
        b[0..8].copy_from_slice(&self.tenant.to_le_bytes());
        b[8..16].copy_from_slice(&self.seq.to_le_bytes());
        b[16..20].copy_from_slice(&self.shard.to_le_bytes());
        b[20..24].copy_from_slice(&self.events.to_le_bytes());
        b[24..32].copy_from_slice(&self.submit_ns.to_le_bytes());
        b[32..40].copy_from_slice(&self.enqueue_ns.to_le_bytes());
        b[40..48].copy_from_slice(&self.dequeue_ns.to_le_bytes());
        b[48..56].copy_from_slice(&self.step_ns.to_le_bytes());
        b[56..64].copy_from_slice(&self.reply_ns.to_le_bytes());
        b
    }

    fn from_bytes(b: &[u8]) -> SpanRecord {
        let u64_at = |o: usize| u64::from_le_bytes(b[o..o + 8].try_into().expect("8 bytes"));
        let u32_at = |o: usize| u32::from_le_bytes(b[o..o + 4].try_into().expect("4 bytes"));
        SpanRecord {
            tenant: u64_at(0),
            seq: u64_at(8),
            shard: u32_at(16),
            events: u32_at(20),
            submit_ns: u64_at(24),
            enqueue_ns: u64_at(32),
            dequeue_ns: u64_at(40),
            step_ns: u64_at(48),
            reply_ns: u64_at(56),
        }
    }
}

/// Deterministic 1-in-N request sampler: a pure function of
/// `(seed, tenant, seq)`, so the sampled set is identical across runs
/// and across threads with zero shared state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanSampler {
    /// 1-in-N rate; 0 disables sampling, 1 samples everything.
    pub rate: u32,
    /// Hash seed, so distinct runs can sample distinct sets on purpose.
    pub seed: u64,
}

impl SpanSampler {
    /// A sampler at `rate` with `seed`.
    pub fn new(rate: u32, seed: u64) -> Self {
        SpanSampler { rate, seed }
    }

    /// Whether the request keyed `(tenant, seq)` carries a span.
    pub fn sampled(&self, tenant: u64, seq: u64) -> bool {
        match self.rate {
            0 => false,
            1 => true,
            rate => {
                // SplitMix64-style finalizer over the mixed key: cheap,
                // stateless, and well-distributed over low bits.
                let mut x = self
                    .seed
                    .wrapping_add(tenant.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    .wrapping_add(seq.wrapping_mul(0xBF58_476D_1CE4_E5B9));
                x ^= x >> 30;
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x ^= x >> 27;
                x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^= x >> 31;
                x.is_multiple_of(u64::from(rate))
            }
        }
    }
}

/// Fixed-capacity ring of [`SpanRecord`]s, keeping the most recent
/// `capacity` spans. Preallocated; recording is allocation-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRing {
    slots: Vec<SpanRecord>,
    capacity: usize,
    recorded: u64,
}

impl SpanRing {
    /// A ring holding the last `capacity` spans.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "span ring needs capacity");
        let zero = SpanRecord {
            tenant: 0,
            seq: 0,
            shard: 0,
            events: 0,
            submit_ns: 0,
            enqueue_ns: 0,
            dequeue_ns: 0,
            step_ns: 0,
            reply_ns: 0,
        };
        SpanRing {
            slots: vec![zero; capacity],
            capacity,
            recorded: 0,
        }
    }

    /// Records one span, overwriting the oldest slot when full.
    pub fn record(&mut self, span: SpanRecord) {
        let slot = (self.recorded % self.capacity as u64) as usize;
        self.slots[slot] = span;
        self.recorded += 1;
    }

    /// Spans ever recorded (≥ [`SpanRing::len`]).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Spans currently stored.
    pub fn len(&self) -> usize {
        self.recorded.min(self.capacity as u64) as usize
    }

    /// Whether no span was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.recorded == 0
    }

    /// Whether old spans have been discarded.
    pub fn wrapped(&self) -> bool {
        self.recorded > self.capacity as u64
    }

    /// Stored spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &SpanRecord> + '_ {
        let len = self.len();
        let split = if self.wrapped() {
            (self.recorded % self.capacity as u64) as usize
        } else {
            0
        };
        (0..len).map(move |i| &self.slots[(split + i) % self.capacity])
    }

    /// Serializes the ring in the [module-level](self) binary format.
    pub fn to_bytes(&self, source: &str, sampler: SpanSampler) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + source.len() + self.len() * SPAN_RECORD_BYTES);
        out.extend_from_slice(SPAN_MAGIC);
        out.extend_from_slice(&SPAN_VERSION.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&(source.len() as u32).to_le_bytes());
        out.extend_from_slice(source.as_bytes());
        out.extend_from_slice(&sampler.rate.to_le_bytes());
        out.extend_from_slice(&sampler.seed.to_le_bytes());
        out.extend_from_slice(&(self.capacity as u64).to_le_bytes());
        out.extend_from_slice(&self.recorded.to_le_bytes());
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        for span in self.spans() {
            out.extend_from_slice(&span.to_bytes());
        }
        out
    }
}

/// A parsed span file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanFile {
    /// Producer label from the header.
    pub source: String,
    /// The producer's sampler (rate + seed).
    pub sampler: SpanSampler,
    /// Ring capacity of the producer.
    pub capacity: u64,
    /// Spans the producer ever recorded.
    pub recorded: u64,
    /// Stored spans, oldest first.
    pub spans: Vec<SpanRecord>,
}

impl SpanFile {
    /// Parses a serialized span ring.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformation found.
    pub fn from_bytes(b: &[u8]) -> Result<SpanFile, String> {
        let need = |pos: usize, n: usize| -> Result<(), String> {
            if pos + n > b.len() {
                Err(format!("truncated span file at offset {pos}"))
            } else {
                Ok(())
            }
        };
        need(0, 16)?;
        if &b[0..8] != SPAN_MAGIC {
            return Err("bad magic: not a domino span file".into());
        }
        let version = u32::from_le_bytes(b[8..12].try_into().expect("4 bytes"));
        if version != SPAN_VERSION {
            return Err(format!("unsupported span version {version}"));
        }
        let mut pos = 16;
        need(pos, 4)?;
        let slen = u32::from_le_bytes(b[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        pos += 4;
        need(pos, slen)?;
        let source = String::from_utf8(b[pos..pos + slen].to_vec())
            .map_err(|e| format!("invalid UTF-8 label: {e}"))?;
        pos += slen;
        need(pos, 4 + 8 + 8 + 8 + 8)?;
        let rate = u32::from_le_bytes(b[pos..pos + 4].try_into().expect("4 bytes"));
        pos += 4;
        let seed = u64::from_le_bytes(b[pos..pos + 8].try_into().expect("8 bytes"));
        pos += 8;
        let capacity = u64::from_le_bytes(b[pos..pos + 8].try_into().expect("8 bytes"));
        pos += 8;
        let recorded = u64::from_le_bytes(b[pos..pos + 8].try_into().expect("8 bytes"));
        pos += 8;
        let count = u64::from_le_bytes(b[pos..pos + 8].try_into().expect("8 bytes")) as usize;
        pos += 8;
        need(pos, count * SPAN_RECORD_BYTES)?;
        let spans: Vec<SpanRecord> = (0..count)
            .map(|i| SpanRecord::from_bytes(&b[pos + i * SPAN_RECORD_BYTES..]))
            .collect();
        pos += count * SPAN_RECORD_BYTES;
        if pos != b.len() {
            return Err(format!("{} trailing bytes after spans", b.len() - pos));
        }
        Ok(SpanFile {
            source,
            sampler: SpanSampler::new(rate, seed),
            capacity,
            recorded,
            spans,
        })
    }

    /// Checks the file's invariants: stored count matches the header,
    /// every span is chronological, and every stored span's key is one
    /// the declared sampler selects.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn verify(&self) -> Result<(), String> {
        let expect = self.recorded.min(self.capacity) as usize;
        if self.spans.len() != expect {
            return Err(format!(
                "header promises {expect} stored spans, found {}",
                self.spans.len()
            ));
        }
        for (i, s) in self.spans.iter().enumerate() {
            if !s.chronological() {
                return Err(format!(
                    "span {i} (tenant {}, seq {}): stamps out of order \
                     (submit {} enqueue {} dequeue {} step {} reply {})",
                    s.tenant, s.seq, s.submit_ns, s.enqueue_ns, s.dequeue_ns, s.step_ns, s.reply_ns
                ));
            }
            if self.sampler.rate > 0 && !self.sampler.sampled(s.tenant, s.seq) {
                return Err(format!(
                    "span {i} (tenant {}, seq {}): not selected by the declared sampler",
                    s.tenant, s.seq
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(tenant: u64, seq: u64, base: u64) -> SpanRecord {
        SpanRecord {
            tenant,
            seq,
            shard: 1,
            events: 17,
            submit_ns: base,
            enqueue_ns: base + 10,
            dequeue_ns: base + 50,
            step_ns: base + 900,
            reply_ns: base + 950,
        }
    }

    #[test]
    fn decomposition_sums_to_the_timeline() {
        let s = span(3, 0, 1000);
        assert_eq!(s.queue_ns(), 40);
        assert_eq!(s.compute_ns(), 850);
        assert_eq!(s.overhead_ns(), 50);
        assert!(s.chronological());
        assert_eq!(
            s.queue_ns() + s.compute_ns() + s.overhead_ns(),
            s.reply_ns - s.enqueue_ns
        );
    }

    #[test]
    fn sampler_is_deterministic_and_rate_shaped() {
        let a = SpanSampler::new(8, 0xD0);
        let b = SpanSampler::new(8, 0xD0);
        let hits: Vec<bool> = (0..4096u64)
            .map(|seq| a.sampled(seq / 64, seq % 64))
            .collect();
        let again: Vec<bool> = (0..4096u64)
            .map(|seq| b.sampled(seq / 64, seq % 64))
            .collect();
        assert_eq!(hits, again, "pure function of (seed, tenant, seq)");
        let count = hits.iter().filter(|&&h| h).count();
        // 1-in-8 over 4096 keys: expect ~512; allow a wide band.
        assert!((256..=768).contains(&count), "rate off: {count}/4096");
    }

    #[test]
    fn sampler_edge_rates() {
        let off = SpanSampler::new(0, 1);
        let all = SpanSampler::new(1, 1);
        for k in 0..64u64 {
            assert!(!off.sampled(k, k));
            assert!(all.sampled(k, k));
        }
    }

    #[test]
    fn distinct_seeds_sample_distinct_sets() {
        let a = SpanSampler::new(4, 1);
        let b = SpanSampler::new(4, 2);
        let sa: Vec<bool> = (0..1024u64).map(|k| a.sampled(k, 0)).collect();
        let sb: Vec<bool> = (0..1024u64).map(|k| b.sampled(k, 0)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn ring_wraps_oldest_first() {
        let mut ring = SpanRing::new(3);
        for i in 0..5u64 {
            ring.record(span(i, i, i * 1000));
        }
        assert!(ring.wrapped());
        assert_eq!(ring.recorded(), 5);
        let tenants: Vec<u64> = ring.spans().map(|s| s.tenant).collect();
        assert_eq!(tenants, vec![2, 3, 4]);
    }

    #[test]
    fn roundtrip_and_verify() {
        let sampler = SpanSampler::new(1, 7);
        let mut ring = SpanRing::new(8);
        ring.record(span(1, 0, 100));
        ring.record(span(2, 17, 300));
        let bytes = ring.to_bytes("shard-2", sampler);
        let f = SpanFile::from_bytes(&bytes).expect("parse");
        assert_eq!(f.source, "shard-2");
        assert_eq!(f.sampler, sampler);
        assert_eq!(f.capacity, 8);
        assert_eq!(f.recorded, 2);
        assert_eq!(f.spans, vec![span(1, 0, 100), span(2, 17, 300)]);
        f.verify().expect("invariants hold");
    }

    #[test]
    fn verify_rejects_achronological_span() {
        let mut ring = SpanRing::new(4);
        let mut s = span(1, 0, 100);
        s.dequeue_ns = s.enqueue_ns - 1;
        ring.record(s);
        let f = SpanFile::from_bytes(&ring.to_bytes("s", SpanSampler::new(1, 0))).expect("parse");
        let err = f.verify().expect_err("out-of-order stamps must fail");
        assert!(err.contains("out of order"), "{err}");
    }

    #[test]
    fn verify_rejects_unsampled_key() {
        let sampler = SpanSampler::new(1_000_000, 0);
        // Find a key the sampler rejects, store it anyway.
        let key = (0..u64::MAX).find(|&k| !sampler.sampled(k, 0)).unwrap();
        let mut ring = SpanRing::new(4);
        ring.record(span(key, 0, 10));
        let f = SpanFile::from_bytes(&ring.to_bytes("s", sampler)).expect("parse");
        let err = f.verify().expect_err("unsampled key must fail");
        assert!(err.contains("not selected"), "{err}");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(SpanFile::from_bytes(b"short").is_err());
        let ring = SpanRing::new(2);
        let mut bytes = ring.to_bytes("s", SpanSampler::new(0, 0));
        bytes[8] = 9; // version
        assert!(SpanFile::from_bytes(&bytes).is_err());
        let mut trailing = ring.to_bytes("s", SpanSampler::new(0, 0));
        trailing.push(0);
        assert!(SpanFile::from_bytes(&trailing).is_err());
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_panics() {
        SpanRing::new(0);
    }
}
