//! Out-of-core trace ingestion: the `DMNOTRC1` on-disk format, codecs,
//! foreign-format adapters, and streaming event sources.
//!
//! Everything in-memory today is bounded by host RAM: the workload models
//! synthesize whole traces and `domino-sim` caches them as `Arc<[AccessEvent]>`
//! slices. Server miss streams — Domino's entire subject — are much larger
//! than that, so this module adds the missing out-of-core path:
//!
//! * [`format`] — the `DMNOTRC1` binary container: fixed-size little-endian
//!   records grouped into digest-protected chunks with a trailing chunk
//!   index. Schema-versioned, written and read with `std` only.
//! * [`compress`] — a Sequitur codec (`crates/sequitur`) that stores each
//!   chunk as a per-chunk event dictionary plus a serialized grammar;
//!   repetitive server traces shrink to a fraction of raw size and
//!   decompress chunk-by-chunk in bounded memory.
//! * [`champsim`] — an adapter for ChampSim's `invoke_prefetcher(ip, addr,
//!   cache_hit, type)` record stream, so traces collected under ChampSim
//!   replay through the reproduction bit-exactly.
//! * [`source`] — the [`EventSource`] abstraction the engines consume:
//!   cached slices, file-backed chunk streams with double-buffered
//!   read-ahead on a background thread, and compressed streams — all with
//!   peak-resident-byte accounting so memory bounds are testable.
//!
//! The simulator plumbing lives in `domino-sim` (`run_coverage_streamed`,
//! `run_timing_streamed`); the CLI entry point is `domino-ingest`.

pub mod champsim;
pub mod compress;
pub mod format;
pub mod source;

pub use champsim::{read_champsim, write_champsim, ChampSimRecord, CHAMPSIM_RECORD_BYTES};
pub use format::{
    write_trace_file, Codec, TraceFileError, TraceReader, TraceWriter, DEFAULT_CHUNK_EVENTS,
    RECORD_BYTES, TRACE_MAGIC,
};
pub use source::{EventSource, FileSource, SliceSource};
