/root/repo/target/release/deps/domino_bench-a180fea5a8ba9c05.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libdomino_bench-a180fea5a8ba9c05.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
