//! Per-tenant service state: an owned prefetcher driven through an
//! incremental [`CoverageSession`].
//!
//! The session is the unit of both correctness and memory accounting.
//! Correctness: the coverage engine's partition-invariance (any chunking
//! of a stream replays bit-identically to the scalar engine) means a
//! tenant served in request-batch increments ends with exactly the
//! report, decision digest, and metadata state of a single-tenant `sim`
//! run over the same stream. Memory: the prefetcher reports its
//! metadata allocation ([`Prefetcher::footprint_bytes`]), and the shard
//! charges a fixed overhead for the engine models on top.

use domino_mem::interface::Prefetcher;
use domino_sim::{CoverageReport, CoverageSession, System};
use domino_trace::addr::{LineAddr, LINE_BYTES};
use domino_trace::event::AccessEvent;

use crate::service::ServiceConfig;

/// Estimated engine-model bytes per L1 line (tag + LRU + map slot).
const L1_LINE_OVERHEAD: usize = 24;
/// Estimated engine-model bytes per prefetch-buffer block.
const BUFFER_BLOCK_OVERHEAD: usize = 48;

/// One tenant's live state inside a shard worker.
pub struct TenantSession {
    tenant: u64,
    system: System,
    engine: CoverageSession,
    prefetcher: Box<dyn Prefetcher>,
    /// Engine-model overhead charged on top of prefetcher metadata.
    base_bytes: usize,
    /// Cached total footprint, refreshed after every batch.
    footprint: usize,
    /// Shard-local LRU stamp (bumped on every batch served).
    pub(crate) touch: u64,
    batches: u64,
    /// Events skipped because an earlier batch was shed.
    gap_events: u64,
    /// Per-tenant budget trips that reset the metadata in place.
    resets: u64,
}

/// A finished tenant run: everything the oracle and the report need
/// after the session leaves its shard (end-of-run drain or LRU
/// eviction).
pub struct TenantFinal {
    /// Tenant id.
    pub tenant: u64,
    /// System the tenant ran.
    pub system: System,
    /// The closed coverage report (identical to a single-tenant run's
    /// when no batch was shed, no budget tripped, and no eviction hit).
    pub report: CoverageReport,
    /// Decision digest (0 when digests were disabled).
    pub digest: u64,
    /// Stream index the session had consumed when it closed.
    pub processed: usize,
    /// Request batches served.
    pub batches: u64,
    /// Events lost to shed gaps.
    pub gap_events: u64,
    /// Per-tenant metadata resets.
    pub resets: u64,
    /// Whether the shard evicted this session under memory pressure
    /// (false for the orderly end-of-run drain).
    pub evicted: bool,
    /// The tenant's prefetcher, kept so callers can probe its metadata
    /// ([`Prefetcher::knows_line`]) — the isolation tests and the
    /// equivalence oracle compare membership against references.
    pub prefetcher: Box<dyn Prefetcher>,
}

impl TenantSession {
    /// Creates a tenant session. `start_at` is the stream index the
    /// session resumes from — nonzero only when a predecessor session
    /// was evicted (the skipped prefix is never replayed; the restart is
    /// cold, exactly "metadata reach was lost").
    pub fn new(tenant: u64, system: System, cfg: &ServiceConfig, start_at: usize) -> Self {
        let prefetcher = system.build(cfg.degree);
        let mut engine = CoverageSession::new(&cfg.system, prefetcher.name(), 0);
        if cfg.digest {
            engine.enable_digest();
        }
        if start_at > 0 {
            engine.skip_to(start_at);
        }
        let base_bytes = (cfg.system.l1d.size_bytes / LINE_BYTES) as usize * L1_LINE_OVERHEAD
            + cfg.system.prefetch_buffer_blocks * BUFFER_BLOCK_OVERHEAD;
        let footprint = base_bytes + prefetcher.footprint_bytes();
        TenantSession {
            tenant,
            system,
            engine,
            prefetcher,
            base_bytes,
            footprint,
            touch: 0,
            batches: 0,
            gap_events: 0,
            resets: 0,
        }
    }

    /// Tenant id.
    pub fn tenant(&self) -> u64 {
        self.tenant
    }

    /// Stream index the next batch must start at (or after, if batches
    /// were shed).
    pub fn processed(&self) -> usize {
        self.engine.processed()
    }

    /// Cached footprint: engine-model overhead plus prefetcher metadata.
    pub fn footprint(&self) -> usize {
        self.footprint
    }

    /// Running engine counters `(covered, prefetches_issued,
    /// metadata_blocks)` — the per-engine-step metrics the observability
    /// plane diffs around each batch. Reads the live report; cheap.
    pub fn engine_counters(&self) -> (u64, u64, u64) {
        let r = self.engine.report();
        (
            r.covered,
            r.prefetches_issued,
            r.meta_read_blocks + r.meta_write_blocks,
        )
    }

    /// Serves one request batch: `stream[start..end]` of this tenant's
    /// miss stream. A `start` past the session's cursor is a shed gap —
    /// the missing events are skipped (counted), never replayed.
    /// Refreshes the cached footprint afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the batch rewinds into already-served events (the
    /// per-tenant FIFO makes that a caller bug, not an overload state).
    pub fn serve(&mut self, stream: &[AccessEvent], start: usize, end: usize) {
        let at = self.engine.processed();
        assert!(
            start >= at,
            "tenant {} batch rewinds: session at {at}, batch starts {start}",
            self.tenant
        );
        if start > at {
            self.gap_events += (start - at) as u64;
            self.engine.skip_to(start);
        }
        self.engine.step(&mut *self.prefetcher, stream, end);
        self.batches += 1;
        self.footprint = self.base_bytes + self.prefetcher.footprint_bytes();
    }

    /// Drops the tenant's learned metadata in place (fresh prefetcher,
    /// same engine state) — the per-tenant budget response. The L1 and
    /// prefetch-buffer models keep their state; only prediction
    /// metadata is lost, so memory is bounded while the stream position
    /// stays intact.
    pub fn reset_metadata(&mut self, cfg: &ServiceConfig) {
        self.prefetcher = self.system.build(cfg.degree);
        self.resets += 1;
        self.footprint = self.base_bytes + self.prefetcher.footprint_bytes();
    }

    /// Per-tenant metadata resets so far.
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Whether the tenant's metadata currently knows `line` (probe, no
    /// state change).
    pub fn knows_line(&self, line: LineAddr) -> bool {
        self.prefetcher.knows_line(line)
    }

    /// Closes the session into a [`TenantFinal`].
    pub fn finalize(self, evicted: bool) -> TenantFinal {
        let digest = self.engine.digest();
        let processed = self.engine.processed();
        TenantFinal {
            tenant: self.tenant,
            system: self.system,
            report: self.engine.finish(),
            digest,
            processed,
            batches: self.batches,
            gap_events: self.gap_events,
            resets: self.resets,
            evicted,
            prefetcher: self.prefetcher,
        }
    }
}
