//! The service front: shard spawning, tenant→shard hashing, bounded
//! queues, and the counted overload policy.

use std::hash::BuildHasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

use domino_sim::SystemConfig;
use domino_trace::hash::FxBuildHasher;

use crate::obs::{ObsConfig, ObsFront, SpanStart};
use crate::session::TenantFinal;
use crate::shard::{run_shard, BatchRequest, ShardOutcome};

/// What the service does when a shard's bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Block the submitter until the queue drains — backpressure. Every
    /// accepted stream replays completely, so per-tenant results stay
    /// bit-identical to single-tenant runs; this is the mode the
    /// equivalence oracle and the SLO report use.
    Block,
    /// Reject the request and count it. The tenant's stream develops a
    /// gap (the session skips the lost events), so decisions diverge
    /// from the contiguous reference — but never leak across tenants.
    Shed,
}

impl OverloadPolicy {
    /// Stable lower-case label (report JSON, CLI flag values).
    pub fn label(self) -> &'static str {
        match self {
            OverloadPolicy::Block => "block",
            OverloadPolicy::Shed => "shed",
        }
    }

    /// Inverse of [`OverloadPolicy::label`].
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "block" => Some(OverloadPolicy::Block),
            "shed" => Some(OverloadPolicy::Shed),
            _ => None,
        }
    }
}

/// Service-wide configuration, fixed at [`MetadataService::start`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Shard workers (threads); tenants hash across them.
    pub shards: usize,
    /// Bounded request-queue depth per shard.
    pub queue_depth: usize,
    /// Overload behaviour when a queue is full.
    pub policy: OverloadPolicy,
    /// Prefetch degree every tenant's prefetcher is built at.
    pub degree: usize,
    /// Engine geometry (L1 model, prefetch-buffer blocks) per tenant.
    pub system: SystemConfig,
    /// Per-tenant metadata budget; exceeding it resets the tenant's
    /// metadata in place. `usize::MAX` disables.
    pub tenant_budget_bytes: usize,
    /// Whole-shard footprint budget; exceeding it evicts
    /// least-recently-served sessions. `usize::MAX` disables.
    pub shard_budget_bytes: usize,
    /// Whether tenant sessions fold the decision digest (cheap; the
    /// equivalence oracle and the scale tests rely on it).
    pub digest: bool,
    /// The live observability plane — `None` (the default) keeps the
    /// service on the exact pre-observability path.
    pub obs: Option<ObsConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 4,
            queue_depth: 64,
            policy: OverloadPolicy::Block,
            degree: 4,
            system: SystemConfig::paper(),
            tenant_budget_bytes: usize::MAX,
            shard_budget_bytes: usize::MAX,
            digest: true,
            obs: None,
        }
    }
}

/// A running sharded metadata service.
pub struct MetadataService {
    senders: Vec<SyncSender<BatchRequest>>,
    handles: Vec<JoinHandle<ShardOutcome>>,
    shed: Vec<Arc<AtomicU64>>,
    policy: OverloadPolicy,
    front: Option<Arc<ObsFront>>,
}

/// A cheap per-submitter handle: cloned queue senders plus the shed
/// counters. Load-generator client threads each own one, so submission
/// never synchronizes through the service struct.
#[derive(Clone)]
pub struct ServiceClient {
    senders: Vec<SyncSender<BatchRequest>>,
    shed: Vec<Arc<AtomicU64>>,
    policy: OverloadPolicy,
    front: Option<Arc<ObsFront>>,
}

impl ServiceClient {
    /// The shard `tenant` hashes to.
    pub fn shard_of(&self, tenant: u64) -> usize {
        (FxBuildHasher::default().hash_one(tenant) as usize) % self.senders.len()
    }

    /// Submits one batch to its tenant's shard. Returns `false` only
    /// when the shed policy rejected it (queue full).
    ///
    /// # Panics
    ///
    /// Panics if the shard worker has terminated (service bug).
    pub fn submit(&self, req: BatchRequest) -> bool {
        let s = self.shard_of(req.tenant);
        if let Some(front) = &self.front {
            return self.submit_observed(front, s, req);
        }
        match self.policy {
            OverloadPolicy::Block => {
                self.senders[s].send(req).expect("shard worker alive");
                true
            }
            OverloadPolicy::Shed => match self.senders[s].try_send(req) {
                Ok(()) => true,
                Err(TrySendError::Full(_)) => {
                    self.shed[s].fetch_add(1, Ordering::Relaxed);
                    false
                }
                Err(TrySendError::Disconnected(_)) => panic!("shard worker alive"),
            },
        }
    }

    /// The armed submit path: stamps spans for sampled requests and
    /// maintains the queue-depth / blocked-submission counters. The
    /// depth gauge is incremented *before* the send so the worker's
    /// decrement can never observe it at zero.
    fn submit_observed(&self, front: &Arc<ObsFront>, s: usize, mut req: BatchRequest) -> bool {
        if front.sampler.sampled(req.tenant, u64::from(req.start)) {
            let submit_ns = front.now_ns();
            req.span = Some(SpanStart {
                submit_ns,
                enqueue_ns: submit_ns,
            });
        }
        match self.policy {
            OverloadPolicy::Block => {
                front.depth[s].fetch_add(1, Ordering::Relaxed);
                if let Some(sp) = req.span.as_mut() {
                    sp.enqueue_ns = front.now_ns();
                }
                // try_send first so a full queue is visible as a blocked
                // submission; falling through to the blocking send on
                // this same thread preserves per-tenant FIFO order.
                match self.senders[s].try_send(req) {
                    Ok(()) => true,
                    Err(TrySendError::Full(req)) => {
                        front.blocked[s].fetch_add(1, Ordering::Relaxed);
                        self.senders[s].send(req).expect("shard worker alive");
                        true
                    }
                    Err(TrySendError::Disconnected(_)) => panic!("shard worker alive"),
                }
            }
            OverloadPolicy::Shed => {
                front.depth[s].fetch_add(1, Ordering::Relaxed);
                if let Some(sp) = req.span.as_mut() {
                    sp.enqueue_ns = front.now_ns();
                }
                match self.senders[s].try_send(req) {
                    Ok(()) => true,
                    Err(TrySendError::Full(_)) => {
                        front.depth[s].fetch_sub(1, Ordering::Relaxed);
                        self.shed[s].fetch_add(1, Ordering::Relaxed);
                        false
                    }
                    Err(TrySendError::Disconnected(_)) => panic!("shard worker alive"),
                }
            }
        }
    }
}

/// Everything the shards hand back at shutdown.
pub struct ServiceResult {
    /// Per-shard outcomes, indexed by shard.
    pub shards: Vec<ShardOutcome>,
}

impl ServiceResult {
    /// Every closed tenant session across all shards.
    pub fn finals(&self) -> impl Iterator<Item = &TenantFinal> {
        self.shards.iter().flat_map(|s| s.finals.iter())
    }

    /// The single final of `tenant` — `None` when the tenant never sent
    /// a batch *or* was evicted mid-run (multiple finals mean the run is
    /// not reference-comparable, so callers must not pick one blindly).
    pub fn tenant(&self, tenant: u64) -> Option<&TenantFinal> {
        let mut it = self.finals().filter(|f| f.tenant == tenant);
        let first = it.next()?;
        if it.next().is_some() {
            return None;
        }
        Some(first)
    }

    /// Events replayed across all shards.
    pub fn total_events(&self) -> u64 {
        self.shards.iter().map(|s| s.stats.events).sum()
    }

    /// Batches served across all shards.
    pub fn total_batches(&self) -> u64 {
        self.shards.iter().map(|s| s.stats.batches).sum()
    }

    /// Requests shed across all shards.
    pub fn total_shed(&self) -> u64 {
        self.shards.iter().map(|s| s.stats.shed).sum()
    }
}

impl MetadataService {
    /// Spawns the shard workers and returns the running service.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate config (zero shards or queue depth).
    pub fn start(cfg: ServiceConfig) -> Self {
        assert!(cfg.shards > 0, "service needs at least one shard");
        assert!(cfg.queue_depth > 0, "queues must hold at least one request");
        let policy = cfg.policy;
        let cfg = Arc::new(cfg);
        let shed: Vec<Arc<AtomicU64>> = (0..cfg.shards)
            .map(|_| Arc::new(AtomicU64::new(0)))
            .collect();
        let front = cfg
            .obs
            .as_ref()
            .map(|ocfg| Arc::new(ObsFront::new(cfg.shards, ocfg, shed.clone())));
        let mut senders = Vec::with_capacity(cfg.shards);
        let mut handles = Vec::with_capacity(cfg.shards);
        for shard in 0..cfg.shards {
            let (tx, rx) = sync_channel::<BatchRequest>(cfg.queue_depth);
            let cfg = Arc::clone(&cfg);
            let front = front.clone();
            let handle = std::thread::Builder::new()
                .name(format!("svc-shard-{shard}"))
                .spawn(move || run_shard(shard, cfg, rx, front))
                .expect("spawn shard worker");
            senders.push(tx);
            handles.push(handle);
        }
        MetadataService {
            senders,
            handles,
            shed,
            policy,
            front,
        }
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// The shard `tenant` hashes to.
    pub fn shard_of(&self, tenant: u64) -> usize {
        (FxBuildHasher::default().hash_one(tenant) as usize) % self.senders.len()
    }

    /// A submission handle for one client thread.
    pub fn client(&self) -> ServiceClient {
        ServiceClient {
            senders: self.senders.clone(),
            shed: self.shed.clone(),
            policy: self.policy,
            front: self.front.clone(),
        }
    }

    /// Submits one batch from the service's own handle (tests and
    /// single-threaded drivers; load generators use [`ServiceClient`]s).
    pub fn submit(&self, req: BatchRequest) -> bool {
        self.client().submit(req)
    }

    /// Hangs up the queues, joins every shard, and returns their
    /// outcomes with the front-end shed counts folded in.
    ///
    /// # Panics
    ///
    /// Panics if a shard worker panicked.
    pub fn shutdown(self) -> ServiceResult {
        // Dropping the senders disconnects the channels once every
        // outstanding ServiceClient is gone too; clients are expected to
        // be dropped before shutdown (the load generator scopes them).
        drop(self.senders);
        let mut shards = Vec::with_capacity(self.handles.len());
        for (handle, shed) in self.handles.into_iter().zip(self.shed) {
            let mut outcome = handle.join().expect("shard worker panicked");
            outcome.stats.shed = shed.load(Ordering::Relaxed);
            shards.push(outcome);
        }
        ServiceResult { shards }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_labels_round_trip() {
        for policy in [OverloadPolicy::Block, OverloadPolicy::Shed] {
            assert_eq!(OverloadPolicy::from_label(policy.label()), Some(policy));
        }
        assert_eq!(OverloadPolicy::from_label("drop"), None);
    }

    #[test]
    fn tenants_spread_deterministically_across_shards() {
        let service = MetadataService::start(ServiceConfig {
            shards: 4,
            ..ServiceConfig::default()
        });
        let client = service.client();
        let mut seen = [false; 4];
        for tenant in 0..64 {
            let s = service.shard_of(tenant);
            assert_eq!(s, client.shard_of(tenant), "front and client agree");
            assert_eq!(s, service.shard_of(tenant), "hashing is stable");
            seen[s] = true;
        }
        assert!(seen.iter().all(|&s| s), "64 tenants cover 4 shards");
        // The client's sender clones keep the shard queues connected;
        // it must be gone before shutdown can join the workers.
        drop(client);
        let result = service.shutdown();
        assert_eq!(result.shards.len(), 4);
        assert_eq!(result.total_events(), 0);
    }
}
