/root/repo/target/debug/deps/domino_repro-a7d0b007a35df13e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdomino_repro-a7d0b007a35df13e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
