//! Fast non-cryptographic hashing for simulator-internal maps.
//!
//! The std `HashMap` defaults to SipHash-1-3, which is DoS-resistant but
//! costs tens of cycles per key. Simulator tables (the EIT row map,
//! prefetcher index tables, trace statistics) are keyed by line addresses
//! and PCs under the simulator's own control, so collision attacks are a
//! non-issue and a multiply-rotate hash in the style of rustc's FxHash is
//! the right trade: one multiply per word, excellent distribution on
//! pointer-like integer keys, and 5-10× cheaper than SipHash on the
//! once-per-simulated-miss lookup paths.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`]; drop-in replacement for
/// `std::collections::HashMap` on hot paths.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` counterpart of [`FxHashMap`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasher` producing [`FxHasher`] instances.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Odd constant from the golden ratio split of 2^64, as used by rustc's
/// FxHash; spreads consecutive integer keys across the full word.
const K: u64 = 0x517c_c1b7_2722_0a95;

/// Multiply-rotate hasher: `state = (state.rotate_left(5) ^ word) * K`
/// per 8-byte word.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // The multiply mixes upward: after `* K` the high bits are strong
        // but the low bits of e.g. line addresses (always 0 mod 64) stay
        // weak. Tables index by the low bits, so rotate the well-mixed
        // high bits down.
        self.state.rotate_left(26)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.add_word(word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_word(n as u64);
        self.add_word((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        assert_eq!(hash_of(&0xDEAD_BEEFu64), hash_of(&0xDEAD_BEEFu64));
        assert_eq!(hash_of(&"domino"), hash_of(&"domino"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let a = hash_of(&1u64);
        let b = hash_of(&2u64);
        assert_ne!(a, b);
        // High bits must differ too — row indices are taken from them.
        assert_ne!(a >> 48, b >> 48);
    }

    #[test]
    fn byte_stream_matches_chunked_writes() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut b = FxHasher::default();
        b.write_u64(u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn works_as_map_hasher() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&500], 1000);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }

    #[test]
    fn spreads_low_entropy_keys() {
        // Line addresses differ only in low bits; buckets must not collide
        // catastrophically on a power-of-two table.
        let mut buckets = [0usize; 64];
        for i in 0..64_000u64 {
            buckets[(hash_of(&(i << 6)) % 64) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        let min = *buckets.iter().min().unwrap();
        assert!(max < min * 3, "skewed buckets: min {min}, max {max}");
    }
}
