//! Observability transparency: arming the plane must not change what
//! the service computes. The same deterministic load plan runs twice —
//! once disarmed (`obs: None`, the exact pre-observability code path)
//! and once armed with spans and metrics on — and everything except
//! wall-clock timing must come out byte-identical: per-tenant decision
//! digests, coverage reports, and the rendered `SERVICE_report.json`
//! once timing fields are zeroed in both runs.

use domino_service::{
    render_report, run_load, LoadPlan, MetadataService, ObsConfig, ServiceConfig, LATENCY_BOUNDS_NS,
};
use domino_service::{LoadReport, ServiceResult};
use domino_telemetry::FixedHistogram;

fn run(obs: Option<ObsConfig>) -> (LoadReport, ServiceResult) {
    let plan = LoadPlan {
        tenants: 12,
        events_per_tenant: 80,
        request_batch: 17,
        clients: 2,
        ..LoadPlan::default()
    };
    let service = MetadataService::start(ServiceConfig {
        shards: 2,
        obs,
        ..ServiceConfig::default()
    });
    let load = {
        let client = service.client();
        run_load(&client, &plan)
    };
    (load, service.shutdown())
}

/// Zeroes every wall-clock-derived field so two runs of the same plan
/// render identically: shard busy/wall time and the latency histogram
/// (timing), plus the load report's wall clock.
fn strip_timing(load: &mut LoadReport, result: &mut ServiceResult) {
    load.wall_ns = 0;
    for shard in &mut result.shards {
        shard.stats.busy_ns = 0;
        shard.stats.wall_ns = 0;
        shard.stats.latency = FixedHistogram::new(LATENCY_BOUNDS_NS);
    }
}

#[test]
fn armed_run_is_byte_identical_to_disarmed_modulo_timing() {
    let armed_cfg = ObsConfig {
        interval_events: 64,
        ring_rows: 16,
        span_rate: 3,
        span_seed: 0xDEC0DE,
        span_capacity: 128,
        live_dir: None,
    };
    let (mut off_load, mut off) = run(None);
    let (mut on_load, mut on) = run(Some(armed_cfg));

    // Decision digests and coverage reports per tenant: exact equality.
    for fin in off.finals() {
        let other = on
            .tenant(fin.tenant)
            .expect("armed run must produce the same tenant finals");
        assert_eq!(
            fin.digest, other.digest,
            "tenant {}: digest diverged when observability was armed",
            fin.tenant
        );
        assert_eq!(
            format!("{:?}", fin.report),
            format!("{:?}", other.report),
            "tenant {}: coverage report diverged",
            fin.tenant
        );
    }
    assert_eq!(off.finals().count(), on.finals().count());

    // The armed run actually observed something (the test has teeth).
    let obs = on.shards[0].obs.as_ref().expect("armed shard has a ring");
    assert!(obs.ring.sampled() > 0, "metrics ring never sampled");

    // Rendered reports: byte-identical once timing is zeroed. The obs
    // outcome is not part of SERVICE_report.json, so rendering the
    // armed result exercises the claim that arming leaves the report
    // schema and values untouched.
    let plan = LoadPlan {
        tenants: 12,
        events_per_tenant: 80,
        request_batch: 17,
        clients: 2,
        ..LoadPlan::default()
    };
    strip_timing(&mut off_load, &mut off);
    strip_timing(&mut on_load, &mut on);
    let doc_off = render_report(&plan, &off_load, &off);
    let doc_on = render_report(&plan, &on_load, &on);
    assert_eq!(
        doc_off, doc_on,
        "SERVICE_report.json diverged between armed and disarmed runs"
    );
}

#[test]
fn armed_ring_totals_match_final_shard_stats() {
    let (_, result) = run(Some(ObsConfig {
        interval_events: 32,
        ring_rows: 8, // small: forces wrap, totals must still conserve
        span_rate: 1,
        ..ObsConfig::default()
    }));
    for shard in &result.shards {
        let obs = shard.obs.as_ref().expect("armed run");
        let total = |name: &str| {
            let col = obs
                .ring
                .column(name)
                .unwrap_or_else(|| panic!("ring has no column {name}"));
            obs.ring.totals()[col]
        };
        assert_eq!(total("events"), shard.stats.events, "events conserved");
        assert_eq!(total("batches"), shard.stats.batches, "batches conserved");
        assert_eq!(
            total("evictions"),
            shard.stats.evictions,
            "evictions conserved"
        );
        assert_eq!(total("resets"), shard.stats.resets, "resets conserved");
        // Span rate 1 samples every batch.
        assert_eq!(
            obs.spans.recorded(),
            shard.stats.batches,
            "rate-1 sampler must record every batch"
        );
    }
}
