//! `domino-top`: live per-shard dashboard over the serialized
//! observability rings.
//!
//! ```text
//! domino-top DIR [--once] [--csv] [--interval-ms N] [--window N]
//! ```
//!
//! Tails the `metrics_shard*.bin` / `spans_shard*.bin` files an armed
//! `domino-serve --obs DIR` run flushes (atomic renames, so a read
//! never sees a torn file) and renders one row per shard: throughput
//! over the last `--window` intervals, p50/p95/p99 batch latency from
//! the ring's self-describing `lat_le_*` columns, queue depth, resident
//! tenants, footprint, evictions/resets, and sampled-span counts. When
//! `DIR/OBS_report.json` exists its SLO verdict is shown too.
//!
//! The binary is simulator-independent on purpose: it only understands
//! the `domino_telemetry` file formats, so it can watch a run from
//! another machine given the directory — nothing here can perturb the
//! service. `--once` renders a single frame (CI); `--csv` emits the
//! same table as machine-readable rows.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use domino_telemetry::json;
use domino_telemetry::{FixedHistogram, RingFile, SpanFile};

fn usage() -> ExitCode {
    eprintln!("usage: domino-top DIR [--once] [--csv] [--interval-ms N] [--window N]");
    ExitCode::FAILURE
}

/// One shard's parsed state for a frame.
struct ShardRow {
    source: String,
    intervals: u64,
    events: u64,
    eps: f64,
    p50: Option<u64>,
    p95: Option<u64>,
    p99: Option<u64>,
    queue_depth: u64,
    tenants: u64,
    footprint: u64,
    evictions: u64,
    resets: u64,
    spans: u64,
}

/// Rebuilds the latency histogram from the ring's self-describing
/// `lat_le_{bound}` / `lat_over` counter columns.
fn latency_hist(file: &RingFile, values: &[u64]) -> Option<FixedHistogram> {
    let mut bounds = Vec::new();
    let mut counts = Vec::new();
    for (i, spec) in file.specs.iter().enumerate() {
        if let Some(b) = spec.name.strip_prefix("lat_le_") {
            bounds.push(b.parse::<u64>().ok()?);
            counts.push(values[i]);
        }
    }
    counts.push(values[file.column("lat_over")?]);
    if bounds.is_empty() {
        return None;
    }
    Some(FixedHistogram::from_parts(bounds, counts, 0))
}

/// Throughput over the last `window` stored rows: summed event deltas
/// against the `wall_ns` gauge span. A single row (or a missing gauge)
/// falls back to the whole-run rate.
fn throughput(file: &RingFile, window: usize) -> f64 {
    let events_col = match file.column("events") {
        Some(c) => c,
        None => return 0.0,
    };
    let wall_col = file.column("wall_ns");
    let skip = file.rows.len().saturating_sub(window.max(2));
    let rows = &file.rows[skip..];
    if let (Some(wall_col), true) = (wall_col, rows.len() >= 2) {
        let events: u64 = rows[1..].iter().map(|(_, v)| v[events_col]).sum();
        let span = rows[rows.len() - 1].1[wall_col].saturating_sub(rows[0].1[wall_col]);
        if span > 0 {
            return events as f64 / (span as f64 / 1e9);
        }
    }
    // Whole run: total events over the final wall offset.
    let wall = wall_col.map(|c| file.totals[c]).unwrap_or(0);
    if wall == 0 {
        0.0
    } else {
        file.totals[events_col] as f64 / (wall as f64 / 1e9)
    }
}

fn read_shard(metrics: &Path, spans: &Path, window: usize) -> Result<ShardRow, String> {
    let bytes = std::fs::read(metrics).map_err(|e| format!("read {}: {e}", metrics.display()))?;
    let file = RingFile::from_bytes(&bytes).map_err(|e| format!("{}: {e}", metrics.display()))?;
    file.verify()
        .map_err(|e| format!("{}: {e}", metrics.display()))?;
    let hist = latency_hist(&file, &file.totals);
    let gauge = |name: &str| {
        file.column(name)
            .and_then(|c| file.rows.last().map(|(_, v)| v[c]))
            .unwrap_or(0)
    };
    let spans = std::fs::read(spans)
        .ok()
        .and_then(|b| SpanFile::from_bytes(&b).ok())
        .map(|f| f.recorded)
        .unwrap_or(0);
    Ok(ShardRow {
        source: file.source.clone(),
        intervals: file.sampled,
        events: file.total("events").unwrap_or(0),
        eps: throughput(&file, window),
        p50: hist.as_ref().and_then(|h| h.percentile(0.50)),
        p95: hist.as_ref().and_then(|h| h.percentile(0.95)),
        p99: hist.as_ref().and_then(|h| h.percentile(0.99)),
        queue_depth: gauge("queue_depth"),
        tenants: gauge("tenants"),
        footprint: gauge("footprint_bytes"),
        evictions: file.total("evictions").unwrap_or(0),
        resets: file.total("resets").unwrap_or(0),
        spans,
    })
}

/// The SLO verdict from `OBS_report.json`, when present:
/// `Some((breached, names-of-breached-objectives))`.
fn slo_status(dir: &Path) -> Option<(bool, Vec<String>)> {
    let doc = std::fs::read_to_string(dir.join("OBS_report.json")).ok()?;
    let parsed = json::parse(&doc).ok()?;
    let slo = parsed.get("slo")?;
    let overall = as_bool(slo.get("breached")?)?;
    let mut names = Vec::new();
    if let Some(objectives) = slo.get("objectives").and_then(|v| v.as_arr()) {
        for o in objectives {
            if o.get("breached").and_then(as_bool) == Some(true) {
                if let Some(name) = o.get("name").and_then(|v| v.as_str()) {
                    names.push(name.to_string());
                }
            }
        }
    }
    Some((overall, names))
}

fn as_bool(v: &json::Json) -> Option<bool> {
    match v {
        json::Json::Bool(b) => Some(*b),
        _ => None,
    }
}

fn human_ns(v: Option<u64>) -> String {
    match v {
        None => "-".into(),
        Some(u64::MAX) => ">max".into(),
        Some(ns) if ns >= 10_000_000 => format!("{}ms", ns / 1_000_000),
        Some(ns) if ns >= 10_000 => format!("{}us", ns / 1_000),
        Some(ns) => format!("{ns}ns"),
    }
}

fn human_count(v: u64) -> String {
    if v >= 10_000_000 {
        format!("{}M", v / 1_000_000)
    } else if v >= 10_000 {
        format!("{}k", v / 1_000)
    } else {
        v.to_string()
    }
}

fn render_table(rows: &[ShardRow], slo: Option<&(bool, Vec<String>)>) {
    println!(
        "{:<9} {:>6} {:>8} {:>10} {:>7} {:>7} {:>7} {:>6} {:>6} {:>9} {:>6} {:>6} {:>6}",
        "SHARD",
        "INTVL",
        "EVENTS",
        "EV/S",
        "P50",
        "P95",
        "P99",
        "QLEN",
        "TNTS",
        "FOOT",
        "EVICT",
        "RESET",
        "SPANS"
    );
    for r in rows {
        println!(
            "{:<9} {:>6} {:>8} {:>10.0} {:>7} {:>7} {:>7} {:>6} {:>6} {:>9} {:>6} {:>6} {:>6}",
            r.source,
            r.intervals,
            human_count(r.events),
            r.eps,
            human_ns(r.p50),
            human_ns(r.p95),
            human_ns(r.p99),
            r.queue_depth,
            r.tenants,
            human_count(r.footprint),
            r.evictions,
            r.resets,
            r.spans,
        );
    }
    match slo {
        Some((false, _)) => println!("SLO: OK"),
        Some((true, names)) => println!("SLO: BREACH ({})", names.join(", ")),
        None => println!("SLO: - (no OBS_report.json yet)"),
    }
}

fn render_csv(rows: &[ShardRow]) {
    println!(
        "shard,intervals,events,eps,p50_ns,p95_ns,p99_ns,queue_depth,tenants,\
         footprint_bytes,evictions,resets,spans"
    );
    for r in rows {
        println!(
            "{},{},{},{:.3},{},{},{},{},{},{},{},{},{}",
            r.source,
            r.intervals,
            r.events,
            r.eps,
            r.p50.unwrap_or(0),
            r.p95.unwrap_or(0),
            r.p99.unwrap_or(0),
            r.queue_depth,
            r.tenants,
            r.footprint,
            r.evictions,
            r.resets,
            r.spans,
        );
    }
}

/// The shard files currently present, ordered by shard index.
fn shard_files(dir: &Path) -> Vec<(PathBuf, PathBuf)> {
    let mut found: Vec<(u64, PathBuf, PathBuf)> = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(idx) = name
            .strip_prefix("metrics_shard")
            .and_then(|r| r.strip_suffix(".bin"))
            .and_then(|r| r.parse::<u64>().ok())
        {
            found.push((idx, entry.path(), dir.join(format!("spans_shard{idx}.bin"))));
        }
    }
    found.sort_by_key(|(idx, _, _)| *idx);
    found.into_iter().map(|(_, m, s)| (m, s)).collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir: Option<PathBuf> = None;
    let mut once = false;
    let mut csv = false;
    let mut interval_ms: u64 = 1_000;
    let mut window: usize = 8;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--once" => once = true,
            "--csv" => csv = true,
            "--interval-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => interval_ms = v,
                _ => return usage(),
            },
            "--window" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => window = v,
                _ => return usage(),
            },
            other if !other.starts_with('-') && dir.is_none() => {
                dir = Some(PathBuf::from(other));
            }
            _ => return usage(),
        }
    }
    let Some(dir) = dir else { return usage() };
    loop {
        let files = shard_files(&dir);
        let mut rows = Vec::with_capacity(files.len());
        for (metrics, spans) in &files {
            match read_shard(metrics, spans, window) {
                Ok(row) => rows.push(row),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if once {
            if rows.is_empty() {
                eprintln!("error: no metrics_shard*.bin under {}", dir.display());
                return ExitCode::FAILURE;
            }
        } else {
            // Watch mode: clear and home between frames.
            print!("\x1b[2J\x1b[H");
            println!("domino-top — {} ({} shards)", dir.display(), rows.len());
        }
        if csv {
            render_csv(&rows);
        } else {
            render_table(&rows, slo_status(&dir).as_ref());
        }
        if once {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}
