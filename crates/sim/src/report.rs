//! Plain-text rendering of figure data: one aligned table per figure,
//! rows = workloads (or sweep points), columns = series.

use std::fmt;

/// A rectangular results table with a title, mirroring one paper figure.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureTable {
    /// e.g. "Figure 11 — coverage, degree 1".
    pub title: String,
    /// Row label header (e.g. "workload").
    pub row_header: String,
    /// Column (series) names.
    pub columns: Vec<String>,
    /// Row labels.
    pub rows: Vec<String>,
    /// `values[r][c]`; `NaN` renders as "-".
    pub values: Vec<Vec<f64>>,
    /// Render values as percentages.
    pub percent: bool,
}

impl FigureTable {
    /// Creates an empty table.
    pub fn new(
        title: impl Into<String>,
        row_header: impl Into<String>,
        columns: Vec<String>,
    ) -> Self {
        FigureTable {
            title: title.into(),
            row_header: row_header.into(),
            columns,
            rows: Vec::new(),
            values: Vec::new(),
            percent: false,
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width must match columns"
        );
        self.rows.push(label.into());
        self.values.push(values);
    }

    /// Column-wise arithmetic mean over current rows, appended as a row.
    pub fn push_mean_row(&mut self, label: impl Into<String>) {
        let n = self.values.len();
        if n == 0 {
            return;
        }
        let mut means = vec![0.0; self.columns.len()];
        for row in &self.values {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n as f64;
        }
        self.push_row(label, means);
    }

    /// Column-wise geometric mean over current rows, appended as a row.
    pub fn push_gmean_row(&mut self, label: impl Into<String>) {
        let n = self.values.len();
        if n == 0 {
            return;
        }
        let mut means = vec![0.0; self.columns.len()];
        for row in &self.values {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v.max(1e-12).ln();
            }
        }
        for m in &mut means {
            *m = (*m / n as f64).exp();
        }
        self.push_row(label, means);
    }

    /// Value lookup by labels (used in tests and EXPERIMENTS checks).
    /// Returns `None` on an empty table or unknown labels. With duplicate
    /// row labels the *last* matching row wins: summary rows
    /// ([`FigureTable::push_mean_row`] et al.) are appended after data
    /// rows, so a sweep that reuses a label still resolves to the row a
    /// reader sees at the bottom of the table.
    pub fn value(&self, row: &str, column: &str) -> Option<f64> {
        let r = self.rows.iter().rposition(|x| x == row)?;
        let c = self.columns.iter().rposition(|x| x == column)?;
        Some(self.values[r][c])
    }

    /// Renders the table as CSV (for plotting pipelines). The first
    /// column is the row label; `NaN` renders as an empty cell. An empty
    /// table renders as its header line alone.
    pub fn to_csv(&self) -> String {
        fn escape(s: &str) -> String {
            if s.contains([',', '"', '\n', '\r']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(&escape(&self.row_header));
        for c in &self.columns {
            out.push(',');
            out.push_str(&escape(c));
        }
        out.push('\n');
        for (label, row) in self.rows.iter().zip(&self.values) {
            out.push_str(&escape(label));
            for v in row {
                out.push(',');
                if !v.is_nan() {
                    out.push_str(&format!("{v}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for FigureTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let label_w = self
            .rows
            .iter()
            .map(String::len)
            .chain(std::iter::once(self.row_header.len()))
            .max()
            .unwrap_or(8)
            .max(4);
        let col_w = self
            .columns
            .iter()
            .map(|c| c.len().max(8))
            .collect::<Vec<_>>();
        write!(f, "{:<label_w$}", self.row_header)?;
        for (c, w) in self.columns.iter().zip(&col_w) {
            write!(f, "  {c:>w$}")?;
        }
        writeln!(f)?;
        for (label, row) in self.rows.iter().zip(&self.values) {
            write!(f, "{label:<label_w$}")?;
            for (v, w) in row.iter().zip(&col_w) {
                if v.is_nan() {
                    write!(f, "  {:>w$}", "-")?;
                } else if self.percent {
                    write!(f, "  {:>w$.1}%", v * 100.0, w = w - 1)?;
                } else {
                    write!(f, "  {v:>w$.3}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureTable {
        let mut t = FigureTable::new("Figure T — test", "workload", vec!["A".into(), "B".into()]);
        t.push_row("w1", vec![0.25, 0.5]);
        t.push_row("w2", vec![0.75, 1.0]);
        t
    }

    #[test]
    fn value_lookup() {
        let t = sample();
        assert_eq!(t.value("w1", "B"), Some(0.5));
        assert_eq!(t.value("w9", "B"), None);
        assert_eq!(t.value("w1", "C"), None);
    }

    #[test]
    fn mean_row() {
        let mut t = sample();
        t.push_mean_row("Average");
        assert_eq!(t.value("Average", "A"), Some(0.5));
        assert_eq!(t.value("Average", "B"), Some(0.75));
    }

    #[test]
    fn gmean_row() {
        let mut t = FigureTable::new("g", "r", vec!["X".into()]);
        t.push_row("a", vec![1.0]);
        t.push_row("b", vec![4.0]);
        t.push_gmean_row("GMean");
        let v = t.value("GMean", "X").unwrap();
        assert!((v - 2.0).abs() < 1e-9);
    }

    #[test]
    fn display_contains_everything() {
        let mut t = sample();
        t.percent = true;
        let s = format!("{t}");
        assert!(s.contains("Figure T"));
        assert!(s.contains("w1"));
        assert!(s.contains("25.0%"));
    }

    #[test]
    fn csv_round_trip_shape() {
        let t = sample();
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "workload,A,B");
        assert_eq!(lines[1], "w1,0.25,0.5");
    }

    #[test]
    fn csv_escapes_and_blanks() {
        let mut t = FigureTable::new("t", "r", vec!["a,b".into()]);
        t.push_row("x\"y", vec![f64::NAN]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"x\"\"y\","));
        assert!(csv.lines().nth(1).unwrap().ends_with(','), "NaN is blank");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = sample();
        t.push_row("bad", vec![1.0]);
    }

    #[test]
    fn empty_table_is_harmless() {
        let mut t = FigureTable::new("empty", "r", vec!["A".into()]);
        assert_eq!(t.value("x", "A"), None);
        t.push_mean_row("Average");
        t.push_gmean_row("GMean");
        assert!(t.rows.is_empty(), "summary rows of nothing are skipped");
        assert_eq!(t.to_csv(), "r,A\n");
        assert!(format!("{t}").contains("empty"));
    }

    #[test]
    fn duplicate_row_labels_resolve_to_the_last() {
        let mut t = FigureTable::new("d", "r", vec!["A".into()]);
        t.push_row("w", vec![0.1]);
        t.push_row("w", vec![0.9]);
        assert_eq!(t.value("w", "A"), Some(0.9));
    }

    #[test]
    fn csv_escapes_carriage_returns() {
        let mut t = FigureTable::new("t", "r", vec!["a\rb".into()]);
        t.push_row("x", vec![1.0]);
        assert!(t.to_csv().starts_with("r,\"a\rb\""));
    }

    #[test]
    fn mean_of_uniform_rows_is_exact() {
        let mut t = FigureTable::new("m", "r", vec!["A".into(), "B".into()]);
        t.push_row("x", vec![2.0, 8.0]);
        t.push_row("y", vec![2.0, 8.0]);
        t.push_mean_row("Average");
        assert_eq!(t.value("Average", "A"), Some(2.0));
        assert_eq!(t.value("Average", "B"), Some(8.0));
    }
}
