/root/repo/target/debug/deps/domino_prefetchers-20d9ef9088840fe4.d: crates/prefetchers/src/lib.rs crates/prefetchers/src/adaptive.rs crates/prefetchers/src/composite.rs crates/prefetchers/src/config.rs crates/prefetchers/src/digram.rs crates/prefetchers/src/ghb.rs crates/prefetchers/src/isb.rs crates/prefetchers/src/markov.rs crates/prefetchers/src/nextline.rs crates/prefetchers/src/ngram.rs crates/prefetchers/src/sms.rs crates/prefetchers/src/stms.rs crates/prefetchers/src/stride.rs crates/prefetchers/src/vldp.rs

/root/repo/target/debug/deps/libdomino_prefetchers-20d9ef9088840fe4.rlib: crates/prefetchers/src/lib.rs crates/prefetchers/src/adaptive.rs crates/prefetchers/src/composite.rs crates/prefetchers/src/config.rs crates/prefetchers/src/digram.rs crates/prefetchers/src/ghb.rs crates/prefetchers/src/isb.rs crates/prefetchers/src/markov.rs crates/prefetchers/src/nextline.rs crates/prefetchers/src/ngram.rs crates/prefetchers/src/sms.rs crates/prefetchers/src/stms.rs crates/prefetchers/src/stride.rs crates/prefetchers/src/vldp.rs

/root/repo/target/debug/deps/libdomino_prefetchers-20d9ef9088840fe4.rmeta: crates/prefetchers/src/lib.rs crates/prefetchers/src/adaptive.rs crates/prefetchers/src/composite.rs crates/prefetchers/src/config.rs crates/prefetchers/src/digram.rs crates/prefetchers/src/ghb.rs crates/prefetchers/src/isb.rs crates/prefetchers/src/markov.rs crates/prefetchers/src/nextline.rs crates/prefetchers/src/ngram.rs crates/prefetchers/src/sms.rs crates/prefetchers/src/stms.rs crates/prefetchers/src/stride.rs crates/prefetchers/src/vldp.rs

crates/prefetchers/src/lib.rs:
crates/prefetchers/src/adaptive.rs:
crates/prefetchers/src/composite.rs:
crates/prefetchers/src/config.rs:
crates/prefetchers/src/digram.rs:
crates/prefetchers/src/ghb.rs:
crates/prefetchers/src/isb.rs:
crates/prefetchers/src/markov.rs:
crates/prefetchers/src/nextline.rs:
crates/prefetchers/src/ngram.rs:
crates/prefetchers/src/sms.rs:
crates/prefetchers/src/stms.rs:
crates/prefetchers/src/stride.rs:
crates/prefetchers/src/vldp.rs:
