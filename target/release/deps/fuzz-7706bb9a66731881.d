/root/repo/target/release/deps/fuzz-7706bb9a66731881.d: crates/prefetchers/tests/fuzz.rs Cargo.toml

/root/repo/target/release/deps/libfuzz-7706bb9a66731881.rmeta: crates/prefetchers/tests/fuzz.rs Cargo.toml

crates/prefetchers/tests/fuzz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
