//! The roster of evaluated systems (paper §IV-D) as a buildable enum.

use domino::{Domino, DominoConfig, NaiveDomino};
use domino_mem::interface::{NoPrefetcher, Prefetcher};
use domino_prefetchers::{
    Digram, Ghb, GhbConfig, Isb, Markov, MarkovConfig, MultiDepthPrefetcher, NextLine, Pangloss,
    PanglossConfig, Sms, SmsConfig, SpatioTemporal, Stms, StridePrefetcher, TemporalConfig,
    Triangel, TriangelConfig, Vldp, VldpConfig,
};

/// Identifies one of the evaluated prefetching systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// No data prefetcher (the paper's baseline).
    Baseline,
    /// Next-line prefetching.
    NextLine,
    /// PC-stride prefetching.
    Stride,
    /// Global History Buffer (on-chip temporal, paper ref \[11\]).
    Ghb,
    /// First-order Markov prefetcher (paper ref \[8\]).
    Markov,
    /// Spatial Memory Streaming (footprints, paper ref \[33\]).
    Sms,
    /// Variable Length Delta Prefetcher.
    Vldp,
    /// Irregular Stream Buffer (idealized PC/AC).
    Isb,
    /// Sampled Temporal Memory Streaming.
    Stms,
    /// Two-address-lookup STMS variant.
    Digram,
    /// The Domino prefetcher (practical EIT design).
    Domino,
    /// The strawman two-index-table Domino.
    DominoNaive,
    /// Recursive multi-depth lookup with the given maximum depth
    /// (Figure 5).
    MultiDepth(usize),
    /// VLDP with Domino stacked on top (Figure 16).
    VldpPlusDomino,
    /// Pangloss (DPC-3 2019): on-chip compressed Markov chain.
    Pangloss,
    /// Triangel (ISCA 2024): sampler-filtered on-chip temporal.
    Triangel,
}

impl System {
    /// Every buildable system, one entry per enum variant (the
    /// parameterised lookup-depth variant appears at the paper's default
    /// depth of 3). Roster-driven tests and the differential checker
    /// iterate this list so a newly added prefetcher cannot be forgotten.
    pub fn all() -> Vec<System> {
        vec![
            System::Baseline,
            System::NextLine,
            System::Stride,
            System::Ghb,
            System::Markov,
            System::Sms,
            System::Vldp,
            System::Isb,
            System::Stms,
            System::Digram,
            System::Domino,
            System::DominoNaive,
            System::MultiDepth(3),
            System::VldpPlusDomino,
            System::Pangloss,
            System::Triangel,
        ]
    }

    /// Inverse of [`System::label`]: resolves a figure label back to the
    /// system, so reproducer files can name the system they were shrunk
    /// under. Matching ignores ASCII case (`domino` and `Domino` both
    /// resolve) so CLI flags stay forgiving. Returns `None` for unknown
    /// labels.
    pub fn from_label(label: &str) -> Option<System> {
        if let Some(depth) = strip_prefix_ignore_case(label, "Lookup-") {
            return depth.parse().ok().map(System::MultiDepth);
        }
        System::all()
            .into_iter()
            .find(|sys| sys.label().eq_ignore_ascii_case(label))
    }

    /// The systems compared in Figures 11, 13 and 14.
    pub fn paper_roster() -> [System; 5] {
        [
            System::Vldp,
            System::Isb,
            System::Stms,
            System::Digram,
            System::Domino,
        ]
    }

    /// Display name matching the paper's figure labels.
    pub fn label(&self) -> String {
        match self {
            System::Baseline => "Baseline".into(),
            System::NextLine => "NextLine".into(),
            System::Stride => "Stride".into(),
            System::Ghb => "GHB".into(),
            System::Markov => "Markov".into(),
            System::Sms => "SMS".into(),
            System::Vldp => "VLDP".into(),
            System::Isb => "ISB".into(),
            System::Stms => "STMS".into(),
            System::Digram => "Digram".into(),
            System::Domino => "Domino".into(),
            System::DominoNaive => "Domino-Naive".into(),
            System::MultiDepth(n) => format!("Lookup-{n}"),
            System::VldpPlusDomino => "VLDP+Domino".into(),
            System::Pangloss => "Pangloss".into(),
            System::Triangel => "Triangel".into(),
        }
    }

    /// Builds the prefetcher at the given degree with paper parameters.
    pub fn build(&self, degree: usize) -> Box<dyn Prefetcher> {
        let temporal = TemporalConfig::default().with_degree(degree);
        let domino_cfg = DominoConfig::default().with_degree(degree);
        match self {
            System::Baseline => Box::new(NoPrefetcher),
            System::NextLine => Box::new(NextLine::new(degree)),
            System::Stride => Box::new(StridePrefetcher::new(degree, 256)),
            System::Ghb => Box::new(Ghb::new(GhbConfig {
                degree,
                ..GhbConfig::default()
            })),
            System::Markov => Box::new(Markov::new(MarkovConfig {
                width: degree.min(4),
                ..MarkovConfig::default()
            })),
            System::Sms => Box::new(Sms::new(SmsConfig::default())),
            System::Vldp => Box::new(Vldp::new(VldpConfig {
                degree,
                ..VldpConfig::default()
            })),
            System::Isb => Box::new(Isb::new(degree)),
            System::Stms => Box::new(Stms::new(temporal)),
            System::Digram => Box::new(Digram::new(temporal)),
            System::Domino => Box::new(Domino::new(domino_cfg)),
            System::DominoNaive => Box::new(NaiveDomino::new(domino_cfg)),
            System::MultiDepth(n) => Box::new(MultiDepthPrefetcher::new(*n, degree)),
            System::VldpPlusDomino => Box::new(SpatioTemporal::new(
                Vldp::new(VldpConfig {
                    degree,
                    ..VldpConfig::default()
                }),
                Domino::new(domino_cfg),
            )),
            System::Pangloss => Box::new(Pangloss::new(
                PanglossConfig::default()
                    .with_degree(degree.min(domino_prefetchers::pangloss::MAX_DEGREE)),
            )),
            System::Triangel => Box::new(Triangel::new(
                TriangelConfig::default()
                    .with_degree(degree.min(domino_prefetchers::triangel::MAX_DEGREE)),
            )),
        }
    }
}

/// `label.strip_prefix(prefix)` ignoring ASCII case on the prefix part.
fn strip_prefix_ignore_case<'a>(label: &'a str, prefix: &str) -> Option<&'a str> {
    let head = label.get(..prefix.len())?;
    head.eq_ignore_ascii_case(prefix)
        .then(|| &label[prefix.len()..])
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_mem::interface::CollectSink;
    use domino_mem::interface::TriggerEvent;
    use domino_trace::addr::{LineAddr, Pc};

    #[test]
    fn every_system_builds_and_runs() {
        for sys in System::all() {
            let mut p = sys.build(4);
            let mut sink = CollectSink::new();
            for l in 0..50u64 {
                p.on_trigger(&TriggerEvent::miss(Pc::new(1), LineAddr::new(l)), &mut sink);
            }
            assert!(!p.name().is_empty());
            assert!(!sys.label().is_empty());
        }
    }

    #[test]
    fn labels_roundtrip_through_from_label() {
        for sys in System::all() {
            assert_eq!(System::from_label(&sys.label()), Some(sys));
        }
        assert_eq!(System::from_label("Lookup-7"), Some(System::MultiDepth(7)));
        assert_eq!(System::from_label("NoSuchSystem"), None);
        // CLI flags resolve labels case-insensitively.
        assert_eq!(System::from_label("domino"), Some(System::Domino));
        assert_eq!(System::from_label("stms"), Some(System::Stms));
        assert_eq!(System::from_label("lookup-5"), Some(System::MultiDepth(5)));
    }

    #[test]
    fn roster_matches_paper_order() {
        let labels: Vec<String> = System::paper_roster().iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["VLDP", "ISB", "STMS", "Digram", "Domino"]);
    }
}
