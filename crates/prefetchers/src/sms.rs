//! Spatial Memory Streaming (Somogyi et al., ISCA 2006) — the paper's
//! reference \[33\] and the canonical footprint-based spatial prefetcher.
//!
//! SMS learns, per *spatial region generation*, the bitmap of lines the
//! program touches within a region (here: a 4 KiB page), keyed by the
//! trigger — the `(PC, region offset)` of the generation's first access.
//! When a new generation starts with the same trigger, the recorded
//! footprint is prefetched wholesale.
//!
//! It complements VLDP in the spatial roster: VLDP chains deltas
//! step-by-step; SMS fires a whole footprint at once from a single
//! trigger, which is stronger on sparse-but-repeating layouts and weaker
//! when footprints vary per region.

use domino_trace::FxHashMap;

use domino_mem::interface::{PrefetchRequest, PrefetchSink, Prefetcher, TriggerEvent, TriggerKind};
use domino_trace::addr::{LineAddr, Pc, LINES_PER_PAGE};

/// SMS configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmsConfig {
    /// Active generation table entries (regions being observed).
    pub active_generations: usize,
    /// Pattern history table entries (learned footprints).
    pub pht_entries: usize,
}

impl Default for SmsConfig {
    fn default() -> Self {
        SmsConfig {
            active_generations: 64,
            pht_entries: 1 << 14,
        }
    }
}

/// Trigger: the instruction and region offset of a generation's first
/// access.
type Trigger = (Pc, u8);

#[derive(Debug, Clone, Copy)]
struct Generation {
    page: u64,
    trigger: Trigger,
    footprint: u64,
}

/// The SMS prefetcher.
#[derive(Debug)]
pub struct Sms {
    cfg: SmsConfig,
    /// Regions currently accumulating footprints (FIFO eviction ends a
    /// generation and trains the PHT).
    active: Vec<Generation>,
    /// Learned footprints by trigger.
    pht: FxHashMap<Trigger, u64>,
}

impl Sms {
    /// Creates an SMS prefetcher.
    ///
    /// # Panics
    ///
    /// Panics on zero table sizes.
    pub fn new(cfg: SmsConfig) -> Self {
        assert!(cfg.active_generations > 0, "need active generations");
        assert!(cfg.pht_entries > 0, "PHT needs entries");
        Sms {
            cfg,
            active: Vec::new(),
            pht: FxHashMap::default(),
        }
    }

    fn retire(&mut self, generation: Generation) {
        if self.pht.len() >= self.cfg.pht_entries && !self.pht.contains_key(&generation.trigger) {
            return;
        }
        self.pht.insert(generation.trigger, generation.footprint);
    }
}

impl Prefetcher for Sms {
    fn name(&self) -> &str {
        "SMS"
    }

    fn on_trigger(&mut self, event: &TriggerEvent, sink: &mut dyn PrefetchSink) {
        if event.kind != TriggerKind::Miss {
            return;
        }
        let page = event.line.page();
        let offset = event.line.page_offset() as u8;
        if let Some(g) = self.active.iter_mut().find(|g| g.page == page) {
            g.footprint |= 1 << offset;
            return;
        }
        // New generation: predict from the learned footprint first.
        let trigger = (event.pc, offset);
        if let Some(&footprint) = self.pht.get(&trigger) {
            for off in 0..LINES_PER_PAGE {
                if off != u64::from(offset) && footprint & (1 << off) != 0 {
                    sink.prefetch(PrefetchRequest::immediate(LineAddr::new(
                        page * LINES_PER_PAGE + off,
                    )));
                }
            }
        }
        if self.active.len() == self.cfg.active_generations {
            let old = self.active.remove(0);
            self.retire(old);
        }
        self.active.push(Generation {
            page,
            trigger,
            footprint: 1 << offset,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_mem::interface::CollectSink;

    fn miss(pc: u64, line: u64) -> TriggerEvent {
        TriggerEvent::miss(Pc::new(pc), LineAddr::new(line))
    }

    fn run(s: &mut Sms, accesses: &[(u64, u64)]) -> Vec<u64> {
        let mut out = Vec::new();
        for &(pc, l) in accesses {
            let mut sink = CollectSink::new();
            s.on_trigger(&miss(pc, l), &mut sink);
            out.extend(sink.requests.iter().map(|r| r.line.raw()));
        }
        out
    }

    fn tiny() -> Sms {
        Sms::new(SmsConfig {
            active_generations: 2,
            pht_entries: 64,
        })
    }

    #[test]
    fn replays_learned_footprints() {
        let mut s = tiny();
        // Page 0 generation triggered by (pc 9, offset 0): touches 0, 5, 9.
        run(&mut s, &[(9, 0), (1, 5), (1, 9)]);
        // Two more generations retire page 0 and train the PHT.
        run(&mut s, &[(9, 64), (9, 128)]);
        // Same trigger on a fresh page: prefetch offsets 5 and 9.
        let issued = run(&mut s, &[(9, 192)]);
        assert_eq!(issued, vec![197, 201]);
    }

    #[test]
    fn different_trigger_offset_is_a_different_pattern() {
        let mut s = tiny();
        run(&mut s, &[(9, 0), (1, 5)]); // trigger (9, 0)
        run(&mut s, &[(9, 64), (9, 128)]); // retire it
                                           // Same PC but offset 3: no learned footprint.
        let issued = run(&mut s, &[(9, 192 + 3)]);
        assert!(issued.is_empty());
    }

    #[test]
    fn footprints_stay_within_the_region() {
        let mut s = tiny();
        run(&mut s, &[(9, 0), (1, 63)]);
        run(&mut s, &[(9, 64), (9, 128)]);
        let issued = run(&mut s, &[(9, 192)]);
        for l in issued {
            assert!((192..256).contains(&l), "prefetch {l} left the page");
        }
    }

    #[test]
    fn accumulation_does_not_prefetch() {
        let mut s = tiny();
        let issued = run(&mut s, &[(9, 0), (1, 1), (1, 2), (1, 3)]);
        assert!(issued.is_empty(), "first generation only observes");
    }
}
