//! One benchmark per paper table/figure: each runs the figure's full
//! pipeline (workload generation → L1 filter → prefetchers → metrics)
//! at reduced scale, so `cargo bench` both regenerates every figure's
//! machinery and tracks the harness's performance over time.

use domino_bench::Harness;
use domino_sim::figures::{
    fig01, fig02, fig03, fig04, fig05, fig06, fig09, fig10, fig11, fig12, fig13, fig14, fig15,
    fig16, Scale,
};
use std::hint::black_box;
use std::time::Duration;

fn bench_scale() -> Scale {
    Scale {
        events: 12_000,
        seed: 42,
    }
}

fn main() {
    let scale = bench_scale();
    let mut h = Harness::new("figures")
        .warmup(Duration::from_millis(500))
        .budget(Duration::from_secs(3));
    h.bench("fig01_coverage_vs_opportunity", 1, || {
        black_box(fig01(&scale))
    });
    h.bench("fig02_stream_lengths", 1, || black_box(fig02(&scale)));
    h.bench("fig03_lookup_accuracy", 1, || black_box(fig03(&scale)));
    h.bench("fig04_lookup_match_rate", 1, || black_box(fig04(&scale)));
    h.bench("fig05_multi_depth", 1, || black_box(fig05(&scale)));
    h.bench("fig06_stream_start_timeliness", 1, || {
        black_box(fig06(&scale))
    });
    h.bench("fig09_ht_sweep", 1, || black_box(fig09(&scale)));
    h.bench("fig10_eit_sweep", 1, || black_box(fig10(&scale)));
    h.bench("fig11_roster_degree1", 1, || black_box(fig11(&scale)));
    h.bench("fig12_stream_histogram", 1, || black_box(fig12(&scale)));
    h.bench("fig13_roster_degree4", 1, || black_box(fig13(&scale)));
    h.bench("fig14_speedups", 1, || black_box(fig14(&scale)));
    h.bench("fig15_traffic_overhead", 1, || black_box(fig15(&scale)));
    h.bench("fig16_spatio_temporal", 1, || black_box(fig16(&scale)));
}
