//! Generation-stamped node arena for the grammar's doubly-linked rule
//! bodies.
//!
//! Sequitur mutates its linked structure aggressively (digram substitution,
//! rule expansion), which in Rust is most safely expressed with an index
//! arena. Every slot carries a generation counter, so a [`NodeRef`] held in
//! the digram index or the pending-check queue can be validated before use
//! instead of dangling.

/// Sentinel index meaning "no node".
pub(crate) const NIL: u32 = u32::MAX;

/// A grammar symbol: terminal value or a reference to a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymKey {
    /// A terminal (for the prefetching use-case: a cache-line address).
    Term(u64),
    /// A non-terminal referring to rule `RuleId`.
    Rule(u32),
}

/// Node payload: either a list guard (head of a rule body) or a symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Payload {
    /// Guard node of the given rule's circular body list.
    Guard(u32),
    /// An actual symbol occurrence.
    Sym(SymKey),
}

#[derive(Debug, Clone)]
pub(crate) struct Slot {
    pub payload: Payload,
    pub prev: u32,
    pub next: u32,
    pub gen: u32,
    pub live: bool,
}

/// A validated handle to an arena node: index plus generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeRef {
    pub(crate) id: u32,
    pub(crate) gen: u32,
}

/// Arena of linked-list nodes with a free list.
#[derive(Debug, Default)]
pub(crate) struct Arena {
    slots: Vec<Slot>,
    free: Vec<u32>,
}

impl Arena {
    pub fn alloc(&mut self, payload: Payload) -> u32 {
        if let Some(id) = self.free.pop() {
            let slot = &mut self.slots[id as usize];
            slot.payload = payload;
            slot.prev = NIL;
            slot.next = NIL;
            slot.live = true;
            id
        } else {
            let id = self.slots.len() as u32;
            assert!(id < NIL, "arena exhausted");
            self.slots.push(Slot {
                payload,
                prev: NIL,
                next: NIL,
                gen: 0,
                live: true,
            });
            id
        }
    }

    /// Marks a node dead and bumps its generation so stale refs fail
    /// validation.
    pub fn free(&mut self, id: u32) {
        let slot = &mut self.slots[id as usize];
        debug_assert!(slot.live, "double free of node {id}");
        slot.live = false;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(id);
    }

    pub fn slot(&self, id: u32) -> &Slot {
        &self.slots[id as usize]
    }

    pub fn next(&self, id: u32) -> u32 {
        self.slots[id as usize].next
    }

    pub fn prev(&self, id: u32) -> u32 {
        self.slots[id as usize].prev
    }

    pub fn is_guard(&self, id: u32) -> bool {
        matches!(self.slots[id as usize].payload, Payload::Guard(_))
    }

    /// Symbol key of a node; `None` for guards.
    pub fn sym(&self, id: u32) -> Option<SymKey> {
        match self.slots[id as usize].payload {
            Payload::Guard(_) => None,
            Payload::Sym(k) => Some(k),
        }
    }

    pub fn node_ref(&self, id: u32) -> NodeRef {
        NodeRef {
            id,
            gen: self.slots[id as usize].gen,
        }
    }

    pub fn is_valid(&self, r: NodeRef) -> bool {
        let slot = &self.slots[r.id as usize];
        slot.live && slot.gen == r.gen
    }

    /// Links `a -> b` (both directions).
    pub fn link(&mut self, a: u32, b: u32) {
        self.slots[a as usize].next = b;
        self.slots[b as usize].prev = a;
    }

    /// Number of live nodes (diagnostics / tests).
    pub fn live_count(&self) -> usize {
        self.slots.iter().filter(|s| s.live).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_count_tracks_alloc_free() {
        let mut arena = Arena::default();
        let a = arena.alloc(Payload::Sym(SymKey::Term(1)));
        let _b = arena.alloc(Payload::Sym(SymKey::Term(2)));
        assert_eq!(arena.live_count(), 2);
        arena.free(a);
        assert_eq!(arena.live_count(), 1);
    }

    #[test]
    fn alloc_free_recycles_with_new_generation() {
        let mut arena = Arena::default();
        let a = arena.alloc(Payload::Sym(SymKey::Term(1)));
        let r = arena.node_ref(a);
        assert!(arena.is_valid(r));
        arena.free(a);
        assert!(!arena.is_valid(r));
        let b = arena.alloc(Payload::Sym(SymKey::Term(2)));
        assert_eq!(a, b, "free list should recycle");
        assert!(!arena.is_valid(r), "stale ref must stay invalid");
    }

    #[test]
    fn link_is_bidirectional() {
        let mut arena = Arena::default();
        let a = arena.alloc(Payload::Guard(0));
        let b = arena.alloc(Payload::Sym(SymKey::Term(7)));
        arena.link(a, b);
        assert_eq!(arena.next(a), b);
        assert_eq!(arena.prev(b), a);
    }

    #[test]
    fn guards_have_no_symbol() {
        let mut arena = Arena::default();
        let g = arena.alloc(Payload::Guard(3));
        let s = arena.alloc(Payload::Sym(SymKey::Rule(3)));
        assert_eq!(arena.sym(g), None);
        assert_eq!(arena.sym(s), Some(SymKey::Rule(3)));
        assert!(arena.is_guard(g));
        assert!(!arena.is_guard(s));
    }
}
