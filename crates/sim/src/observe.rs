//! Telemetry collection for figure sweeps.
//!
//! Figure runners execute their cells on the parallel executor in
//! [`crate::exec`]; a cell that runs with telemetry enabled labels its
//! [`RunReport`] and deposits it here. After the sweep, the harness
//! [`drain`]s the reports — sorted by (workload, component, kind), so the
//! output is byte-identical at any job count — and [`write_reports`]
//! exports one JSON file per cell plus an aggregate `TELEMETRY_sweep.json`.
//!
//! Telemetry is opt-in twice over: a run collects nothing unless an epoch
//! length is set ([`set_epoch_override`] from `--epoch`, or the
//! `DOMINO_EPOCH` environment variable), and only the runners that opt
//! into collection (Figure 13's coverage roster, Figure 14's timing
//! roster) deposit reports. Everything else pays one dead branch per
//! access.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use domino_telemetry::{RunReport, Telemetry};

/// Schema tag of the aggregate sweep file.
pub const SWEEP_SCHEMA: &str = "domino-telemetry-sweep/1";

/// `--epoch` override; 0 = no override (fall back to the environment),
/// `u64::MAX` = explicitly off.
static EPOCH_OVERRIDE: AtomicU64 = AtomicU64::new(0);

/// Reports deposited by sweep cells, in completion order.
static COLLECTED: Mutex<Vec<RunReport>> = Mutex::new(Vec::new());

/// Sets (or clears) the epoch-length override. `Some(0)` is normalised
/// to "explicitly off". Takes precedence over `DOMINO_EPOCH`.
pub fn set_epoch_override(epoch: Option<u64>) {
    let coded = match epoch {
        None => 0,
        Some(0) => u64::MAX,
        Some(n) => n,
    };
    EPOCH_OVERRIDE.store(coded, Ordering::SeqCst);
}

/// The effective epoch length: the override if set, else `DOMINO_EPOCH`,
/// else `None` (telemetry off).
pub fn epoch() -> Option<u64> {
    match EPOCH_OVERRIDE.load(Ordering::SeqCst) {
        0 => std::env::var("DOMINO_EPOCH")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&n| n > 0),
        u64::MAX => None,
        n => Some(n),
    }
}

/// A telemetry handle honouring the effective epoch length.
pub fn telemetry() -> Telemetry {
    match epoch() {
        Some(n) => Telemetry::with_epoch(n),
        None => Telemetry::off(),
    }
}

/// Deposits one labelled run report (called from sweep worker threads).
pub fn record(report: RunReport) {
    COLLECTED.lock().expect("collector poisoned").push(report);
}

/// Takes all deposited reports, sorted by (workload, component, kind) —
/// a deterministic order independent of sweep scheduling.
pub fn drain() -> Vec<RunReport> {
    let mut out = std::mem::take(&mut *COLLECTED.lock().expect("collector poisoned"));
    out.sort_by(|a, b| {
        (&a.workload, &a.component, &a.kind).cmp(&(&b.workload, &b.component, &b.kind))
    });
    out
}

/// File-system-safe slug of a label (`Web Search` → `web_search`).
fn slug(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// The per-cell file name for a report.
pub fn cell_filename(report: &RunReport) -> String {
    format!(
        "telemetry_{}_{}_{}.json",
        slug(&report.workload),
        slug(&report.component),
        slug(&report.kind)
    )
}

/// Renders the aggregate sweep document embedding every report.
pub fn aggregate_json(reports: &[RunReport]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema\": \"{SWEEP_SCHEMA}\",\n"));
    out.push_str(&format!("  \"runs\": {},\n", reports.len()));
    out.push_str("  \"reports\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let body = r.to_json();
        out.push_str(body.trim_end());
        out.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes one JSON file per report plus the aggregate
/// `TELEMETRY_sweep.json` into `dir`; returns the written paths
/// (aggregate last).
pub fn write_reports(dir: &Path, reports: &[RunReport]) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(reports.len() + 1);
    for r in reports {
        let path = dir.join(cell_filename(r));
        std::fs::write(&path, r.to_json())?;
        paths.push(path);
    }
    let agg = dir.join("TELEMETRY_sweep.json");
    std::fs::write(&agg, aggregate_json(reports))?;
    paths.push(agg);
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_telemetry::SCHEMA;

    fn labelled(workload: &str, component: &str) -> RunReport {
        RunReport {
            schema: SCHEMA.to_string(),
            workload: workload.into(),
            component: component.into(),
            kind: "coverage".into(),
            events: 10,
            seed: 1,
            warmup: 2,
            epoch_accesses: 5,
            fields: vec!["accesses".into()],
            epochs: vec![vec![5], vec![10]],
            histograms: Vec::new(),
            counters: Vec::new(),
        }
    }

    #[test]
    fn override_beats_environment_and_clears() {
        set_epoch_override(Some(123));
        assert_eq!(epoch(), Some(123));
        assert_eq!(telemetry().epoch_len(), 123);
        set_epoch_override(Some(0));
        assert_eq!(epoch(), None, "Some(0) means explicitly off");
        set_epoch_override(None);
    }

    #[test]
    fn drain_sorts_reports() {
        // Drain any leftovers from other tests first (the collector is
        // process-global).
        let _ = drain();
        record(labelled("zeta", "STMS"));
        record(labelled("alpha", "Domino"));
        record(labelled("alpha", "Baseline"));
        let got = drain();
        let keys: Vec<_> = got
            .iter()
            .map(|r| (r.workload.as_str(), r.component.as_str()))
            .collect();
        assert_eq!(
            keys,
            vec![("alpha", "Baseline"), ("alpha", "Domino"), ("zeta", "STMS")]
        );
        assert!(drain().is_empty(), "drain empties the collector");
    }

    #[test]
    fn filenames_are_slugged() {
        let r = labelled("Web Search", "Domino+NL");
        assert_eq!(
            cell_filename(&r),
            "telemetry_web_search_domino_nl_coverage.json"
        );
    }

    #[test]
    fn aggregate_embeds_parseable_reports() {
        let reports = vec![labelled("a", "X"), labelled("b", "Y")];
        let agg = aggregate_json(&reports);
        let v = domino_telemetry::json::parse(&agg).unwrap();
        assert_eq!(v.get("schema").and_then(|s| s.as_str()), Some(SWEEP_SCHEMA));
        assert_eq!(v.get("runs").and_then(|n| n.as_u64()), Some(2));
        assert_eq!(
            v.get("reports").and_then(|r| r.as_arr()).map(|a| a.len()),
            Some(2)
        );
    }
}
