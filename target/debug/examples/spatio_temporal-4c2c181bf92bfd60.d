/root/repo/target/debug/examples/spatio_temporal-4c2c181bf92bfd60.d: examples/spatio_temporal.rs Cargo.toml

/root/repo/target/debug/examples/libspatio_temporal-4c2c181bf92bfd60.rmeta: examples/spatio_temporal.rs Cargo.toml

examples/spatio_temporal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
