//! ChampSim adapter: `invoke_prefetcher(ip, addr, cache_hit, type)` records.
//!
//! ChampSim drives cache prefetchers through
//! `invoke_prefetcher(uint64_t ip, uint64_t addr, uint8_t cache_hit,
//! uint8_t type)`; a captured stream of those calls is the natural exchange
//! format for temporal-prefetcher studies (the Triangel artifact and the
//! ML-DPC traces ship as variations of it). This module reads and writes a
//! flat little-endian record stream:
//!
//! ```text
//! offset  size  field
//! 0       8     ip          program counter
//! 8       8     addr        byte address
//! 16      1     cache_hit   0 = miss, 1 = hit
//! 17      1     type        0 LOAD, 1 RFO, 2 PREFETCH, 3 WRITEBACK, 4 TRANSLATION
//! ```
//!
//! Mapping onto [`AccessEvent`]: `RFO` and `WRITEBACK` become writes,
//! everything else reads; ChampSim carries no instruction-gap or
//! dependence information, so `gap_insts = 0` and `dependent = false`.
//! The reverse direction ([`ChampSimRecord::from_event`]) emits miss
//! records (`cache_hit = 0`) of type `LOAD`/`RFO`, so a stream produced by
//! the reproduction round-trips **bit-exactly**: export → import → export
//! reproduces the identical byte stream (asserted in tests and by the
//! `domino-ingest` smoke stage).

use std::io::{Read, Write};

use crate::addr::{Addr, Pc};
use crate::event::{AccessEvent, AccessKind};
use crate::stream::format::TraceFileError;

/// Size of one ChampSim record.
pub const CHAMPSIM_RECORD_BYTES: usize = 18;

/// One `invoke_prefetcher` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChampSimRecord {
    /// Program counter of the memory instruction.
    pub ip: u64,
    /// Byte address accessed.
    pub addr: u64,
    /// Whether the access hit in the cache being prefetched for.
    pub cache_hit: u8,
    /// ChampSim access type (see the type constants).
    pub access_type: u8,
}

impl ChampSimRecord {
    /// ChampSim `LOAD`.
    pub const LOAD: u8 = 0;
    /// ChampSim `RFO` (store miss, read-for-ownership).
    pub const RFO: u8 = 1;
    /// ChampSim `PREFETCH`.
    pub const PREFETCH: u8 = 2;
    /// ChampSim `WRITEBACK`.
    pub const WRITEBACK: u8 = 3;
    /// ChampSim `TRANSLATION` (page-walk access).
    pub const TRANSLATION: u8 = 4;

    /// Maps this record onto the reproduction's event type.
    pub fn to_event(self) -> AccessEvent {
        let kind = match self.access_type {
            ChampSimRecord::RFO | ChampSimRecord::WRITEBACK => AccessKind::Write,
            _ => AccessKind::Read,
        };
        AccessEvent {
            pc: Pc::new(self.ip),
            addr: Addr::new(self.addr),
            kind,
            gap_insts: 0,
            dependent: false,
        }
    }

    /// Maps an event onto a ChampSim miss record (`cache_hit = 0`,
    /// reads as `LOAD`, writes as `RFO`).
    pub fn from_event(ev: &AccessEvent) -> ChampSimRecord {
        ChampSimRecord {
            ip: ev.pc.raw(),
            addr: ev.addr.raw(),
            cache_hit: 0,
            access_type: match ev.kind {
                AccessKind::Read => ChampSimRecord::LOAD,
                AccessKind::Write => ChampSimRecord::RFO,
            },
        }
    }

    fn encode(self, out: &mut [u8; CHAMPSIM_RECORD_BYTES]) {
        out[0..8].copy_from_slice(&self.ip.to_le_bytes());
        out[8..16].copy_from_slice(&self.addr.to_le_bytes());
        out[16] = self.cache_hit;
        out[17] = self.access_type;
    }

    fn decode(b: &[u8; CHAMPSIM_RECORD_BYTES], record: usize) -> Result<Self, TraceFileError> {
        let cache_hit = b[16];
        if cache_hit > 1 {
            return Err(TraceFileError::BadRecord {
                chunk: 0,
                detail: format!("champsim record {record}: invalid cache_hit {cache_hit:#04x}"),
            });
        }
        let access_type = b[17];
        if access_type > ChampSimRecord::TRANSLATION {
            return Err(TraceFileError::BadRecord {
                chunk: 0,
                detail: format!("champsim record {record}: invalid type {access_type:#04x}"),
            });
        }
        Ok(ChampSimRecord {
            ip: u64::from_le_bytes(b[0..8].try_into().expect("8 bytes")),
            addr: u64::from_le_bytes(b[8..16].try_into().expect("8 bytes")),
            cache_hit,
            access_type,
        })
    }
}

/// Reads a whole ChampSim record stream.
///
/// # Errors
///
/// I/O failures, torn trailing records, invalid field encodings.
pub fn read_champsim<R: Read>(mut src: R) -> Result<Vec<ChampSimRecord>, TraceFileError> {
    let mut bytes = Vec::new();
    src.read_to_end(&mut bytes)?;
    if bytes.len() % CHAMPSIM_RECORD_BYTES != 0 {
        return Err(TraceFileError::BadRecord {
            chunk: 0,
            detail: format!(
                "champsim stream of {} bytes is torn: not a multiple of {CHAMPSIM_RECORD_BYTES}",
                bytes.len()
            ),
        });
    }
    let mut out = Vec::with_capacity(bytes.len() / CHAMPSIM_RECORD_BYTES);
    for (i, rec) in bytes.chunks_exact(CHAMPSIM_RECORD_BYTES).enumerate() {
        let rec: &[u8; CHAMPSIM_RECORD_BYTES] = rec.try_into().expect("exact chunks");
        out.push(ChampSimRecord::decode(rec, i)?);
    }
    Ok(out)
}

/// Writes a ChampSim record stream.
///
/// # Errors
///
/// I/O failures from the sink.
pub fn write_champsim<W: Write>(mut sink: W, records: &[ChampSimRecord]) -> std::io::Result<()> {
    let mut rec = [0u8; CHAMPSIM_RECORD_BYTES];
    for r in records {
        r.encode(&mut rec);
        sink.write_all(&rec)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::catalog;

    #[test]
    fn record_stream_round_trips_bit_exactly() {
        let events: Vec<AccessEvent> = catalog::web_search().generator(4).take(800).collect();
        let records: Vec<ChampSimRecord> = events.iter().map(ChampSimRecord::from_event).collect();
        let mut bytes = Vec::new();
        write_champsim(&mut bytes, &records).unwrap();
        let parsed = read_champsim(bytes.as_slice()).unwrap();
        assert_eq!(parsed, records);
        // export -> import -> export: identical bytes.
        let reimported: Vec<ChampSimRecord> = parsed
            .iter()
            .map(|r| ChampSimRecord::from_event(&r.to_event()))
            .collect();
        let mut bytes2 = Vec::new();
        write_champsim(&mut bytes2, &reimported).unwrap();
        assert_eq!(bytes2, bytes);
    }

    #[test]
    fn type_mapping_matches_champsim_semantics() {
        let rec = ChampSimRecord {
            ip: 0x400,
            addr: 0x1000,
            cache_hit: 0,
            access_type: ChampSimRecord::RFO,
        };
        assert_eq!(rec.to_event().kind, AccessKind::Write);
        for t in [
            ChampSimRecord::LOAD,
            ChampSimRecord::PREFETCH,
            ChampSimRecord::TRANSLATION,
        ] {
            let rec = ChampSimRecord {
                access_type: t,
                ..rec
            };
            assert_eq!(rec.to_event().kind, AccessKind::Read);
        }
        let wb = ChampSimRecord {
            access_type: ChampSimRecord::WRITEBACK,
            ..rec
        };
        assert_eq!(wb.to_event().kind, AccessKind::Write);
    }

    #[test]
    fn torn_and_invalid_streams_error() {
        let bytes = vec![0u8; CHAMPSIM_RECORD_BYTES + 5];
        let err = read_champsim(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, TraceFileError::BadRecord { .. }), "{err}");

        let mut bytes = vec![0u8; CHAMPSIM_RECORD_BYTES];
        bytes[17] = 9; // invalid type
        let err = read_champsim(bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("invalid type"), "{err}");
    }
}
