/root/repo/target/release/deps/domino_repro-e27fb629e98d0652.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libdomino_repro-e27fb629e98d0652.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
