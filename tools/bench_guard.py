#!/usr/bin/env python3
"""Bench regression guard: compare a fresh figure-sweep benchmark against
the committed baseline.

Usage: bench_guard.py BASELINE_JSON FRESH_JSON

Both files must be `domino-bench-sweep/1` documents (written by
`cargo run --release --example figures`). The guard fails (exit 1) if any
figure's replay throughput (`events_per_sec`) in the fresh run drops more
than the threshold below the committed baseline, printing a per-figure
table either way. Skip it entirely with DOMINO_SKIP_BENCH_GUARD=1 in
`tools/check.sh` (e.g. on loaded CI machines or foreign hardware where
the committed numbers do not apply).
"""

import json
import sys

# Allowed slowdown before the guard trips. Generous enough for host noise,
# tight enough to catch a real regression in the event loop.
THRESHOLD = 0.25


def load(path):
    with open(path) as f:
        data = json.load(f)
    schema = data.get("schema")
    if schema != "domino-bench-sweep/1":
        sys.exit(f"{path}: unexpected schema {schema!r}")
    return {f["name"]: float(f["events_per_sec"]) for f in data["figures"]}


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} BASELINE_JSON FRESH_JSON")
    baseline = load(sys.argv[1])
    fresh = load(sys.argv[2])

    rows = []
    failed = []
    for name, base_eps in sorted(baseline.items()):
        fresh_eps = fresh.get(name)
        if fresh_eps is None:
            rows.append((name, base_eps, None, None, "MISSING"))
            failed.append(name)
            continue
        ratio = fresh_eps / base_eps if base_eps > 0 else float("inf")
        ok = ratio >= 1.0 - THRESHOLD
        rows.append((name, base_eps, fresh_eps, ratio, "ok" if ok else "REGRESSED"))
        if not ok:
            failed.append(name)

    print(f"    {'figure':<10} {'baseline ev/s':>14} {'fresh ev/s':>14} {'ratio':>7}  verdict")
    for name, base_eps, fresh_eps, ratio, verdict in rows:
        fresh_s = f"{fresh_eps:>14.0f}" if fresh_eps is not None else f"{'-':>14}"
        ratio_s = f"{ratio:>6.2f}x" if ratio is not None else f"{'-':>7}"
        print(f"    {name:<10} {base_eps:>14.0f} {fresh_s} {ratio_s}  {verdict}")

    if failed:
        sys.exit(
            f"bench guard: {', '.join(failed)} more than "
            f"{THRESHOLD:.0%} below the committed BENCH_sweep.json"
        )
    print(f"    all figures within {THRESHOLD:.0%} of the committed baseline")


if __name__ == "__main__":
    main()
