/root/repo/target/debug/deps/domino-27c5aaf79a0edf02.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/domino.rs crates/core/src/eit.rs crates/core/src/naive.rs

/root/repo/target/debug/deps/libdomino-27c5aaf79a0edf02.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/domino.rs crates/core/src/eit.rs crates/core/src/naive.rs

/root/repo/target/debug/deps/libdomino-27c5aaf79a0edf02.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/domino.rs crates/core/src/eit.rs crates/core/src/naive.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/domino.rs:
crates/core/src/eit.rs:
crates/core/src/naive.rs:
