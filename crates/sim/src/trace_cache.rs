//! Process-wide cache of generated workload traces.
//!
//! Figure runners used to call `spec.generator(seed).take(n)` afresh for
//! every (prefetcher × degree × sweep-point) cell — regenerating the
//! same 300k-event vector four or more times per figure and dozens of
//! times per full `figures` run. This cache generates each distinct
//! `(spec, seed, events)` trace once and hands out `Arc<[AccessEvent]>`
//! clones, which are cheap to share across the [`crate::exec`] worker
//! threads (events are plain `Copy` data, so the slices are `Sync`).
//!
//! Keys use the spec's `Debug` rendering: workload specs are plain
//! config structs whose debug output covers every field, so two specs
//! key equal exactly when they generate identical traces (this also
//! distinguishes the mutated specs of e.g. the MLP-sensitivity study).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use domino_trace::event::AccessEvent;
use domino_trace::rng::SimRng;
use domino_trace::workload::WorkloadSpec;

use crate::config::SystemConfig;
use crate::engine::baseline_miss_sequence;

type Key = (String, u64, usize);
type Cell<T> = Arc<OnceLock<T>>;
type CellMap<T> = OnceLock<Mutex<HashMap<Key, Cell<T>>>>;

static TRACES: CellMap<Arc<[AccessEvent]>> = OnceLock::new();
static MISS_SEQS: CellMap<Arc<Vec<u64>>> = OnceLock::new();

fn key_of(spec: &WorkloadSpec, events: usize, seed: u64) -> Key {
    (format!("{spec:?}"), seed, events)
}

/// `DOMINO_TRACE_CACHE=0` disables the cache (every call regenerates),
/// restoring the pre-cache behaviour for benchmarking comparisons.
fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("DOMINO_TRACE_CACHE").map_or(true, |v| v.trim() != "0"))
}

/// Returns the `events`-long trace of `spec` at `seed`, generating it at
/// most once per process. Concurrent callers for the *same* key block
/// only on that key's generation (the map lock is held just to fetch the
/// cell), so distinct workloads generate in parallel.
pub fn shared_trace(spec: &WorkloadSpec, events: usize, seed: u64) -> Arc<[AccessEvent]> {
    if !enabled() {
        return spec.generator(seed).take(events).collect::<Vec<_>>().into();
    }
    let cell = {
        let map = TRACES.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = map.lock().expect("unpoisoned");
        Arc::clone(map.entry(key_of(spec, events, seed)).or_default())
    };
    cell.get_or_init(|| spec.generator(seed).take(events).collect::<Vec<_>>().into())
        .clone()
}

/// A tenant's view into a shared base trace: a contiguous window of a
/// cached `Arc<[AccessEvent]>`. Thousands of tenant streams share one
/// base allocation per `(spec, seed)` instead of generating thousands of
/// private traces — the memory model behind the metadata service's load
/// generator.
#[derive(Debug, Clone)]
pub struct TenantSlice {
    /// The shared base trace the window points into.
    pub trace: Arc<[AccessEvent]>,
    /// Window start within `trace`.
    pub start: usize,
    /// Window length in events.
    pub len: usize,
}

impl TenantSlice {
    /// The window's events.
    pub fn events(&self) -> &[AccessEvent] {
        &self.trace[self.start..self.start + self.len]
    }
}

/// Derives tenant `tenant`'s miss-stream window: `events` consecutive
/// events of the shared `(spec, seed)` base trace of `base_events`
/// events, at an offset drawn deterministically from `(seed, tenant)`.
/// Same inputs → byte-identical window, across processes and thread
/// schedules, so a service run and its single-tenant reference replay
/// exactly the same stream.
///
/// `base_events` is clamped up to `events` so the window always fits;
/// distinct tenants overlap freely (their sessions are independent).
pub fn shared_tenant_slice(
    spec: &WorkloadSpec,
    base_events: usize,
    seed: u64,
    tenant: u64,
    events: usize,
) -> TenantSlice {
    let base_events = base_events.max(events);
    let trace = shared_trace(spec, base_events, seed);
    let mut rng = SimRng::seed(seed ^ 0x7e6a_5d4c_3b2a_1908);
    let mut rng = rng.fork(tenant);
    let start = rng.index(base_events - events + 1);
    TenantSlice {
        trace,
        start,
        len: events,
    }
}

/// The L1-filtered baseline miss sequence of `spec`'s trace under
/// `system`, cached per `(spec, seed, events)`. Valid because the miss
/// sequence is independent of any prefetcher (prefetches fill only the
/// buffer) — and every figure currently consumes it under the single
/// paper [`SystemConfig`].
pub fn shared_miss_sequence(
    system: &SystemConfig,
    spec: &WorkloadSpec,
    events: usize,
    seed: u64,
) -> Arc<Vec<u64>> {
    if !enabled() {
        let trace = shared_trace(spec, events, seed);
        return Arc::new(baseline_miss_sequence(system, &trace));
    }
    let cell = {
        let map = MISS_SEQS.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = map.lock().expect("unpoisoned");
        Arc::clone(map.entry(key_of(spec, events, seed)).or_default())
    };
    cell.get_or_init(|| {
        let trace = shared_trace(spec, events, seed);
        Arc::new(baseline_miss_sequence(system, &trace))
    })
    .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_trace::workload::catalog;

    #[test]
    fn same_key_shares_the_allocation() {
        let spec = catalog::oltp();
        let a = shared_trace(&spec, 1_000, 42);
        let b = shared_trace(&spec, 1_000, 42);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 1_000);
    }

    #[test]
    fn distinct_seeds_get_distinct_traces() {
        let spec = catalog::oltp();
        let a = shared_trace(&spec, 500, 1);
        let b = shared_trace(&spec, 500, 2);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a[..], b[..]);
    }

    #[test]
    fn mutated_specs_key_separately() {
        let base = catalog::oltp();
        let mut tweaked = catalog::oltp();
        tweaked.temporal.junction_frac += 0.1;
        let a = shared_trace(&base, 300, 7);
        let b = shared_trace(&tweaked, 300, 7);
        assert!(!Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn cached_trace_matches_direct_generation() {
        let spec = catalog::web_search();
        let cached = shared_trace(&spec, 800, 9);
        let direct: Vec<_> = spec.generator(9).take(800).collect();
        assert_eq!(&cached[..], &direct[..]);
    }

    #[test]
    fn tenant_slices_share_the_base_allocation() {
        let spec = catalog::web_search();
        let a = shared_tenant_slice(&spec, 5_000, 77, 0, 400);
        let b = shared_tenant_slice(&spec, 5_000, 77, 1, 400);
        assert!(Arc::ptr_eq(&a.trace, &b.trace));
        assert_eq!(a.events().len(), 400);
        // Same tenant → same window; the derivation is deterministic.
        let a2 = shared_tenant_slice(&spec, 5_000, 77, 0, 400);
        assert_eq!(a.start, a2.start);
        // Windows land inside the base trace.
        assert!(a.start + a.len <= a.trace.len());
        assert!(b.start + b.len <= b.trace.len());
    }

    #[test]
    fn tenant_slice_clamps_short_base() {
        let spec = catalog::oltp();
        let s = shared_tenant_slice(&spec, 10, 3, 9, 250);
        assert_eq!(s.len, 250);
        assert_eq!(s.start, 0);
        assert_eq!(s.trace.len(), 250);
    }

    #[test]
    fn miss_sequence_is_cached_and_correct() {
        let system = SystemConfig::paper();
        let spec = catalog::oltp();
        let a = shared_miss_sequence(&system, &spec, 2_000, 3);
        let b = shared_miss_sequence(&system, &spec, 2_000, 3);
        assert!(Arc::ptr_eq(&a, &b));
        let trace = shared_trace(&spec, 2_000, 3);
        assert_eq!(*a, baseline_miss_sequence(&system, &trace));
    }
}
