/root/repo/target/debug/deps/calibrate-423a77bcfe80e857.d: crates/sim/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-423a77bcfe80e857: crates/sim/src/bin/calibrate.rs

crates/sim/src/bin/calibrate.rs:
