/root/repo/target/release/deps/domino_bench-6f100fe199650733.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdomino_bench-6f100fe199650733.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdomino_bench-6f100fe199650733.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
