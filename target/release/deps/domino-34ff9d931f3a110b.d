/root/repo/target/release/deps/domino-34ff9d931f3a110b.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/domino.rs crates/core/src/eit.rs crates/core/src/naive.rs Cargo.toml

/root/repo/target/release/deps/libdomino-34ff9d931f3a110b.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/domino.rs crates/core/src/eit.rs crates/core/src/naive.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/domino.rs:
crates/core/src/eit.rs:
crates/core/src/naive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
