/root/repo/target/release/deps/eit_properties-022bcef71b6ac113.d: crates/core/tests/eit_properties.rs

/root/repo/target/release/deps/eit_properties-022bcef71b6ac113: crates/core/tests/eit_properties.rs

crates/core/tests/eit_properties.rs:
