//! Quad-core bandwidth study (paper §V-D): four cores of one workload
//! sharing the LLC and the 37.5 GB/s channel. The paper's argument is
//! that server workloads leave most of the channel idle, and that spare
//! bandwidth is what funds Domino's off-chip metadata.
//!
//! ```sh
//! cargo run --release --example bandwidth
//! ```

use domino_repro::sim::multicore::run_homogeneous;
use domino_repro::sim::{System, SystemConfig};
use domino_repro::trace::workload::catalog;

fn main() {
    let system = SystemConfig::paper();
    let events = 150_000;
    let peak = system.memory.bandwidth_bytes_per_ns;
    println!(
        "4 cores x {events} accesses, {peak} GB/s peak channel\n\n\
         {:<16} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "workload", "base GB/s", "Domino GB/s", "demand", "metadata", "utilization"
    );
    for spec in catalog::all() {
        let base = run_homogeneous(&system, &spec, events, 42, System::Baseline, 1);
        let dom = run_homogeneous(&system, &spec, events, 42, System::Domino, 4);
        let meta = dom.chip.metadata_read + dom.chip.metadata_write;
        println!(
            "{:<16} {:>10.2} {:>12.2} {:>11.1}% {:>11.1}% {:>11.1}%",
            spec.name,
            base.bandwidth_gbps(),
            dom.bandwidth_gbps(),
            dom.chip.demand as f64 / dom.chip.total() as f64 * 100.0,
            meta as f64 / dom.chip.total() as f64 * 100.0,
            dom.utilization(&system) * 100.0,
        );
    }
    println!(
        "\nPaper §V-D: baseline consumption ≤ 8 GB/s; Domino utilization between\n\
         8.7% (MapReduce-C) and 32.8% (Web Apache) — \"the unused bandwidth can\n\
         be utilized by a temporal prefetcher ... to improve the execution of\n\
         server workloads.\""
    );
}
