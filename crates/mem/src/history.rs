//! The off-chip History Table (HT) shared by global-history temporal
//! prefetchers (STMS, Digram, Domino).
//!
//! The HT is "a circular buffer [whose rows contain] a sequence of
//! consecutive data misses as observed by the core" (paper §III-A). Rows
//! hold a cache block worth of addresses — 12 entries in the paper's
//! Domino configuration ("every 12 entries ... are placed into a row of
//! the HT"). Reading any part of a row costs one off-chip block transfer.
//!
//! Each entry also carries a *stream-head* flag: whether the recorded
//! triggering event was a demand miss (as opposed to a prefetch hit).
//! The stream-end detection heuristic the paper borrows from STMS stops
//! replay when it reaches the point where the original traversal itself
//! missed — i.e. at the next stream head.

use domino_trace::addr::LineAddr;

/// Addresses per HT row (one 64-byte block at ~5.3 bytes per pointer-less
/// compressed entry, as in the paper's 85 MB / 16 M-entry sizing).
pub const ROW_ENTRIES: usize = 12;

/// One logged triggering event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoryEntry {
    /// The miss (or prefetch-hit) address.
    pub line: LineAddr,
    /// Whether this event started a stream (was a demand miss).
    pub stream_head: bool,
}

/// Append-only circular history of triggering events.
///
/// Positions are *global sequence numbers*: they keep growing forever, and
/// a position is readable only while it has not been overwritten.
///
/// ```
/// use domino_mem::history::HistoryTable;
/// use domino_trace::addr::LineAddr;
///
/// let mut ht = HistoryTable::new(1024);
/// let p = ht.append(LineAddr::new(7), true);
/// assert_eq!(ht.get(p).unwrap().line, LineAddr::new(7));
/// ```
#[derive(Debug, Clone)]
pub struct HistoryTable {
    /// Ring storage; index = position % capacity.
    ring: Vec<HistoryEntry>,
    /// Total entries ever appended.
    appended: u64,
    /// Ring capacity (entries). `0` means unbounded (grow forever).
    capacity: usize,
    /// Unbounded storage when `capacity == 0`.
    unbounded: Vec<HistoryEntry>,
}

impl HistoryTable {
    /// Creates a history with room for `capacity` entries
    /// (`0` = unbounded, the paper's idealized STMS/Digram setting).
    pub fn new(capacity: usize) -> Self {
        HistoryTable {
            ring: Vec::new(),
            appended: 0,
            capacity,
            unbounded: Vec::new(),
        }
    }

    /// The paper's Domino sizing: 16 M entries.
    pub fn paper() -> Self {
        HistoryTable::new(16 * 1024 * 1024)
    }

    /// Pre-sizes the storage for `expected_appends` further appends, so
    /// the append path never reallocates mid-run. Bounded rings reserve
    /// at most their remaining fill distance (a full ring overwrites in
    /// place and needs nothing).
    pub fn reserve(&mut self, expected_appends: usize) {
        if self.capacity == 0 {
            self.unbounded.reserve(expected_appends);
        } else {
            let room = self.capacity - self.ring.len();
            self.ring.reserve(expected_appends.min(room));
        }
    }

    /// Appends an event; returns its global position.
    pub fn append(&mut self, line: LineAddr, stream_head: bool) -> u64 {
        let pos = self.appended;
        let entry = HistoryEntry { line, stream_head };
        if self.capacity == 0 {
            self.unbounded.push(entry);
        } else if self.ring.len() < self.capacity {
            self.ring.push(entry);
        } else {
            let idx = (pos % self.capacity as u64) as usize;
            self.ring[idx] = entry;
        }
        self.appended += 1;
        pos
    }

    /// Total events appended so far (= next position).
    pub fn len(&self) -> u64 {
        self.appended
    }

    /// Bytes of ring/unbounded storage currently allocated (entries
    /// live, not reserved capacity) — the history's share of
    /// `Prefetcher::footprint_bytes`.
    pub fn footprint_bytes(&self) -> usize {
        (self.ring.len() + self.unbounded.len()) * std::mem::size_of::<HistoryEntry>()
    }

    /// Whether nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.appended == 0
    }

    /// Whether `pos` is still resident (not overwritten).
    pub fn is_live(&self, pos: u64) -> bool {
        if pos >= self.appended {
            return false;
        }
        if self.capacity == 0 {
            true
        } else {
            self.appended - pos <= self.capacity as u64
        }
    }

    /// Reads the entry at `pos` if still resident.
    pub fn get(&self, pos: u64) -> Option<HistoryEntry> {
        if !self.is_live(pos) {
            return None;
        }
        if self.capacity == 0 {
            Some(self.unbounded[pos as usize])
        } else {
            Some(self.ring[(pos % self.capacity as u64) as usize])
        }
    }

    /// Row number containing `pos` (rows are [`ROW_ENTRIES`] wide).
    pub fn row_of(pos: u64) -> u64 {
        pos / ROW_ENTRIES as u64
    }

    /// Reads up to `n` successors of `pos` (entries at `pos+1 ..`),
    /// stopping at the present. Returns the successors and the number of
    /// distinct HT *rows* touched — each row is one off-chip block read.
    pub fn successors(&self, pos: u64, n: usize) -> (Vec<HistoryEntry>, u32) {
        let mut out = Vec::with_capacity(n);
        let mut rows_touched = 0u32;
        let mut last_row = None;
        for p in (pos + 1)..(pos + 1 + n as u64) {
            let Some(e) = self.get(p) else { break };
            let row = Self::row_of(p);
            if last_row != Some(row) {
                rows_touched += 1;
                last_row = Some(row);
            }
            out.push(e);
        }
        (out, rows_touched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn append_and_read_back() {
        let mut ht = HistoryTable::new(16);
        for i in 0..10 {
            let p = ht.append(line(i), i % 3 == 0);
            assert_eq!(p, i);
        }
        assert_eq!(ht.get(4).unwrap().line, line(4));
        assert!(ht.get(3).unwrap().stream_head);
        assert!(!ht.get(4).unwrap().stream_head);
    }

    #[test]
    fn circular_overwrite_invalidates_old_positions() {
        let mut ht = HistoryTable::new(4);
        for i in 0..10 {
            ht.append(line(i), false);
        }
        assert!(!ht.is_live(5), "overwritten");
        assert!(ht.is_live(6));
        assert_eq!(ht.get(9).unwrap().line, line(9));
        assert_eq!(ht.get(2), None);
    }

    #[test]
    fn unbounded_keeps_everything() {
        let mut ht = HistoryTable::new(0);
        for i in 0..1000 {
            ht.append(line(i), false);
        }
        assert!(ht.is_live(0));
        assert_eq!(ht.get(0).unwrap().line, line(0));
    }

    #[test]
    fn successors_stop_at_present() {
        let mut ht = HistoryTable::new(0);
        for i in 0..5 {
            ht.append(line(i), false);
        }
        let (succ, _rows) = ht.successors(2, 10);
        assert_eq!(succ.len(), 2);
        assert_eq!(succ[0].line, line(3));
        assert_eq!(succ[1].line, line(4));
    }

    #[test]
    fn successors_count_row_crossings() {
        let mut ht = HistoryTable::new(0);
        for i in 0..(ROW_ENTRIES as u64 * 2) {
            ht.append(line(i), false);
        }
        // Successors of the last entry of row 0 span into row 1 only.
        let (succ, rows) = ht.successors(ROW_ENTRIES as u64 - 1, 4);
        assert_eq!(succ.len(), 4);
        assert_eq!(rows, 1);
        // Successors starting mid-row-0 cross into row 1: two rows.
        let (succ, rows) = ht.successors(ROW_ENTRIES as u64 - 3, 4);
        assert_eq!(succ.len(), 4);
        assert_eq!(rows, 2);
    }

    #[test]
    fn row_of_matches_width() {
        assert_eq!(HistoryTable::row_of(0), 0);
        assert_eq!(HistoryTable::row_of(ROW_ENTRIES as u64 - 1), 0);
        assert_eq!(HistoryTable::row_of(ROW_ENTRIES as u64), 1);
    }
}
