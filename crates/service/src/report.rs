//! The schema-versioned `SERVICE_report.json` renderer.
//!
//! Hand-rolled JSON in the style of `domino_telemetry::report`: the
//! document is assembled with [`domino_telemetry::json::quote`] and
//! [`domino_telemetry::json::u64_array`], validated out-of-band by
//! `tools/validate_service.py`.

use domino_telemetry::json::{quote, u64_array};
use domino_telemetry::FixedHistogram;

use crate::load::{LoadPlan, LoadReport};
use crate::service::ServiceResult;

/// Schema tag; bump on any breaking field change.
pub const SCHEMA: &str = "domino-service/1";

/// Request-latency bucket upper bounds in nanoseconds: 1 µs → 200 ms,
/// roughly geometric. Submissions landing past the last bound count in
/// the histogram overflow bucket and report percentiles as `u64::MAX`.
pub const LATENCY_BOUNDS_NS: &[u64] = &[
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
    50_000_000,
    200_000_000,
];

/// `u64::MAX` percentiles (overflow bucket) render as the sentinel
/// itself; `None` (empty histogram) renders as 0.
fn pct(hist: &FixedHistogram, p: f64) -> u64 {
    hist.percentile(p).unwrap_or(0)
}

fn f64_field(v: f64) -> String {
    // Throughput fields; plain decimal keeps the document parseable by
    // the in-repo JSON parser (no exponents).
    format!("{v:.3}")
}

fn hist_fields(hist: &FixedHistogram, indent: &str) -> String {
    format!(
        "{indent}\"latency_bounds_ns\": {},\n\
         {indent}\"latency_counts\": {},\n\
         {indent}\"latency_sum_ns\": {},\n\
         {indent}\"p50_ns\": {},\n\
         {indent}\"p95_ns\": {},\n\
         {indent}\"p99_ns\": {}",
        u64_array(hist.bounds()),
        u64_array(hist.counts()),
        hist.sum(),
        pct(hist, 0.50),
        pct(hist, 0.95),
        pct(hist, 0.99),
    )
}

/// Renders the full service report document. `result` must come from
/// `MetadataService::shutdown` on the run `load` describes.
pub fn render_report(plan: &LoadPlan, load: &LoadReport, result: &ServiceResult) -> String {
    let mut aggregate = FixedHistogram::new(LATENCY_BOUNDS_NS);
    let mut total_gap = 0u64;
    let mut total_evictions = 0u64;
    let mut total_resets = 0u64;
    for shard in &result.shards {
        let (bounds, counts) = (shard.stats.latency.bounds(), shard.stats.latency.counts());
        debug_assert_eq!(bounds, LATENCY_BOUNDS_NS);
        aggregate = FixedHistogram::from_parts(
            bounds.to_vec(),
            aggregate
                .counts()
                .iter()
                .zip(counts)
                .map(|(a, b)| a + b)
                .collect(),
            aggregate.sum() + shard.stats.latency.sum(),
        );
        total_gap += shard.stats.gap_events;
        total_evictions += shard.stats.evictions;
        total_resets += shard.stats.resets;
    }
    let total_events = result.total_events();
    let throughput = if load.wall_ns == 0 {
        0.0
    } else {
        total_events as f64 / (load.wall_ns as f64 / 1e9)
    };
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": {},\n", quote(SCHEMA)));
    out.push_str(&format!("  \"system\": {},\n", quote(&plan.system.label())));
    out.push_str(&format!("  \"tenants\": {},\n", plan.tenants));
    out.push_str(&format!(
        "  \"events_per_tenant\": {},\n",
        plan.events_per_tenant
    ));
    out.push_str(&format!("  \"request_batch\": {},\n", plan.request_batch));
    out.push_str(&format!("  \"clients\": {},\n", plan.clients));
    out.push_str(&format!("  \"seed\": {},\n", plan.seed));
    out.push_str(&format!("  \"shard_count\": {},\n", result.shards.len()));
    out.push_str(&format!("  \"events_offered\": {},\n", load.events_offered));
    out.push_str(&format!("  \"total_events\": {total_events},\n"));
    out.push_str(&format!(
        "  \"total_batches\": {},\n",
        result.total_batches()
    ));
    out.push_str(&format!("  \"total_shed\": {},\n", result.total_shed()));
    out.push_str(&format!("  \"total_gap_events\": {total_gap},\n"));
    out.push_str(&format!("  \"total_evictions\": {total_evictions},\n"));
    out.push_str(&format!("  \"total_resets\": {total_resets},\n"));
    out.push_str(&format!("  \"wall_ns\": {},\n", load.wall_ns));
    out.push_str(&format!(
        "  \"throughput_eps\": {},\n",
        f64_field(throughput)
    ));
    out.push_str(&hist_fields(&aggregate, "  "));
    out.push_str(",\n  \"per_shard\": [\n");
    for (i, shard) in result.shards.iter().enumerate() {
        let s = &shard.stats;
        out.push_str("    {\n");
        out.push_str(&format!("      \"shard\": {},\n", s.shard));
        out.push_str(&format!("      \"tenants\": {},\n", shard.finals.len()));
        out.push_str(&format!("      \"batches\": {},\n", s.batches));
        out.push_str(&format!("      \"events\": {},\n", s.events));
        out.push_str(&format!("      \"shed\": {},\n", s.shed));
        out.push_str(&format!("      \"evictions\": {},\n", s.evictions));
        out.push_str(&format!("      \"resets\": {},\n", s.resets));
        out.push_str(&format!("      \"gap_events\": {},\n", s.gap_events));
        out.push_str(&format!("      \"peak_tenants\": {},\n", s.peak_tenants));
        out.push_str(&format!(
            "      \"peak_footprint_bytes\": {},\n",
            s.peak_footprint
        ));
        out.push_str(&format!("      \"busy_ns\": {},\n", s.busy_ns));
        out.push_str(&format!("      \"wall_ns\": {},\n", s.wall_ns));
        out.push_str(&format!(
            "      \"throughput_eps\": {},\n",
            f64_field(s.throughput_eps())
        ));
        out.push_str(&hist_fields(&s.latency, "      "));
        out.push_str("\n    }");
        out.push_str(if i + 1 < result.shards.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::{ShardOutcome, ShardStats};
    use domino_telemetry::json::parse;

    fn one_shard_result(values: &[u64]) -> ServiceResult {
        let mut latency = FixedHistogram::new(LATENCY_BOUNDS_NS);
        for &v in values {
            latency.record(v);
        }
        let stats = ShardStats {
            shard: 0,
            batches: values.len() as u64,
            events: values.len() as u64 * 32,
            shed: 0,
            evictions: 0,
            resets: 0,
            gap_events: 0,
            peak_tenants: 3,
            peak_footprint: 4096,
            busy_ns: 1_000,
            wall_ns: 2_000,
            latency,
        };
        ServiceResult {
            shards: vec![ShardOutcome {
                stats,
                finals: Vec::new(),
                obs: None,
            }],
        }
    }

    #[test]
    fn report_parses_and_percentiles_are_ordered() {
        let plan = LoadPlan::default();
        let load = LoadReport {
            tenants: plan.tenants,
            submitted_batches: 3,
            shed_rejections: 0,
            events_offered: 96,
            wall_ns: 2_000,
        };
        let result = one_shard_result(&[900, 3_000, 40_000]);
        let doc = render_report(&plan, &load, &result);
        let json = parse(&doc).expect("report is valid JSON");
        assert_eq!(json.get("schema").and_then(|v| v.as_str()), Some(SCHEMA));
        assert_eq!(json.get("total_events").and_then(|v| v.as_u64()), Some(96));
        let pct = |k: &str| json.get(k).and_then(|v| v.as_u64()).expect("u64 field");
        assert!(pct("p50_ns") <= pct("p95_ns"));
        assert!(pct("p95_ns") <= pct("p99_ns"));
        // Known buckets: 900 → bound 1000, 3000 → 5000, 40000 → 50000.
        assert_eq!(pct("p50_ns"), 5_000);
        assert_eq!(pct("p99_ns"), 50_000);
        let shards = json.get("per_shard").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(shards.len(), 1);
        let counts = shards[0]
            .get("latency_counts")
            .and_then(|v| v.as_arr())
            .unwrap();
        assert_eq!(counts.len(), LATENCY_BOUNDS_NS.len() + 1);
    }

    #[test]
    fn empty_histogram_renders_zero_percentiles() {
        let plan = LoadPlan::default();
        let load = LoadReport {
            tenants: 0,
            submitted_batches: 0,
            shed_rejections: 0,
            events_offered: 0,
            wall_ns: 0,
        };
        let result = one_shard_result(&[]);
        let doc = render_report(&plan, &load, &result);
        let json = parse(&doc).expect("report is valid JSON");
        assert_eq!(json.get("p50_ns").and_then(|v| v.as_u64()), Some(0));
        assert_eq!(
            json.get("throughput_eps").and_then(|v| v.as_f64()),
            Some(0.0)
        );
    }
}
