//! Exploration CLI: run any prefetching system against any workload at
//! any scale, printing coverage, overpredictions, traffic, and timing in
//! one line per combination. CSV output for plotting pipelines.
//!
//! ```sh
//! cargo run -p domino-sim --release --bin explore -- \
//!     --workloads oltp,web-search --systems stms,domino \
//!     --degree 4 --events 300000 [--csv]
//! ```

use domino_sim::{run_coverage, run_timing, System, SystemConfig};
use domino_trace::workload::{catalog, WorkloadSpec};

fn workload_by_name(name: &str) -> Option<WorkloadSpec> {
    let norm = name.to_lowercase().replace(['_', ' '], "-");
    catalog::all()
        .into_iter()
        .find(|s| s.name.to_lowercase().replace(' ', "-") == norm)
}

fn system_by_name(name: &str) -> Option<System> {
    let norm = name.to_lowercase().replace(['_', ' '], "-");
    let all = [
        System::Baseline,
        System::NextLine,
        System::Stride,
        System::Ghb,
        System::Markov,
        System::Sms,
        System::Vldp,
        System::Isb,
        System::Stms,
        System::Digram,
        System::Domino,
        System::DominoNaive,
        System::VldpPlusDomino,
    ];
    if let Some(depth) = norm.strip_prefix("lookup-") {
        return depth.parse().ok().map(System::MultiDepth);
    }
    all.into_iter()
        .find(|s| s.label().to_lowercase().replace('+', "-plus-") == norm.replace('+', "-plus-"))
}

struct Args {
    workloads: Vec<WorkloadSpec>,
    systems: Vec<System>,
    degree: usize,
    events: usize,
    seed: u64,
    csv: bool,
    trace_file: Option<std::path::PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut workloads = catalog::all();
    let mut systems = vec![System::Stms, System::Domino];
    let mut degree = 4;
    let mut events = 200_000;
    let mut seed = 42;
    let mut csv = false;
    let mut trace_file = None;
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = || {
            iter.next()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--workloads" => {
                let v = value()?;
                workloads = v
                    .split(',')
                    .map(|n| workload_by_name(n).ok_or_else(|| format!("unknown workload {n}")))
                    .collect::<Result<_, _>>()?;
            }
            "--systems" => {
                let v = value()?;
                systems = v
                    .split(',')
                    .map(|n| system_by_name(n).ok_or_else(|| format!("unknown system {n}")))
                    .collect::<Result<_, _>>()?;
            }
            "--degree" => degree = value()?.parse().map_err(|e| format!("degree: {e}"))?,
            "--events" => events = value()?.parse().map_err(|e| format!("events: {e}"))?,
            "--seed" => seed = value()?.parse().map_err(|e| format!("seed: {e}"))?,
            "--csv" => csv = true,
            "--trace-file" => trace_file = Some(value()?.into()),
            "--help" | "-h" => {
                return Err("usage: explore [--workloads a,b] [--systems x,y] \
                            [--degree N] [--events N] [--seed N] [--csv] \
                            [--trace-file path]"
                    .into())
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args {
        workloads,
        systems,
        degree,
        events,
        seed,
        csv,
        trace_file,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let system = SystemConfig::paper();
    if args.csv {
        println!("workload,system,degree,coverage,overpredictions,stream_len,meta_read_blocks,meta_write_blocks,speedup");
    } else {
        println!(
            "{:<16} {:<12} {:>8} {:>12} {:>10} {:>10} {:>8}",
            "workload", "system", "coverage", "overpredict", "streamlen", "metaRd", "speedup"
        );
    }
    // An external trace file (see `domino_trace::io`) replaces the
    // synthetic workloads entirely.
    let external: Option<Vec<domino_trace::event::AccessEvent>> =
        args.trace_file.as_ref().map(|path| {
            let file = std::fs::File::open(path).unwrap_or_else(|e| {
                eprintln!("cannot open {}: {e}", path.display());
                std::process::exit(2);
            });
            domino_trace::io::read_trace(std::io::BufReader::new(file)).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            })
        });
    let runs: Vec<(String, Vec<domino_trace::event::AccessEvent>)> = match external {
        Some(trace) => vec![("<trace-file>".to_string(), trace)],
        None => args
            .workloads
            .iter()
            .map(|spec| {
                (
                    spec.name.clone(),
                    spec.generator(args.seed).take(args.events).collect(),
                )
            })
            .collect(),
    };
    for (name, trace) in &runs {
        let mut base = System::Baseline.build(1);
        let baseline = run_timing(&system, trace, base.as_mut());
        for &sys in &args.systems {
            let mut p = sys.build(args.degree);
            let cov = run_coverage(&system, trace, p.as_mut());
            let mut p = sys.build(args.degree);
            let t = run_timing(&system, trace, p.as_mut());
            let speedup = t.speedup_over(&baseline);
            if args.csv {
                println!(
                    "{},{},{},{:.6},{:.6},{:.4},{},{},{:.4}",
                    name,
                    sys.label(),
                    args.degree,
                    cov.coverage(),
                    cov.overprediction_rate(),
                    cov.mean_stream_length(),
                    cov.meta_read_blocks,
                    cov.meta_write_blocks,
                    speedup
                );
            } else {
                println!(
                    "{:<16} {:<12} {:>7.1}% {:>11.1}% {:>10.2} {:>10} {:>7.3}",
                    name,
                    sys.label(),
                    cov.coverage() * 100.0,
                    cov.overprediction_rate() * 100.0,
                    cov.mean_stream_length(),
                    cov.meta_read_blocks,
                    speedup
                );
            }
        }
    }
}
