//! System configuration (paper Table I).

use domino_mem::cache::CacheConfig;
use domino_mem::dram::DramConfig;

/// The evaluated system's parameters, mirroring Table I of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Issue width.
    pub issue_width: u32,
    /// Reorder-buffer entries.
    pub rob_entries: u32,
    /// Load/store-queue entries.
    pub lsq_entries: u32,
    /// L1-D geometry.
    pub l1d: CacheConfig,
    /// L1-D load-to-use latency in cycles.
    pub l1d_latency_cycles: u32,
    /// L1-D MSHRs.
    pub l1d_mshrs: usize,
    /// L2 (LLC) geometry.
    pub l2: CacheConfig,
    /// L2 hit latency in cycles.
    pub l2_latency_cycles: u32,
    /// L2 MSHRs.
    pub l2_mshrs: usize,
    /// Main memory.
    pub memory: DramConfig,
    /// Prefetch buffer capacity in blocks (§IV-D).
    pub prefetch_buffer_blocks: usize,
    /// Number of cores sharing the memory channel.
    pub cores: u32,
}

impl SystemConfig {
    /// The paper's quad-core configuration (Table I).
    pub fn paper() -> Self {
        SystemConfig {
            clock_ghz: 4.0,
            issue_width: 4,
            rob_entries: 128,
            lsq_entries: 64,
            l1d: CacheConfig::l1d(),
            l1d_latency_cycles: 2,
            l1d_mshrs: 32,
            l2: CacheConfig::llc(),
            l2_latency_cycles: 18,
            l2_mshrs: 64,
            memory: DramConfig::paper(),
            prefetch_buffer_blocks: 32,
            cores: 4,
        }
    }

    /// Nanoseconds per core cycle.
    pub fn cycle_ns(&self) -> f64 {
        1.0 / self.clock_ghz
    }

    /// Nanoseconds of latency the out-of-order window can hide for an
    /// independent miss: the time it takes to fill the ROB at full issue
    /// width.
    pub fn hide_window_ns(&self) -> f64 {
        f64::from(self.rob_entries) / f64::from(self.issue_width) * self.cycle_ns()
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters_match_table_one() {
        let c = SystemConfig::paper();
        assert_eq!(c.clock_ghz, 4.0);
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.rob_entries, 128);
        assert_eq!(c.lsq_entries, 64);
        assert_eq!(c.l1d.size_bytes, 64 * 1024);
        assert_eq!(c.l1d.ways, 2);
        assert_eq!(c.l2.size_bytes, 4 * 1024 * 1024);
        assert_eq!(c.l2.ways, 16);
        assert_eq!(c.memory.latency_ns, 45.0);
        assert_eq!(c.memory.bandwidth_bytes_per_ns, 37.5);
        assert_eq!(c.prefetch_buffer_blocks, 32);
        assert_eq!(c.cores, 4);
    }

    #[test]
    fn derived_quantities() {
        let c = SystemConfig::paper();
        assert!((c.cycle_ns() - 0.25).abs() < 1e-12);
        assert!((c.hide_window_ns() - 8.0).abs() < 1e-12);
    }
}
