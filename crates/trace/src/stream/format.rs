//! The `DMNOTRC1` binary trace container.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic            "DMNOTRC1"
//! 8       4     version          1
//! 12      4     record_bytes     24
//! 16      8     events           total event count
//! 24      4     chunk_events     events per chunk (last chunk may be short)
//! 28      4     codec            0 = raw records, 1 = sequitur grammar
//! 32      8     index_offset     byte offset of the chunk index
//! 40      ...   chunk payloads, back to back
//! index_offset  32 * chunk_count chunk index entries
//! ```
//!
//! Each index entry is 32 bytes: `offset: u64`, `byte_len: u64`,
//! `events: u32`, `reserved: u32`, `digest: u64`. The digest is FNV-1a over
//! the *decoded* 24-byte record images of the chunk, so raw and compressed
//! encodings of the same events carry the same digest and readers verify
//! payload integrity codec-independently.
//!
//! A record is 24 bytes: `pc: u64`, `addr: u64`, `gap_insts: u32`,
//! `kind: u8` (0 read, 1 write), `dependent: u8` (0/1), `pad: u16` (must be
//! zero). The encoding is injective over [`AccessEvent`], which is what
//! makes chunk digests and the streaming parity oracle byte-exact.
//!
//! Every malformed input — wrong magic, truncated header, torn records,
//! misaligned index, digest mismatch — surfaces as a [`TraceFileError`];
//! readers never panic on hostile bytes.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::addr::{Addr, Pc};
use crate::event::{AccessEvent, AccessKind};
use crate::stream::compress;

/// File magic: `DMNOTRC1`.
pub const TRACE_MAGIC: [u8; 8] = *b"DMNOTRC1";

/// Current schema version.
pub const TRACE_VERSION: u32 = 1;

/// Size of one encoded event record.
pub const RECORD_BYTES: usize = 24;

/// Header size in bytes.
pub const HEADER_BYTES: u64 = 40;

/// Size of one chunk-index entry.
pub const INDEX_ENTRY_BYTES: u64 = 32;

/// Default chunk granularity: 64 Ki events = 1.5 MiB of raw records.
pub const DEFAULT_CHUNK_EVENTS: u32 = 1 << 16;

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Payload encoding of the chunks in a trace file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codec {
    /// Chunks are consecutive 24-byte records.
    Raw,
    /// Chunks are a per-chunk event dictionary plus a serialized Sequitur
    /// grammar over dictionary ids (see [`crate::stream::compress`]).
    Sequitur,
}

impl Codec {
    fn from_raw(raw: u32) -> Option<Codec> {
        match raw {
            0 => Some(Codec::Raw),
            1 => Some(Codec::Sequitur),
            _ => None,
        }
    }

    fn to_raw(self) -> u32 {
        match self {
            Codec::Raw => 0,
            Codec::Sequitur => 1,
        }
    }

    /// Human-readable codec name (`raw` / `sequitur`).
    pub fn label(self) -> &'static str {
        match self {
            Codec::Raw => "raw",
            Codec::Sequitur => "sequitur",
        }
    }
}

/// Error reading or writing a `DMNOTRC1` file.
#[derive(Debug)]
pub enum TraceFileError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// File too short to hold the fixed header.
    TruncatedHeader {
        /// Actual file length.
        len: u64,
    },
    /// Leading bytes are not [`TRACE_MAGIC`].
    BadMagic {
        /// The bytes found instead.
        found: [u8; 8],
    },
    /// Schema version this reader does not understand.
    UnsupportedVersion {
        /// Version field from the header.
        version: u32,
    },
    /// Header field with an invalid value.
    BadHeader {
        /// What is wrong.
        detail: String,
    },
    /// Chunk index missing, misaligned, or internally inconsistent.
    BadIndex {
        /// What is wrong.
        detail: String,
    },
    /// Raw chunk whose byte length is not `events * 24` (a torn record).
    TornRecord {
        /// Chunk number.
        chunk: usize,
        /// Byte length claimed by the index.
        byte_len: u64,
    },
    /// Record with an invalid field encoding.
    BadRecord {
        /// Chunk number.
        chunk: usize,
        /// What is wrong.
        detail: String,
    },
    /// Chunk payload whose decoded digest does not match the index.
    DigestMismatch {
        /// Chunk number.
        chunk: usize,
        /// Digest recorded in the index.
        expected: u64,
        /// Digest of the decoded payload.
        actual: u64,
    },
    /// Compressed chunk whose grammar is malformed.
    BadGrammar {
        /// Chunk number.
        chunk: usize,
        /// What is wrong.
        detail: String,
    },
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "trace file I/O error: {e}"),
            TraceFileError::TruncatedHeader { len } => {
                write!(f, "truncated header: file is {len} bytes, need {HEADER_BYTES}")
            }
            TraceFileError::BadMagic { found } => {
                write!(f, "bad magic {found:02x?}, expected {TRACE_MAGIC:02x?} (\"DMNOTRC1\")")
            }
            TraceFileError::UnsupportedVersion { version } => {
                write!(f, "unsupported trace version {version} (this reader understands {TRACE_VERSION})")
            }
            TraceFileError::BadHeader { detail } => write!(f, "bad header: {detail}"),
            TraceFileError::BadIndex { detail } => write!(f, "bad chunk index: {detail}"),
            TraceFileError::TornRecord { chunk, byte_len } => write!(
                f,
                "torn record in chunk {chunk}: {byte_len} bytes is not a whole number of {RECORD_BYTES}-byte records for the indexed event count"
            ),
            TraceFileError::BadRecord { chunk, detail } => {
                write!(f, "bad record in chunk {chunk}: {detail}")
            }
            TraceFileError::DigestMismatch {
                chunk,
                expected,
                actual,
            } => write!(
                f,
                "digest mismatch in chunk {chunk}: index says {expected:#018x}, payload decodes to {actual:#018x}"
            ),
            TraceFileError::BadGrammar { chunk, detail } => {
                write!(f, "bad grammar in chunk {chunk}: {detail}")
            }
        }
    }
}

impl std::error::Error for TraceFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceFileError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceFileError {
    fn from(e: std::io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

/// Encodes one event into its 24-byte record image.
pub fn encode_record(ev: &AccessEvent, out: &mut [u8; RECORD_BYTES]) {
    out[0..8].copy_from_slice(&ev.pc.raw().to_le_bytes());
    out[8..16].copy_from_slice(&ev.addr.raw().to_le_bytes());
    out[16..20].copy_from_slice(&ev.gap_insts.to_le_bytes());
    out[20] = match ev.kind {
        AccessKind::Read => 0,
        AccessKind::Write => 1,
    };
    out[21] = u8::from(ev.dependent);
    out[22] = 0;
    out[23] = 0;
}

/// Decodes one 24-byte record image; strict about every spare bit so that
/// corruption cannot round-trip silently.
pub fn decode_record(b: &[u8; RECORD_BYTES]) -> Result<AccessEvent, String> {
    let pc = u64::from_le_bytes(b[0..8].try_into().expect("8 bytes"));
    let addr = u64::from_le_bytes(b[8..16].try_into().expect("8 bytes"));
    let gap = u32::from_le_bytes(b[16..20].try_into().expect("4 bytes"));
    let kind = match b[20] {
        0 => AccessKind::Read,
        1 => AccessKind::Write,
        other => return Err(format!("invalid kind byte {other:#04x}")),
    };
    let dependent = match b[21] {
        0 => false,
        1 => true,
        other => return Err(format!("invalid dependent byte {other:#04x}")),
    };
    if b[22] != 0 || b[23] != 0 {
        return Err(format!("nonzero pad bytes {:#04x} {:#04x}", b[22], b[23]));
    }
    Ok(AccessEvent {
        pc: Pc::new(pc),
        addr: Addr::new(addr),
        kind,
        gap_insts: gap,
        dependent,
    })
}

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a digest over the record images of `events` — the chunk digest
/// stored in the index, identical for raw and compressed encodings.
pub fn digest_events(events: &[AccessEvent]) -> u64 {
    let mut h = FNV_BASIS;
    let mut rec = [0u8; RECORD_BYTES];
    for ev in events {
        encode_record(ev, &mut rec);
        h = fnv_bytes(h, &rec);
    }
    h
}

#[derive(Debug, Clone, Copy)]
struct ChunkMeta {
    offset: u64,
    byte_len: u64,
    events: u32,
    digest: u64,
}

/// Summary returned by [`TraceWriter::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total events written.
    pub events: u64,
    /// Number of chunks.
    pub chunks: usize,
    /// Total file size in bytes (header + payload + index).
    pub file_bytes: u64,
    /// Payload bytes (sum of encoded chunk lengths).
    pub payload_bytes: u64,
}

/// Streaming `DMNOTRC1` writer.
///
/// Events are buffered per chunk and flushed as each chunk fills; nothing
/// beyond one chunk is held in memory. [`TraceWriter::finish`] must be
/// called to seal the file — it writes the chunk index and rewrites the
/// header (which is zero-stamped until then, so an unfinished file is
/// rejected by [`TraceReader`] rather than silently truncated).
#[derive(Debug)]
pub struct TraceWriter<W: Write + Seek> {
    sink: W,
    chunk_events: u32,
    codec: Codec,
    pending: Vec<AccessEvent>,
    index: Vec<ChunkMeta>,
    events: u64,
    cursor: u64,
}

impl TraceWriter<BufWriter<File>> {
    /// Creates (truncating) `path` and writes the placeholder header.
    ///
    /// # Errors
    ///
    /// I/O failures and a zero `chunk_events`.
    pub fn create(path: &Path, chunk_events: u32, codec: Codec) -> Result<Self, TraceFileError> {
        let file = File::create(path)?;
        TraceWriter::new(BufWriter::new(file), chunk_events, codec)
    }
}

impl<W: Write + Seek> TraceWriter<W> {
    /// Wraps any seekable sink and writes the placeholder header.
    ///
    /// # Errors
    ///
    /// I/O failures and a zero `chunk_events`.
    pub fn new(mut sink: W, chunk_events: u32, codec: Codec) -> Result<Self, TraceFileError> {
        if chunk_events == 0 {
            return Err(TraceFileError::BadHeader {
                detail: "chunk_events must be nonzero".into(),
            });
        }
        // Placeholder header: correct magic/version but a zero index
        // offset, which TraceReader rejects — a crashed writer leaves an
        // unmistakably unfinished file.
        sink.write_all(&header_bytes(0, chunk_events, codec, 0))?;
        Ok(TraceWriter {
            sink,
            chunk_events,
            codec,
            pending: Vec::with_capacity(chunk_events as usize),
            index: Vec::new(),
            events: 0,
            cursor: HEADER_BYTES,
        })
    }

    /// Appends one event.
    ///
    /// # Errors
    ///
    /// I/O failures when a full chunk flushes.
    pub fn push(&mut self, ev: AccessEvent) -> Result<(), TraceFileError> {
        self.pending.push(ev);
        self.events += 1;
        if self.pending.len() == self.chunk_events as usize {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Appends a slice of events.
    ///
    /// # Errors
    ///
    /// I/O failures when full chunks flush.
    pub fn write_events(&mut self, events: &[AccessEvent]) -> Result<(), TraceFileError> {
        for ev in events {
            self.push(*ev)?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> Result<(), TraceFileError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let digest = digest_events(&self.pending);
        let payload = match self.codec {
            Codec::Raw => {
                let mut bytes = Vec::with_capacity(self.pending.len() * RECORD_BYTES);
                let mut rec = [0u8; RECORD_BYTES];
                for ev in &self.pending {
                    encode_record(ev, &mut rec);
                    bytes.extend_from_slice(&rec);
                }
                bytes
            }
            Codec::Sequitur => compress::encode_chunk(&self.pending),
        };
        self.sink.write_all(&payload)?;
        self.index.push(ChunkMeta {
            offset: self.cursor,
            byte_len: payload.len() as u64,
            events: self.pending.len() as u32,
            digest,
        });
        self.cursor += payload.len() as u64;
        self.pending.clear();
        Ok(())
    }

    /// Flushes the final partial chunk, writes the chunk index, seals the
    /// header, and returns a summary.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn finish(mut self) -> Result<TraceSummary, TraceFileError> {
        self.flush_chunk()?;
        let index_offset = self.cursor;
        let payload_bytes = index_offset - HEADER_BYTES;
        for meta in &self.index {
            let mut entry = [0u8; INDEX_ENTRY_BYTES as usize];
            entry[0..8].copy_from_slice(&meta.offset.to_le_bytes());
            entry[8..16].copy_from_slice(&meta.byte_len.to_le_bytes());
            entry[16..20].copy_from_slice(&meta.events.to_le_bytes());
            // entry[20..24] reserved, zero.
            entry[24..32].copy_from_slice(&meta.digest.to_le_bytes());
            self.sink.write_all(&entry)?;
        }
        self.sink.seek(SeekFrom::Start(0))?;
        self.sink.write_all(&header_bytes(
            self.events,
            self.chunk_events,
            self.codec,
            index_offset,
        ))?;
        self.sink.flush()?;
        Ok(TraceSummary {
            events: self.events,
            chunks: self.index.len(),
            file_bytes: index_offset + INDEX_ENTRY_BYTES * self.index.len() as u64,
            payload_bytes,
        })
    }
}

fn header_bytes(events: u64, chunk_events: u32, codec: Codec, index_offset: u64) -> [u8; 40] {
    let mut h = [0u8; HEADER_BYTES as usize];
    h[0..8].copy_from_slice(&TRACE_MAGIC);
    h[8..12].copy_from_slice(&TRACE_VERSION.to_le_bytes());
    h[12..16].copy_from_slice(&(RECORD_BYTES as u32).to_le_bytes());
    h[16..24].copy_from_slice(&events.to_le_bytes());
    h[24..28].copy_from_slice(&chunk_events.to_le_bytes());
    h[28..32].copy_from_slice(&codec.to_raw().to_le_bytes());
    h[32..40].copy_from_slice(&index_offset.to_le_bytes());
    h
}

/// Validating `DMNOTRC1` reader with per-chunk random access.
///
/// Construction parses and cross-checks the header and the whole chunk
/// index (alignment, contiguity, event totals, raw record sizing) before
/// any payload is touched; [`TraceReader::read_chunk_into`] then verifies
/// each chunk's digest as it decodes. Memory use is one chunk's payload
/// (`scratch`) plus the decoded events the caller asked for.
#[derive(Debug)]
pub struct TraceReader<R: Read + Seek> {
    src: R,
    events: u64,
    chunk_events: u32,
    codec: Codec,
    index: Vec<ChunkMeta>,
    scratch: Vec<u8>,
    peak_scratch: u64,
}

impl TraceReader<BufReader<File>> {
    /// Opens and validates a trace file.
    ///
    /// # Errors
    ///
    /// Any [`TraceFileError`]: I/O, malformed header, malformed index.
    pub fn open(path: &Path) -> Result<Self, TraceFileError> {
        let file = File::open(path)?;
        TraceReader::new(BufReader::new(file))
    }
}

impl<R: Read + Seek> TraceReader<R> {
    /// Wraps any seekable source, validating header and chunk index.
    ///
    /// # Errors
    ///
    /// Any [`TraceFileError`]: I/O, malformed header, malformed index.
    pub fn new(mut src: R) -> Result<Self, TraceFileError> {
        let file_len = src.seek(SeekFrom::End(0))?;
        src.seek(SeekFrom::Start(0))?;
        if file_len >= 8 {
            let mut magic = [0u8; 8];
            src.read_exact(&mut magic)?;
            if magic != TRACE_MAGIC {
                return Err(TraceFileError::BadMagic { found: magic });
            }
        }
        if file_len < HEADER_BYTES {
            return Err(TraceFileError::TruncatedHeader { len: file_len });
        }
        let mut rest = [0u8; (HEADER_BYTES - 8) as usize];
        src.read_exact(&mut rest)?;
        let version = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes"));
        if version != TRACE_VERSION {
            return Err(TraceFileError::UnsupportedVersion { version });
        }
        let record_bytes = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if record_bytes as usize != RECORD_BYTES {
            return Err(TraceFileError::BadHeader {
                detail: format!("record_bytes is {record_bytes}, expected {RECORD_BYTES}"),
            });
        }
        let events = u64::from_le_bytes(rest[8..16].try_into().expect("8 bytes"));
        let chunk_events = u32::from_le_bytes(rest[16..20].try_into().expect("4 bytes"));
        if chunk_events == 0 {
            return Err(TraceFileError::BadHeader {
                detail: "chunk_events is zero".into(),
            });
        }
        let codec_raw = u32::from_le_bytes(rest[20..24].try_into().expect("4 bytes"));
        let codec = Codec::from_raw(codec_raw).ok_or(TraceFileError::BadHeader {
            detail: format!("unknown codec {codec_raw}"),
        })?;
        let index_offset = u64::from_le_bytes(rest[24..32].try_into().expect("8 bytes"));
        let chunks = events.div_ceil(u64::from(chunk_events));
        if index_offset < HEADER_BYTES || index_offset > file_len {
            return Err(TraceFileError::BadIndex {
                detail: format!(
                    "index offset {index_offset} outside file (len {file_len}); unfinished writer?"
                ),
            });
        }
        let index_bytes = file_len - index_offset;
        if index_bytes != chunks * INDEX_ENTRY_BYTES {
            return Err(TraceFileError::BadIndex {
                detail: format!(
                    "misaligned index: {index_bytes} bytes after the index offset, but {chunks} chunks need {}",
                    chunks * INDEX_ENTRY_BYTES
                ),
            });
        }
        src.seek(SeekFrom::Start(index_offset))?;
        let mut index = Vec::with_capacity(chunks as usize);
        let mut expected_offset = HEADER_BYTES;
        let mut total_events = 0u64;
        for chunk in 0..chunks as usize {
            let mut entry = [0u8; INDEX_ENTRY_BYTES as usize];
            src.read_exact(&mut entry)?;
            let offset = u64::from_le_bytes(entry[0..8].try_into().expect("8 bytes"));
            let byte_len = u64::from_le_bytes(entry[8..16].try_into().expect("8 bytes"));
            let chunk_ev = u32::from_le_bytes(entry[16..20].try_into().expect("4 bytes"));
            let digest = u64::from_le_bytes(entry[24..32].try_into().expect("8 bytes"));
            if offset != expected_offset {
                return Err(TraceFileError::BadIndex {
                    detail: format!(
                        "chunk {chunk} starts at {offset}, expected {expected_offset} (chunks must be contiguous)"
                    ),
                });
            }
            if offset + byte_len > index_offset {
                return Err(TraceFileError::BadIndex {
                    detail: format!("chunk {chunk} payload overruns the index"),
                });
            }
            let is_last = chunk as u64 == chunks - 1;
            let expected_events = if is_last {
                events - u64::from(chunk_events) * (chunks - 1)
            } else {
                u64::from(chunk_events)
            };
            if u64::from(chunk_ev) != expected_events {
                return Err(TraceFileError::BadIndex {
                    detail: format!(
                        "chunk {chunk} claims {chunk_ev} events, expected {expected_events}"
                    ),
                });
            }
            if codec == Codec::Raw && byte_len != u64::from(chunk_ev) * RECORD_BYTES as u64 {
                return Err(TraceFileError::TornRecord { chunk, byte_len });
            }
            total_events += u64::from(chunk_ev);
            expected_offset = offset + byte_len;
            index.push(ChunkMeta {
                offset,
                byte_len,
                events: chunk_ev,
                digest,
            });
        }
        if expected_offset != index_offset {
            return Err(TraceFileError::BadIndex {
                detail: format!(
                    "payload ends at {expected_offset} but index starts at {index_offset}"
                ),
            });
        }
        debug_assert_eq!(total_events, events);
        Ok(TraceReader {
            src,
            events,
            chunk_events,
            codec,
            index,
            scratch: Vec::new(),
            peak_scratch: 0,
        })
    }

    /// Total events in the trace.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Chunk granularity the file was written with.
    pub fn chunk_events(&self) -> u32 {
        self.chunk_events
    }

    /// Payload codec.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.index.len()
    }

    /// Event count of chunk `idx`.
    pub fn chunk_len(&self, idx: usize) -> u32 {
        self.index[idx].events
    }

    /// Encoded byte length of chunk `idx`.
    pub fn chunk_bytes(&self, idx: usize) -> u64 {
        self.index[idx].byte_len
    }

    /// Total payload bytes (all encoded chunks).
    pub fn payload_bytes(&self) -> u64 {
        self.index.iter().map(|m| m.byte_len).sum()
    }

    /// Peak bytes of decode-side working memory used so far: the encoded
    /// payload scratch buffer plus the codec's dictionary/grammar
    /// temporaries. Feeds the [`crate::stream::EventSource`] resident-byte
    /// accounting.
    pub fn peak_scratch_bytes(&self) -> u64 {
        self.peak_scratch
    }

    /// Decodes chunk `idx` into `out` (cleared first), verifying its digest.
    ///
    /// # Errors
    ///
    /// I/O failures, malformed records or grammars, digest mismatches.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= chunk_count()`.
    pub fn read_chunk_into(
        &mut self,
        idx: usize,
        out: &mut Vec<AccessEvent>,
    ) -> Result<(), TraceFileError> {
        let meta = self.index[idx];
        self.src.seek(SeekFrom::Start(meta.offset))?;
        self.scratch.clear();
        self.scratch.resize(meta.byte_len as usize, 0);
        self.src.read_exact(&mut self.scratch)?;
        out.clear();
        let mut aux_bytes = 0u64;
        let actual = match self.codec {
            Codec::Raw => {
                out.reserve(meta.events as usize);
                let mut h = FNV_BASIS;
                for (i, rec) in self.scratch.chunks_exact(RECORD_BYTES).enumerate() {
                    let rec: &[u8; RECORD_BYTES] = rec.try_into().expect("exact chunks");
                    match decode_record(rec) {
                        Ok(ev) => out.push(ev),
                        Err(detail) => {
                            return Err(TraceFileError::BadRecord {
                                chunk: idx,
                                detail: format!("record {i}: {detail}"),
                            })
                        }
                    }
                    h = fnv_bytes(h, rec);
                }
                h
            }
            Codec::Sequitur => {
                let (events, aux) = compress::decode_chunk(&self.scratch, meta.events, idx)?;
                aux_bytes = aux + (events.capacity() * RECORD_BYTES) as u64;
                let digest = digest_events(&events);
                out.extend_from_slice(&events);
                digest
            }
        };
        self.peak_scratch = self
            .peak_scratch
            .max(self.scratch.capacity() as u64 + aux_bytes);
        if actual != meta.digest {
            return Err(TraceFileError::DigestMismatch {
                chunk: idx,
                expected: meta.digest,
                actual,
            });
        }
        Ok(())
    }

    /// Decodes the whole trace (test/tool convenience — materializes
    /// everything, defeating the point of streaming).
    ///
    /// # Errors
    ///
    /// Any per-chunk decode error.
    pub fn read_all(&mut self) -> Result<Vec<AccessEvent>, TraceFileError> {
        let mut all = Vec::with_capacity(self.events as usize);
        let mut chunk = Vec::new();
        for idx in 0..self.chunk_count() {
            self.read_chunk_into(idx, &mut chunk)?;
            all.extend_from_slice(&chunk);
        }
        Ok(all)
    }
}

/// Writes `events` to `path` in one call (tool convenience).
///
/// # Errors
///
/// Any [`TraceFileError`] from the writer.
pub fn write_trace_file(
    path: &Path,
    events: &[AccessEvent],
    chunk_events: u32,
    codec: Codec,
) -> Result<TraceSummary, TraceFileError> {
    let mut w = TraceWriter::create(path, chunk_events, codec)?;
    w.write_events(events)?;
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::catalog;
    use std::io::Cursor;

    fn sample(n: usize) -> Vec<AccessEvent> {
        catalog::oltp().generator(11).take(n).collect()
    }

    fn write_to_vec(events: &[AccessEvent], chunk_events: u32, codec: Codec) -> Vec<u8> {
        let mut buf = Cursor::new(Vec::new());
        let mut w = TraceWriter::new(&mut buf, chunk_events, codec).unwrap();
        w.write_events(events).unwrap();
        let summary = w.finish().unwrap();
        assert_eq!(summary.events, events.len() as u64);
        buf.into_inner()
    }

    #[test]
    fn record_encoding_round_trips() {
        for ev in sample(300) {
            let mut rec = [0u8; RECORD_BYTES];
            encode_record(&ev, &mut rec);
            assert_eq!(decode_record(&rec).unwrap(), ev);
        }
    }

    #[test]
    fn raw_round_trip_including_non_divisor_chunks() {
        let events = sample(1000);
        for chunk_events in [1u32, 7, 256, 1000, 4096] {
            let bytes = write_to_vec(&events, chunk_events, Codec::Raw);
            let mut r = TraceReader::new(Cursor::new(bytes)).unwrap();
            assert_eq!(r.events(), 1000);
            assert_eq!(r.chunk_count(), 1000usize.div_ceil(chunk_events as usize));
            assert_eq!(r.read_all().unwrap(), events);
        }
    }

    #[test]
    fn sequitur_round_trip() {
        let events = sample(1000);
        for chunk_events in [37u32, 512, 2048] {
            let bytes = write_to_vec(&events, chunk_events, Codec::Sequitur);
            let mut r = TraceReader::new(Cursor::new(bytes)).unwrap();
            assert_eq!(r.codec(), Codec::Sequitur);
            assert_eq!(r.read_all().unwrap(), events);
        }
    }

    #[test]
    fn empty_trace_round_trips() {
        let bytes = write_to_vec(&[], 64, Codec::Raw);
        let mut r = TraceReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(r.events(), 0);
        assert_eq!(r.chunk_count(), 0);
        assert!(r.read_all().unwrap().is_empty());
    }

    #[test]
    fn unfinished_file_is_rejected() {
        let events = sample(100);
        let mut buf = Cursor::new(Vec::new());
        let mut w = TraceWriter::new(&mut buf, 32, Codec::Raw).unwrap();
        w.write_events(&events).unwrap();
        drop(w); // no finish(): header still zero-stamped
        let err = TraceReader::new(Cursor::new(buf.into_inner())).unwrap_err();
        assert!(matches!(err, TraceFileError::BadIndex { .. }), "{err}");
    }

    #[test]
    fn flipped_payload_byte_fails_digest() {
        let events = sample(200);
        let mut bytes = write_to_vec(&events, 64, Codec::Raw);
        bytes[HEADER_BYTES as usize + 3] ^= 0x40; // inside chunk 0's pc field
        let mut r = TraceReader::new(Cursor::new(bytes)).unwrap();
        let err = r.read_all().unwrap_err();
        assert!(
            matches!(err, TraceFileError::DigestMismatch { chunk: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn digest_is_codec_independent() {
        let events = sample(500);
        let raw = write_to_vec(&events, 128, Codec::Raw);
        let seq = write_to_vec(&events, 128, Codec::Sequitur);
        let raw_r = TraceReader::new(Cursor::new(raw)).unwrap();
        let seq_r = TraceReader::new(Cursor::new(seq)).unwrap();
        for idx in 0..raw_r.chunk_count() {
            assert_eq!(raw_r.index[idx].digest, seq_r.index[idx].digest);
        }
    }
}
