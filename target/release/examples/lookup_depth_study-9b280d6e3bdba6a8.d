/root/repo/target/release/examples/lookup_depth_study-9b280d6e3bdba6a8.d: examples/lookup_depth_study.rs

/root/repo/target/release/examples/lookup_depth_study-9b280d6e3bdba6a8: examples/lookup_depth_study.rs

examples/lookup_depth_study.rs:
