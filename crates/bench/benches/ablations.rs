//! Ablation benches for the design choices DESIGN.md calls out. Each
//! bench prints the metric being ablated (coverage / traffic) before
//! timing, so `cargo bench` doubles as an ablation report.

use domino::{Domino, DominoConfig, EitConfig, NaiveDomino};
use domino_bench::Harness;
use domino_sim::{run_coverage, SystemConfig};
use domino_trace::workload::catalog;
use std::hint::black_box;

const EVENTS: usize = 40_000;

fn trace() -> Vec<domino_trace::event::AccessEvent> {
    catalog::oltp().generator(42).take(EVENTS).collect()
}

fn run(
    cfg: DominoConfig,
    trace: &[domino_trace::event::AccessEvent],
) -> domino_sim::CoverageReport {
    let system = SystemConfig::paper();
    let mut p = Domino::new(cfg);
    run_coverage(&system, trace, &mut p)
}

/// Entries per super-entry (paper: 3).
fn ablation_eit_entries(h: &mut Harness, trace: &[domino_trace::event::AccessEvent]) {
    for entries in [1usize, 2, 3, 6] {
        let cfg = DominoConfig {
            eit: EitConfig {
                entries_per_super: entries,
                ..EitConfig::default()
            },
            ..DominoConfig::default()
        };
        let r = run(cfg, trace);
        println!(
            "eit entries/super={entries}: coverage {:.1}%, overpred {:.1}%",
            r.coverage() * 100.0,
            r.overprediction_rate() * 100.0
        );
        h.bench(
            &format!("eit_entries/entries_{entries}"),
            EVENTS as u64,
            || black_box(run(cfg, trace)),
        );
    }
}

/// Metadata update sampling probability (paper: 12.5 %).
fn ablation_sampling(h: &mut Harness, trace: &[domino_trace::event::AccessEvent]) {
    for (label, p) in [
        ("3pct", 0.03125),
        ("12.5pct", 0.125),
        ("50pct", 0.5),
        ("100pct", 1.0),
    ] {
        let cfg = DominoConfig {
            sampling_probability: p,
            ..DominoConfig::default()
        };
        let r = run(cfg, trace);
        println!(
            "sampling={label}: coverage {:.1}%, metadata writes {} blocks",
            r.coverage() * 100.0,
            r.meta_write_blocks
        );
        h.bench(&format!("sampling/{label}"), EVENTS as u64, || {
            black_box(run(cfg, trace))
        });
    }
}

/// Number of active streams (paper: 4).
fn ablation_streams(h: &mut Harness, trace: &[domino_trace::event::AccessEvent]) {
    for streams in [1usize, 2, 4, 8] {
        let cfg = DominoConfig {
            max_streams: streams,
            ..DominoConfig::default()
        };
        let r = run(cfg, trace);
        println!("streams={streams}: coverage {:.1}%", r.coverage() * 100.0);
        h.bench(&format!("streams/streams_{streams}"), EVENTS as u64, || {
            black_box(run(cfg, trace))
        });
    }
}

/// Stream-end detection on/off.
fn ablation_stream_end(h: &mut Harness, trace: &[domino_trace::event::AccessEvent]) {
    for (label, on) in [("on", true), ("off", false)] {
        let cfg = DominoConfig {
            stream_end_detection: on,
            ..DominoConfig::default()
        };
        let r = run(cfg, trace);
        println!(
            "stream_end={label}: coverage {:.1}%, overpred {:.1}%",
            r.coverage() * 100.0,
            r.overprediction_rate() * 100.0
        );
        h.bench(&format!("stream_end/{label}"), EVENTS as u64, || {
            black_box(run(cfg, trace))
        });
    }
}

/// Practical EIT design versus the naive two-index-table strawman
/// (paper §III-A): same lookup semantics, different metadata cost.
fn ablation_lookup_design(h: &mut Harness, trace: &[domino_trace::event::AccessEvent]) {
    let system = SystemConfig::paper();
    let practical = run(DominoConfig::default(), trace);
    let mut naive = NaiveDomino::new(DominoConfig::default());
    let naive_r = run_coverage(&system, trace, &mut naive);
    println!(
        "practical EIT : coverage {:.1}%, metadata reads {}",
        practical.coverage() * 100.0,
        practical.meta_read_blocks
    );
    println!(
        "naive two-IT  : coverage {:.1}%, metadata reads {}",
        naive_r.coverage() * 100.0,
        naive_r.meta_read_blocks
    );
    h.bench("lookup_design/practical", EVENTS as u64, || {
        black_box(run(DominoConfig::default(), trace))
    });
    h.bench("lookup_design/naive_two_it", EVENTS as u64, || {
        let mut p = NaiveDomino::new(DominoConfig::default());
        black_box(run_coverage(&system, trace, &mut p))
    });
}

/// Stream replacement policy: the paper's round-robin versus LRU.
fn ablation_stream_replacement(h: &mut Harness, trace: &[domino_trace::event::AccessEvent]) {
    use domino_mem::streams::ReplacePolicy;
    for (label, policy) in [
        ("round_robin", ReplacePolicy::RoundRobin),
        ("lru", ReplacePolicy::Lru),
    ] {
        let cfg = DominoConfig {
            stream_replacement: policy,
            ..DominoConfig::default()
        };
        let r = run(cfg, trace);
        println!(
            "stream_replacement={label}: coverage {:.1}%, overpred {:.1}%",
            r.coverage() * 100.0,
            r.overprediction_rate() * 100.0
        );
        h.bench(
            &format!("stream_replacement/{label}"),
            EVENTS as u64,
            || black_box(run(cfg, trace)),
        );
    }
}

/// Feedback throttling (extension): fixed-degree Domino versus the
/// accuracy-adaptive wrapper on an overprediction-prone workload.
fn ablation_adaptive(h: &mut Harness) {
    use domino_prefetchers::AdaptiveDegree;
    let system = SystemConfig::paper();
    let sat: Vec<_> = catalog::sat_solver().generator(42).take(EVENTS).collect();
    let fixed = {
        let mut p = Domino::new(DominoConfig::default());
        run_coverage(&system, &sat, &mut p)
    };
    let adaptive = {
        let mut p = AdaptiveDegree::new(Domino::new(DominoConfig::default()));
        run_coverage(&system, &sat, &mut p)
    };
    println!(
        "fixed Domino   : coverage {:.1}%, overpred {:.1}%",
        fixed.coverage() * 100.0,
        fixed.overprediction_rate() * 100.0
    );
    println!(
        "adaptive Domino: coverage {:.1}%, overpred {:.1}%",
        adaptive.coverage() * 100.0,
        adaptive.overprediction_rate() * 100.0
    );
    h.bench("adaptive/fixed", EVENTS as u64, || {
        let mut p = Domino::new(DominoConfig::default());
        black_box(run_coverage(&system, &sat, &mut p))
    });
    h.bench("adaptive/adaptive", EVENTS as u64, || {
        let mut p = AdaptiveDegree::new(Domino::new(DominoConfig::default()));
        black_box(run_coverage(&system, &sat, &mut p))
    });
}

fn main() {
    let trace = trace();
    let mut h = Harness::new("ablations");
    ablation_eit_entries(&mut h, &trace);
    ablation_sampling(&mut h, &trace);
    ablation_streams(&mut h, &trace);
    ablation_stream_end(&mut h, &trace);
    ablation_stream_replacement(&mut h, &trace);
    ablation_adaptive(&mut h);
    ablation_lookup_design(&mut h, &trace);
}
