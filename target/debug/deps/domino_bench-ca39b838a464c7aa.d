/root/repo/target/debug/deps/domino_bench-ca39b838a464c7aa.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/domino_bench-ca39b838a464c7aa: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
