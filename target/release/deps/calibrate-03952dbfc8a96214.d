/root/repo/target/release/deps/calibrate-03952dbfc8a96214.d: crates/sim/src/bin/calibrate.rs Cargo.toml

/root/repo/target/release/deps/libcalibrate-03952dbfc8a96214.rmeta: crates/sim/src/bin/calibrate.rs Cargo.toml

crates/sim/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
