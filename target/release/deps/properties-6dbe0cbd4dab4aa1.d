/root/repo/target/release/deps/properties-6dbe0cbd4dab4aa1.d: crates/sequitur/tests/properties.rs

/root/repo/target/release/deps/properties-6dbe0cbd4dab4aa1: crates/sequitur/tests/properties.rs

crates/sequitur/tests/properties.rs:
