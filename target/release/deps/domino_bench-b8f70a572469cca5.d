/root/repo/target/release/deps/domino_bench-b8f70a572469cca5.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libdomino_bench-b8f70a572469cca5.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
