/root/repo/target/debug/examples/bandwidth-6d089c7d88afc8f4.d: examples/bandwidth.rs Cargo.toml

/root/repo/target/debug/examples/libbandwidth-6d089c7d88afc8f4.rmeta: examples/bandwidth.rs Cargo.toml

examples/bandwidth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
