//! Temporal behaviour: segment replay over the document pool.
//!
//! Several traversal *contexts* (concurrent requests) are active at once;
//! each replays a contiguous segment of a document. The interleaving of
//! contexts is what a per-core miss stream actually looks like in a server:
//! temporal streams recur, but chopped and shuffled by concurrency — the
//! paper's prefetchers must cope with exactly this.

use crate::addr::Pc;
use crate::event::AccessEvent;
use crate::rng::SimRng;

use super::document::DocumentPool;
use super::spec::TemporalParams;

/// Base of the PC region used by temporal loops.
const TEMPORAL_PC_BASE: u64 = 0x40_0000;

#[derive(Debug, Clone)]
struct Context {
    doc: usize,
    pos: usize,
    remaining: usize,
}

/// Generator of temporal (document-replay) accesses.
#[derive(Debug)]
pub struct TemporalGen {
    params: TemporalParams,
    pool: DocumentPool,
    contexts: Vec<Context>,
    active: usize,
    rng: SimRng,
}

impl TemporalGen {
    /// Builds the generator (and its document pool) from `params`.
    pub fn new(params: &TemporalParams, mut rng: SimRng) -> Self {
        let pool = DocumentPool::new(params, &mut rng);
        let mut gen = TemporalGen {
            params: params.clone(),
            pool,
            contexts: Vec::new(),
            active: 0,
            rng,
        };
        for _ in 0..gen.params.concurrency.max(1) {
            let ctx = gen.fresh_context();
            gen.contexts.push(ctx);
        }
        gen
    }

    fn fresh_context(&mut self) -> Context {
        let u = self.rng.unit();
        let doc = ((u.powf(self.params.doc_skew.max(1e-6)) * self.pool.len() as f64) as usize)
            .min(self.pool.len() - 1);
        let doc_len = self.pool.doc_len(doc);
        let len = self.params.segment.sample(&mut self.rng).min(doc_len);
        let start = self.rng.index(doc_len - len + 1);
        // Dataset churn happens between traversals; applying it at segment
        // start makes recorded history stale exactly once per replay.
        self.pool
            .mutate_segment(doc, start, len, self.params.mutation_prob, &mut self.rng);
        Context {
            doc,
            pos: start,
            remaining: len,
        }
    }

    /// PC of the memory instruction at `(doc, pos)`: documents are bound to
    /// one of `pc_groups` traversal loops, each with `loop_pcs` memory
    /// instructions visited round-robin. The same loop serves many
    /// documents, which is what breaks PC-localized correlation.
    fn pc_for(&self, doc: usize, pos: usize) -> Pc {
        let group = doc % self.params.pc_groups.max(1);
        let slot = pos % self.params.loop_pcs.max(1);
        Pc::new(TEMPORAL_PC_BASE + (group as u64) * 0x100 + (slot as u64) * 4)
    }

    /// Emits the next temporal access, advancing or replacing contexts as
    /// segments end, deviate, or switch.
    pub fn step(&mut self, top_rng: &mut SimRng) -> AccessEvent {
        if self.rng.chance(self.params.switch_prob) && self.contexts.len() > 1 {
            self.active = self.rng.index(self.contexts.len());
        }
        if self.contexts[self.active].remaining == 0 || self.rng.chance(self.params.deviate_prob) {
            self.contexts[self.active] = self.fresh_context();
        }
        let (doc, pos) = {
            let ctx = &self.contexts[self.active];
            (ctx.doc, ctx.pos)
        };
        let line = self.pool.line(doc, pos);
        let pc = self.pc_for(doc, pos);
        let dependent = top_rng.chance(self.params.dependent_frac);
        let ctx = &mut self.contexts[self.active];
        ctx.pos += 1;
        ctx.remaining -= 1;
        let mut ev = AccessEvent::read(pc, line.to_addr());
        ev.dependent = dependent;
        ev
    }

    /// The underlying document pool (for analyses and tests).
    pub fn pool(&self) -> &DocumentPool {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn gen(params: TemporalParams) -> TemporalGen {
        TemporalGen::new(&params, SimRng::seed(42))
    }

    #[test]
    fn emits_addresses_from_pool() {
        let mut g = gen(TemporalParams {
            num_docs: 4,
            doc_len: 32,
            mutation_prob: 0.0,
            ..TemporalParams::default()
        });
        let mut top = SimRng::seed(1);
        let mut lines = std::collections::HashSet::new();
        for d in 0..g.pool().len() {
            for p in 0..g.pool().doc_len(d) {
                lines.insert(g.pool().line(d, p));
            }
        }
        for _ in 0..500 {
            let ev = g.step(&mut top);
            assert!(lines.contains(&ev.line()), "line outside pool");
        }
    }

    #[test]
    fn sequences_repeat_without_mutation() {
        // With a single context, no deviation and no mutation, consecutive
        // pairs must recur: the hallmark of temporal correlation.
        let mut g = gen(TemporalParams {
            num_docs: 4,
            doc_len: 64,
            concurrency: 1,
            switch_prob: 0.0,
            deviate_prob: 0.0,
            mutation_prob: 0.0,
            junction_frac: 0.0,
            ..TemporalParams::default()
        });
        let mut top = SimRng::seed(9);
        let trace: Vec<_> = (0..20_000).map(|_| g.step(&mut top).line()).collect();
        let mut pair_counts: HashMap<(u64, u64), u32> = HashMap::new();
        for w in trace.windows(2) {
            *pair_counts.entry((w[0].raw(), w[1].raw())).or_default() += 1;
        }
        // Weight by occurrences: segment-boundary pairs are unique noise,
        // but the bulk of pair *occurrences* must be recurring document
        // transitions.
        let repeated_occurrences: u64 = pair_counts
            .values()
            .filter(|&&c| c > 1)
            .map(|&c| u64::from(c))
            .sum();
        let frac = repeated_occurrences as f64 / (trace.len() - 1) as f64;
        assert!(frac > 0.5, "expected repeating pairs, got {frac}");
    }

    #[test]
    fn pcs_come_from_loop_bodies() {
        let params = TemporalParams {
            loop_pcs: 4,
            pc_groups: 2,
            ..TemporalParams::default()
        };
        let mut g = gen(params);
        let mut top = SimRng::seed(5);
        let mut pcs = std::collections::HashSet::new();
        for _ in 0..2000 {
            pcs.insert(g.step(&mut top).pc);
        }
        // At most pc_groups * loop_pcs distinct PCs.
        assert!(pcs.len() <= 8, "expected at most 8 PCs, saw {}", pcs.len());
        assert!(pcs.len() >= 4, "expected several PCs, saw {}", pcs.len());
    }

    #[test]
    fn dependent_fraction_tracks_parameter() {
        let mut g = gen(TemporalParams {
            dependent_frac: 0.8,
            ..TemporalParams::default()
        });
        let mut top = SimRng::seed(3);
        let n = 10_000;
        let dep = (0..n).filter(|_| g.step(&mut top).dependent).count();
        let frac = dep as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.05, "dependent fraction {frac}");
    }
}
