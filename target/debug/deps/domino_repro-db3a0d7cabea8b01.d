/root/repo/target/debug/deps/domino_repro-db3a0d7cabea8b01.d: src/lib.rs

/root/repo/target/debug/deps/libdomino_repro-db3a0d7cabea8b01.rlib: src/lib.rs

/root/repo/target/debug/deps/libdomino_repro-db3a0d7cabea8b01.rmeta: src/lib.rs

src/lib.rs:
