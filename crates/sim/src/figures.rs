//! Runners regenerating every table and figure of the paper's evaluation.
//!
//! Each `figNN` function runs the corresponding experiment at a given
//! [`Scale`] and returns one or more [`FigureTable`]s that print the same
//! rows/series the paper plots. `examples/figures.rs` runs them all at
//! full scale; the benches run them at reduced scale.
//!
//! Every runner submits its independent (workload × prefetcher ×
//! parameter) cells to the parallel executor in [`crate::exec`] and
//! assembles rows from the deterministically-ordered results, with the
//! per-(spec, seed, events) trace generated once in
//! [`crate::trace_cache`] and shared across cells.

use domino_prefetchers::LookupAnalyzer;
use domino_sequitur::oracle::{oracle_replay, OracleConfig};
use domino_trace::workload::{catalog, WorkloadSpec};

use crate::config::SystemConfig;
use crate::engine::{run_coverage_observed, run_coverage_warmed, CoverageReport};
use crate::exec;
use crate::observe;
use crate::report::FigureTable;
use crate::roster::System;
use crate::timing::{run_timing_observed, run_timing_warmed, TimingReport};
use crate::trace_cache::{shared_miss_sequence, shared_trace};

/// A figure cell: one independent run, boxed for the sweep executor.
type Job<T> = Box<dyn FnOnce() -> T + Send>;

/// How much trace to simulate per workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Accesses generated per workload.
    pub events: usize,
    /// Workload generator seed.
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            events: 300_000,
            seed: 42,
        }
    }
}

impl Scale {
    /// A small scale for benches and smoke tests.
    pub fn small() -> Self {
        Scale {
            events: 60_000,
            seed: 42,
        }
    }

    /// Warmup prefix excluded from measurement (the paper measures from
    /// warmed checkpoints, §IV-C): the first quarter of the trace.
    pub fn warmup(&self) -> usize {
        self.events / 4
    }
}

fn coverage_of(
    system: &SystemConfig,
    spec: &WorkloadSpec,
    scale: &Scale,
    sys: System,
    degree: usize,
) -> CoverageReport {
    let trace = shared_trace(spec, scale.events, scale.seed);
    let mut p = sys.build(degree);
    run_coverage_warmed(system, &trace, p.as_mut(), scale.warmup())
}

fn timing_of(
    system: &SystemConfig,
    spec: &WorkloadSpec,
    scale: &Scale,
    sys: System,
    degree: usize,
) -> TimingReport {
    let trace = shared_trace(spec, scale.events, scale.seed);
    let mut p = sys.build(degree);
    run_timing_warmed(system, &trace, p.as_mut(), scale.warmup())
}

/// Labels a finished telemetry report with its cell identity and the
/// prefetcher's end-of-run counters, and deposits it in the collector.
/// A flight-recorder trace, if one was enabled, is detached first and
/// deposited separately — the epoch report is only emitted when epoch
/// telemetry itself is on, so trace-only runs produce no empty JSON.
fn deposit_report(
    mut tel: domino_telemetry::Telemetry,
    spec: &WorkloadSpec,
    scale: &Scale,
    sys: System,
    kind: &str,
    prefetcher: &dyn domino_mem::interface::Prefetcher,
) {
    if let Some(recorder) = tel.take_tracer() {
        let meta = domino_telemetry::TraceMeta {
            workload: spec.name.clone(),
            component: sys.label(),
            kind: kind.to_string(),
            events: scale.events as u64,
            seed: scale.seed,
            warmup: scale.warmup() as u64,
        };
        observe::record_trace(meta, recorder);
    }
    if !tel.is_on() {
        return;
    }
    // The engines flush the partial tail themselves, so the finish
    // closure never runs.
    let mut report = tel.finish(|_| {});
    report.workload = spec.name.clone();
    report.component = sys.label();
    report.kind = kind.to_string();
    report.events = scale.events as u64;
    report.seed = scale.seed;
    report.warmup = scale.warmup() as u64;
    prefetcher.emit_counters(&mut |name: &str, value: u64| {
        report.counters.push((name.to_string(), value));
    });
    observe::record(report);
}

/// [`coverage_of`] that also collects a telemetry report and/or a
/// flight-recorder trace when observation is configured (see
/// [`crate::observe`]).
fn coverage_of_observed(
    system: &SystemConfig,
    spec: &WorkloadSpec,
    scale: &Scale,
    sys: System,
    degree: usize,
) -> CoverageReport {
    if !observe::observing() {
        return coverage_of(system, spec, scale, sys, degree);
    }
    let trace = shared_trace(spec, scale.events, scale.seed);
    let mut p = sys.build(degree);
    let mut tel = observe::telemetry();
    let r = run_coverage_observed(system, &trace, p.as_mut(), scale.warmup(), &mut tel);
    deposit_report(tel, spec, scale, sys, "coverage", p.as_ref());
    r
}

/// [`timing_of`] that also collects a telemetry report and/or a
/// flight-recorder trace when observation is configured.
fn timing_of_observed(
    system: &SystemConfig,
    spec: &WorkloadSpec,
    scale: &Scale,
    sys: System,
    degree: usize,
) -> TimingReport {
    if !observe::observing() {
        return timing_of(system, spec, scale, sys, degree);
    }
    let trace = shared_trace(spec, scale.events, scale.seed);
    let mut p = sys.build(degree);
    let mut tel = observe::telemetry();
    let r = run_timing_observed(system, &trace, p.as_mut(), scale.warmup(), &mut tel);
    deposit_report(tel, spec, scale, sys, "timing", p.as_ref());
    r
}

fn oracle_of(
    system: &SystemConfig,
    spec: &WorkloadSpec,
    scale: &Scale,
) -> domino_sequitur::OracleReport {
    let seq = shared_miss_sequence(system, spec, scale.events, scale.seed);
    // The warmup is defined in accesses; misses are the large majority of
    // accesses in these models, so scale the prefix by the miss ratio.
    let warmup = (scale.warmup() as f64 * seq.len() as f64 / scale.events.max(1) as f64) as usize;
    oracle_replay(
        &seq,
        &OracleConfig {
            warmup,
            ..OracleConfig::default()
        },
    )
}

/// Figure 1 — read-miss coverage of STMS and ISB (unlimited storage)
/// versus the Sequitur-oracle opportunity, prefetch degree 1.
pub fn fig01(scale: &Scale) -> FigureTable {
    let system = SystemConfig::paper();
    let scale = *scale;
    let mut t = FigureTable::new(
        "Figure 1 — miss coverage vs temporal opportunity (degree 1)",
        "workload",
        vec!["ISB".into(), "STMS".into(), "Opportunity".into()],
    );
    t.percent = true;
    let specs = catalog::all();
    let mut jobs: Vec<Job<f64>> = Vec::new();
    for spec in &specs {
        for sys in [System::Isb, System::Stms] {
            let spec = spec.clone();
            jobs.push(Box::new(move || {
                coverage_of(&system, &spec, &scale, sys, 1).coverage()
            }));
        }
        let spec = spec.clone();
        jobs.push(Box::new(move || {
            oracle_of(&system, &spec, &scale).coverage()
        }));
    }
    let results = exec::sweep(jobs);
    for (spec, row) in specs.iter().zip(results.chunks(3)) {
        t.push_row(spec.name.clone(), row.to_vec());
    }
    t.push_mean_row("Average");
    t
}

/// Figure 2 — average stream length with STMS, Digram, and the Sequitur
/// oracle ("a stream is the sequence of consecutive correct prefetches").
pub fn fig02(scale: &Scale) -> FigureTable {
    let system = SystemConfig::paper();
    let scale = *scale;
    let mut t = FigureTable::new(
        "Figure 2 — average stream length",
        "workload",
        vec!["STMS".into(), "Digram".into(), "Sequitur".into()],
    );
    let specs = catalog::all();
    let mut jobs: Vec<Job<f64>> = Vec::new();
    for spec in &specs {
        for sys in [System::Stms, System::Digram] {
            let spec = spec.clone();
            jobs.push(Box::new(move || {
                coverage_of(&system, &spec, &scale, sys, 1).mean_stream_length()
            }));
        }
        let spec = spec.clone();
        jobs.push(Box::new(move || {
            oracle_of(&system, &spec, &scale).mean_stream_length()
        }));
    }
    let results = exec::sweep(jobs);
    for (spec, row) in specs.iter().zip(results.chunks(3)) {
        t.push_row(spec.name.clone(), row.to_vec());
    }
    t.push_mean_row("Average");
    t
}

fn lookup_stats(
    system: &SystemConfig,
    spec: &WorkloadSpec,
    scale: &Scale,
    max_depth: usize,
) -> domino_prefetchers::LookupDepthStats {
    let seq = shared_miss_sequence(system, spec, scale.events, scale.seed);
    let mut analyzer = LookupAnalyzer::new(max_depth);
    for &v in seq.iter() {
        analyzer.push(domino_trace::addr::LineAddr::new(v));
    }
    analyzer.stats().clone()
}

/// Shared body of Figures 3 and 4: one lookup-depth analysis per
/// workload, fanned across the executor.
fn lookup_depth_table(
    scale: &Scale,
    title: &str,
    extract: fn(&domino_prefetchers::LookupDepthStats) -> Vec<f64>,
) -> FigureTable {
    let system = SystemConfig::paper();
    let scale = *scale;
    let cols: Vec<String> = (1..=5).map(|k| format!("{k}-addr")).collect();
    let mut t = FigureTable::new(title, "workload", cols);
    t.percent = true;
    let specs = catalog::all();
    let jobs: Vec<Job<Vec<f64>>> = specs
        .iter()
        .map(|spec| {
            let spec = spec.clone();
            Box::new(move || extract(&lookup_stats(&system, &spec, &scale, 5))) as Job<Vec<f64>>
        })
        .collect();
    let results = exec::sweep(jobs);
    for (spec, row) in specs.iter().zip(results) {
        t.push_row(spec.name.clone(), row);
    }
    t.push_mean_row("Average");
    t
}

/// Figure 3 — fraction of matching lookups that predict correctly, as a
/// function of lookup depth (1..=5).
pub fn fig03(scale: &Scale) -> FigureTable {
    lookup_depth_table(
        scale,
        "Figure 3 — P(correct | match) by lookup depth",
        |stats| stats.correct_given_match(),
    )
}

/// Figure 4 — fraction of lookups that find a match, by lookup depth.
pub fn fig04(scale: &Scale) -> FigureTable {
    lookup_depth_table(scale, "Figure 4 — P(match) by lookup depth", |stats| {
        stats.match_fractions()
    })
}

/// Figure 5 — coverage and overpredictions of the recursive multi-depth
/// prefetcher for maximum depths 1..=5 (degree 1, unlimited storage).
pub fn fig05(scale: &Scale) -> Vec<FigureTable> {
    let system = SystemConfig::paper();
    let scale = *scale;
    let cols: Vec<String> = (1..=5).map(|k| format!("N={k}")).collect();
    let mut cov = FigureTable::new(
        "Figure 5a — coverage by maximum lookup depth (degree 1)",
        "workload",
        cols.clone(),
    );
    cov.percent = true;
    let mut over = FigureTable::new(
        "Figure 5b — overpredictions by maximum lookup depth (degree 1)",
        "workload",
        cols,
    );
    over.percent = true;
    let specs = catalog::all();
    let mut jobs: Vec<Job<(f64, f64)>> = Vec::new();
    for spec in &specs {
        for n in 1..=5 {
            let spec = spec.clone();
            jobs.push(Box::new(move || {
                let r = coverage_of(&system, &spec, &scale, System::MultiDepth(n), 1);
                (r.coverage(), r.overprediction_rate())
            }));
        }
    }
    let results = exec::sweep(jobs);
    for (spec, cells) in specs.iter().zip(results.chunks(5)) {
        cov.push_row(spec.name.clone(), cells.iter().map(|c| c.0).collect());
        over.push_row(spec.name.clone(), cells.iter().map(|c| c.1).collect());
    }
    cov.push_mean_row("Average");
    over.push_mean_row("Average");
    vec![cov, over]
}

/// Figure 6 — stream-start timeliness: serial metadata round trips (and
/// the implied nanoseconds) before a stream's first prefetch.
pub fn fig06(scale: &Scale) -> FigureTable {
    let system = SystemConfig::paper();
    let scale = *scale;
    let lat = system.memory.latency_ns;
    let mut t = FigureTable::new(
        "Figure 6 — serial metadata round trips before the first prefetch of a stream",
        "workload",
        vec![
            "STMS trips".into(),
            "Domino trips".into(),
            "STMS ns".into(),
            "Domino ns".into(),
        ],
    );
    let specs = catalog::all();
    let mut jobs: Vec<Job<f64>> = Vec::new();
    for spec in &specs {
        for sys in [System::Stms, System::Domino] {
            let spec = spec.clone();
            jobs.push(Box::new(move || {
                coverage_of(&system, &spec, &scale, sys, 4).mean_first_prefetch_trips()
            }));
        }
    }
    let results = exec::sweep(jobs);
    for (spec, cells) in specs.iter().zip(results.chunks(2)) {
        let (stms, dom) = (cells[0], cells[1]);
        t.push_row(spec.name.clone(), vec![stms, dom, stms * lat, dom * lat]);
    }
    t.push_mean_row("Average");
    t
}

/// Shared body of Figures 9 and 10: Domino coverage over a sweep of one
/// storage parameter, every (workload × size) cell run in parallel.
fn domino_size_sweep(
    scale: &Scale,
    title: &str,
    sizes: &[(usize, &str)],
    cfg_of: fn(usize) -> domino::DominoConfig,
) -> FigureTable {
    use domino::Domino;
    let system = SystemConfig::paper();
    let scale = *scale;
    let cols: Vec<String> = sizes.iter().map(|&(_, n)| n.to_string()).collect();
    let mut t = FigureTable::new(title, "workload", cols);
    t.percent = true;
    let specs = catalog::all();
    let mut jobs: Vec<Job<f64>> = Vec::new();
    for spec in &specs {
        for &(size, _) in sizes {
            let spec = spec.clone();
            jobs.push(Box::new(move || {
                let trace = shared_trace(&spec, scale.events, scale.seed);
                let mut p = Domino::new(cfg_of(size));
                run_coverage_warmed(&system, &trace, &mut p, scale.warmup()).coverage()
            }));
        }
    }
    let results = exec::sweep(jobs);
    for (spec, row) in specs.iter().zip(results.chunks(sizes.len())) {
        t.push_row(spec.name.clone(), row.to_vec());
    }
    t.push_mean_row("Average");
    t
}

/// Figure 9 — Domino coverage versus History Table entries (unbounded
/// EIT), degree 4.
pub fn fig09(scale: &Scale) -> FigureTable {
    use domino::DominoConfig;
    let sizes: [(usize, &str); 6] = [
        (1 << 12, "4K"),
        (1 << 14, "16K"),
        (1 << 16, "64K"),
        (1 << 18, "256K"),
        (1 << 20, "1M"),
        (16 << 20, "16M"),
    ];
    domino_size_sweep(
        scale,
        "Figure 9 — Domino coverage vs HT entries (EIT unbounded, degree 4)",
        &sizes,
        |entries| DominoConfig {
            ht_entries: entries,
            eit: domino::EitConfig::unbounded(),
            ..DominoConfig::default()
        },
    )
}

/// Figure 10 — Domino coverage versus EIT rows (HT at its 16 M-entry
/// paper size), degree 4.
pub fn fig10(scale: &Scale) -> FigureTable {
    use domino::{DominoConfig, EitConfig};
    let sizes: [(usize, &str); 6] = [
        (1 << 8, "256"),
        (1 << 10, "1K"),
        (1 << 12, "4K"),
        (1 << 14, "16K"),
        (1 << 16, "64K"),
        (2 << 20, "2M"),
    ];
    domino_size_sweep(
        scale,
        "Figure 10 — Domino coverage vs EIT rows (HT = 16 M entries, degree 4)",
        &sizes,
        |rows| DominoConfig {
            eit: EitConfig {
                rows,
                ..EitConfig::default()
            },
            ..DominoConfig::default()
        },
    )
}

/// Shared body of Figures 11 and 13: coverage and overpredictions for the
/// full roster at a given degree, plus the Sequitur-oracle opportunity.
/// With `collect` set, each roster cell also deposits a telemetry report
/// when an epoch length is configured (Figure 13 is the collection
/// vehicle: it covers every roster prefetcher at the paper's headline
/// degree without extra runs).
fn roster_comparison(
    scale: &Scale,
    degree: usize,
    figure: &str,
    collect: bool,
) -> Vec<FigureTable> {
    let system = SystemConfig::paper();
    let scale = *scale;
    let mut cols: Vec<String> = System::paper_roster().iter().map(|s| s.label()).collect();
    cols.push("Sequitur".into());
    let mut cov = FigureTable::new(
        format!("{figure}a — coverage (degree {degree})"),
        "workload",
        cols.clone(),
    );
    cov.percent = true;
    let mut over = FigureTable::new(
        format!("{figure}b — overpredictions (degree {degree})"),
        "workload",
        cols,
    );
    over.percent = true;
    let specs = catalog::all();
    let roster = System::paper_roster();
    let per_row = roster.len() + 1;
    let mut jobs: Vec<Job<(f64, f64)>> = Vec::new();
    for spec in &specs {
        for sys in roster {
            let spec = spec.clone();
            jobs.push(Box::new(move || {
                let r = if collect {
                    coverage_of_observed(&system, &spec, &scale, sys, degree)
                } else {
                    coverage_of(&system, &spec, &scale, sys, degree)
                };
                (r.coverage(), r.overprediction_rate())
            }));
        }
        let spec = spec.clone();
        jobs.push(Box::new(move || {
            (oracle_of(&system, &spec, &scale).coverage(), f64::NAN)
        }));
    }
    let results = exec::sweep(jobs);
    for (spec, cells) in specs.iter().zip(results.chunks(per_row)) {
        cov.push_row(spec.name.clone(), cells.iter().map(|c| c.0).collect());
        over.push_row(spec.name.clone(), cells.iter().map(|c| c.1).collect());
    }
    cov.push_mean_row("Average");
    over.rows.push("Average".into());
    over.values.push({
        let n = over.values.len();
        let mut means = vec![0.0; over.columns.len()];
        for row in &over.values {
            for (m, v) in means.iter_mut().zip(row) {
                if !v.is_nan() {
                    *m += v;
                }
            }
        }
        for (i, m) in means.iter_mut().enumerate() {
            *m /= n as f64;
            if over.columns[i] == "Sequitur" {
                *m = f64::NAN;
            }
        }
        means
    });
    vec![cov, over]
}

/// Figure 11 — the roster at prefetch degree 1.
pub fn fig11(scale: &Scale) -> Vec<FigureTable> {
    roster_comparison(scale, 1, "Figure 11", false)
}

/// Figure 12 — cumulative histogram of oracle stream lengths.
pub fn fig12(scale: &Scale) -> FigureTable {
    let system = SystemConfig::paper();
    let scale = *scale;
    let bounds = domino_sequitur::histogram::FIG12_BOUNDS;
    let cols: Vec<String> = bounds
        .iter()
        .map(|&b| {
            if b == u64::MAX {
                "128+".into()
            } else {
                format!("≤{b}")
            }
        })
        .collect();
    let mut t = FigureTable::new(
        "Figure 12 — cumulative fraction of streams by length (Sequitur oracle)",
        "workload",
        cols,
    );
    t.percent = true;
    let specs = catalog::all();
    let jobs: Vec<Job<Vec<f64>>> = specs
        .iter()
        .map(|spec| {
            let spec = spec.clone();
            Box::new(move || {
                oracle_of(&system, &spec, &scale)
                    .stream_lengths
                    .cumulative_fractions()
            }) as Job<Vec<f64>>
        })
        .collect();
    let results = exec::sweep(jobs);
    for (spec, row) in specs.iter().zip(results) {
        t.push_row(spec.name.clone(), row);
    }
    t.push_mean_row("Average");
    t
}

/// Figure 13 — the roster at prefetch degree 4. When an epoch length is
/// configured (see [`crate::observe`]), its cells collect the coverage
/// telemetry series for every roster prefetcher.
pub fn fig13(scale: &Scale) -> Vec<FigureTable> {
    roster_comparison(scale, 4, "Figure 13", true)
}

/// Figure 14 — speedup over the no-prefetcher baseline under the interval
/// timing model, degree 4.
pub fn fig14(scale: &Scale) -> FigureTable {
    let system = SystemConfig::paper();
    let scale = *scale;
    let roster = System::paper_roster();
    let cols: Vec<String> = roster.iter().map(|s| s.label()).collect();
    let mut t = FigureTable::new(
        "Figure 14 — speedup over baseline (degree 4)",
        "workload",
        cols,
    );
    let specs = catalog::all();
    let per_row = roster.len() + 1;
    let mut jobs: Vec<Job<TimingReport>> = Vec::new();
    for spec in &specs {
        {
            let spec = spec.clone();
            jobs.push(Box::new(move || {
                timing_of_observed(&system, &spec, &scale, System::Baseline, 1)
            }));
        }
        for sys in roster {
            let spec = spec.clone();
            jobs.push(Box::new(move || {
                timing_of_observed(&system, &spec, &scale, sys, 4)
            }));
        }
    }
    let results = exec::sweep(jobs);
    for (spec, cells) in specs.iter().zip(results.chunks(per_row)) {
        let baseline = &cells[0];
        t.push_row(
            spec.name.clone(),
            cells[1..]
                .iter()
                .map(|r| r.speedup_over(baseline))
                .collect(),
        );
    }
    t.push_gmean_row("GMean");
    t
}

/// Figure 15 — off-chip traffic overhead of STMS, Digram and Domino over
/// the baseline, split into incorrect prefetches, metadata updates and
/// metadata reads (averaged over workloads, degree 4).
pub fn fig15(scale: &Scale) -> FigureTable {
    let system = SystemConfig::paper();
    let scale = *scale;
    let roster = [System::Stms, System::Digram, System::Domino];
    let mut t = FigureTable::new(
        "Figure 15 — off-chip traffic overhead over baseline (degree 4, average of workloads)",
        "prefetcher",
        vec![
            "Incorrect".into(),
            "MetaUpdate".into(),
            "MetaRead".into(),
            "Total".into(),
        ],
    );
    t.percent = true;
    let specs = catalog::all();
    let mut jobs: Vec<Job<(f64, f64, f64)>> = Vec::new();
    for sys in roster {
        for spec in &specs {
            let spec = spec.clone();
            jobs.push(Box::new(move || {
                let r = coverage_of(&system, &spec, &scale, sys, 4);
                let demand = r.demand_bytes() as f64;
                (
                    r.incorrect_prefetch_bytes() as f64 / demand,
                    r.metadata_write_bytes() as f64 / demand,
                    r.metadata_read_bytes() as f64 / demand,
                )
            }));
        }
    }
    let results = exec::sweep(jobs);
    let n = specs.len() as f64;
    for (sys, cells) in roster.iter().zip(results.chunks(specs.len())) {
        let incorrect = cells.iter().map(|c| c.0).sum::<f64>() / n;
        let update = cells.iter().map(|c| c.1).sum::<f64>() / n;
        let read = cells.iter().map(|c| c.2).sum::<f64>() / n;
        t.push_row(
            sys.label(),
            vec![incorrect, update, read, incorrect + update + read],
        );
    }
    t
}

/// §V-D — chip bandwidth utilization on the quad-core platform: four
/// cores of one workload sharing the LLC and channel, baseline versus
/// Domino. The paper reports baseline consumption up to 8 GB/s and
/// Domino utilization between 8.7 % (MapReduce-C) and 32.8 %
/// (Web Apache) of the 37.5 GB/s channel.
pub fn bandwidth_utilization(scale: &Scale) -> FigureTable {
    use crate::multicore::run_homogeneous;
    let system = SystemConfig::paper();
    let scale = *scale;
    let mut t = FigureTable::new(
        "§V-D — chip bandwidth, 4 cores (GB/s and % of 37.5 GB/s peak)",
        "workload",
        vec![
            "Base GB/s".into(),
            "Domino GB/s".into(),
            "Base util".into(),
            "Domino util".into(),
        ],
    );
    // A quarter of the single-core scale per core keeps the total work
    // comparable to the other figures.
    let events = (scale.events / 2).max(10_000);
    let specs = catalog::all();
    let mut jobs: Vec<Job<crate::multicore::MulticoreReport>> = Vec::new();
    for spec in &specs {
        for (sys, degree) in [(System::Baseline, 1), (System::Domino, 4)] {
            let spec = spec.clone();
            jobs.push(Box::new(move || {
                run_homogeneous(&system, &spec, events, scale.seed, sys, degree)
            }));
        }
    }
    let results = exec::sweep(jobs);
    for (spec, cells) in specs.iter().zip(results.chunks(2)) {
        let (base, dom) = (&cells[0], &cells[1]);
        t.push_row(
            spec.name.clone(),
            vec![
                base.bandwidth_gbps(),
                dom.bandwidth_gbps(),
                base.utilization(&system),
                dom.utilization(&system),
            ],
        );
    }
    t.push_mean_row("Average");
    t
}

/// Figure 16 — spatio-temporal prefetching: VLDP, Domino, and the stack
/// of both (degree 4 coverage).
pub fn fig16(scale: &Scale) -> FigureTable {
    let system = SystemConfig::paper();
    let scale = *scale;
    let mut t = FigureTable::new(
        "Figure 16 — spatio-temporal coverage (degree 4)",
        "workload",
        vec!["VLDP".into(), "Domino".into(), "VLDP+Domino".into()],
    );
    t.percent = true;
    let specs = catalog::all();
    let roster = [System::Vldp, System::Domino, System::VldpPlusDomino];
    let mut jobs: Vec<Job<f64>> = Vec::new();
    for spec in &specs {
        for sys in roster {
            let spec = spec.clone();
            jobs.push(Box::new(move || {
                coverage_of(&system, &spec, &scale, sys, 4).coverage()
            }));
        }
    }
    let results = exec::sweep(jobs);
    for (spec, row) in specs.iter().zip(results.chunks(roster.len())) {
        t.push_row(spec.name.clone(), row.to_vec());
    }
    t.push_mean_row("Average");
    t
}

/// Extended roster (beyond the paper's Figure 11): every prefetcher in
/// the library, including the classic designs the paper cites as related
/// work — next-line, PC-stride, GHB \[11\], Markov \[8\], and SMS \[33\] —
/// under identical conditions at degree 4.
pub fn extended_roster(scale: &Scale) -> Vec<FigureTable> {
    let system = SystemConfig::paper();
    let scale = *scale;
    let roster = [
        System::NextLine,
        System::Stride,
        System::Ghb,
        System::Markov,
        System::Sms,
        System::Vldp,
        System::Isb,
        System::Stms,
        System::Digram,
        System::DominoNaive,
        System::Domino,
    ];
    let cols: Vec<String> = roster.iter().map(|s| s.label()).collect();
    let mut cov = FigureTable::new(
        "Extended roster — coverage (degree 4)",
        "workload",
        cols.clone(),
    );
    cov.percent = true;
    let mut over = FigureTable::new(
        "Extended roster — overpredictions (degree 4)",
        "workload",
        cols,
    );
    over.percent = true;
    let specs = catalog::all();
    let mut jobs: Vec<Job<(f64, f64)>> = Vec::new();
    for spec in &specs {
        for sys in roster {
            let spec = spec.clone();
            jobs.push(Box::new(move || {
                let r = coverage_of(&system, &spec, &scale, sys, 4);
                (r.coverage(), r.overprediction_rate())
            }));
        }
    }
    let results = exec::sweep(jobs);
    for (spec, cells) in specs.iter().zip(results.chunks(roster.len())) {
        cov.push_row(spec.name.clone(), cells.iter().map(|c| c.0).collect());
        over.push_row(spec.name.clone(), cells.iter().map(|c| c.1).collect());
    }
    cov.push_mean_row("Average");
    over.push_mean_row("Average");
    vec![cov, over]
}

/// The modern-rivals roster (ROADMAP item 1): the paper's two strongest
/// temporal baselines, Domino itself, and the two post-Domino rivals.
pub fn rivals_roster() -> [System; 5] {
    [
        System::Stms,
        System::Digram,
        System::Domino,
        System::Pangloss,
        System::Triangel,
    ]
}

/// Modern-rivals head-to-head (beyond the paper; ROADMAP item 1):
/// STMS, Digram, Domino, Pangloss and Triangel compared on coverage,
/// prefetch accuracy, off-chip metadata traffic per demand byte, and
/// timing-model speedup across the Table-II workload catalog, all at
/// degree 4.
///
/// The traffic table is the contrast story: Domino (and STMS/Digram)
/// pay off-chip reads and writes for their reach, while the two on-chip
/// rivals are structurally at zero — their cost shows up as coverage
/// lost to their bounded slabs instead.
pub fn rivals(scale: &Scale) -> Vec<FigureTable> {
    let system = SystemConfig::paper();
    let scale = *scale;
    let roster = rivals_roster();
    let cols: Vec<String> = roster.iter().map(|s| s.label()).collect();
    let mut cov = FigureTable::new("Rivals — coverage (degree 4)", "workload", cols.clone());
    cov.percent = true;
    let mut acc = FigureTable::new(
        "Rivals — prefetch accuracy (degree 4)",
        "workload",
        cols.clone(),
    );
    acc.percent = true;
    let mut traffic = FigureTable::new(
        "Rivals — off-chip metadata traffic per demand byte (degree 4)",
        "workload",
        cols.clone(),
    );
    traffic.percent = true;
    let mut speed = FigureTable::new(
        "Rivals — speedup over baseline (degree 4)",
        "workload",
        cols,
    );
    let specs = catalog::all();
    // Row layout mirrors Figure 14: the degree-1 baseline timing first,
    // then one combined coverage+timing cell per rival.
    let per_row = roster.len() + 1;
    type RivalCell = (Option<CoverageReport>, TimingReport);
    let mut jobs: Vec<Job<RivalCell>> = Vec::new();
    for spec in &specs {
        {
            let spec = spec.clone();
            jobs.push(Box::new(move || {
                (
                    None,
                    timing_of_observed(&system, &spec, &scale, System::Baseline, 1),
                )
            }));
        }
        for sys in roster {
            let spec = spec.clone();
            jobs.push(Box::new(move || {
                (
                    Some(coverage_of_observed(&system, &spec, &scale, sys, 4)),
                    timing_of_observed(&system, &spec, &scale, sys, 4),
                )
            }));
        }
    }
    let results = exec::sweep(jobs);
    for (spec, cells) in specs.iter().zip(results.chunks(per_row)) {
        let baseline = &cells[0].1;
        let reports: Vec<&CoverageReport> = cells[1..]
            .iter()
            .map(|c| c.0.as_ref().expect("rival cells carry coverage"))
            .collect();
        cov.push_row(
            spec.name.clone(),
            reports.iter().map(|r| r.coverage()).collect(),
        );
        acc.push_row(
            spec.name.clone(),
            reports
                .iter()
                .map(|r| {
                    let issued = (r.covered + r.overpredictions) as f64;
                    if issued == 0.0 {
                        0.0
                    } else {
                        r.covered as f64 / issued
                    }
                })
                .collect(),
        );
        traffic.push_row(
            spec.name.clone(),
            reports
                .iter()
                .map(|r| {
                    (r.metadata_read_bytes() + r.metadata_write_bytes()) as f64
                        / r.demand_bytes().max(1) as f64
                })
                .collect(),
        );
        speed.push_row(
            spec.name.clone(),
            cells[1..]
                .iter()
                .map(|c| c.1.speedup_over(baseline))
                .collect(),
        );
    }
    cov.push_mean_row("Average");
    acc.push_mean_row("Average");
    traffic.push_mean_row("Average");
    speed.push_gmean_row("GMean");
    vec![cov, acc, traffic, speed]
}

/// Cross-validation of the two opportunity measures: the Sequitur
/// *grammar* coverage (fraction of misses inside repeated rules) versus
/// the longest-stream *oracle* replay the figures use. The two are
/// independent algorithms over the same sequence; they should agree on
/// ordering and be close in magnitude.
pub fn opportunity_methods(scale: &Scale) -> FigureTable {
    use domino_sequitur::{analysis, Sequitur};
    let system = SystemConfig::paper();
    let scale = *scale;
    let mut t = FigureTable::new(
        "Opportunity measures — Sequitur grammar vs longest-stream oracle",
        "workload",
        vec!["Grammar".into(), "Oracle".into()],
    );
    t.percent = true;
    // The grammar is O(n) but allocation-heavy; cap its input.
    let cap = scale.events.min(150_000);
    let specs = catalog::all();
    let jobs: Vec<Job<Vec<f64>>> = specs
        .iter()
        .map(|spec| {
            let spec = spec.clone();
            Box::new(move || {
                let seq = shared_miss_sequence(&system, &spec, scale.events, scale.seed);
                let grammar = Sequitur::from_sequence(seq.iter().copied().take(cap));
                let g = analysis::grammar_coverage(&grammar);
                let o = oracle_replay(&seq, &OracleConfig::default()).coverage();
                vec![g, o]
            }) as Job<Vec<f64>>
        })
        .collect();
    let results = exec::sweep(jobs);
    for (spec, row) in specs.iter().zip(results) {
        t.push_row(spec.name.clone(), row);
    }
    t.push_mean_row("Average");
    t
}

/// MLP sensitivity (the paper's §V-C explanation for Web Search and
/// Media Streaming): speedup of Domino as a function of the fraction of
/// dependent (serializing) misses, on the OLTP model.
pub fn mlp_sensitivity(scale: &Scale) -> FigureTable {
    let system = SystemConfig::paper();
    let scale = *scale;
    let fracs = [0.1, 0.3, 0.5, 0.7, 0.9];
    let cols: Vec<String> = fracs.iter().map(|f| format!("dep={f:.1}")).collect();
    let mut t = FigureTable::new(
        "MLP sensitivity — Domino speedup vs dependent-miss fraction (OLTP model)",
        "system",
        cols,
    );
    let mut jobs: Vec<Job<TimingReport>> = Vec::new();
    for &f in &fracs {
        for (sys, degree) in [
            (System::Baseline, 1),
            (System::Stms, 4),
            (System::Domino, 4),
        ] {
            jobs.push(Box::new(move || {
                let mut spec = catalog::oltp();
                spec.temporal.dependent_frac = f;
                timing_of(&system, &spec, &scale, sys, degree)
            }));
        }
    }
    let results = exec::sweep(jobs);
    let mut stms_row = Vec::new();
    let mut domino_row = Vec::new();
    for cells in results.chunks(3) {
        let baseline = &cells[0];
        stms_row.push(cells[1].speedup_over(baseline));
        domino_row.push(cells[2].speedup_over(baseline));
    }
    t.push_row("STMS", stms_row);
    t.push_row("Domino", domino_row);
    t
}

/// Figure 14 with sampling statistics (the paper's SimFlex methodology:
/// "performance measurements are computed with 95 % confidence", §IV-C):
/// speedups measured over several workload seeds, reported as mean and
/// 95 % confidence half-width.
pub fn fig14_confidence(scale: &Scale, seeds: &[u64]) -> FigureTable {
    use crate::stats::Sample;
    let system = SystemConfig::paper();
    let scale = *scale;
    let mut t = FigureTable::new(
        format!(
            "Figure 14 with 95% confidence over {} seeds (degree 4)",
            seeds.len()
        ),
        "workload",
        vec![
            "STMS".into(),
            "STMS ±".into(),
            "Domino".into(),
            "Domino ±".into(),
        ],
    );
    let specs = catalog::all();
    // One job per (workload, seed): the baseline run is computed once and
    // shared by both prefetchers' speedups for that seed.
    let mut jobs: Vec<Job<(f64, f64)>> = Vec::new();
    for spec in &specs {
        for &seed in seeds {
            let spec = spec.clone();
            jobs.push(Box::new(move || {
                let seeded = Scale {
                    events: scale.events,
                    seed,
                };
                let baseline = timing_of(&system, &spec, &seeded, System::Baseline, 1);
                let stms = timing_of(&system, &spec, &seeded, System::Stms, 4);
                let domino = timing_of(&system, &spec, &seeded, System::Domino, 4);
                (stms.speedup_over(&baseline), domino.speedup_over(&baseline))
            }));
        }
    }
    let results = exec::sweep(jobs);
    for (spec, cells) in specs.iter().zip(results.chunks(seeds.len())) {
        let stms_speedups: Vec<f64> = cells.iter().map(|c| c.0).collect();
        let domino_speedups: Vec<f64> = cells.iter().map(|c| c.1).collect();
        let stms = Sample::of(&stms_speedups);
        let domino = Sample::of(&domino_speedups);
        t.push_row(
            spec.name.clone(),
            vec![stms.mean, stms.ci95, domino.mean, domino.ci95],
        );
    }
    t.push_mean_row("Average");
    t
}

/// Table I — the system parameters, rendered for the report.
pub fn table1() -> String {
    let c = SystemConfig::paper();
    format!(
        "Table I — evaluation parameters\n\
         Chip      : {} cores, {} GHz\n\
         Core      : {}-wide issue, {}-entry ROB, {}-entry LSQ\n\
         L1-D      : {} KB, {}-way, {}-cycle load-to-use, {} MSHRs\n\
         L2 (LLC)  : {} MB, {}-way, {}-cycle hit, {} MSHRs\n\
         Memory    : {} ns, {} GB/s\n\
         Prefetch  : {}-block buffer near L1-D\n",
        c.cores,
        c.clock_ghz,
        c.issue_width,
        c.rob_entries,
        c.lsq_entries,
        c.l1d.size_bytes / 1024,
        c.l1d.ways,
        c.l1d_latency_cycles,
        c.l1d_mshrs,
        c.l2.size_bytes / (1024 * 1024),
        c.l2.ways,
        c.l2_latency_cycles,
        c.l2_mshrs,
        c.memory.latency_ns,
        c.memory.bandwidth_bytes_per_ns,
        c.prefetch_buffer_blocks,
    )
}

/// Table II — the workload roster.
pub fn table2() -> String {
    let mut out = String::from("Table II — workload models\n");
    for spec in catalog::all() {
        out.push_str(&format!(
            "{:<16} temporal {:.0}% / spatial {:.0}% / noise {:.0}%, \
             junctions {:.0}%, dependent {:.0}%, gap {:.0} insts\n",
            spec.name,
            spec.mix.temporal * 100.0,
            spec.mix.spatial * 100.0,
            spec.mix.noise * 100.0,
            spec.temporal.junction_frac * 100.0,
            spec.temporal.dependent_frac * 100.0,
            spec.gap_mean,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            events: 12_000,
            seed: 7,
        }
    }

    #[test]
    fn fig01_has_nine_workloads_plus_average() {
        let t = fig01(&tiny());
        assert_eq!(t.rows.len(), 10);
        assert_eq!(t.columns.len(), 3);
        // Opportunity upper-bounds look sane.
        for r in 0..9 {
            let opp = t.values[r][2];
            assert!((0.0..=1.0).contains(&opp));
        }
    }

    #[test]
    fn fig12_rows_are_cumulative() {
        let t = fig12(&tiny());
        for row in &t.values {
            for w in row.windows(2) {
                assert!(w[1] + 1e-9 >= w[0], "not cumulative: {row:?}");
            }
            assert!((row.last().unwrap() - 1.0).abs() < 1e-9 || *row.last().unwrap() == 0.0);
        }
    }

    #[test]
    fn fig06_domino_needs_fewer_trips_than_stms() {
        let t = fig06(&tiny());
        let stms = t.value("Average", "STMS trips").unwrap();
        let dom = t.value("Average", "Domino trips").unwrap();
        assert!(
            dom < stms,
            "Domino should start streams faster: {dom} vs {stms}"
        );
    }

    #[test]
    fn fig14_confidence_shape_and_bounds() {
        let t = fig14_confidence(
            &Scale {
                events: 6_000,
                seed: 0,
            },
            &[1, 2, 3],
        );
        assert_eq!(t.rows.len(), 10);
        for row in &t.values {
            // Means positive, half-widths non-negative and not absurd.
            assert!(row[0] > 0.0 && row[2] > 0.0);
            assert!(row[1] >= 0.0 && row[3] >= 0.0);
            assert!(row[1] < row[0] && row[3] < row[2]);
        }
    }

    #[test]
    fn extended_figures_have_expected_shapes() {
        let scale = Scale {
            events: 8_000,
            seed: 3,
        };
        let roster = extended_roster(&scale);
        assert_eq!(roster.len(), 2);
        assert_eq!(roster[0].columns.len(), 11);
        assert_eq!(roster[0].rows.len(), 10);
        let opp = opportunity_methods(&scale);
        assert_eq!(opp.columns.len(), 2);
        let mlp = mlp_sensitivity(&Scale {
            events: 6_000,
            seed: 3,
        });
        assert_eq!(mlp.rows.len(), 2);
        assert_eq!(mlp.columns.len(), 5);
    }

    #[test]
    fn tables_render() {
        assert!(table1().contains("45 ns"));
        assert!(table2().contains("OLTP"));
    }
}
