/root/repo/target/debug/examples/extended_analyses-571ac023dc154953.d: examples/extended_analyses.rs

/root/repo/target/debug/examples/extended_analyses-571ac023dc154953: examples/extended_analyses.rs

examples/extended_analyses.rs:
