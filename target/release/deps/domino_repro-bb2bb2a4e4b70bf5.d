/root/repo/target/release/deps/domino_repro-bb2bb2a4e4b70bf5.d: src/lib.rs

/root/repo/target/release/deps/domino_repro-bb2bb2a4e4b70bf5: src/lib.rs

src/lib.rs:
