//! Interval timing model — the reproduction's substitute for the paper's
//! Flexus cycle-accurate simulation (§IV-C), producing the Figure 14
//! speedups and the Figure 15 bandwidth breakdown.
//!
//! The model advances a time cursor in nanoseconds per trace event:
//!
//! * non-memory instructions retire at full width (`gap_insts / width`
//!   cycles);
//! * an L1 hit costs nothing beyond the front-end (hidden by the OoO
//!   window);
//! * a **dependent** miss (pointer chase) stalls until its data arrives —
//!   dependent misses serialize, which is exactly why the paper targets
//!   them;
//! * an **independent** miss does not stall at issue; instead it imposes a
//!   *retirement constraint*: by the time `rob_entries` further
//!   instructions have entered the window, its data must have arrived, or
//!   the core waits. Bursts of independent misses therefore overlap
//!   (memory-level parallelism), bounded by the L1 MSHRs and the shared
//!   channel bandwidth;
//! * a miss that hits the 4 MB LLC costs the L2 latency; LLC misses go
//!   to memory, and every demand fill, prefetch fill, metadata read and
//!   metadata write contends for the shared DRAM channel (45 ns,
//!   37.5 GB/s). Metadata is never cached (paper §III-B);
//! * the LLC is shared by four cores (Table I): for every fill our core
//!   performs, the model inserts fills from the other three cores'
//!   (unsimulated) traffic, so our core competes for its share of the
//!   LLC instead of owning all 4 MB;
//! * a demand access to a block with a prefetch still in flight merges
//!   with it: it waits the residual prefetch latency, but never longer
//!   than a fresh memory access would take;
//! * a prefetch's data arrives only after its serial metadata round trips
//!   (`delay_trips`) plus the memory access — a prefetch-buffer hit on a
//!   block still in flight waits for the residual latency. This is where
//!   Domino's one-round-trip stream start pays off against STMS
//!   (Figure 6).
//!
//! The absolute numbers are not those of a SPARC server; the *relative*
//! effects (who is faster, where bandwidth goes) are what the model is
//! for, and EXPERIMENTS.md compares those shapes against the paper.

use domino_mem::cache::SetAssocCache;
use domino_mem::dram::{Dram, TrafficCategory, TrafficStats};
use domino_mem::interface::{CollectSink, Prefetcher, TriggerEvent};
use domino_mem::mshr::MshrFile;
use domino_mem::prefetch_buffer::{InsertOutcome, PrefetchBuffer};
use domino_telemetry::{CounterSink, HistId, Telemetry, LATENCY_BOUNDS, MSHR_BOUNDS};
use domino_trace::addr::LINE_BYTES;
use domino_trace::event::AccessEvent;
use domino_trace::stream::{EventSource, TraceFileError};

use crate::batch::L1Lanes;
use crate::config::SystemConfig;
use crate::scratch;

/// How [`CoreEngine::step`] sees the L1 for one event.
///
/// The batched hot path pre-advances the L1 over a whole staged span
/// ([`L1Lanes::stage`]) before stepping any event, which is exact
/// because prefetches never fill the L1 (see [`crate::batch`]). `step`
/// then reads the staged hit flag instead of probing the cache, skips
/// the (already performed) demand fill, and answers dropped-request
/// membership queries through the staging delta map.
#[derive(Clone, Copy)]
pub(crate) enum L1View<'s> {
    /// Probe and fill the live cache per event (the scalar path).
    Live,
    /// Probe-and-fill in one fused scan at the probe point
    /// ([`SetAssocCache::access_insert`]). Exact because nothing
    /// between the scalar loop's probe and its demand fill reads the
    /// L1, so hoisting the fill to the probe is unobservable — and the
    /// dropped-request gate then reads live post-fill state, exactly
    /// what the scalar gate reads. The single-core batched timing loop
    /// uses this: it pays neither the second scan of a separate
    /// `insert` nor any staging bookkeeping.
    Fused,
    /// The event's L1 outcome was staged ahead of time (a whole span
    /// was pre-advanced, so membership queries go through the staging
    /// delta map). The multicore interleave uses this.
    Staged {
        /// Absolute trace index of the event (delta-map query point).
        idx: u32,
        /// Staged demand outcome: `true` = L1 hit.
        hit: bool,
        /// The staged span covering this event.
        lanes: &'s L1Lanes,
    },
}

/// Result of a timing run.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Prefetcher display name.
    pub name: String,
    /// Simulated time in nanoseconds.
    pub total_ns: f64,
    /// Instructions executed (memory + gap instructions).
    pub instructions: u64,
    /// Time spent stalled on dependent misses.
    pub dependent_stall_ns: f64,
    /// Time spent stalled beyond the hide window on independent misses.
    pub independent_stall_ns: f64,
    /// Demand misses that found their block ready in the buffer.
    pub timely_hits: u64,
    /// Demand misses that found their block still in flight.
    pub late_hits: u64,
    /// Demand misses served entirely from memory.
    pub full_misses: u64,
    /// Off-chip traffic by category.
    pub traffic: TrafficStats,
}

impl TimingReport {
    /// Instructions per nanosecond — the paper's "ratio of the number of
    /// application instructions to the total number of cycles" up to the
    /// clock constant.
    pub fn throughput(&self) -> f64 {
        if self.total_ns == 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.total_ns
        }
    }

    /// Speedup of `self` over `baseline`.
    pub fn speedup_over(&self, baseline: &TimingReport) -> f64 {
        if self.total_ns == 0.0 {
            1.0
        } else {
            baseline.total_ns / self.total_ns
        }
    }

    /// Average consumed bandwidth in bytes/ns (== GB/s).
    pub fn bandwidth_gbps(&self) -> f64 {
        if self.total_ns == 0.0 {
            0.0
        } else {
            self.traffic.total() as f64 / self.total_ns
        }
    }
}

/// Per-core execution state of the interval model. `run_timing` drives a
/// single core with synthetic cross-core LLC pollution; the
/// [`crate::multicore`] module drives several real cores over a shared
/// LLC and channel.
pub(crate) struct CoreEngine<'a> {
    pub(crate) now: f64,
    report: TimingReport,
    l1: scratch::Pooled<SetAssocCache>,
    buffer: scratch::Pooled<PrefetchBuffer>,
    mshrs: scratch::Pooled<MshrFile>,
    rob_q: scratch::Pooled<scratch::RobQueue>,
    sink: scratch::Pooled<CollectSink>,
    prefetcher: &'a mut dyn Prefetcher,
    // Cached parameters.
    per_inst: f64,
    l1_lat: f64,
    l2_lat: f64,
    trip_ns: f64,
    rob: u64,
    /// Snapshot taken at the measurement boundary (warmed methodology):
    /// (now, instructions, dep_stall, indep_stall, timely, late, full).
    measure_from: Option<(f64, u64, f64, f64, u64, u64, u64)>,
    tel: &'a mut Telemetry,
    meta_lat_hist: HistId,
    mshr_hist: HistId,
}

/// Emits one cumulative telemetry snapshot row of a timing run (the
/// schema of timing epoch rows; stable across epochs of a run).
#[allow(clippy::too_many_arguments)]
fn emit_timing_row(
    row: &mut dyn CounterSink,
    report: &TimingReport,
    now: f64,
    l1: &SetAssocCache,
    buffer: &PrefetchBuffer,
    mshrs: &MshrFile,
    dram: &Dram,
    prefetcher: &dyn Prefetcher,
) {
    row.counter("instructions", report.instructions);
    row.counter("now_ns", now as u64);
    row.counter("timely_hits", report.timely_hits);
    row.counter("late_hits", report.late_hits);
    row.counter("full_misses", report.full_misses);
    row.counter("dependent_stall_ns", report.dependent_stall_ns as u64);
    row.counter("independent_stall_ns", report.independent_stall_ns as u64);
    l1.emit_counters("l1", row);
    buffer.emit_counters(row);
    mshrs.emit_counters("mshr", row);
    dram.emit_counters(row);
    prefetcher.emit_counters(row);
}

impl<'a> CoreEngine<'a> {
    pub(crate) fn new(
        system: &SystemConfig,
        prefetcher: &'a mut dyn Prefetcher,
        tel: &'a mut Telemetry,
    ) -> Self {
        let cycle = system.cycle_ns();
        let meta_lat_hist = tel.register_histogram("metadata_trip_ns", LATENCY_BOUNDS);
        let mshr_hist = tel.register_histogram("mshr_occupancy", MSHR_BOUNDS);
        CoreEngine {
            now: 0.0,
            report: TimingReport {
                name: prefetcher.name().to_string(),
                total_ns: 0.0,
                instructions: 0,
                dependent_stall_ns: 0.0,
                independent_stall_ns: 0.0,
                timely_hits: 0,
                late_hits: 0,
                full_misses: 0,
                traffic: TrafficStats::default(),
            },
            l1: scratch::cache(system.l1d),
            buffer: scratch::buffer(system.prefetch_buffer_blocks),
            mshrs: scratch::mshrs(system.l1d_mshrs),
            rob_q: scratch::rob_queue(),
            sink: scratch::sink(),
            prefetcher,
            per_inst: cycle / f64::from(system.issue_width),
            l1_lat: f64::from(system.l1d_latency_cycles) * cycle,
            l2_lat: f64::from(system.l2_latency_cycles) * cycle,
            trip_ns: system.memory.latency_ns,
            rob: u64::from(system.rob_entries),
            measure_from: None,
            tel,
            meta_lat_hist,
            mshr_hist,
        }
    }

    /// Marks the start of measurement: everything before this call is
    /// warmup and is subtracted from the final report.
    pub(crate) fn mark_measurement_start(&mut self) {
        self.measure_from = Some((
            self.now,
            self.report.instructions,
            self.report.dependent_stall_ns,
            self.report.independent_stall_ns,
            self.report.timely_hits,
            self.report.late_hits,
            self.report.full_misses,
        ));
    }

    /// Stages the L1 outcomes of `trace[start..end]` into `lanes` (the
    /// batched paths' pre-pass over this core's private L1).
    pub(crate) fn stage_span(
        &mut self,
        lanes: &mut L1Lanes,
        trace: &[AccessEvent],
        start: usize,
        end: usize,
    ) {
        lanes.stage(&mut self.l1, trace, start, end);
    }

    /// Processes one trace event against the shared LLC and channel.
    pub(crate) fn step(
        &mut self,
        ev: &AccessEvent,
        view: L1View<'_>,
        l2: &mut SetAssocCache,
        dram: &mut Dram,
    ) {
        let report = &mut self.report;
        report.instructions += u64::from(ev.gap_insts) + 1;
        self.now += f64::from(ev.gap_insts) * self.per_inst;
        // Enforce retirement constraints that have come due.
        while let Some(&(limit, done)) = self.rob_q.front() {
            if report.instructions >= limit {
                if done > self.now {
                    report.independent_stall_ns += done - self.now;
                    self.now = done;
                }
                self.rob_q.pop_front();
            } else {
                break;
            }
        }
        self.mshrs.retire_until(self.now);
        let line = ev.line();
        let l1_hit = match view {
            L1View::Live => self.l1.access(line),
            L1View::Fused => self.l1.access_insert(line).0,
            L1View::Staged { hit, .. } => hit,
        };
        if l1_hit {
            return;
        }
        // Demand miss: resolve when its data is available.
        let (data_ready, covered) = match self.buffer.take(line) {
            Some(entry) => {
                // Promote in the LLC exactly as the demand access would
                // have (covered lines must not decay to LRU victims).
                let was_in_l2 = l2.access(line);
                // A used prefetch moves into the cache hierarchy like a
                // demand fill (unused ones never leave the buffer).
                if !was_in_l2 {
                    l2.insert(line);
                }
                if entry.ready_at <= self.now {
                    report.timely_hits += 1;
                    if let Some(rec) = self.tel.tracer() {
                        // aux: how long the block sat ready before use.
                        rec.demand_hit(
                            self.now as u64,
                            line.raw(),
                            entry.stream,
                            (self.now - entry.ready_at).max(0.0) as u64,
                        );
                    }
                    (self.now + self.l1_lat, true)
                } else {
                    // Injected bug for the checker self-test: a late
                    // buffer hit is booked as a full miss (the data path
                    // is untouched, only the classification is wrong).
                    #[cfg(domino_mutate)]
                    let late_as_full = crate::mutate_active("timing_late_as_full");
                    #[cfg(not(domino_mutate))]
                    let late_as_full = false;
                    if late_as_full {
                        report.full_misses += 1;
                    } else {
                        report.late_hits += 1;
                    }
                    // Merge with the in-flight prefetch: wait its residual
                    // latency, but never longer than the demand's own best
                    // path (LLC hit or a fresh memory access).
                    let fresh = if was_in_l2 {
                        self.now + self.l2_lat
                    } else {
                        self.now + self.trip_ns + self.l2_lat
                    };
                    let ready = entry.ready_at.min(fresh);
                    if let Some(rec) = self.tel.tracer() {
                        // aux: the residual wait the demand access eats.
                        rec.late_arrival(
                            self.now as u64,
                            line.raw(),
                            entry.stream,
                            (ready - self.now).max(0.0) as u64,
                        );
                    }
                    (ready, true)
                }
            }
            None => {
                report.full_misses += 1;
                if self.tel.has_tracer() {
                    let knows = self.prefetcher.knows_line(line);
                    if let Some(rec) = self.tel.tracer() {
                        rec.demand_miss(self.now as u64, line.raw(), knows);
                    }
                }
                if l2.access(line) {
                    (self.now + self.l2_lat, false)
                } else {
                    l2.insert(line);
                    // MSHR-bounded demand access: merge with an in-flight
                    // miss, otherwise wait for a free register and transfer.
                    let completion = match self.mshrs.completion_of(line) {
                        Some(c) => c,
                        None => {
                            while self.mshrs.in_flight() == self.mshrs.capacity() {
                                let wait = self
                                    .mshrs
                                    .earliest_completion()
                                    .expect("full MSHRs imply an entry");
                                self.now = wait.max(self.now);
                                self.mshrs.retire_until(self.now);
                            }
                            let done = dram.request(self.now, LINE_BYTES, TrafficCategory::Demand);
                            self.mshrs
                                .allocate(line, done)
                                .expect("a register was just freed")
                        }
                    };
                    (completion, false)
                }
            }
        };
        self.tel
            .record(self.mshr_hist, self.mshrs.in_flight() as u64);
        if ev.dependent {
            // The next instruction consumes this load's value: serialize.
            let stall = (data_ready - self.now).max(0.0);
            report.dependent_stall_ns += stall;
            self.now += stall;
        } else {
            // Overlapable: must merely complete before it blocks
            // retirement, one ROB's worth of instructions from now.
            self.rob_q
                .push_back((report.instructions + self.rob, data_ready));
        }
        if matches!(view, L1View::Live) {
            // Fused probes and staged spans already performed the
            // demand fill.
            self.l1.insert(line);
        }
        // Drive the prefetcher.
        self.sink.clear();
        let trigger = if covered {
            TriggerEvent::prefetch_hit(ev.pc, line)
        } else {
            TriggerEvent::miss(ev.pc, line)
        };
        self.prefetcher.on_trigger(&trigger, &mut *self.sink);
        let now_ts = self.now as u64;
        match self.tel.tracer() {
            Some(rec) => {
                for &tag in &self.sink.replaced {
                    rec.eit_replace(now_ts, tag.raw());
                }
                for &stream in &self.sink.discarded_streams {
                    self.buffer.discard_stream_with(stream, |e| {
                        rec.evict_unused(now_ts, e.line.raw(), e.stream);
                    });
                }
            }
            None => {
                for &stream in &self.sink.discarded_streams {
                    self.buffer.discard_stream(stream);
                }
            }
        }
        // Metadata traffic contends for the channel right away.
        for _ in 0..self.sink.meta_read_blocks {
            if let Some(rec) = self.tel.tracer() {
                rec.meta_start(now_ts, 1);
            }
            let done = dram.request(self.now, LINE_BYTES, TrafficCategory::MetadataRead);
            // Queueing makes the round trip exceed the raw 45 ns.
            let trip = (done - self.now).max(0.0) as u64;
            self.tel.record(self.meta_lat_hist, trip);
            if let Some(rec) = self.tel.tracer() {
                rec.meta_end(done as u64, trip);
            }
        }
        for _ in 0..self.sink.meta_write_blocks {
            dram.request(self.now, LINE_BYTES, TrafficCategory::MetadataWrite);
        }
        for req in &self.sink.requests {
            if let Some(rec) = self.tel.tracer() {
                rec.issue(now_ts, req.line.raw(), req.stream, req.delay_trips);
            }
            let in_l1 = match view {
                L1View::Live | L1View::Fused => self.l1.contains(req.line),
                L1View::Staged { idx, lanes, .. } => lanes.contains_at(&self.l1, idx, req.line),
            };
            if in_l1 {
                if let Some(rec) = self.tel.tracer() {
                    // Already in the L1: the engine drops the request.
                    rec.drop_unbuffered(now_ts, req.line.raw(), req.stream, 2);
                }
                continue;
            }
            // Serial metadata trips delay the issue; an LLC-resident block
            // fills the buffer quickly, others queue on the channel. The
            // block goes only to the prefetch buffer near the L1-D
            // (§IV-D) — it does not allocate in the LLC, so wrong
            // prefetches cannot act as covert LLC warming.
            let issue_at = self.now + f64::from(req.delay_trips) * self.trip_ns;
            let arrival = if l2.contains(req.line) {
                issue_at + self.l2_lat
            } else {
                dram.request(issue_at, LINE_BYTES, TrafficCategory::Prefetch)
            };
            let outcome = self.buffer.insert(req.line, arrival, req.stream);
            if let Some(rec) = self.tel.tracer() {
                match outcome {
                    InsertOutcome::Inserted => {
                        rec.fill(now_ts, req.line.raw(), req.stream, arrival as u64);
                    }
                    InsertOutcome::Duplicate => {
                        rec.drop_unbuffered(now_ts, req.line.raw(), req.stream, 1);
                    }
                    InsertOutcome::Evicted(victim) => {
                        rec.evict_unused(now_ts, victim.line.raw(), victim.stream);
                        rec.fill(now_ts, req.line.raw(), req.stream, arrival as u64);
                    }
                }
            }
        }
        if self.tel.tick() {
            self.tel.snapshot(|row| {
                emit_timing_row(
                    row,
                    &self.report,
                    self.now,
                    &self.l1,
                    &self.buffer,
                    &self.mshrs,
                    dram,
                    &*self.prefetcher,
                )
            });
        }
    }

    /// Flushes the final partial telemetry epoch. Call once after the
    /// last [`CoreEngine::step`], while the shared channel is still in
    /// scope (it appears in the snapshot row).
    pub(crate) fn flush_telemetry(&mut self, dram: &Dram) {
        self.tel.flush(|row| {
            emit_timing_row(
                row,
                &self.report,
                self.now,
                &self.l1,
                &self.buffer,
                &self.mshrs,
                dram,
                &*self.prefetcher,
            )
        });
    }

    /// Drains retirement constraints and returns the finished report.
    /// `traffic` should be the share of channel traffic attributed to the
    /// core (for a single core, everything).
    pub(crate) fn finish(mut self, traffic: TrafficStats) -> TimingReport {
        // Drain in place (rather than `mem::take`) so the queue keeps its
        // capacity when it returns to the scratch pool.
        while let Some((_, done)) = self.rob_q.pop_front() {
            if done > self.now {
                self.report.independent_stall_ns += done - self.now;
                self.now = done;
            }
        }
        self.report.total_ns = self.now;
        self.report.traffic = traffic;
        if let Some((ns, instr, dep, indep, timely, late, full)) = self.measure_from {
            self.report.total_ns -= ns;
            self.report.instructions -= instr;
            self.report.dependent_stall_ns -= dep;
            self.report.independent_stall_ns -= indep;
            self.report.timely_hits -= timely;
            self.report.late_hits -= late;
            self.report.full_misses -= full;
        }
        self.report
    }
}

/// Runs `prefetcher` over `trace` under the interval timing model, with
/// synthetic fills from the other (unsimulated) cores keeping the shared
/// LLC under pressure. For real multi-core sharing see
/// [`crate::multicore::run_multicore`].
pub fn run_timing(
    system: &SystemConfig,
    trace: &[AccessEvent],
    prefetcher: &mut dyn Prefetcher,
) -> TimingReport {
    run_timing_warmed(system, trace, prefetcher, 0)
}

/// [`run_timing`] with a warmup prefix excluded from all metrics
/// (time, instructions, stalls, hit classes). Traffic remains cumulative,
/// as a shared channel's counters would be.
pub fn run_timing_warmed(
    system: &SystemConfig,
    trace: &[AccessEvent],
    prefetcher: &mut dyn Prefetcher,
    warmup: usize,
) -> TimingReport {
    run_timing_observed(system, trace, prefetcher, warmup, &mut Telemetry::off())
}

/// [`run_timing_warmed`] with a telemetry handle: per-epoch snapshots of
/// the core, caches, MSHRs, and shared channel, plus metadata round-trip
/// latency and MSHR-occupancy histograms.
///
/// As with the coverage engine, unobserved runs take the batched
/// structure-of-arrays path at the effective
/// [`crate::observe::batch_size`]; observed runs stay scalar. The
/// reports are byte-identical either way.
pub fn run_timing_observed(
    system: &SystemConfig,
    trace: &[AccessEvent],
    prefetcher: &mut dyn Prefetcher,
    warmup: usize,
    tel: &mut Telemetry,
) -> TimingReport {
    let batch = crate::observe::batch_size();
    if batch > 1 && !tel.is_on() && !tel.has_tracer() {
        run_timing_batched(system, trace, prefetcher, warmup, batch as usize)
    } else {
        run_timing_scalar(system, trace, prefetcher, warmup, tel)
    }
}

/// [`run_timing`] at an explicit batch size, ignoring the process-wide
/// knob (`batch = 1` forces the scalar loop) — the batched-vs-scalar
/// differential checker's entry point.
pub fn run_timing_with_batch(
    system: &SystemConfig,
    trace: &[AccessEvent],
    prefetcher: &mut dyn Prefetcher,
    warmup: usize,
    batch: u32,
) -> TimingReport {
    if batch > 1 {
        run_timing_batched(system, trace, prefetcher, warmup, batch as usize)
    } else {
        run_timing_scalar(system, trace, prefetcher, warmup, &mut Telemetry::off())
    }
}

/// How many pollution inserts ahead the batched timing loop prefetches
/// the LLC slab. Far enough to cover a host-memory round trip, close
/// enough that the touched sets are still cached when the insert runs.
const POLLUTE_PREFETCH_AHEAD: usize = 16;

/// The batched timing loop: per chunk, one SoA pass precomputes the
/// cross-core pollution RNG chain (it depends on nothing else) and
/// host-prefetches the LLC sets it will touch — the pollution lines
/// are uniform over a slab far larger than the host's L1, so the
/// scalar loop stalls on a cold set per insert. Events then step with
/// a fused L1 probe-and-fill ([`L1View::Fused`]): one scan where the
/// scalar loop pays a probe scan plus a fill scan per miss. Every
/// simulated interaction (pollution inserts, DRAM, MSHRs) happens in
/// the exact scalar order.
fn run_timing_batched(
    system: &SystemConfig,
    trace: &[AccessEvent],
    prefetcher: &mut dyn Prefetcher,
    warmup: usize,
    batch: usize,
) -> TimingReport {
    let mut l2 = scratch::cache(system.l2);
    let mut dram = Dram::new(system.memory);
    prefetcher.reserve(trace.len());
    let mut pollute_state: u64 = 0x1234_5678_9abc_def1;
    let pollute_per_event = 2 * (system.cores - 1) as usize;
    let mut tel = Telemetry::off();
    let mut engine = CoreEngine::new(system, prefetcher, &mut tel);
    // The chunk's pollution lines, precomputed per chunk and reused
    // across chunks.
    let mut pollute_lines: Vec<domino_trace::addr::LineAddr> = Vec::new();
    let n = trace.len();
    let mut s = 0usize;
    while s < n {
        // Chunks break at the warmup boundary so the measurement mark
        // lands exactly where the scalar loop places it.
        let mut e = (s + batch).min(n);
        if s < warmup && e > warmup {
            e = warmup;
        }
        if s == warmup && warmup > 0 {
            engine.mark_measurement_start();
        }
        step_timing_span(
            &mut engine,
            &mut l2,
            &mut dram,
            &mut pollute_state,
            &mut pollute_lines,
            pollute_per_event,
            &trace[s..e],
        );
        s = e;
    }
    let traffic = dram.traffic();
    engine.finish(traffic)
}

/// One batched-timing span: extend the pollution chain for
/// `events.len()` events, host-prefetch the touched LLC sets, then step
/// each event in exact scalar order. Shared by the cached-slice and
/// streamed batched loops — the chain state carries across spans, so
/// span boundaries are unobservable in the simulated state.
fn step_timing_span(
    engine: &mut CoreEngine<'_>,
    l2: &mut SetAssocCache,
    dram: &mut Dram,
    pollute_state: &mut u64,
    pollute_lines: &mut Vec<domino_trace::addr::LineAddr>,
    pollute_per_event: usize,
    events: &[AccessEvent],
) {
    pollute_lines.clear();
    for _ in 0..events.len() * pollute_per_event {
        *pollute_state ^= *pollute_state << 13;
        *pollute_state ^= *pollute_state >> 7;
        *pollute_state ^= *pollute_state << 17;
        pollute_lines.push(domino_trace::addr::LineAddr::new(
            0x0F00_0000_0000 | (*pollute_state & 0xFFFF_FFFF),
        ));
    }
    for l in pollute_lines.iter().take(POLLUTE_PREFETCH_AHEAD) {
        l2.prefetch_set(*l);
    }
    for (off, ev) in events.iter().enumerate() {
        let base = off * pollute_per_event;
        for (k, &line) in pollute_lines[base..base + pollute_per_event]
            .iter()
            .enumerate()
        {
            if let Some(&ahead) = pollute_lines.get(base + k + POLLUTE_PREFETCH_AHEAD) {
                l2.prefetch_set(ahead);
            }
            l2.insert(line);
        }
        engine.step(ev, L1View::Fused, l2, dram);
    }
}

/// [`run_timing_with_batch`] over an [`EventSource`]: pulls fixed-size
/// chunks from the source and re-splits them at the batch size and the
/// absolute warmup boundary. Every simulated state transition (the
/// pollution chain, cache fills, DRAM, the prefetcher) happens in exact
/// scalar order with state carried across chunks, so the report is
/// byte-identical to the cached-slice loops — only the source's chunk
/// buffers and the current span are ever resident.
pub fn run_timing_streamed(
    system: &SystemConfig,
    source: &mut dyn EventSource,
    prefetcher: &mut dyn Prefetcher,
    warmup: usize,
    batch: usize,
) -> Result<TimingReport, TraceFileError> {
    let batch = batch.max(1);
    let mut l2 = scratch::cache(system.l2);
    let mut dram = Dram::new(system.memory);
    prefetcher.reserve(usize::try_from(source.total_events()).unwrap_or(usize::MAX));
    let mut pollute_state: u64 = 0x1234_5678_9abc_def1;
    let pollute_per_event = 2 * (system.cores - 1) as usize;
    let mut tel = Telemetry::off();
    let mut engine = CoreEngine::new(system, prefetcher, &mut tel);
    let mut pollute_lines: Vec<domino_trace::addr::LineAddr> = Vec::new();
    let mut chunk: Vec<AccessEvent> = Vec::new();
    // Absolute index of the first event of the current chunk.
    let mut seen = 0usize;
    loop {
        let n = source.next_chunk(&mut chunk)?;
        if n == 0 {
            break;
        }
        let mut off = 0usize;
        while off < n {
            let s = seen + off;
            // Spans break at the warmup boundary so the measurement
            // mark lands exactly where the scalar loop places it.
            let mut e = (off + batch).min(n);
            if s < warmup && seen + e > warmup {
                e = warmup - seen;
            }
            if s == warmup && warmup > 0 {
                engine.mark_measurement_start();
            }
            step_timing_span(
                &mut engine,
                &mut l2,
                &mut dram,
                &mut pollute_state,
                &mut pollute_lines,
                pollute_per_event,
                &chunk[off..e],
            );
            off = e;
        }
        seen += n;
    }
    let traffic = dram.traffic();
    Ok(engine.finish(traffic))
}

/// The scalar one-event-at-a-time timing loop (and the only loop that
/// supports telemetry and tracing).
fn run_timing_scalar(
    system: &SystemConfig,
    trace: &[AccessEvent],
    prefetcher: &mut dyn Prefetcher,
    warmup: usize,
    tel: &mut Telemetry,
) -> TimingReport {
    let mut l2 = scratch::cache(system.l2);
    let mut dram = Dram::new(system.memory);
    prefetcher.reserve(trace.len());
    // Cross-core LLC pollution state (other cores' fills). Two fills per
    // other core per event: server consolidation keeps the shared LLC
    // under constant pressure (each core's miss rate matches ours, and
    // instruction/OS footprints add more).
    let mut pollute_state: u64 = 0x1234_5678_9abc_def1;
    let pollute_per_event = 2 * (system.cores - 1) as usize;
    let mut engine = CoreEngine::new(system, prefetcher, tel);
    for (i, ev) in trace.iter().enumerate() {
        if i == warmup && warmup > 0 {
            engine.mark_measurement_start();
        }
        for _ in 0..pollute_per_event {
            pollute_state ^= pollute_state << 13;
            pollute_state ^= pollute_state >> 7;
            pollute_state ^= pollute_state << 17;
            l2.insert(domino_trace::addr::LineAddr::new(
                0x0F00_0000_0000 | (pollute_state & 0xFFFF_FFFF),
            ));
        }
        engine.step(ev, L1View::Live, &mut l2, &mut dram);
    }
    engine.flush_telemetry(&dram);
    let traffic = dram.traffic();
    engine.finish(traffic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_mem::interface::NoPrefetcher;
    use domino_prefetchers::{Stms, TemporalConfig};
    use domino_trace::addr::{Addr, Pc};
    use domino_trace::workload::catalog;

    fn system() -> SystemConfig {
        SystemConfig::paper()
    }

    /// Pointer-chase-like loop whose footprint exceeds the 4 MB LLC, so
    /// repeated passes still miss all the way to memory.
    fn chase_trace(reps: usize, len: u64, dependent: bool) -> Vec<AccessEvent> {
        let mut out = Vec::new();
        for _ in 0..reps {
            for i in 0..len {
                let mut ev = AccessEvent::read(Pc::new(4), Addr::new((i * 131 + 7) << 6));
                ev.gap_insts = 20;
                ev.dependent = dependent;
                out.push(ev);
            }
        }
        out
    }

    #[test]
    fn dependent_chains_are_slower_than_independent() {
        let mut p1 = NoPrefetcher;
        let dep = run_timing(&system(), &chase_trace(2, 100_000, true), &mut p1);
        let mut p2 = NoPrefetcher;
        let indep = run_timing(&system(), &chase_trace(2, 100_000, false), &mut p2);
        assert!(
            dep.total_ns > indep.total_ns * 1.5,
            "dependent {} vs independent {}",
            dep.total_ns,
            indep.total_ns
        );
    }

    #[test]
    fn prefetching_speeds_up_repeating_dependent_misses() {
        let trace = chase_trace(4, 100_000, true);
        let mut base = NoPrefetcher;
        let baseline = run_timing(&system(), &trace, &mut base);
        let mut stms = Stms::new(TemporalConfig {
            sampling_probability: 1.0,
            stream_end_detection: false,
            ..TemporalConfig::default()
        });
        let with = run_timing(&system(), &trace, &mut stms);
        let speedup = with.speedup_over(&baseline);
        assert!(speedup > 1.05, "speedup {speedup}");
        assert!(with.timely_hits + with.late_hits > 0);
    }

    #[test]
    fn traffic_includes_metadata_for_temporal_prefetchers() {
        let trace = chase_trace(2, 80_000, true);
        let mut stms = Stms::new(TemporalConfig::default());
        let r = run_timing(&system(), &trace, &mut stms);
        assert!(r.traffic.metadata_read > 0);
        assert!(r.traffic.demand > 0);
    }

    #[test]
    fn bandwidth_stays_below_channel_peak() {
        let spec = catalog::web_apache();
        let trace: Vec<_> = spec.generator(2).take(40_000).collect();
        let mut p = NoPrefetcher;
        let r = run_timing(&system(), &trace, &mut p);
        assert!(r.bandwidth_gbps() < system().memory.bandwidth_bytes_per_ns);
        assert!(r.throughput() > 0.0);
    }

    #[test]
    fn warmed_timing_subtracts_the_prefix() {
        let trace = chase_trace(2, 50_000, true);
        let mut p1 = NoPrefetcher;
        let full = run_timing(&system(), &trace, &mut p1);
        let mut p2 = NoPrefetcher;
        let warmed = super::run_timing_warmed(&system(), &trace, &mut p2, 50_000);
        assert!(warmed.total_ns < full.total_ns);
        assert!(warmed.instructions < full.instructions);
        // The measured window is the second (warmed) pass: roughly half
        // the instructions.
        assert!(
            (warmed.instructions as f64 / full.instructions as f64 - 0.5).abs() < 0.05,
            "measured {} of {}",
            warmed.instructions,
            full.instructions
        );
    }

    #[test]
    fn batched_timing_is_byte_identical_to_scalar() {
        let spec = catalog::oltp();
        let trace: Vec<_> = spec.generator(13).take(25_000).collect();
        for warmup in [0usize, 9_000] {
            let mut scalar_p = Stms::new(TemporalConfig::default());
            let scalar = run_timing_with_batch(&system(), &trace, &mut scalar_p, warmup, 1);
            for batch in [2u32, 7, 64, 4096] {
                let mut p = Stms::new(TemporalConfig::default());
                let batched = run_timing_with_batch(&system(), &trace, &mut p, warmup, batch);
                assert_eq!(
                    format!("{scalar:?}"),
                    format!("{batched:?}"),
                    "batch {batch}, warmup {warmup}"
                );
            }
        }
    }

    #[test]
    fn instructions_counted() {
        let trace = chase_trace(1, 100, false);
        let mut p = NoPrefetcher;
        let r = run_timing(&system(), &trace, &mut p);
        assert_eq!(r.instructions, 100 * 21);
    }
}
