/root/repo/target/release/deps/fuzz-f08258c0d7d52fcf.d: crates/core/tests/fuzz.rs Cargo.toml

/root/repo/target/release/deps/libfuzz-f08258c0d7d52fcf.rmeta: crates/core/tests/fuzz.rs Cargo.toml

crates/core/tests/fuzz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
