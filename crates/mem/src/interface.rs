//! The prefetcher interface shared by all prefetchers in the reproduction.
//!
//! The evaluation engine drives prefetchers with **triggering events** —
//! the paper's term (§III): L1-D demand misses and prefetch-buffer hits.
//! In response, a prefetcher issues [`PrefetchRequest`]s and reports its
//! off-chip metadata accesses through the [`PrefetchSink`].
//!
//! Requests carry `delay_trips`: how many *serial* off-chip metadata round
//! trips stand between the triggering event and the prefetch being issued.
//! This is the paper's timeliness argument in one number — STMS needs two
//! trips (Index Table, then History Table) before the first prefetch of a
//! stream, Domino needs one (its Enhanced Index Table already contains the
//! next miss), and stream continuations that replay from an on-chip buffer
//! need zero.

use domino_telemetry::CounterSink;
use domino_trace::addr::{LineAddr, Pc};

/// Why the prefetcher was invoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TriggerKind {
    /// Demand access missed the L1-D and the prefetch buffer.
    Miss,
    /// Demand access hit in the prefetch buffer.
    PrefetchHit,
}

/// A triggering event (paper §III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriggerEvent {
    /// PC of the demand access.
    pub pc: Pc,
    /// Missed / hit cache line.
    pub line: LineAddr,
    /// Miss or prefetch hit.
    pub kind: TriggerKind,
}

impl TriggerEvent {
    /// Creates a miss trigger.
    pub fn miss(pc: Pc, line: LineAddr) -> Self {
        TriggerEvent {
            pc,
            line,
            kind: TriggerKind::Miss,
        }
    }

    /// Creates a prefetch-hit trigger.
    pub fn prefetch_hit(pc: Pc, line: LineAddr) -> Self {
        TriggerEvent {
            pc,
            line,
            kind: TriggerKind::PrefetchHit,
        }
    }
}

/// A prefetch issued by a prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// Line to fetch into the prefetch buffer.
    pub line: LineAddr,
    /// Serial off-chip metadata round trips before this request can issue.
    pub delay_trips: u8,
    /// Issuing stream (used for stream-replacement discards), if the
    /// prefetcher tracks streams.
    pub stream: Option<u32>,
}

impl PrefetchRequest {
    /// A request with no metadata delay and no stream tag.
    pub fn immediate(line: LineAddr) -> Self {
        PrefetchRequest {
            line,
            delay_trips: 0,
            stream: None,
        }
    }
}

/// Receiver for a prefetcher's outputs during one triggering event.
pub trait PrefetchSink {
    /// Issue a prefetch request.
    fn prefetch(&mut self, request: PrefetchRequest);
    /// Account `blocks` cache-block reads from off-chip metadata tables.
    fn metadata_read(&mut self, blocks: u32);
    /// Account `blocks` cache-block writes to off-chip metadata tables.
    fn metadata_write(&mut self, blocks: u32);
    /// Ask the engine to drop buffered prefetches of a replaced stream.
    fn discard_stream(&mut self, stream: u32);
    /// Report that the metadata entry indexed by `line` was replaced
    /// (EIT/index capacity eviction — metadata reach was lost). Default:
    /// ignored, so sinks that don't trace need no code.
    fn metadata_replace(&mut self, _line: LineAddr) {}
}

/// A data prefetcher driven by triggering events.
///
/// Implementations include the baselines in `domino-prefetchers`
/// (next-line, stride, STMS, Digram, ISB, VLDP) and the Domino prefetcher
/// in the `domino` crate.
///
/// `Send` is a supertrait so built prefetchers can be handed to the
/// parallel sweep executor's worker threads; prefetcher state is plain
/// owned data, so this costs implementations nothing.
pub trait Prefetcher: Send {
    /// Display name used in reports (matches the paper's figure labels).
    fn name(&self) -> &str;

    /// Reacts to one triggering event.
    fn on_trigger(&mut self, event: &TriggerEvent, sink: &mut dyn PrefetchSink);

    /// Hint that up to `expected_events` trace events are about to be
    /// replayed, letting prefetchers with append-only metadata (e.g. the
    /// idealized ISB sequences) pre-size their storage so the event loop
    /// stays allocation-free. Capacity-only: implementations must not
    /// change observable behaviour. Default: ignored.
    fn reserve(&mut self, _expected_events: usize) {}

    /// Reports implementation-specific counters into a telemetry
    /// snapshot (EIT lookups, index hit rates, …). Counter names are
    /// dot-namespaced and must be emitted in a stable order; the default
    /// reports nothing, so plain prefetchers need no telemetry code.
    fn emit_counters(&self, _sink: &mut dyn CounterSink) {}

    /// Whether this prefetcher's *metadata* currently records `line` as a
    /// reachable prediction target. The flight recorder uses this to
    /// split uncovered misses into **mispredicted** (metadata knew the
    /// line, the prefetcher chose differently) and **no-metadata** (the
    /// line was never learned). Must not mutate observable state or
    /// counters. Default: `false`, i.e. every unexplained miss is
    /// attributed to missing metadata.
    fn knows_line(&self, _line: LineAddr) -> bool {
        false
    }
}

/// Simple sink that records everything (tests, analyses, adapters).
#[derive(Debug, Clone, Default)]
pub struct CollectSink {
    /// Issued requests in order.
    pub requests: Vec<PrefetchRequest>,
    /// Metadata blocks read.
    pub meta_read_blocks: u64,
    /// Metadata blocks written.
    pub meta_write_blocks: u64,
    /// Streams discarded.
    pub discarded_streams: Vec<u32>,
    /// Metadata entries replaced (lines whose learned successor was
    /// evicted from a finite index/EIT this event).
    pub replaced: Vec<LineAddr>,
}

impl CollectSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        CollectSink::default()
    }

    /// Clears all recorded outputs (reuse between events).
    pub fn clear(&mut self) {
        self.requests.clear();
        self.discarded_streams.clear();
        self.replaced.clear();
        self.meta_read_blocks = 0;
        self.meta_write_blocks = 0;
    }
}

impl PrefetchSink for CollectSink {
    fn prefetch(&mut self, request: PrefetchRequest) {
        self.requests.push(request);
    }

    fn metadata_read(&mut self, blocks: u32) {
        self.meta_read_blocks += u64::from(blocks);
    }

    fn metadata_write(&mut self, blocks: u32) {
        self.meta_write_blocks += u64::from(blocks);
    }

    fn discard_stream(&mut self, stream: u32) {
        self.discarded_streams.push(stream);
    }

    fn metadata_replace(&mut self, line: LineAddr) {
        self.replaced.push(line);
    }
}

/// A prefetcher that never prefetches — the paper's baseline system.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPrefetcher;

impl Prefetcher for NoPrefetcher {
    fn name(&self) -> &str {
        "Baseline"
    }

    fn on_trigger(&mut self, _event: &TriggerEvent, _sink: &mut dyn PrefetchSink) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_sink_records_everything() {
        let mut sink = CollectSink::new();
        sink.prefetch(PrefetchRequest::immediate(LineAddr::new(3)));
        sink.metadata_read(2);
        sink.metadata_write(1);
        sink.discard_stream(7);
        sink.metadata_replace(LineAddr::new(9));
        assert_eq!(sink.requests.len(), 1);
        assert_eq!(sink.meta_read_blocks, 2);
        assert_eq!(sink.meta_write_blocks, 1);
        assert_eq!(sink.discarded_streams, vec![7]);
        assert_eq!(sink.replaced, vec![LineAddr::new(9)]);
        sink.clear();
        assert!(sink.requests.is_empty());
        assert!(sink.replaced.is_empty());
        assert_eq!(sink.meta_read_blocks, 0);
    }

    #[test]
    fn no_prefetcher_is_silent() {
        let mut p = NoPrefetcher;
        let mut sink = CollectSink::new();
        p.on_trigger(&TriggerEvent::miss(Pc::new(1), LineAddr::new(2)), &mut sink);
        assert!(sink.requests.is_empty());
        assert_eq!(p.name(), "Baseline");
    }

    #[test]
    fn trigger_constructors() {
        let m = TriggerEvent::miss(Pc::new(1), LineAddr::new(2));
        assert_eq!(m.kind, TriggerKind::Miss);
        let h = TriggerEvent::prefetch_hit(Pc::new(1), LineAddr::new(2));
        assert_eq!(h.kind, TriggerKind::PrefetchHit);
    }
}
