//! Off-chip metadata channel helpers.
//!
//! Temporal prefetchers keep their history and index tables in main memory
//! (paper §III-A): every table read or update is an off-chip access moving
//! one cache block. To bound the update traffic the paper adopts STMS's
//! *statistical updates*: "for every several index updates (e.g., eight),
//! only one of them is recorded" — a 12.5 % sampling probability.
//!
//! [`MetadataChannel`] packages the two things every off-chip-metadata
//! prefetcher needs: an update sampler and read/write accounting.

/// Deterministic sampler for statistical metadata updates.
#[derive(Debug, Clone)]
pub struct UpdateSampler {
    probability: f64,
    state: u64,
}

impl UpdateSampler {
    /// Creates a sampler accepting updates with the given probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= probability <= 1.0`.
    pub fn new(probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability must be in [0, 1]"
        );
        UpdateSampler {
            probability,
            state: seed | 1,
        }
    }

    /// The paper's 12.5 % sampling.
    pub fn paper(seed: u64) -> Self {
        UpdateSampler::new(0.125, seed)
    }

    /// Returns `true` if this update should be recorded.
    pub fn sample(&mut self) -> bool {
        // xorshift64*; cheap, deterministic, decorrelated from workload RNG.
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        let draw =
            (self.state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
        draw < self.probability
    }

    /// Sampling probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }
}

/// Read/write accounting for a prefetcher's off-chip metadata tables.
///
/// Prefetchers use this internally and mirror the counts into their
/// [`PrefetchSink`](crate::interface::PrefetchSink) so the engine can
/// charge DRAM bandwidth.
#[derive(Debug, Clone, Default)]
pub struct MetadataChannel {
    reads: u64,
    writes: u64,
}

impl MetadataChannel {
    /// Creates an idle channel.
    pub fn new() -> Self {
        MetadataChannel::default()
    }

    /// Records `blocks` cache-block reads.
    pub fn read(&mut self, blocks: u32) {
        self.reads += u64::from(blocks);
    }

    /// Records `blocks` cache-block writes.
    pub fn write(&mut self, blocks: u32) {
        self.writes += u64::from(blocks);
    }

    /// Total blocks read.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total blocks written.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Reports read/write block counters under `prefix`
    /// (e.g. `meta.reads`).
    pub fn emit_counters(&self, prefix: &str, sink: &mut dyn domino_telemetry::CounterSink) {
        sink.counter(&format!("{prefix}.reads"), self.reads);
        sink.counter(&format!("{prefix}.writes"), self.writes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_matches_probability() {
        let mut s = UpdateSampler::paper(42);
        let n = 100_000;
        let hits = (0..n).filter(|_| s.sample()).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.125).abs() < 0.01, "sampled {frac}");
    }

    #[test]
    fn sampler_extremes() {
        let mut never = UpdateSampler::new(0.0, 1);
        let mut always = UpdateSampler::new(1.0, 1);
        for _ in 0..100 {
            assert!(!never.sample());
            assert!(always.sample());
        }
    }

    #[test]
    fn sampler_is_deterministic() {
        let mut a = UpdateSampler::paper(7);
        let mut b = UpdateSampler::paper(7);
        for _ in 0..1000 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        UpdateSampler::new(1.5, 0);
    }

    #[test]
    fn channel_counts() {
        let mut c = MetadataChannel::new();
        c.read(2);
        c.write(1);
        c.read(1);
        assert_eq!(c.reads(), 3);
        assert_eq!(c.writes(), 1);
    }
}
