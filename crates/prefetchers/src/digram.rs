//! Digram (Wenisch, *Temporal Memory Streaming*, CMU PhD thesis 2007):
//! STMS with a two-address lookup.
//!
//! Digram's Index Table is keyed by the hash of the **last two** triggering
//! events. Two consecutive misses pin down the right stream far more often
//! than one (paper Figure 3), producing longer streams (Figure 2) — but
//! the prefetcher cannot issue anything for the first two addresses of a
//! stream, and pairs match history less often than single addresses
//! (Figure 4). The paper's trace results (Figure 11) show the two effects
//! cancel: Digram's coverage lands slightly *below* STMS's, which is why
//! the idea was shelved until Domino combined both lookups.

use domino_trace::{FxHashMap, FxHashSet};

use domino_mem::history::{HistoryTable, ROW_ENTRIES};
use domino_mem::interface::{
    CollectSink, PrefetchSink, Prefetcher, TriggerBatch, TriggerEvent, TriggerKind,
};
use domino_mem::metadata::UpdateSampler;
use domino_trace::addr::LineAddr;

use crate::config::TemporalConfig;
use domino_mem::streams::{top_up, StreamTable};

/// Index key: the last two triggering events, oldest first.
type PairKey = (LineAddr, LineAddr);

/// The Digram prefetcher.
#[derive(Debug)]
pub struct Digram {
    cfg: TemporalConfig,
    ht: HistoryTable,
    /// Index Table: (previous, current) → HT position of `current`.
    index: FxHashMap<PairKey, u64>,
    /// Target lines present in the index (observability: answers
    /// `knows_line` without scanning the pair keys).
    known: FxHashSet<LineAddr>,
    streams: StreamTable<PairKey>,
    sampler: UpdateSampler,
    /// The previous triggering event, if any.
    prev: Option<LineAddr>,
    lookups: u64,
    lookup_matches: u64,
}

impl Digram {
    /// Creates a Digram instance.
    pub fn new(cfg: TemporalConfig) -> Self {
        cfg.validate();
        Digram {
            ht: HistoryTable::new(cfg.ht_entries),
            index: FxHashMap::default(),
            known: FxHashSet::default(),
            streams: StreamTable::new(cfg.max_streams),
            sampler: UpdateSampler::new(cfg.sampling_probability, cfg.seed ^ 0xD16),
            cfg,
            prev: None,
            lookups: 0,
            lookup_matches: 0,
        }
    }

    fn log(&mut self, line: LineAddr, stream_head: bool, sink: &mut dyn PrefetchSink) -> u64 {
        let pos = self.ht.append(line, stream_head);
        if (pos + 1).is_multiple_of(ROW_ENTRIES as u64) {
            sink.metadata_write(1);
        }
        pos
    }

    /// Statistical index update for the pair `(prev, line)`.
    fn update_index(
        &mut self,
        prev: Option<LineAddr>,
        line: LineAddr,
        pos: u64,
        sink: &mut dyn PrefetchSink,
    ) {
        let Some(prev) = prev else { return };
        if self.sampler.sample() {
            self.index.insert((prev, line), pos);
            self.known.insert(line);
            sink.metadata_write(1);
        }
    }

    /// Fraction of pair lookups that found a live pointer (Figure 4's
    /// two-address series).
    pub fn lookup_match_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.lookup_matches as f64 / self.lookups as f64
        }
    }
}

impl Prefetcher for Digram {
    fn name(&self) -> &str {
        "Digram"
    }

    fn reserve(&mut self, expected_events: usize) {
        self.ht.reserve(expected_events);
    }

    fn emit_counters(&self, sink: &mut dyn domino_telemetry::CounterSink) {
        sink.counter("index.lookups", self.lookups);
        sink.counter("index.matches", self.lookup_matches);
    }

    fn knows_line(&self, line: LineAddr) -> bool {
        self.known.contains(&line)
    }

    fn on_trigger(&mut self, event: &TriggerEvent, sink: &mut dyn PrefetchSink) {
        let line = event.line;
        let mut trips = 0u8;
        let prev = self.prev.replace(line);
        match event.kind {
            TriggerKind::PrefetchHit => {
                let pos = self.log(line, false, sink);
                if self.streams.consume(line).is_some() {
                    let s = self.streams.mru_mut().expect("consume promoted it");
                    top_up(
                        s,
                        &self.ht,
                        self.cfg.degree,
                        line,
                        self.cfg.stream_end_detection,
                        &mut trips,
                        sink,
                    );
                }
                self.update_index(prev, line, pos, sink);
            }
            TriggerKind::Miss => {
                if self.streams.consume(line).is_some() {
                    let pos = self.log(line, false, sink);
                    let s = self.streams.mru_mut().expect("consume promoted it");
                    top_up(
                        s,
                        &self.ht,
                        self.cfg.degree,
                        line,
                        self.cfg.stream_end_detection,
                        &mut trips,
                        sink,
                    );
                    self.update_index(prev, line, pos, sink);
                    return;
                }
                let pos = self.log(line, true, sink);
                let Some(prev) = prev else {
                    return; // very first event: no pair to look up
                };
                let key = (prev, line);
                sink.metadata_read(1);
                trips += 1;
                self.lookups += 1;
                let found = self
                    .index
                    .get(&key)
                    .copied()
                    .filter(|&p| p < pos && self.ht.is_live(p + 1));
                if let Some(prev_pos) = found {
                    self.lookup_matches += 1;
                    let (evicted, _id) = self.streams.allocate(prev_pos + 1, None, key);
                    if let Some(dead) = evicted {
                        sink.discard_stream(dead.id);
                    }
                    let s = self.streams.mru_mut().expect("just allocated");
                    top_up(
                        s,
                        &self.ht,
                        self.cfg.degree,
                        line,
                        self.cfg.stream_end_detection,
                        &mut trips,
                        sink,
                    );
                }
                self.update_index(Some(prev), line, pos, sink);
            }
        }
    }

    fn train_predict_batch(&mut self, batch: &mut dyn TriggerBatch, sink: &mut CollectSink) {
        // Hash-then-probe over *pair* keys: the chunk's trigger lines,
        // seeded from `self.prev`, reconstruct exactly the (prev, line)
        // keys the serial drain will look up — `prev` advances on every
        // trigger regardless of kind. Probes are read-only.
        let mut warm = 0usize;
        let mut prev = self.prev;
        for &line in batch.pending_lines() {
            if let Some(p) = prev {
                if self.index.contains_key(&(p, line)) {
                    warm += 1;
                }
            }
            prev = Some(line);
        }
        std::hint::black_box(warm);
        while let Some(event) = batch.next(sink) {
            self.on_trigger(&event, sink);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_mem::interface::CollectSink;
    use domino_trace::addr::Pc;

    fn cfg() -> TemporalConfig {
        TemporalConfig {
            sampling_probability: 1.0,
            stream_end_detection: false,
            ..TemporalConfig::default()
        }
    }

    fn miss(line: u64) -> TriggerEvent {
        TriggerEvent::miss(Pc::new(0), LineAddr::new(line))
    }

    fn run(d: &mut Digram, lines: &[u64]) -> Vec<u64> {
        let mut out = Vec::new();
        for &l in lines {
            let mut sink = CollectSink::new();
            d.on_trigger(&miss(l), &mut sink);
            out.extend(sink.requests.iter().map(|r| r.line.raw()));
        }
        out
    }

    #[test]
    fn needs_two_addresses_before_prefetching() {
        let mut d = Digram::new(cfg().with_degree(2));
        run(&mut d, &[1, 2, 3, 4, 5]);
        // Second pass: the first miss alone cannot trigger anything.
        let mut sink = CollectSink::new();
        d.on_trigger(&miss(1), &mut sink);
        assert!(sink.requests.is_empty(), "one address is not enough");
        // After the second miss the pair (1,2) matches: prefetch 3, 4.
        let mut sink = CollectSink::new();
        d.on_trigger(&miss(2), &mut sink);
        let lines: Vec<u64> = sink.requests.iter().map(|r| r.line.raw()).collect();
        assert_eq!(lines, vec![3, 4]);
        assert!(sink.requests.iter().all(|r| r.delay_trips == 2));
    }

    #[test]
    fn two_address_lookup_disambiguates_junctions() {
        // Streams X=[100,7,101] and Y=[200,7,201]. STMS would follow the
        // most recent occurrence of 7; Digram keys on the pair and follows
        // the right stream.
        let mut d = Digram::new(cfg().with_degree(1));
        run(&mut d, &[100, 7, 101, 900, 200, 7, 201, 901]);
        let mut sink = CollectSink::new();
        d.on_trigger(&miss(100), &mut sink);
        d.on_trigger(&miss(7), &mut sink);
        let lines: Vec<u64> = sink.requests.iter().map(|r| r.line.raw()).collect();
        assert!(
            lines.contains(&101),
            "pair (100,7) must resume the first stream: {lines:?}"
        );
        assert!(!lines.contains(&201));
    }

    #[test]
    fn pair_lookup_matches_less_often_than_single() {
        // Random-ish interleavings: the same addresses recur but pairs
        // often do not — Figure 4's effect.
        let mut d = Digram::new(cfg());
        let mut s = crate::stms::Stms::new(cfg());
        let seq: Vec<u64> = (0..400).map(|i| (i * 7919) % 23).collect();
        for &l in &seq {
            d.on_trigger(&miss(l), &mut CollectSink::new());
            s.on_trigger(&miss(l), &mut CollectSink::new());
        }
        assert!(
            d.lookup_match_rate() <= s.lookup_match_rate() + 1e-9,
            "digram {} vs stms {}",
            d.lookup_match_rate(),
            s.lookup_match_rate()
        );
    }

    #[test]
    fn no_prefetch_on_fresh_pairs() {
        let mut d = Digram::new(cfg());
        let issued = run(&mut d, &[1, 2, 3, 1, 3, 2]);
        assert!(issued.is_empty(), "no pair repeats: {issued:?}");
    }
}
