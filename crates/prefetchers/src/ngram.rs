//! History-lookup analysis by context depth — the machinery behind the
//! paper's motivation figures.
//!
//! * [`LookupAnalyzer`]: for every triggering event and every depth
//!   `k = 1..=max`, looks up the last `k` events in the full history and
//!   checks whether (a) the context has occurred before (**match**,
//!   Figure 4) and (b) the address following the previous occurrence is
//!   the actual next event (**correct**, Figure 3).
//! * [`MultiDepthPrefetcher`]: the recursive-lookup prefetcher of
//!   Figure 5 — "look up the history with the last N misses; if a match
//!   is found, issue a prefetch based on the match; otherwise look up
//!   with one fewer miss" — with unlimited in-memory history.
//!
//! Contexts are keyed by a 128-bit hash so memory stays linear in the
//! trace length; collisions are negligible at the trace sizes involved.

use domino_trace::FxHashMap;

use domino_mem::interface::{PrefetchRequest, PrefetchSink, Prefetcher, TriggerEvent, TriggerKind};
use domino_trace::addr::LineAddr;

/// 128-bit FNV-1a over a slice of `u64`s.
fn hash128(values: &[u64]) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut h = OFFSET;
    for &v in values {
        for b in v.to_le_bytes() {
            h ^= u128::from(b);
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// Per-depth lookup statistics (Figures 3 and 4).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LookupDepthStats {
    /// Lookups attempted (context available).
    pub lookups: Vec<u64>,
    /// Lookups that found the context in history.
    pub matches: Vec<u64>,
    /// Matches whose predicted successor was the actual next event.
    pub correct: Vec<u64>,
}

impl LookupDepthStats {
    fn new(max_depth: usize) -> Self {
        LookupDepthStats {
            lookups: vec![0; max_depth],
            matches: vec![0; max_depth],
            correct: vec![0; max_depth],
        }
    }

    /// Figure 4's series: P(match) per depth (1-indexed by position).
    pub fn match_fractions(&self) -> Vec<f64> {
        self.lookups
            .iter()
            .zip(&self.matches)
            .map(|(&l, &m)| if l == 0 { 0.0 } else { m as f64 / l as f64 })
            .collect()
    }

    /// Figure 3's series: P(correct | match) per depth.
    pub fn correct_given_match(&self) -> Vec<f64> {
        self.matches
            .iter()
            .zip(&self.correct)
            .map(|(&m, &c)| if m == 0 { 0.0 } else { c as f64 / m as f64 })
            .collect()
    }
}

/// Online analyzer of lookup depth vs match rate and accuracy.
#[derive(Debug)]
pub struct LookupAnalyzer {
    max_depth: usize,
    history: Vec<u64>,
    /// Per depth: context hash → position of the context's last element.
    maps: Vec<FxHashMap<u128, u64>>,
    /// Predictions awaiting the next event, per depth.
    pending: Vec<Option<u64>>,
    stats: LookupDepthStats,
}

impl LookupAnalyzer {
    /// Creates an analyzer for depths `1..=max_depth`.
    ///
    /// # Panics
    ///
    /// Panics if `max_depth` is zero.
    pub fn new(max_depth: usize) -> Self {
        assert!(max_depth > 0, "need at least depth 1");
        LookupAnalyzer {
            max_depth,
            history: Vec::new(),
            maps: vec![FxHashMap::default(); max_depth],
            pending: vec![None; max_depth],
            stats: LookupDepthStats::new(max_depth),
        }
    }

    /// Feeds the next miss address.
    pub fn push(&mut self, line: LineAddr) {
        let v = line.raw();
        // Resolve predictions made at the previous event.
        for (k, pred) in self.pending.iter_mut().enumerate() {
            if let Some(p) = pred.take() {
                if p == v {
                    self.stats.correct[k] += 1;
                }
            }
        }
        self.history.push(v);
        let n = self.history.len() as u64;
        for k in 1..=self.max_depth {
            if (n as usize) < k {
                break;
            }
            let key = hash128(&self.history[n as usize - k..]);
            self.stats.lookups[k - 1] += 1;
            if let Some(&pos) = self.maps[k - 1].get(&key) {
                self.stats.matches[k - 1] += 1;
                if (pos + 1) < n {
                    self.pending[k - 1] = Some(self.history[(pos + 1) as usize]);
                }
            }
            self.maps[k - 1].insert(key, n - 1);
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &LookupDepthStats {
        &self.stats
    }
}

/// The recursive multi-depth temporal prefetcher of Figure 5.
///
/// On each triggering event it looks up the deepest available context
/// (N, N-1, …, 1 events) and prefetches the `degree` addresses that
/// followed the match in the unbounded in-memory history.
#[derive(Debug)]
pub struct MultiDepthPrefetcher {
    depth: usize,
    degree: usize,
    name: String,
    history: Vec<u64>,
    maps: Vec<FxHashMap<u128, u64>>,
}

impl MultiDepthPrefetcher {
    /// Creates a prefetcher matching up to `depth` addresses, issuing
    /// `degree` prefetches per match.
    ///
    /// # Panics
    ///
    /// Panics if `depth` or `degree` is zero.
    pub fn new(depth: usize, degree: usize) -> Self {
        assert!(depth > 0, "depth must be positive");
        assert!(degree > 0, "degree must be positive");
        MultiDepthPrefetcher {
            depth,
            degree,
            name: format!("Lookup-{depth}"),
            history: Vec::new(),
            maps: vec![FxHashMap::default(); depth],
        }
    }
}

impl Prefetcher for MultiDepthPrefetcher {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_trigger(&mut self, event: &TriggerEvent, sink: &mut dyn PrefetchSink) {
        self.history.push(event.line.raw());
        let n = self.history.len();
        // Deepest-match lookup (only demand misses start new predictions;
        // hits simply extend the recorded stream like a temporal log).
        let mut matched: Option<u64> = None;
        for k in (1..=self.depth.min(n)).rev() {
            let key = hash128(&self.history[n - k..]);
            if let Some(&pos) = self.maps[k - 1].get(&key) {
                matched = Some(pos);
                break;
            }
        }
        if event.kind == TriggerKind::Miss || matched.is_some() {
            if let Some(pos) = matched {
                for d in 1..=self.degree {
                    let idx = pos as usize + d;
                    if idx >= n - 1 {
                        break; // don't predict from the present
                    }
                    let line = LineAddr::new(self.history[idx]);
                    if line != event.line {
                        sink.prefetch(PrefetchRequest {
                            line,
                            delay_trips: 2,
                            stream: None,
                        });
                    }
                }
            }
        }
        // Train all depths.
        for k in 1..=self.depth.min(n) {
            let key = hash128(&self.history[n - k..]);
            self.maps[k - 1].insert(key, n as u64 - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_mem::interface::CollectSink;
    use domino_trace::addr::Pc;

    fn push_all(a: &mut LookupAnalyzer, seq: &[u64]) {
        for &v in seq {
            a.push(LineAddr::new(v));
        }
    }

    #[test]
    fn repetition_yields_matches_and_correctness() {
        let mut a = LookupAnalyzer::new(3);
        let mut seq = Vec::new();
        for _ in 0..20 {
            seq.extend_from_slice(&[1, 2, 3, 4]);
        }
        push_all(&mut a, &seq);
        let m = a.stats().match_fractions();
        let c = a.stats().correct_given_match();
        assert!(m[0] > 0.0, "depth-1 matches expected");
        assert!(
            c.iter().all(|&x| x > 0.9),
            "pure repetition: accuracy at every depth {c:?}"
        );
    }

    #[test]
    fn junctions_make_single_address_inaccurate() {
        // 7 is followed by 101 and 201 alternately; depth 1 is ~50%
        // accurate, depth 2 nearly perfect.
        let mut a = LookupAnalyzer::new(2);
        let mut seq = Vec::new();
        for _ in 0..50 {
            seq.extend_from_slice(&[100, 7, 101, 200, 7, 201]);
        }
        push_all(&mut a, &seq);
        let c = a.stats().correct_given_match();
        assert!(c[0] < 0.7, "depth-1 accuracy should suffer: {c:?}");
        assert!(c[1] > 0.95, "depth-2 accuracy should recover: {c:?}");
    }

    #[test]
    fn deeper_contexts_match_less_often() {
        let mut a = LookupAnalyzer::new(4);
        // Mildly repetitive with noise.
        let seq: Vec<u64> = (0..600).map(|i| (i * 31) % 47).collect();
        push_all(&mut a, &seq);
        let m = a.stats().match_fractions();
        for w in m.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "match rate must not increase: {m:?}");
        }
    }

    #[test]
    fn multi_depth_prefetcher_uses_deepest_match() {
        let mut p = MultiDepthPrefetcher::new(2, 1);
        let mut sink = CollectSink::new();
        let seq = [100, 7, 101, 900, 200, 7, 201, 901, 100, 7];
        for &l in &seq {
            sink.clear();
            p.on_trigger(&TriggerEvent::miss(Pc::new(0), LineAddr::new(l)), &mut sink);
        }
        // Last event: context (100,7) matches its first occurrence →
        // prefetch 101, not 201.
        let lines: Vec<u64> = sink.requests.iter().map(|r| r.line.raw()).collect();
        assert_eq!(lines, vec![101]);
    }

    #[test]
    fn depth_one_prefetcher_follows_last_occurrence() {
        let mut p = MultiDepthPrefetcher::new(1, 1);
        let mut sink = CollectSink::new();
        let seq = [100, 7, 101, 900, 200, 7, 201, 901, 100, 7];
        for &l in &seq {
            sink.clear();
            p.on_trigger(&TriggerEvent::miss(Pc::new(0), LineAddr::new(l)), &mut sink);
        }
        let lines: Vec<u64> = sink.requests.iter().map(|r| r.line.raw()).collect();
        assert_eq!(lines, vec![201], "single-address lookup takes the last");
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn zero_depth_panics() {
        MultiDepthPrefetcher::new(0, 1);
    }
}
