//! Lookup-depth study (paper §II, Figures 3–5): sweep the number of miss
//! addresses a temporal lookup matches against, measuring accuracy,
//! match rate, and end-to-end coverage/overpredictions of the recursive
//! multi-depth prefetcher.
//!
//! ```sh
//! cargo run --release --example lookup_depth_study
//! ```

use domino_repro::sim::figures::{fig03, fig04, fig05, Scale};

fn main() {
    let scale = Scale {
        events: 250_000,
        seed: 42,
    };
    println!("{}", fig03(&scale));
    println!("{}", fig04(&scale));
    for table in fig05(&scale) {
        println!("{table}");
    }
    println!(
        "Reading the three tables together gives the paper's §II conclusion:\n\
         accuracy saturates at two addresses while match rate keeps falling,\n\
         so a prefetcher should combine one- and two-address lookups — Domino."
    );
}
