/root/repo/target/debug/examples/quickstart-5851c5bc3d9be840.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-5851c5bc3d9be840: examples/quickstart.rs

examples/quickstart.rs:
