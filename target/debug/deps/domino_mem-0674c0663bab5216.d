/root/repo/target/debug/deps/domino_mem-0674c0663bab5216.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/history.rs crates/mem/src/interface.rs crates/mem/src/metadata.rs crates/mem/src/mshr.rs crates/mem/src/prefetch_buffer.rs crates/mem/src/streams.rs

/root/repo/target/debug/deps/domino_mem-0674c0663bab5216: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/history.rs crates/mem/src/interface.rs crates/mem/src/metadata.rs crates/mem/src/mshr.rs crates/mem/src/prefetch_buffer.rs crates/mem/src/streams.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/dram.rs:
crates/mem/src/history.rs:
crates/mem/src/interface.rs:
crates/mem/src/metadata.rs:
crates/mem/src/mshr.rs:
crates/mem/src/prefetch_buffer.rs:
crates/mem/src/streams.rs:
