//! Layout-parity proof for the flat [`SetAssocCache`].
//!
//! The cache used to store each set as its own `Vec<LineAddr>` in
//! replacement order (`remove(pos)` + `push` promotion). The flat layout
//! replaced that with one contiguous slab and `rotate_left` on the
//! occupied prefix — a pure storage change. This test keeps the old
//! layout alive as a reference model and drives both implementations
//! through exhaustive small-config pseudo-random op streams, asserting
//! identical hit/miss results, eviction victims, invalidation outcomes,
//! and counters at every step.

use domino_mem::cache::{CacheConfig, Replacement, SetAssocCache};
use domino_trace::addr::{LineAddr, LINE_BYTES};

/// The pre-flat cache: per-set `Vec`s in replacement order (index 0 the
/// victim end), exactly as the original implementation kept them.
struct ReferenceCache {
    config: CacheConfig,
    set_mask: u64,
    sets: Vec<Vec<LineAddr>>,
    rand_state: u64,
    hits: u64,
    misses: u64,
}

impl ReferenceCache {
    fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        ReferenceCache {
            config,
            set_mask: sets as u64 - 1,
            sets: vec![Vec::with_capacity(config.ways); sets],
            rand_state: 0x9e37_79b9_7f4a_7c15,
            hits: 0,
            misses: 0,
        }
    }

    fn set_index(&self, line: LineAddr) -> usize {
        (line.raw() & self.set_mask) as usize
    }

    fn access(&mut self, line: LineAddr) -> bool {
        let promote = self.config.replacement == Replacement::Lru;
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            if promote {
                let l = set.remove(pos);
                set.push(l);
            }
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    fn contains(&self, line: LineAddr) -> bool {
        self.sets[self.set_index(line)].contains(&line)
    }

    fn insert(&mut self, line: LineAddr) -> Option<LineAddr> {
        let replacement = self.config.replacement;
        let ways = self.config.ways;
        let idx = self.set_index(line);
        // The RNG advances on every insert under Random — before the
        // presence check — matching the production cache exactly.
        if replacement == Replacement::Random {
            self.rand_state ^= self.rand_state << 13;
            self.rand_state ^= self.rand_state >> 7;
            self.rand_state ^= self.rand_state << 17;
        }
        let victim_pos = (self.rand_state % ways as u64) as usize;
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            if replacement == Replacement::Lru {
                let l = set.remove(pos);
                set.push(l);
            }
            return None;
        }
        if set.len() == ways {
            let evict_pos = match replacement {
                Replacement::Lru | Replacement::Fifo => 0,
                Replacement::Random => victim_pos,
            };
            let evicted = set.remove(evict_pos);
            set.push(line);
            Some(evicted)
        } else {
            set.push(line);
            None
        }
    }

    fn invalidate(&mut self, line: LineAddr) -> bool {
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            set.remove(pos);
            true
        } else {
            false
        }
    }

    fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

/// Deterministic op-stream driver comparing both models step by step.
fn drive(config: CacheConfig, ops: usize, seed: u64) {
    let mut flat = SetAssocCache::new(config);
    let mut reference = ReferenceCache::new(config);
    // Address pool ~2x capacity so sets overflow and evict regularly.
    let pool = (config.sets() * config.ways * 2) as u64;
    let mut rng = seed | 1;
    for step in 0..ops {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let line = LineAddr::new((rng >> 8) % pool);
        let ctx = format!(
            "step {step}, line {} ({:?}, {} ways)",
            line.raw(),
            config.replacement,
            config.ways
        );
        match rng % 10 {
            0..=3 => {
                assert_eq!(flat.access(line), reference.access(line), "access: {ctx}");
            }
            4..=7 => {
                assert_eq!(flat.insert(line), reference.insert(line), "insert: {ctx}");
            }
            8 => {
                assert_eq!(
                    flat.invalidate(line),
                    reference.invalidate(line),
                    "invalidate: {ctx}"
                );
            }
            _ => {
                assert_eq!(
                    flat.contains(line),
                    reference.contains(line),
                    "contains: {ctx}"
                );
            }
        }
        assert_eq!(flat.len(), reference.len(), "occupancy: {ctx}");
    }
    assert_eq!(
        flat.hit_miss(),
        reference.hit_miss(),
        "final counters ({:?}, {} ways)",
        config.replacement,
        config.ways
    );
}

#[test]
fn flat_cache_matches_per_set_vec_reference_exhaustively() {
    for replacement in [Replacement::Lru, Replacement::Fifo, Replacement::Random] {
        for ways in [1usize, 2, 3, 4, 8] {
            for sets in [1usize, 2, 4] {
                let config = CacheConfig {
                    size_bytes: (sets * ways) as u64 * LINE_BYTES,
                    ways,
                    replacement,
                };
                for seed in 1..=8u64 {
                    drive(config, 4000, 0x5eed_0000 + seed);
                }
            }
        }
    }
}

#[test]
fn flat_cache_matches_reference_on_paper_geometry() {
    drive(CacheConfig::l1d(), 20_000, 0xd0d0);
    drive(
        CacheConfig {
            replacement: Replacement::Random,
            ..CacheConfig::l1d()
        },
        20_000,
        0xd0d1,
    );
}
