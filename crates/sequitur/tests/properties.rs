//! Property-based tests for the Sequitur grammar and the oracle replay.
//!
//! The two Sequitur invariants (digram uniqueness, rule utility) and the
//! lossless-reconstruction property must hold for *every* input; random
//! sequences over small alphabets are the harshest exercise because they
//! maximize rule churn (create/absorb/expand cycles).

use domino_sequitur::oracle::{oracle_replay, OracleConfig};
use domino_sequitur::{analysis, GrammarStats, Sequitur};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Expansion reproduces the input exactly, for any sequence.
    #[test]
    fn expansion_is_lossless(input in proptest::collection::vec(0u64..8, 0..400)) {
        let g = Sequitur::from_sequence(input.iter().copied());
        prop_assert_eq!(g.expand(), input);
    }

    /// Both grammar invariants hold after every prefix of any input.
    #[test]
    fn invariants_hold_incrementally(input in proptest::collection::vec(0u64..6, 0..120)) {
        let mut g = Sequitur::new();
        for &t in &input {
            g.push(t);
            if let Err(e) = g.check_invariants() {
                prop_assert!(false, "invariant violated: {e}");
            }
        }
    }

    /// Wider alphabets (less rule churn) must also stay lossless and valid.
    #[test]
    fn wide_alphabet_lossless(input in proptest::collection::vec(0u64..1000, 0..300)) {
        let g = Sequitur::from_sequence(input.iter().copied());
        prop_assert_eq!(g.expand(), input);
        prop_assert!(g.check_invariants().is_ok());
    }

    /// Grammar coverage is always a valid fraction, and zero for inputs
    /// with no repeated digram.
    #[test]
    fn coverage_bounds(input in proptest::collection::vec(0u64..16, 0..300)) {
        let g = Sequitur::from_sequence(input.iter().copied());
        let cov = analysis::grammar_coverage(&g);
        prop_assert!((0.0..=1.0).contains(&cov));
    }

    /// Grammar size never exceeds input size (compression, never expansion).
    #[test]
    fn grammar_never_larger_than_input(input in proptest::collection::vec(0u64..10, 1..300)) {
        let g = Sequitur::from_sequence(input.iter().copied());
        let stats = GrammarStats::of(&g);
        prop_assert!(stats.grammar_symbols as u64 <= stats.input_len + 1,
            "grammar {} vs input {}", stats.grammar_symbols, stats.input_len);
    }

    /// Oracle accounting: covered misses equal the sum of stream lengths,
    /// and coverage is a fraction.
    #[test]
    fn oracle_accounting(input in proptest::collection::vec(0u64..32, 0..500)) {
        let r = oracle_replay(&input, &OracleConfig::default());
        prop_assert!(r.covered <= r.total);
        let hist_streams: u64 = r.stream_lengths.counts().iter().sum();
        prop_assert_eq!(hist_streams, r.streams);
        let mean_times_streams = r.mean_stream_length() * r.streams as f64;
        prop_assert!((mean_times_streams - r.covered as f64).abs() < 1e-6,
            "streams sum {} vs covered {}", mean_times_streams, r.covered);
    }

    /// Doubling a sequence always yields at least 40% oracle coverage on
    /// the second half (minus the single trigger miss).
    #[test]
    fn oracle_covers_verbatim_repeats(base in proptest::collection::vec(0u64..64, 8..100)) {
        let mut input = base.clone();
        input.extend_from_slice(&base);
        let r = oracle_replay(&input, &OracleConfig::default());
        // The entire second half except stream (re)starts is coverable.
        prop_assert!(r.covered as usize + 8 >= base.len() / 2,
            "covered {} of {} repeated", r.covered, base.len());
    }
}
