/root/repo/target/release/deps/figures-84fbe0014b42345c.d: crates/bench/benches/figures.rs Cargo.toml

/root/repo/target/release/deps/libfigures-84fbe0014b42345c.rmeta: crates/bench/benches/figures.rs Cargo.toml

crates/bench/benches/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
