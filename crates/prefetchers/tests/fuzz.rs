//! Fuzz-style property tests over the whole roster: every system in
//! [`domino_sim::roster::System::all`] must be total (no panics),
//! deterministic, and well-behaved (bounded per-event output, no
//! self-prefetch) on arbitrary trigger sequences.
//!
//! Driving the suite from the roster instead of a hand-kept list means
//! a newly added prefetcher is fuzzed the moment it joins the enum.
//!
//! Cases are generated from a seeded [`SimRng`] so the suite is fully
//! deterministic and dependency-free. Generated streams never contain
//! two consecutive identical lines: the replay engines cannot produce
//! that trigger pattern either (after a miss the line sits in L1 and
//! the next access to it is neither a miss nor a prefetch hit), so the
//! fuzzer stays inside the contract the prefetchers are written for.

use domino_mem::interface::{CollectSink, Prefetcher, TriggerEvent};
use domino_sim::roster::System;
use domino_trace::addr::{LineAddr, Pc};
use domino_trace::rng::SimRng;

const CASES: u64 = 32;
const DEGREES: [usize; 2] = [1, 4];

/// (pc, line, is_hit) triples over a small universe — small alphabets
/// maximise junctions, replays, and stream churn. Consecutive events
/// never share a line (see module docs).
fn events(rng: &mut SimRng) -> Vec<(u64, u64, bool)> {
    let len = 1 + rng.index(500);
    let mut out: Vec<(u64, u64, bool)> = Vec::with_capacity(len);
    while out.len() < len {
        let line = rng.below(64);
        if out.last().is_some_and(|&(_, prev, _)| prev == line) {
            continue;
        }
        out.push((rng.below(8), line, rng.chance(0.5)));
    }
    out
}

fn trigger(pc: u64, line: u64, hit: bool) -> TriggerEvent {
    if hit {
        TriggerEvent::prefetch_hit(Pc::new(pc), LineAddr::new(line))
    } else {
        TriggerEvent::miss(Pc::new(pc), LineAddr::new(line))
    }
}

fn drive(p: &mut dyn Prefetcher, evs: &[(u64, u64, bool)]) -> Vec<(u64, u8)> {
    let mut out = Vec::new();
    let mut sink = CollectSink::new();
    for &(pc, line, hit) in evs {
        sink.clear();
        p.on_trigger(&trigger(pc, line, hit), &mut sink);
        for r in &sink.requests {
            out.push((r.line.raw(), r.delay_trips));
        }
    }
    out
}

/// No system panics or prefetches the triggering line itself, and no
/// single event explodes into an unbounded burst of requests.
#[test]
fn total_and_never_self_prefetching() {
    for case in 0..CASES {
        let mut rng = SimRng::seed(0xA11C_E500 + case);
        let evs = events(&mut rng);
        for sys in System::all() {
            for degree in DEGREES {
                let mut p = sys.build(degree);
                let mut sink = CollectSink::new();
                for &(pc, line, hit) in &evs {
                    sink.clear();
                    p.on_trigger(&trigger(pc, line, hit), &mut sink);
                    for r in &sink.requests {
                        assert_ne!(
                            r.line,
                            LineAddr::new(line),
                            "{} (degree {degree}) prefetched the demand line",
                            sys.label()
                        );
                    }
                    assert!(
                        sink.requests.len() <= 64,
                        "{} (degree {degree}) issued {} requests in one event",
                        sys.label(),
                        sink.requests.len()
                    );
                }
            }
        }
    }
}

/// Every system is deterministic: same inputs, same outputs.
#[test]
fn deterministic() {
    for case in 0..CASES {
        let mut rng = SimRng::seed(0xDE7E_0000 + case);
        let evs = events(&mut rng);
        for sys in System::all() {
            for degree in DEGREES {
                let out_a = drive(sys.build(degree).as_mut(), &evs);
                let out_b = drive(sys.build(degree).as_mut(), &evs);
                assert_eq!(out_a, out_b, "{} (degree {degree})", sys.label());
            }
        }
    }
}

/// Only the off-chip temporal designs read metadata from memory; every
/// on-chip system must report zero metadata traffic.
#[test]
fn metadata_only_from_offchip_designs() {
    for case in 0..CASES {
        let mut rng = SimRng::seed(0x0FFC_0000 + case);
        let evs = events(&mut rng);
        for sys in System::all() {
            let mut p = sys.build(4);
            let mut sink = CollectSink::new();
            for &(pc, line, _) in &evs {
                p.on_trigger(
                    &TriggerEvent::miss(Pc::new(pc), LineAddr::new(line)),
                    &mut sink,
                );
            }
            let offchip = matches!(
                sys,
                System::Stms
                    | System::Digram
                    | System::Domino
                    | System::DominoNaive
                    | System::MultiDepth(_)
                    | System::VldpPlusDomino
            );
            if !offchip {
                assert_eq!(
                    sink.meta_read_blocks,
                    0,
                    "{} should be on-chip",
                    sys.label()
                );
            }
        }
    }
}
