/root/repo/target/debug/deps/eit_properties-9f8516bb73fcea16.d: crates/core/tests/eit_properties.rs Cargo.toml

/root/repo/target/debug/deps/libeit_properties-9f8516bb73fcea16.rmeta: crates/core/tests/eit_properties.rs Cargo.toml

crates/core/tests/eit_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
