/root/repo/target/debug/deps/engine_invariants-2b41dc7dc880ff24.d: tests/engine_invariants.rs

/root/repo/target/debug/deps/engine_invariants-2b41dc7dc880ff24: tests/engine_invariants.rs

tests/engine_invariants.rs:
