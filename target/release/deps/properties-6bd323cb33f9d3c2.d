/root/repo/target/release/deps/properties-6bd323cb33f9d3c2.d: crates/trace/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-6bd323cb33f9d3c2.rmeta: crates/trace/tests/properties.rs Cargo.toml

crates/trace/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
