/root/repo/target/debug/examples/lookup_depth_study-a002d5e936ca560b.d: examples/lookup_depth_study.rs

/root/repo/target/debug/examples/lookup_depth_study-a002d5e936ca560b: examples/lookup_depth_study.rs

examples/lookup_depth_study.rs:
