//! Proof that the observability hot path is zero-allocation after
//! warmup (see DESIGN.md, "Live observability plane").
//!
//! A counting `#[global_allocator]` wraps the system allocator in this
//! test binary only (the same harness as `alloc_free.rs`). The metrics
//! ring and span ring preallocate every slab at construction, so
//! sampling an interval row or recording a span must cost zero
//! allocations — not amortized-zero, zero — no matter how many times
//! the ring wraps. Serialization (`to_bytes`) allocates and is only
//! ever called at flush points, never per batch.

use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::sync::atomic::{AtomicU64, Ordering};

use domino_telemetry::{MetricSpec, MetricsRing, SpanRecord, SpanRing, SpanSampler};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        SystemAlloc.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        SystemAlloc.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        SystemAlloc.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        SystemAlloc.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn counted<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = f();
    (result, ALLOCATIONS.load(Ordering::Relaxed) - before)
}

/// The harness itself must have teeth.
#[test]
fn counting_allocator_sees_allocations() {
    let ((), allocs) = counted(|| {
        let v: Vec<Box<u64>> = (0..50).map(Box::new).collect();
        assert_eq!(v.len(), 50);
    });
    assert!(allocs >= 50, "only {allocs} allocations counted");
}

#[test]
fn metrics_ring_sampling_allocates_nothing() {
    // Construction allocates (name strings, slabs) — that is warmup.
    let mut ring = MetricsRing::new(
        64,
        vec![
            MetricSpec::counter("events"),
            MetricSpec::counter("batches"),
            MetricSpec::counter("shed"),
            MetricSpec::gauge("queue_depth"),
            MetricSpec::gauge("footprint_bytes"),
        ],
    );
    let mut values = [0u64; 5];
    // 1000 samples over a 64-row ring: wraps ~15 times. Every sample
    // must be pure slab writes.
    let ((), allocs) = counted(|| {
        for i in 1..=1000u64 {
            values[0] = i * 32;
            values[1] = i;
            values[2] = i / 7;
            values[3] = i % 9;
            values[4] = 4096 + i;
            ring.sample(i * 32, &values);
        }
    });
    assert_eq!(
        allocs, 0,
        "{allocs} allocations across 1000 interval samples — the metrics \
         ring must be pure slab writes after construction"
    );
    assert!(ring.wrapped());
    assert_eq!(ring.totals()[0], 32_000);
}

#[test]
fn span_ring_recording_allocates_nothing() {
    let sampler = SpanSampler::new(4, 0xD0);
    let mut ring = SpanRing::new(128);
    let ((), allocs) = counted(|| {
        for seq in 0..2000u64 {
            // The sampler decision itself is on the hot path too.
            if sampler.sampled(seq % 13, seq) {
                ring.record(SpanRecord {
                    tenant: seq % 13,
                    seq,
                    shard: 0,
                    events: 32,
                    submit_ns: seq * 100,
                    enqueue_ns: seq * 100 + 1,
                    dequeue_ns: seq * 100 + 5,
                    step_ns: seq * 100 + 80,
                    reply_ns: seq * 100 + 90,
                });
            }
        }
    });
    assert_eq!(
        allocs, 0,
        "{allocs} allocations across 2000 sampled span decisions — span \
         recording must be a slot overwrite"
    );
    assert!(!ring.is_empty());
}
