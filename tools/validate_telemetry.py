#!/usr/bin/env python3
"""Validates telemetry JSON emitted by the figure sweeps.

Usage: validate_telemetry.py <dir-or-file>...

Accepts directories (validates every telemetry_*.json plus the
TELEMETRY_sweep.json aggregate and cross-checks them) or individual
files. Exits non-zero with a per-file message on the first structural
problem, so tools/check.sh can gate on it. Uses only the stdlib.
"""

import json
import sys
from pathlib import Path

REPORT_SCHEMA = "domino-telemetry/1"
SWEEP_SCHEMA = "domino-telemetry-sweep/1"


def fail(path, msg):
    sys.exit(f"validate_telemetry: {path}: {msg}")


def is_u64(v):
    return isinstance(v, int) and not isinstance(v, bool) and 0 <= v < 2**64


def check_report(path, r):
    if not isinstance(r, dict):
        fail(path, "report is not an object")
    if r.get("schema") != REPORT_SCHEMA:
        fail(path, f"schema is {r.get('schema')!r}, want {REPORT_SCHEMA!r}")
    for key in ("workload", "component", "kind"):
        if not isinstance(r.get(key), str) or not r[key]:
            fail(path, f"missing or empty string field {key!r}")
    for key in ("events", "seed", "warmup", "epoch_accesses"):
        if not is_u64(r.get(key)):
            fail(path, f"missing or non-u64 field {key!r}")
    if r["epoch_accesses"] == 0:
        fail(path, "epoch_accesses is zero in an emitted report")
    fields = r.get("fields")
    if not isinstance(fields, list) or not all(isinstance(f, str) for f in fields):
        fail(path, "fields must be a list of strings")
    epochs = r.get("epochs")
    if not isinstance(epochs, list) or not epochs:
        fail(path, "epochs must be a non-empty list")
    prev = [0] * len(fields)
    for i, row in enumerate(epochs):
        if not isinstance(row, list) or len(row) != len(fields):
            fail(path, f"epoch row {i} is ragged ({len(row)} values, {len(fields)} fields)")
        if not all(is_u64(v) for v in row):
            fail(path, f"epoch row {i} has a non-u64 value")
        acc = fields.index("accesses") if "accesses" in fields else None
        if acc is not None and row[acc] < prev[acc]:
            fail(path, f"epoch row {i}: cumulative accesses decreased")
        prev = row
    hists = r.get("histograms")
    if not isinstance(hists, list):
        fail(path, "histograms must be a list")
    for h in hists:
        name = h.get("name") if isinstance(h, dict) else None
        if not isinstance(name, str):
            fail(path, "histogram without a name")
        bounds, counts = h.get("bounds"), h.get("counts")
        if not isinstance(bounds, list) or not all(is_u64(b) for b in bounds):
            fail(path, f"histogram {name!r}: bad bounds")
        if sorted(bounds) != bounds or len(set(bounds)) != len(bounds):
            fail(path, f"histogram {name!r}: bounds not strictly increasing")
        if not isinstance(counts, list) or len(counts) != len(bounds) + 1:
            fail(path, f"histogram {name!r}: want {len(bounds) + 1} buckets, got {len(counts) if isinstance(counts, list) else counts!r}")
        if not all(is_u64(c) for c in counts) or not is_u64(h.get("sum")):
            fail(path, f"histogram {name!r}: bad counts or sum")
    counters = r.get("counters")
    if not isinstance(counters, list):
        fail(path, "counters must be a list")
    names = []
    for c in counters:
        if not isinstance(c, dict) or not isinstance(c.get("name"), str) or not is_u64(c.get("value")):
            fail(path, "malformed counter entry")
        names.append(c["name"])
    if names != sorted(names):
        fail(path, "counters are not sorted by name")


def cell_key(r):
    return (r["workload"], r["component"], r["kind"])


def load(path):
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        fail(path, str(e))


def check_dir(d):
    cells = sorted(d.glob("telemetry_*.json"))
    agg_path = d / "TELEMETRY_sweep.json"
    if not cells and not agg_path.is_file():
        fail(d, "no telemetry_*.json or TELEMETRY_sweep.json found")
    cell_reports = {}
    for p in cells:
        r = load(p)
        check_report(p, r)
        cell_reports[cell_key(r)] = r
    n = len(cells)
    if agg_path.is_file():
        agg = load(agg_path)
        if agg.get("schema") != SWEEP_SCHEMA:
            fail(agg_path, f"schema is {agg.get('schema')!r}, want {SWEEP_SCHEMA!r}")
        reports = agg.get("reports")
        if not isinstance(reports, list):
            fail(agg_path, "reports must be a list")
        if agg.get("runs") != len(reports):
            fail(agg_path, f"runs={agg.get('runs')} but {len(reports)} reports embedded")
        for r in reports:
            check_report(agg_path, r)
        if cells:
            agg_keys = sorted(cell_key(r) for r in reports)
            if agg_keys != sorted(cell_reports):
                fail(agg_path, "aggregate cells do not match telemetry_*.json files")
            for r in reports:
                if r != cell_reports[cell_key(r)]:
                    fail(agg_path, f"aggregate copy of {cell_key(r)} differs from its cell file")
        n = max(n, len(reports))
    print(f"validate_telemetry: {d}: {n} report(s) OK")


def main(argv):
    if len(argv) < 2:
        sys.exit(__doc__.strip())
    for arg in argv[1:]:
        path = Path(arg)
        if path.is_dir():
            check_dir(path)
        else:
            r = load(path)
            if isinstance(r, dict) and r.get("schema") == SWEEP_SCHEMA:
                for rep in r.get("reports", []):
                    check_report(path, rep)
            else:
                check_report(path, r)
            print(f"validate_telemetry: {path}: OK")


if __name__ == "__main__":
    main(sys.argv)
