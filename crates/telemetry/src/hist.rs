//! Fixed-bucket histograms for hot-path distributions.
//!
//! Buckets are defined once by a slice of inclusive upper bounds plus an
//! implicit overflow bucket, so recording is a linear scan over a small
//! array — no allocation, no hashing. Bounds in this crate
//! ([`crate::DISTANCE_BOUNDS`], [`crate::LATENCY_BOUNDS`],
//! [`crate::MSHR_BOUNDS`]) have at most a dozen buckets; a scan beats
//! binary search at that size.

/// A histogram over fixed inclusive upper bounds, with one overflow
/// bucket past the last bound.
///
/// ```
/// use domino_telemetry::FixedHistogram;
///
/// let mut h = FixedHistogram::new(&[10, 100]);
/// h.record(5);
/// h.record(100);
/// h.record(5000);
/// assert_eq!(h.counts(), &[1, 1, 1]);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixedHistogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    /// Sum of recorded values (for the mean without re-binning error).
    sum: u64,
}

impl FixedHistogram {
    /// Creates an empty histogram over `bounds` (inclusive upper bounds,
    /// strictly increasing).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly increasing"
        );
        FixedHistogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0,
        }
    }

    /// Rebuilds a histogram from stored parts (JSON import).
    ///
    /// # Panics
    ///
    /// Panics unless `counts` has exactly one more entry than `bounds`.
    pub fn from_parts(bounds: Vec<u64>, counts: Vec<u64>, sum: u64) -> Self {
        assert_eq!(counts.len(), bounds.len() + 1, "one overflow bucket");
        FixedHistogram {
            bounds,
            counts,
            sum,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// The inclusive upper bounds (the overflow bucket has none).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean of the recorded values (not bucket midpoints), 0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.total();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The `p`-quantile as a bucket upper bound: the bound of the bucket
    /// holding the `ceil(p · n)`-th smallest sample (`p` clamped to
    /// `(0, 1]`). Returns `None` when the histogram is empty and
    /// `Some(u64::MAX)` when the quantile lands in the unbounded
    /// overflow bucket — render that as `>last_bound`.
    ///
    /// **Interpolation rule: there is none.** The result is always one
    /// of the registered inclusive upper bounds (or `u64::MAX` for the
    /// overflow bucket), never a value interpolated within a bucket —
    /// values inside a bucket are not retained, so any interpolation
    /// would manufacture precision the data does not have. Because
    /// samples are bucketed, the result is an *upper bound* on the true
    /// quantile, exact when the bounds are dense around it, and
    /// monotone in `p` by construction. A single-sample histogram
    /// therefore reports that sample's bucket bound for every `p`, and
    /// a histogram with all mass past the last bound reports
    /// `Some(u64::MAX)` for every `p`. This is the shared p50/p95/p99
    /// helper behind the `report` binary's histogram columns and the
    /// metadata service's latency SLO report.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        let n = self.total();
        if n == 0 {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        // ceil(p * n) clamped to [1, n]: the rank of the target sample.
        let rank = ((p * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(self.bounds.get(i).copied().unwrap_or(u64::MAX));
            }
        }
        unreachable!("rank <= total")
    }

    /// Human label of bucket `i`: `≤b`, or `>b_last` for the overflow
    /// bucket.
    pub fn label(&self, i: usize) -> String {
        if i < self.bounds.len() {
            format!("<={}", self.bounds[i])
        } else {
            format!(">{}", self.bounds[self.bounds.len() - 1])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_are_inclusive() {
        let mut h = FixedHistogram::new(&[1, 2, 4]);
        // Exactly on each bound lands in that bound's bucket...
        h.record(1);
        h.record(2);
        h.record(4);
        // ...one past a bound lands in the next bucket.
        h.record(3);
        h.record(5);
        assert_eq!(h.counts(), &[1, 1, 2, 1]);
    }

    #[test]
    fn zero_goes_to_the_first_bucket() {
        let mut h = FixedHistogram::new(&[0, 10]);
        h.record(0);
        assert_eq!(h.counts(), &[1, 0, 0]);
    }

    #[test]
    fn overflow_bucket_catches_everything_above() {
        let mut h = FixedHistogram::new(&[10]);
        h.record(11);
        h.record(u64::MAX);
        assert_eq!(h.counts(), &[0, 2]);
    }

    #[test]
    fn mean_uses_true_values() {
        let mut h = FixedHistogram::new(&[100]);
        h.record(10);
        h.record(30);
        assert_eq!(h.mean(), 20.0);
        assert_eq!(h.sum(), 40);
    }

    #[test]
    fn percentiles_on_known_buckets() {
        // Buckets: <=10 (20 samples), <=100 (70), <=1000 (9), >1000 (1).
        let h = FixedHistogram::from_parts(vec![10, 100, 1000], vec![20, 70, 9, 1], 0);
        assert_eq!(h.total(), 100);
        // Rank 50 falls in the second bucket (cumulative 20 → 90).
        assert_eq!(h.percentile(0.50), Some(100));
        // Rank 20 is exactly the last sample of the first bucket.
        assert_eq!(h.percentile(0.20), Some(10));
        assert_eq!(h.percentile(0.21), Some(100));
        // Rank 95 falls in the third bucket (cumulative 90 → 99).
        assert_eq!(h.percentile(0.95), Some(1000));
        // Rank 100 is the overflow sample.
        assert_eq!(h.percentile(1.0), Some(u64::MAX));
        // p99 → rank 99, still the third bucket.
        assert_eq!(h.percentile(0.99), Some(1000));
    }

    #[test]
    fn percentile_of_empty_histogram_is_none() {
        let h = FixedHistogram::new(&[10]);
        assert_eq!(h.percentile(0.5), None);
    }

    #[test]
    fn percentile_clamps_degenerate_p() {
        let mut h = FixedHistogram::new(&[10, 20]);
        h.record(5);
        h.record(15);
        // p = 0 clamps to rank 1 (the smallest sample's bucket).
        assert_eq!(h.percentile(0.0), Some(10));
        assert_eq!(h.percentile(-1.0), Some(10));
        assert_eq!(h.percentile(2.0), Some(20));
    }

    #[test]
    fn percentile_all_mass_in_overflow_bucket() {
        // Every sample past the last bound: all quantiles are the
        // overflow sentinel, never a finite bound.
        let mut h = FixedHistogram::new(&[10, 100]);
        for _ in 0..5 {
            h.record(101);
        }
        for p in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(p), Some(u64::MAX), "p={p}");
        }
    }

    #[test]
    fn percentile_single_sample() {
        let mut h = FixedHistogram::new(&[8, 16]);
        h.record(12);
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(p), Some(16), "p={p}");
        }
    }

    #[test]
    fn labels_render() {
        let h = FixedHistogram::new(&[8, 16]);
        assert_eq!(h.label(0), "<=8");
        assert_eq!(h.label(2), ">16");
    }

    #[test]
    fn roundtrip_from_parts() {
        let mut h = FixedHistogram::new(&[2, 4]);
        h.record(1);
        h.record(9);
        let rebuilt = FixedHistogram::from_parts(h.bounds().to_vec(), h.counts().to_vec(), h.sum());
        assert_eq!(rebuilt, h);
    }

    #[test]
    fn sum_saturates_instead_of_overflowing() {
        let mut h = FixedHistogram::new(&[10]);
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX, "saturating, not wrapping");
        assert_eq!(h.total(), 2);
        // The mean degrades gracefully under saturation: finite, capped.
        assert!(h.mean().is_finite());
        assert_eq!(h.mean(), u64::MAX as f64 / 2.0);
    }

    #[test]
    fn max_bound_makes_overflow_bucket_unreachable() {
        // A last bound of u64::MAX is legal; the overflow bucket then
        // catches nothing, even for a max-u64 record.
        let mut h = FixedHistogram::new(&[10, u64::MAX]);
        h.record(u64::MAX);
        assert_eq!(h.counts(), &[0, 1, 0]);
        assert_eq!(h.label(2), format!(">{}", u64::MAX));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_panic() {
        FixedHistogram::new(&[4, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one bound")]
    fn empty_bounds_panic() {
        FixedHistogram::new(&[]);
    }
}
