//! True multi-core simulation: the paper's quad-core platform (Table I)
//! with four cores sharing the LLC and the 37.5 GB/s memory channel.
//!
//! Each core runs its own workload trace, L1, prefetch buffer, and
//! prefetcher instance (the paper gives each core *dedicated* metadata
//! tables, §III-A). Cores advance in simulated-time order, so a burst of
//! misses on one core delays the others through channel queueing — the
//! contention that Figure 15's bandwidth argument is about — and all
//! cores' fills compete for LLC capacity.
//!
//! This module backs the §V-D analysis ("the most bandwidth-hungry server
//! workload consumes only 8 GB/s"; "using Domino, the bandwidth
//! utilization ranges from 8.7 % ... to 32.8 %"): run four copies of a
//! workload and read off the chip-level bandwidth with and without the
//! prefetcher.
//!
//! A caveat for *speedup* readings at reproduction scale: four copies of
//! the compute-budget-sized workload models fit comfortably in the 4 MB
//! LLC, so the baseline barely stalls and prefetching shows little to
//! gain — use [`crate::timing::run_timing`] (whose cross-core pollution
//! emulates the paper's vast datasets) for Figure 14 speedups, and this
//! module for bandwidth and contention.

use domino_mem::dram::Dram;
use domino_mem::interface::Prefetcher;
use domino_telemetry::Telemetry;
use domino_trace::event::AccessEvent;
use domino_trace::workload::WorkloadSpec;

use crate::batch::L1Lanes;
use crate::config::SystemConfig;
use crate::roster::System;
use crate::scratch;
use crate::timing::{CoreEngine, L1View, TimingReport};

/// Result of a multi-core run.
#[derive(Debug, Clone)]
pub struct MulticoreReport {
    /// Per-core timing reports (traffic is chip-wide on each, see
    /// [`MulticoreReport::chip`]).
    pub per_core: Vec<TimingReport>,
    /// Chip-level wall time: the slowest core.
    pub total_ns: f64,
    /// Chip-level off-chip traffic.
    pub chip: domino_mem::dram::TrafficStats,
}

impl MulticoreReport {
    /// Chip bandwidth in GB/s (bytes per ns).
    pub fn bandwidth_gbps(&self) -> f64 {
        if self.total_ns == 0.0 {
            0.0
        } else {
            self.chip.total() as f64 / self.total_ns
        }
    }

    /// Utilization of the peak channel bandwidth.
    pub fn utilization(&self, system: &SystemConfig) -> f64 {
        self.bandwidth_gbps() / system.memory.bandwidth_bytes_per_ns
    }

    /// Aggregate throughput (instructions per ns across cores) — the
    /// paper's system-throughput metric up to the clock constant.
    pub fn throughput(&self) -> f64 {
        if self.total_ns == 0.0 {
            0.0
        } else {
            self.per_core
                .iter()
                .map(|r| r.instructions as f64)
                .sum::<f64>()
                / self.total_ns
        }
    }

    /// Speedup of this run over a baseline run (throughput ratio).
    pub fn speedup_over(&self, baseline: &MulticoreReport) -> f64 {
        if baseline.throughput() == 0.0 {
            1.0
        } else {
            self.throughput() / baseline.throughput()
        }
    }
}

/// Runs `system.cores` cores, each with its own trace and prefetcher,
/// over a shared LLC and memory channel.
///
/// `traces[i]` and `prefetchers[i]` belong to core `i`.
///
/// # Panics
///
/// Panics if the numbers of traces and prefetchers differ.
pub fn run_multicore(
    system: &SystemConfig,
    traces: Vec<Vec<AccessEvent>>,
    prefetchers: Vec<Box<dyn Prefetcher>>,
) -> MulticoreReport {
    run_multicore_with_batch(system, traces, prefetchers, crate::observe::batch_size())
}

/// [`run_multicore`] at an explicit batch size, ignoring the
/// process-wide knob. Each core stages its private L1 in `batch`-event
/// spans of its own trace, re-staging on demand as the earliest-time
/// interleave advances its cursor (exact for any span length — see
/// [`crate::batch`]). `batch = 1` forces the scalar loop.
pub fn run_multicore_with_batch(
    system: &SystemConfig,
    traces: Vec<Vec<AccessEvent>>,
    prefetchers: Vec<Box<dyn Prefetcher>>,
    batch: u32,
) -> MulticoreReport {
    if batch > 1 {
        run_multicore_batched(system, traces, prefetchers, batch as usize)
    } else {
        let mut tels: Vec<Telemetry> = prefetchers.iter().map(|_| Telemetry::off()).collect();
        run_multicore_observed(system, traces, prefetchers, &mut tels)
    }
}

/// The staged multi-core loop: per-core chunked L1 pre-passes (each
/// core's private L1 advances independently of the others and of every
/// prefetcher, so a core re-stages whenever its cursor crosses its
/// staged span), then the scalar earliest-time interleave stepping
/// staged views. Shared LLC and DRAM interactions happen in the exact
/// scalar order.
fn run_multicore_batched(
    system: &SystemConfig,
    traces: Vec<Vec<AccessEvent>>,
    mut prefetchers: Vec<Box<dyn Prefetcher>>,
    batch: usize,
) -> MulticoreReport {
    assert_eq!(
        traces.len(),
        prefetchers.len(),
        "one prefetcher per core required"
    );
    let mut l2 = scratch::cache(system.l2);
    let mut dram = Dram::new(system.memory);
    for (p, trace) in prefetchers.iter_mut().zip(traces.iter()) {
        p.reserve(trace.len());
    }
    let mut tels: Vec<Telemetry> = traces.iter().map(|_| Telemetry::off()).collect();
    let mut engines: Vec<CoreEngine<'_>> = prefetchers
        .iter_mut()
        .zip(tels.iter_mut())
        .map(|(p, tel)| CoreEngine::new(system, p.as_mut(), tel))
        .collect();
    let mut all_lanes: Vec<L1Lanes> = (0..engines.len()).map(|_| L1Lanes::new()).collect();
    // The span currently staged in `all_lanes[i]` is
    // `staged_start[i]..staged_end[i]` of core i's trace.
    let mut staged_start = vec![0usize; traces.len()];
    let mut staged_end = vec![0usize; traces.len()];
    let mut cursors = vec![0usize; traces.len()];
    loop {
        // Advance the core that is earliest in simulated time.
        let mut next: Option<usize> = None;
        for (i, engine) in engines.iter().enumerate() {
            if cursors[i] < traces[i].len() {
                match next {
                    Some(j) if engines[j].now <= engine.now => {}
                    _ => next = Some(i),
                }
            }
        }
        let Some(i) = next else { break };
        let j = cursors[i];
        cursors[i] += 1;
        if j == staged_end[i] {
            let end = (j + batch).min(traces[i].len());
            engines[i].stage_span(&mut all_lanes[i], &traces[i], j, end);
            staged_start[i] = j;
            staged_end[i] = end;
        }
        let view = L1View::Staged {
            idx: j as u32,
            hit: all_lanes[i].hits[j - staged_start[i]],
            lanes: &all_lanes[i],
        };
        engines[i].step(&traces[i][j], view, &mut l2, &mut dram);
    }
    let chip = dram.traffic();
    let per_core: Vec<TimingReport> = engines
        .into_iter()
        .map(|mut e| {
            e.flush_telemetry(&dram);
            e.finish(chip)
        })
        .collect();
    let total_ns = per_core.iter().map(|r| r.total_ns).fold(0.0f64, f64::max);
    MulticoreReport {
        per_core,
        total_ns,
        chip,
    }
}

/// [`run_multicore`] with one telemetry handle per core (`tels[i]`
/// observes core `i`): each core gets its own epoch clock, histograms,
/// and snapshot series over the shared LLC and channel.
///
/// # Panics
///
/// Panics if the numbers of traces, prefetchers, and handles differ.
pub fn run_multicore_observed(
    system: &SystemConfig,
    traces: Vec<Vec<AccessEvent>>,
    mut prefetchers: Vec<Box<dyn Prefetcher>>,
    tels: &mut [Telemetry],
) -> MulticoreReport {
    assert_eq!(
        traces.len(),
        prefetchers.len(),
        "one prefetcher per core required"
    );
    assert_eq!(
        traces.len(),
        tels.len(),
        "one telemetry handle per core required"
    );
    let mut l2 = scratch::cache(system.l2);
    let mut dram = Dram::new(system.memory);
    for (p, trace) in prefetchers.iter_mut().zip(traces.iter()) {
        p.reserve(trace.len());
    }
    let mut engines: Vec<CoreEngine<'_>> = prefetchers
        .iter_mut()
        .zip(tels.iter_mut())
        .map(|(p, tel)| CoreEngine::new(system, p.as_mut(), tel))
        .collect();
    let mut cursors = vec![0usize; traces.len()];
    loop {
        // Advance the core that is earliest in simulated time.
        let mut next: Option<usize> = None;
        for (i, engine) in engines.iter().enumerate() {
            if cursors[i] < traces[i].len() {
                match next {
                    Some(j) if engines[j].now <= engine.now => {}
                    _ => next = Some(i),
                }
            }
        }
        let Some(i) = next else { break };
        let ev = traces[i][cursors[i]];
        cursors[i] += 1;
        engines[i].step(&ev, L1View::Live, &mut l2, &mut dram);
    }
    let chip = dram.traffic();
    let per_core: Vec<TimingReport> = engines
        .into_iter()
        .map(|mut e| {
            e.flush_telemetry(&dram);
            e.finish(chip)
        })
        .collect();
    let total_ns = per_core.iter().map(|r| r.total_ns).fold(0.0f64, f64::max);
    MulticoreReport {
        per_core,
        total_ns,
        chip,
    }
}

/// Convenience: run `system.cores` copies of one workload (distinct
/// seeds per core, as four server cores handle different requests of the
/// same application) under one prefetching system.
pub fn run_homogeneous(
    system: &SystemConfig,
    spec: &WorkloadSpec,
    events: usize,
    seed: u64,
    sys: System,
    degree: usize,
) -> MulticoreReport {
    let cores = system.cores as usize;
    let traces: Vec<Vec<AccessEvent>> = (0..cores)
        .map(|c| {
            spec.generator(seed.wrapping_add(c as u64 * 0x9e37))
                .take(events)
                .collect()
        })
        .collect();
    let prefetchers: Vec<Box<dyn Prefetcher>> = (0..cores).map(|_| sys.build(degree)).collect();
    run_multicore(system, traces, prefetchers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_trace::workload::catalog;

    fn small(sys: System) -> MulticoreReport {
        let system = SystemConfig::paper();
        run_homogeneous(&system, &catalog::oltp(), 20_000, 42, sys, 4)
    }

    #[test]
    fn four_cores_run_to_completion() {
        let r = small(System::Baseline);
        assert_eq!(r.per_core.len(), 4);
        for core in &r.per_core {
            assert!(core.total_ns > 0.0);
            assert!(core.instructions > 0);
        }
        assert!(r.total_ns >= r.per_core[0].total_ns);
    }

    #[test]
    fn chip_traffic_and_utilization_are_sane() {
        let system = SystemConfig::paper();
        let r = small(System::Domino);
        assert!(r.chip.total() > 0);
        let u = r.utilization(&system);
        assert!((0.0..1.0).contains(&u), "utilization {u}");
        // Four cores consume more than one core's traffic.
        let single = {
            let trace: Vec<_> = catalog::oltp().generator(42).take(20_000).collect();
            let mut p = System::Domino.build(4);
            crate::timing::run_timing(&system, &trace, p.as_mut())
        };
        assert!(r.chip.total() > single.traffic.total());
    }

    #[test]
    fn prefetching_increases_chip_bandwidth() {
        let base = small(System::Baseline);
        let dom = small(System::Domino);
        assert!(
            dom.bandwidth_gbps() > base.bandwidth_gbps(),
            "domino {} vs baseline {}",
            dom.bandwidth_gbps(),
            base.bandwidth_gbps()
        );
    }

    #[test]
    fn utilization_stays_in_paper_range() {
        // §V-D: baseline workloads use a small fraction of the channel;
        // Domino raises utilization but leaves ample headroom.
        let system = SystemConfig::paper();
        let base = small(System::Baseline);
        let dom = small(System::Domino);
        assert!(
            base.utilization(&system) < 0.25,
            "baseline {:.3}",
            base.utilization(&system)
        );
        assert!(
            dom.utilization(&system) < 0.60,
            "domino {:.3}",
            dom.utilization(&system)
        );
        assert!(dom.utilization(&system) > base.utilization(&system));
        // Prefetching must not collapse chip throughput even at this
        // warmup-dominated scale.
        assert!(dom.speedup_over(&base) > 0.8);
    }

    #[test]
    fn batched_multicore_is_byte_identical_to_scalar() {
        let system = SystemConfig::paper();
        let cores = system.cores as usize;
        let traces: Vec<Vec<AccessEvent>> = (0..cores)
            .map(|c| {
                catalog::oltp()
                    .generator(42u64.wrapping_add(c as u64 * 0x9e37))
                    .take(15_000)
                    .collect()
            })
            .collect();
        let build = |sys: System| -> Vec<Box<dyn Prefetcher>> {
            (0..cores).map(|_| sys.build(4)).collect()
        };
        for sys in [System::Baseline, System::Domino] {
            let scalar = run_multicore_with_batch(&system, traces.clone(), build(sys), 1);
            let batched = run_multicore_with_batch(&system, traces.clone(), build(sys), 64);
            assert_eq!(
                format!("{scalar:?}"),
                format!("{batched:?}"),
                "{sys:?}: staged multicore diverged from scalar"
            );
        }
    }

    #[test]
    #[should_panic(expected = "one prefetcher per core")]
    fn mismatched_inputs_panic() {
        let system = SystemConfig::paper();
        run_multicore(&system, vec![vec![]], vec![]);
    }
}
