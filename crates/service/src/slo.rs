//! Declarative SLOs with multi-window burn-rate evaluation over the
//! per-shard metrics rings.
//!
//! A spec is a comma-separated list of threshold terms plus optional
//! window tuning, e.g.
//!
//! ```text
//! p99_ns<=250000,shed_ratio<=0.05,evictions_per_interval<=2,fast=6,slow=24,burn=1.0
//! ```
//!
//! Objectives:
//!
//! * `p99_ns` — p99 batch latency (ns), reconstructed from the rings'
//!   `lat_le_*` bucket counters;
//! * `shed_ratio` — shed requests / (served + shed) batches;
//! * `evictions_per_interval` — LRU evictions per sampled interval.
//!
//! Each objective is evaluated three ways: over the run **totals**
//! (the reported `value`), over the last `fast` intervals, and over the
//! last `slow` intervals. The *burn rate* of a window is its value
//! divided by the threshold — burn 1.0 consumes the error budget
//! exactly at the allowed rate. Following the SRE multi-window rule, an
//! objective **breaches** only when *both* windows burn at or above
//! `burn`: the fast window makes the alert responsive, the slow window
//! keeps a single spiky interval from paging. Windows are clamped to
//! the rows the rings still hold.

use domino_telemetry::json::quote;
use domino_telemetry::{FixedHistogram, RingFile};

use crate::obs::latency_from_columns;

/// Default fast (alerting) window, in intervals.
const DEFAULT_FAST: usize = 6;
/// Default slow (confirmation) window, in intervals.
const DEFAULT_SLOW: usize = 24;
/// Default burn-rate threshold.
const DEFAULT_BURN: f64 = 1.0;

/// A parsed SLO specification.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// p99 batch latency ceiling in nanoseconds.
    pub p99_ns: Option<u64>,
    /// Shed-ratio ceiling (0..=1).
    pub shed_ratio: Option<f64>,
    /// Evictions-per-interval ceiling.
    pub evictions_per_interval: Option<f64>,
    /// Fast window in intervals.
    pub fast: usize,
    /// Slow window in intervals.
    pub slow: usize,
    /// Burn-rate threshold both windows must reach to breach.
    pub burn: f64,
    /// The original spec string (echoed into the report).
    pub raw: String,
}

impl SloSpec {
    /// Parses a spec string.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or unknown term.
    pub fn parse(raw: &str) -> Result<SloSpec, String> {
        let mut spec = SloSpec {
            p99_ns: None,
            shed_ratio: None,
            evictions_per_interval: None,
            fast: DEFAULT_FAST,
            slow: DEFAULT_SLOW,
            burn: DEFAULT_BURN,
            raw: raw.to_string(),
        };
        for term in raw.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            if let Some((name, value)) = term.split_once("<=") {
                match name.trim() {
                    "p99_ns" => {
                        spec.p99_ns = Some(
                            value
                                .trim()
                                .parse()
                                .map_err(|_| bad(term, "a u64 ns value"))?,
                        );
                    }
                    "shed_ratio" => {
                        let v: f64 = value.trim().parse().map_err(|_| bad(term, "a ratio"))?;
                        if !(0.0..=1.0).contains(&v) {
                            return Err(bad(term, "a ratio in [0, 1]"));
                        }
                        spec.shed_ratio = Some(v);
                    }
                    "evictions_per_interval" => {
                        spec.evictions_per_interval =
                            Some(value.trim().parse().map_err(|_| bad(term, "a rate"))?);
                    }
                    other => return Err(format!("unknown SLO objective {other:?}")),
                }
            } else if let Some((name, value)) = term.split_once('=') {
                match name.trim() {
                    "fast" => {
                        spec.fast = parse_window(value, term)?;
                    }
                    "slow" => {
                        spec.slow = parse_window(value, term)?;
                    }
                    "burn" => {
                        let v: f64 = value.trim().parse().map_err(|_| bad(term, "a rate"))?;
                        if v <= 0.0 {
                            return Err(bad(term, "a positive rate"));
                        }
                        spec.burn = v;
                    }
                    other => return Err(format!("unknown SLO option {other:?}")),
                }
            } else {
                return Err(format!("malformed SLO term {term:?}: expected name<=value"));
            }
        }
        if spec.p99_ns.is_none()
            && spec.shed_ratio.is_none()
            && spec.evictions_per_interval.is_none()
        {
            return Err("SLO spec declares no objectives".into());
        }
        if spec.fast > spec.slow {
            return Err(format!(
                "fast window ({}) exceeds slow window ({})",
                spec.fast, spec.slow
            ));
        }
        Ok(spec)
    }

    /// Evaluates the spec over the parsed per-shard rings.
    pub fn evaluate(&self, rings: &[RingFile]) -> SloReport {
        let mut objectives = Vec::new();
        if let Some(limit) = self.p99_ns {
            let value = |w: Window| p99_over(rings, w).unwrap_or(0) as f64;
            objectives.push(self.objective("p99_ns", limit as f64, rings, value));
        }
        if let Some(limit) = self.shed_ratio {
            let value = |w: Window| {
                let shed = sum_over(rings, "shed", w) as f64;
                let batches = sum_over(rings, "batches", w) as f64;
                ratio(shed, shed + batches)
            };
            objectives.push(self.objective("shed_ratio", limit, rings, value));
        }
        if let Some(limit) = self.evictions_per_interval {
            let value = |w: Window| {
                let evictions = sum_over(rings, "evictions", w) as f64;
                ratio(evictions, intervals_over(rings, w) as f64)
            };
            objectives.push(self.objective("evictions_per_interval", limit, rings, value));
        }
        let breached = objectives.iter().any(|o| o.breached);
        SloReport {
            spec: self.raw.clone(),
            fast: self.fast,
            slow: self.slow,
            burn: self.burn,
            objectives,
            breached,
        }
    }

    fn objective(
        &self,
        name: &str,
        threshold: f64,
        _rings: &[RingFile],
        value: impl Fn(Window) -> f64,
    ) -> Objective {
        let overall = value(Window::Totals);
        let fast_burn = burn_rate(value(Window::Last(self.fast)), threshold);
        let slow_burn = burn_rate(value(Window::Last(self.slow)), threshold);
        Objective {
            name: name.to_string(),
            threshold,
            value: overall,
            fast_burn,
            slow_burn,
            breached: fast_burn >= self.burn && slow_burn >= self.burn,
        }
    }
}

fn bad(term: &str, expected: &str) -> String {
    format!("malformed SLO term {term:?}: expected {expected}")
}

fn parse_window(value: &str, term: &str) -> Result<usize, String> {
    let v: usize = value
        .trim()
        .parse()
        .map_err(|_| bad(term, "a window size"))?;
    if v == 0 {
        return Err(bad(term, "a nonzero window"));
    }
    Ok(v)
}

/// Evaluation scope: the run totals or the last N stored intervals.
#[derive(Clone, Copy)]
enum Window {
    Totals,
    Last(usize),
}

/// Burn rate of `value` against `threshold`. A zero threshold means
/// zero tolerance: any nonzero value burns infinitely.
fn burn_rate(value: f64, threshold: f64) -> f64 {
    if threshold <= 0.0 {
        if value > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    } else {
        value / threshold
    }
}

fn ratio(num: f64, den: f64) -> f64 {
    if den <= 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Sums counter `name` across all shards over the window.
fn sum_over(rings: &[RingFile], name: &str, w: Window) -> u64 {
    rings
        .iter()
        .filter_map(|r| {
            let col = r.column(name)?;
            Some(match w {
                Window::Totals => r.totals[col],
                Window::Last(n) => {
                    let skip = r.rows.len().saturating_sub(n);
                    r.rows[skip..].iter().map(|(_, v)| v[col]).sum()
                }
            })
        })
        .sum()
}

/// Total intervals covered by the window across all shards.
fn intervals_over(rings: &[RingFile], w: Window) -> u64 {
    rings
        .iter()
        .map(|r| match w {
            Window::Totals => r.sampled,
            Window::Last(n) => r.rows.len().min(n) as u64,
        })
        .sum()
}

/// The p99 batch latency over the window, from the summed latency
/// buckets of every shard.
fn p99_over(rings: &[RingFile], w: Window) -> Option<u64> {
    let mut merged: Option<FixedHistogram> = None;
    for r in rings {
        let values: Vec<u64> = match w {
            Window::Totals => r.totals.clone(),
            Window::Last(n) => {
                let skip = r.rows.len().saturating_sub(n);
                let mut acc = vec![0u64; r.specs.len()];
                for (_, row) in &r.rows[skip..] {
                    for (a, v) in acc.iter_mut().zip(row) {
                        *a += v;
                    }
                }
                acc
            }
        };
        let hist = latency_from_columns(r, &values)?;
        merged = Some(match merged {
            None => hist,
            Some(m) => FixedHistogram::from_parts(
                m.bounds().to_vec(),
                m.counts()
                    .iter()
                    .zip(hist.counts())
                    .map(|(a, b)| a + b)
                    .collect(),
                0,
            ),
        });
    }
    merged.and_then(|h| h.percentile(0.99))
}

/// One evaluated objective.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    /// Objective name (`p99_ns`, `shed_ratio`, `evictions_per_interval`).
    pub name: String,
    /// Declared ceiling.
    pub threshold: f64,
    /// Whole-run value (from ring totals).
    pub value: f64,
    /// Burn rate over the fast window.
    pub fast_burn: f64,
    /// Burn rate over the slow window.
    pub slow_burn: f64,
    /// Whether both windows burned at or above the burn threshold.
    pub breached: bool,
}

/// The full SLO evaluation, rendered into `OBS_report.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// The spec string evaluated.
    pub spec: String,
    /// Fast window in intervals.
    pub fast: usize,
    /// Slow window in intervals.
    pub slow: usize,
    /// Burn-rate threshold.
    pub burn: f64,
    /// Per-objective results.
    pub objectives: Vec<Objective>,
    /// Whether any objective breached.
    pub breached: bool,
}

impl SloReport {
    /// An empty evaluation (no `--slo` given): nothing breached.
    pub fn none() -> SloReport {
        SloReport {
            spec: String::new(),
            fast: DEFAULT_FAST,
            slow: DEFAULT_SLOW,
            burn: DEFAULT_BURN,
            objectives: Vec::new(),
            breached: false,
        }
    }

    /// Renders the `"slo": {...}` member (no trailing comma) at
    /// `indent`, terminated by a newline.
    pub fn render(&self, indent: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("{indent}\"slo\": {{\n"));
        out.push_str(&format!("{indent}  \"spec\": {},\n", quote(&self.spec)));
        out.push_str(&format!("{indent}  \"fast_window\": {},\n", self.fast));
        out.push_str(&format!("{indent}  \"slow_window\": {},\n", self.slow));
        out.push_str(&format!(
            "{indent}  \"burn_threshold\": {},\n",
            f64_field(self.burn)
        ));
        out.push_str(&format!("{indent}  \"objectives\": [\n"));
        for (i, o) in self.objectives.iter().enumerate() {
            out.push_str(&format!("{indent}    {{\n"));
            out.push_str(&format!("{indent}      \"name\": {},\n", quote(&o.name)));
            out.push_str(&format!(
                "{indent}      \"threshold\": {},\n",
                f64_field(o.threshold)
            ));
            out.push_str(&format!(
                "{indent}      \"value\": {},\n",
                f64_field(o.value)
            ));
            out.push_str(&format!(
                "{indent}      \"fast_burn\": {},\n",
                f64_field(o.fast_burn)
            ));
            out.push_str(&format!(
                "{indent}      \"slow_burn\": {},\n",
                f64_field(o.slow_burn)
            ));
            out.push_str(&format!("{indent}      \"breached\": {}\n", o.breached));
            out.push_str(&format!(
                "{indent}    }}{}\n",
                if i + 1 < self.objectives.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str(&format!("{indent}  ],\n"));
        out.push_str(&format!("{indent}  \"breached\": {}\n", self.breached));
        out.push_str(&format!("{indent}}}\n"));
        out
    }
}

/// Plain decimal, parseable by the in-repo JSON parser (no exponents,
/// no inf/nan — burns are capped for rendering).
fn f64_field(v: f64) -> String {
    if v.is_infinite() || v.is_nan() {
        return format!("{:.3}", 1e15);
    }
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::shard_metric_specs;
    use domino_telemetry::MetricsRing;

    fn ring_with(rows: &[(u64, &[(&str, u64)])]) -> RingFile {
        let mut ring = MetricsRing::new(64, shard_metric_specs());
        let mut values = vec![0u64; ring.width()];
        for (stamp, sets) in rows {
            for (name, v) in *sets {
                values[ring.column(name).expect(name)] = *v;
            }
            ring.sample(*stamp, &values);
        }
        RingFile::from_bytes(&ring.to_bytes("shard-0", 100)).unwrap()
    }

    #[test]
    fn parse_full_spec_round_trips() {
        let spec = SloSpec::parse(
            "p99_ns<=250000, shed_ratio<=0.05,evictions_per_interval<=2,fast=3,slow=9,burn=2.0",
        )
        .unwrap();
        assert_eq!(spec.p99_ns, Some(250_000));
        assert_eq!(spec.shed_ratio, Some(0.05));
        assert_eq!(spec.evictions_per_interval, Some(2.0));
        assert_eq!((spec.fast, spec.slow), (3, 9));
        assert_eq!(spec.burn, 2.0);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "p99_ns<=abc",
            "p99<=5",
            "shed_ratio<=1.5",
            "fast=0",
            "burn=-1",
            "fast=10,slow=2,p99_ns<=5",
            "fast=3", // windows only, no objective
            "p99_ns=5",
        ] {
            assert!(SloSpec::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn healthy_run_passes() {
        // shed stays 0, latency under 2.5 µs, no evictions.
        let f = ring_with(&[
            (100, &[("events", 100), ("batches", 4), ("lat_le_2500", 4)]),
            (200, &[("events", 200), ("batches", 8), ("lat_le_2500", 8)]),
        ]);
        let spec =
            SloSpec::parse("p99_ns<=10000,shed_ratio<=0.1,evictions_per_interval<=1").unwrap();
        let report = spec.evaluate(&[f]);
        assert!(!report.breached, "{report:?}");
        assert_eq!(report.objectives.len(), 3);
        let p99 = &report.objectives[0];
        assert_eq!(p99.value, 2500.0);
        assert!(p99.fast_burn < 1.0);
    }

    #[test]
    fn sustained_shedding_breaches_both_windows() {
        let f = ring_with(&[
            (100, &[("batches", 2), ("shed", 2), ("lat_le_2500", 2)]),
            (200, &[("batches", 4), ("shed", 4), ("lat_le_2500", 4)]),
            (300, &[("batches", 6), ("shed", 6), ("lat_le_2500", 6)]),
        ]);
        let spec = SloSpec::parse("shed_ratio<=0.1,fast=2,slow=3").unwrap();
        let report = spec.evaluate(&[f]);
        assert!(report.breached);
        let o = &report.objectives[0];
        assert_eq!(o.value, 0.5, "6 shed vs 6 served overall");
        assert!(o.fast_burn >= 1.0 && o.slow_burn >= 1.0);
    }

    #[test]
    fn recovered_spike_does_not_breach_the_fast_window() {
        // All shedding happened early; the recent (fast) window is clean,
        // so the multi-window rule holds fire even though the slow
        // window still burns.
        let f = ring_with(&[
            (100, &[("batches", 1), ("shed", 9), ("lat_le_2500", 1)]),
            (200, &[("batches", 11), ("shed", 9), ("lat_le_2500", 11)]),
            (300, &[("batches", 21), ("shed", 9), ("lat_le_2500", 21)]),
        ]);
        let spec = SloSpec::parse("shed_ratio<=0.2,fast=1,slow=3").unwrap();
        let report = spec.evaluate(&[f]);
        let o = &report.objectives[0];
        assert!(o.fast_burn < 1.0, "recent interval is clean: {o:?}");
        assert!(o.slow_burn >= 1.0, "history still burns: {o:?}");
        assert!(!report.breached, "needs both windows");
    }

    #[test]
    fn p99_breach_detected_from_latency_buckets() {
        // Every batch lands past 50 ms.
        let f = ring_with(&[
            (100, &[("batches", 8), ("lat_le_200000000", 8)]),
            (200, &[("batches", 16), ("lat_le_200000000", 16)]),
        ]);
        let spec = SloSpec::parse("p99_ns<=1000000,fast=1,slow=2").unwrap();
        let report = spec.evaluate(&[f]);
        assert!(report.breached);
        assert_eq!(report.objectives[0].value, 200_000_000.0);
    }

    #[test]
    fn empty_rings_pass_every_objective() {
        let spec = SloSpec::parse("p99_ns<=1,shed_ratio<=0.0,evictions_per_interval<=0.0").unwrap();
        let report = spec.evaluate(&[]);
        assert!(!report.breached);
    }

    #[test]
    fn zero_threshold_means_zero_tolerance() {
        let f = ring_with(&[(100, &[("batches", 1), ("shed", 1), ("lat_le_2500", 1)])]);
        let spec = SloSpec::parse("shed_ratio<=0.0,fast=1,slow=1").unwrap();
        let report = spec.evaluate(&[f]);
        assert!(report.breached, "any shed at zero tolerance breaches");
        assert!(report.objectives[0].fast_burn.is_infinite());
    }

    #[test]
    fn report_renders_parseable_json() {
        let f = ring_with(&[(100, &[("batches", 2), ("shed", 2), ("lat_le_2500", 2)])]);
        let spec = SloSpec::parse("shed_ratio<=0.1,fast=1,slow=1").unwrap();
        let report = spec.evaluate(&[f]);
        let doc = format!("{{\n{}}}\n", report.render("  "));
        let json = domino_telemetry::json::parse(&doc).expect("valid JSON");
        let slo = json.get("slo").unwrap();
        assert_eq!(slo.get("breached").and_then(|v| v.as_str()), None);
        let objectives = slo.get("objectives").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(objectives.len(), 1);
        assert_eq!(
            objectives[0].get("name").and_then(|v| v.as_str()),
            Some("shed_ratio")
        );
    }
}
