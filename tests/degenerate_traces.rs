//! Degenerate-trace tests: every roster system through both replay
//! engines (and the shared-channel multicore model) on the pathological
//! inputs a fuzzer loves — empty traces, single events, a single
//! endlessly repeated address, and lines at the top of the address
//! space where `LineAddr::offset` wraps.
//!
//! These runs assert totality plus the basic accounting identities that
//! must hold on *any* input; the deeper metric identities live in
//! `domino_check::oracle`.

use domino_sim::roster::System;
use domino_sim::{
    run_coverage, run_coverage_with_batch, run_multicore, run_multicore_with_batch, run_timing,
    run_timing_with_batch, SystemConfig,
};
use domino_trace::addr::{Addr, Pc, LINE_BYTES};
use domino_trace::event::{AccessEvent, AccessKind};

const DEGREE: usize = 4;

fn read(pc: u64, addr: u64) -> AccessEvent {
    AccessEvent::read(Pc::new(pc), Addr::new(addr))
}

/// Name, trace — one entry per degenerate shape.
fn degenerate_traces() -> Vec<(&'static str, Vec<AccessEvent>)> {
    let top = u64::MAX - (LINE_BYTES - 1); // start of the last line
    vec![
        ("empty", Vec::new()),
        ("single-event", vec![read(1, 0x1000)]),
        (
            "all-same-address",
            (0..200).map(|_| read(7, 0xBEEF_0000)).collect(),
        ),
        (
            "write-only-same-address",
            (0..50)
                .map(|_| AccessEvent {
                    pc: Pc::new(3),
                    addr: Addr::new(0xD00D_0000),
                    kind: AccessKind::Write,
                    gap_insts: 0,
                    dependent: false,
                })
                .collect(),
        ),
        (
            // Walk the last lines of the address space so next-line and
            // stride predictions wrap around `u64::MAX`.
            "max-line-boundary",
            (0..32)
                .map(|i| read(5, top - i * LINE_BYTES))
                .chain((0..32).map(|i| read(5, u64::MAX - i)))
                .collect(),
        ),
    ]
}

/// Structural guard for the suite's coverage: every test here iterates
/// `System::all()`, so the post-Domino rivals are exercised exactly as
/// long as they stay registered. A silent roster regression would
/// otherwise shrink this suite without failing anything.
#[test]
fn roster_includes_the_modern_rivals() {
    let all = System::all();
    for sys in [System::Pangloss, System::Triangel] {
        assert!(
            all.contains(&sys),
            "{} missing from System::all(); the degenerate-trace suite \
             no longer covers it",
            sys.label()
        );
    }
}

#[test]
fn every_system_survives_degenerate_traces() {
    let cfg = SystemConfig::paper();
    let one_core = SystemConfig {
        cores: 1,
        ..SystemConfig::paper()
    };
    for (name, trace) in degenerate_traces() {
        for sys in System::all() {
            let label = sys.label();
            let cov = run_coverage(&cfg, &trace, sys.build(DEGREE).as_mut());
            assert_eq!(
                cov.accesses,
                trace.len() as u64,
                "{label} on {name}: access count"
            );
            assert!(
                cov.covered <= cov.baseline_misses,
                "{label} on {name}: covered {} > baseline misses {}",
                cov.covered,
                cov.baseline_misses
            );
            assert!(
                cov.read_covered <= cov.covered,
                "{label} on {name}: read subset exceeds total"
            );

            let tim = run_timing(&cfg, &trace, sys.build(DEGREE).as_mut());
            assert!(
                tim.total_ns.is_finite() && tim.total_ns >= 0.0,
                "{label} on {name}: non-finite time {}",
                tim.total_ns
            );
            assert_eq!(
                tim.timely_hits + tim.late_hits + tim.full_misses,
                cov.baseline_misses,
                "{label} on {name}: timing miss classes disagree with coverage"
            );

            let multi = run_multicore(&one_core, vec![trace.clone()], vec![sys.build(DEGREE)]);
            assert_eq!(multi.per_core.len(), 1);
            assert_eq!(
                multi.per_core[0].full_misses, tim.full_misses,
                "{label} on {name}: one-core multicore diverged from single-core"
            );
        }
    }
}

/// Batch-boundary pathology: the degenerate shapes hit every edge the
/// chunk loop has — zero chunks (empty trace), one single-event chunk,
/// trace lengths that are not a batch multiple, and batches larger than
/// the whole trace. Every roster system must produce byte-identical
/// reports at batch 1 and at every other batch size.
#[test]
fn batched_engines_match_scalar_on_degenerate_traces() {
    let cfg = SystemConfig::paper();
    let one_core = SystemConfig {
        cores: 1,
        ..SystemConfig::paper()
    };
    for (name, trace) in degenerate_traces() {
        for sys in System::all() {
            let label = sys.label();
            let cov_scalar = format!(
                "{:?}",
                run_coverage_with_batch(&cfg, &trace, sys.build(DEGREE).as_mut(), 0, 1)
            );
            let tim_scalar = format!(
                "{:?}",
                run_timing_with_batch(&cfg, &trace, sys.build(DEGREE).as_mut(), 0, 1)
            );
            let multi_scalar = format!(
                "{:?}",
                run_multicore_with_batch(
                    &one_core,
                    vec![trace.clone()],
                    vec![sys.build(DEGREE)],
                    1
                )
            );
            for batch in [2u32, 3, 64] {
                let cov = format!(
                    "{:?}",
                    run_coverage_with_batch(&cfg, &trace, sys.build(DEGREE).as_mut(), 0, batch)
                );
                assert_eq!(
                    cov_scalar, cov,
                    "{label} on {name}: coverage diverged at batch {batch}"
                );
                let tim = format!(
                    "{:?}",
                    run_timing_with_batch(&cfg, &trace, sys.build(DEGREE).as_mut(), 0, batch)
                );
                assert_eq!(
                    tim_scalar, tim,
                    "{label} on {name}: timing diverged at batch {batch}"
                );
                let multi = format!(
                    "{:?}",
                    run_multicore_with_batch(
                        &one_core,
                        vec![trace.clone()],
                        vec![sys.build(DEGREE)],
                        batch
                    )
                );
                assert_eq!(
                    multi_scalar, multi,
                    "{label} on {name}: multicore diverged at batch {batch}"
                );
            }
        }
    }
}

/// The empty trace specifically must report all-zero metrics — not
/// merely avoid panicking — through both engines.
#[test]
fn empty_trace_reports_zeros() {
    let cfg = SystemConfig::paper();
    for sys in System::all() {
        let cov = run_coverage(&cfg, &[], sys.build(DEGREE).as_mut());
        assert_eq!(cov.accesses, 0);
        assert_eq!(cov.baseline_misses, 0);
        assert_eq!(cov.covered, 0);
        assert_eq!(cov.prefetches_issued, 0, "{}", sys.label());
        let tim = run_timing(&cfg, &[], sys.build(DEGREE).as_mut());
        assert_eq!(tim.total_ns, 0.0);
        assert_eq!(tim.instructions, 0);
    }
}

// ---------------------------------------------------------------------
// Malformed `DMNOTRC1` inputs: every way a trace file can be broken —
// empty, truncated mid-header, wrong magic, torn final record,
// misaligned chunk index, flipped payload bytes, an unfinished writer —
// must surface as a clear `TraceFileError`, never a panic, through both
// the validating reader and the streaming file source.

use std::io::Cursor;

use domino_trace::stream::{
    Codec, EventSource, FileSource, TraceFileError, TraceReader, TraceWriter,
};
use domino_trace::workload::catalog;

/// A sealed in-memory trace: 100 events in 7-event chunks (the last
/// chunk short), as raw bytes ready for surgery.
fn sealed_trace_bytes(codec: Codec) -> Vec<u8> {
    let events: Vec<AccessEvent> = catalog::oltp().generator(0xDE6E).take(100).collect();
    let path = std::env::temp_dir().join(format!(
        "domino-degenerate-{}-{}.dmno",
        std::process::id(),
        codec.label()
    ));
    let mut writer = TraceWriter::create(&path, 7, codec).expect("create");
    writer.write_events(&events).expect("write");
    writer.finish().expect("finish");
    let bytes = std::fs::read(&path).expect("read back");
    std::fs::remove_file(&path).ok();
    bytes
}

fn open_err(bytes: Vec<u8>) -> TraceFileError {
    match TraceReader::new(Cursor::new(bytes)) {
        Ok(_) => panic!("malformed trace bytes validated cleanly"),
        Err(e) => e,
    }
}

#[test]
fn empty_file_is_a_truncated_header() {
    let err = open_err(Vec::new());
    assert!(
        matches!(err, TraceFileError::TruncatedHeader { len: 0 }),
        "{err}"
    );
    assert!(!err.to_string().is_empty());
}

#[test]
fn truncated_header_is_reported_at_every_cut() {
    let good = sealed_trace_bytes(Codec::Raw);
    for cut in [1usize, 7, 8, 16, 39] {
        let err = open_err(good[..cut].to_vec());
        match err {
            TraceFileError::TruncatedHeader { len } => assert_eq!(len, cut as u64),
            // Cuts shorter than the magic may also legitimately read as
            // a bad magic; anything else is wrong.
            TraceFileError::BadMagic { .. } => assert!(cut < 8, "cut {cut}: {err}"),
            other => panic!("cut {cut}: unexpected error {other}"),
        }
    }
}

#[test]
fn wrong_magic_is_rejected_with_the_found_bytes() {
    let mut bytes = sealed_trace_bytes(Codec::Raw);
    bytes[0..8].copy_from_slice(b"NOTADMNO");
    let err = open_err(bytes);
    match err {
        TraceFileError::BadMagic { found } => assert_eq!(&found, b"NOTADMNO"),
        other => panic!("unexpected error {other}"),
    }
}

#[test]
fn torn_final_record_is_detected_from_the_index() {
    let mut bytes = sealed_trace_bytes(Codec::Raw);
    // Shrink the last index entry's byte_len by one byte: the chunk no
    // longer holds a whole number of 24-byte records for its indexed
    // event count.
    let index_offset = u64::from_le_bytes(bytes[32..40].try_into().expect("8 bytes")) as usize;
    let entries = (bytes.len() - index_offset) / 32;
    let last = index_offset + (entries - 1) * 32;
    let byte_len = u64::from_le_bytes(bytes[last + 8..last + 16].try_into().expect("8 bytes"));
    bytes[last + 8..last + 16].copy_from_slice(&(byte_len - 1).to_le_bytes());
    let err = open_err(bytes);
    match err {
        TraceFileError::TornRecord {
            chunk,
            byte_len: torn,
        } => {
            assert_eq!(chunk, entries - 1);
            assert_eq!(torn, byte_len - 1);
        }
        other => panic!("unexpected error {other}"),
    }
}

#[test]
fn misaligned_index_offset_is_rejected_in_both_directions() {
    for (codec, delta) in [(Codec::Raw, 1i64), (Codec::Raw, -1), (Codec::Sequitur, 1)] {
        let mut bytes = sealed_trace_bytes(codec);
        let index_offset = u64::from_le_bytes(bytes[32..40].try_into().expect("8 bytes"));
        let skewed = index_offset.wrapping_add_signed(delta);
        bytes[32..40].copy_from_slice(&skewed.to_le_bytes());
        let err = open_err(bytes);
        assert!(
            matches!(err, TraceFileError::BadIndex { .. }),
            "{} offset {delta:+}: unexpected error {err}",
            codec.label()
        );
    }
}

#[test]
fn unfinished_writer_leaves_a_rejected_file() {
    // A crashed writer never rewrites the header, so index_offset is 0.
    let mut bytes = sealed_trace_bytes(Codec::Raw);
    bytes[16..40].copy_from_slice(&[0u8; 24][..]);
    bytes[24..28].copy_from_slice(&7u32.to_le_bytes()); // chunk_events stays valid
    let err = open_err(bytes);
    assert!(matches!(err, TraceFileError::BadIndex { .. }), "{err}");
}

#[test]
fn flipped_payload_bytes_fail_the_chunk_digest() {
    for codec in [Codec::Raw, Codec::Sequitur] {
        let mut bytes = sealed_trace_bytes(codec);
        // Flip one bit inside the first chunk's first record image (a
        // pc byte, so the record still decodes) and stream the file:
        // the digest check must catch it.
        bytes[41] ^= 0x01;
        let mut reader = TraceReader::new(Cursor::new(bytes)).expect("header/index intact");
        let mut out = Vec::new();
        let mut saw_error = false;
        for idx in 0..reader.chunk_count() {
            if let Err(err) = reader.read_chunk_into(idx, &mut out) {
                assert!(
                    matches!(
                        err,
                        TraceFileError::DigestMismatch { chunk: 0, .. }
                            | TraceFileError::BadGrammar { chunk: 0, .. }
                            | TraceFileError::BadRecord { chunk: 0, .. }
                    ),
                    "{}: unexpected error {err}",
                    codec.label()
                );
                saw_error = true;
                break;
            }
        }
        assert!(
            saw_error,
            "{}: corrupted chunk decoded cleanly",
            codec.label()
        );
    }
}

#[test]
fn file_source_propagates_malformed_files_without_panicking() {
    let path = std::env::temp_dir().join(format!(
        "domino-degenerate-source-{}.dmno",
        std::process::id()
    ));
    // Not a trace at all.
    std::fs::write(&path, b"NOTADMNO-and-then-some-garbage-bytes").expect("write junk");
    match FileSource::open(&path) {
        Ok(_) => panic!("junk file opened as a trace"),
        Err(TraceFileError::BadMagic { .. }) => {}
        Err(other) => panic!("unexpected error {other}"),
    }
    // Valid header/index but a corrupted payload: the error must arrive
    // through next_chunk, from the read-ahead thread, not a panic.
    let mut bytes = sealed_trace_bytes(Codec::Raw);
    bytes[41] ^= 0x01;
    std::fs::write(&path, &bytes).expect("write corrupted trace");
    let mut source = FileSource::open(&path).expect("header and index are intact");
    let mut chunk = Vec::new();
    let mut saw_error = false;
    loop {
        match source.next_chunk(&mut chunk) {
            Ok(0) => break,
            Ok(_) => continue,
            Err(err) => {
                assert!(
                    matches!(err, TraceFileError::DigestMismatch { .. }),
                    "unexpected error {err}"
                );
                saw_error = true;
                break;
            }
        }
    }
    assert!(saw_error, "corrupted payload streamed cleanly");
    std::fs::remove_file(&path).ok();
}
