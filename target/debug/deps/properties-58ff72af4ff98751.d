/root/repo/target/debug/deps/properties-58ff72af4ff98751.d: crates/trace/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-58ff72af4ff98751.rmeta: crates/trace/tests/properties.rs Cargo.toml

crates/trace/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
