#!/usr/bin/env sh
# Offline lint gate: formatting + clippy with warnings denied + a
# release build with warnings denied + tests + a telemetry schema smoke
# run + the differential checker. Everything here runs without network
# access (the workspace has no external dependencies), so it is usable
# as a pre-push hook or CI step in air-gapped environments.
#
#   tools/check.sh          # everything
#   tools/check.sh --fast   # fmt + clippy only
#
# A per-stage timing summary is printed at the end.

set -eu

cd "$(dirname "$0")/.."

# --- per-stage timing -------------------------------------------------
# mark <name> closes the previous stage and opens <name>; POSIX sh, so
# timings accumulate in a string rather than an array (1 s resolution).
stage_times=""
stage_name=""
stage_start=0
mark() {
    now=$(date +%s)
    if [ -n "$stage_name" ]; then
        stage_times="${stage_times}${stage_name}:$((now - stage_start))\n"
    fi
    stage_name="${1:-}"
    stage_start=$now
}
summary() {
    mark ""
    printf '\nper-stage timing:\n'
    # shellcheck disable=SC2059 # stage_times embeds its own \n markers
    printf "$stage_times" | while IFS=: read -r name secs; do
        if [ -n "$name" ]; then
            printf '  %-28s %4ss\n' "$name" "$secs"
        fi
    done
}

mark fmt
echo "==> cargo fmt --check"
cargo fmt --check

mark clippy
echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

if [ "${1:-}" != "--fast" ]; then
    mark build-release
    echo "==> cargo build --release (deny warnings)"
    RUSTFLAGS="${RUSTFLAGS:-} -D warnings" cargo build --release --workspace

    mark test
    echo "==> cargo test"
    cargo test --workspace -q

    mark telemetry-smoke
    echo "==> telemetry schema smoke run"
    smoke_dir=$(mktemp -d)
    trap 'rm -rf "$smoke_dir"' EXIT
    cargo run --release -q -p domino-sim --bin report -- --smoke "$smoke_dir"
    if command -v python3 >/dev/null 2>&1; then
        python3 tools/validate_telemetry.py "$smoke_dir"
    else
        echo "    (python3 not found; skipping JSON schema validation)"
    fi

    mark bench-guard
    echo "==> bench regression guard (DOMINO_SKIP_BENCH_GUARD=1 to skip)"
    if [ "${DOMINO_SKIP_BENCH_GUARD:-0}" = "1" ]; then
        echo "    skipped (DOMINO_SKIP_BENCH_GUARD=1)"
    elif ! command -v python3 >/dev/null 2>&1; then
        echo "    (python3 not found; skipping bench comparison)"
    else
        bench_dir=$(mktemp -d)
        trap 'rm -rf "$smoke_dir" "${bench_dir:-}"' EXIT
        # Same scale and job count as the committed BENCH_sweep.json so
        # the per-figure events_per_sec columns are comparable.
        cargo run --release -q --example figures -- 20000 --jobs 1 "$bench_dir" \
            >/dev/null
        python3 tools/bench_guard.py BENCH_sweep.json "$bench_dir/BENCH_sweep.json"
    fi

    mark rivals-smoke
    echo "==> modern-rivals figure smoke"
    # The rivals head-to-head (STMS/Digram/Domino/Pangloss/Triangel) at a
    # reduced event count: the stage fails if any rival's cell panics,
    # and both post-Domino systems must appear in the rendered tables.
    rivals_out=$(mktemp)
    trap 'rm -rf "$smoke_dir" "${bench_dir:-}" "${rivals_out:-}"' EXIT
    cargo run --release -q --example rivals -- 6000 --jobs 2 >"$rivals_out"
    grep -q "Pangloss" "$rivals_out"
    grep -q "Triangel" "$rivals_out"

    mark trace-smoke
    echo "==> flight-recorder trace smoke run"
    trace_dir=$(mktemp -d)
    trap 'rm -rf "$smoke_dir" "${bench_dir:-}" "${rivals_out:-}" "$trace_dir"' EXIT
    cargo run --release -q -p domino-sim --bin explain -- --smoke "$trace_dir"
    cargo run --release -q -p domino-sim --bin explain -- "$trace_dir" --csv >/dev/null
    if command -v python3 >/dev/null 2>&1; then
        python3 tools/validate_trace.py "$trace_dir"
    else
        echo "    (python3 not found; skipping binary trace validation)"
    fi

    mark differential-check
    echo "==> differential checker smoke (DOMINO_SKIP_CHECK=1 to skip)"
    if [ "${DOMINO_SKIP_CHECK:-0}" = "1" ]; then
        echo "    skipped (DOMINO_SKIP_CHECK=1)"
    else
        check_dir=$(mktemp -d)
        trap 'rm -rf "$smoke_dir" "${bench_dir:-}" "${rivals_out:-}" "${trace_dir:-}" "$check_dir"' EXIT
        # Any oracle violation exits nonzero and fails the gate (set -e).
        # Reproducers go to the gitignored check-failures/ so a failing
        # run leaves its shrunk trace behind for replay.
        cargo run --release -q -p domino-check -- --smoke --out check-failures
        # Prove the shrink + reproducer machinery end to end (its
        # forced reproducer is disposable, so it goes to the tmp dir).
        cargo run --release -q -p domino-check -- --force-fail --out "$check_dir" \
            >/dev/null
    fi

    mark batched-parity
    echo "==> batched-vs-scalar parity (DOMINO_SKIP_CHECK=1 to skip)"
    if [ "${DOMINO_SKIP_CHECK:-0}" = "1" ]; then
        echo "    skipped (DOMINO_SKIP_CHECK=1)"
    else
        # Every roster system, every generator family, batch 7 and 64:
        # the batched SoA engines must be byte-identical to scalar.
        cargo run --release -q -p domino-check -- --batch-parity \
            --events 1200 --out check-failures
    fi

    mark stream-parity
    echo "==> streamed-vs-cached parity (DOMINO_SKIP_CHECK=1 to skip)"
    if [ "${DOMINO_SKIP_CHECK:-0}" = "1" ]; then
        echo "    skipped (DOMINO_SKIP_CHECK=1)"
    else
        # Every roster system, both engines, raw and Sequitur-compressed
        # DMNOTRC1 files: replay through the double-buffered file source
        # must be byte-identical to the cached-slice runs.
        cargo run --release -q -p domino-check -- --stream-parity \
            --events 800 --out check-failures
    fi

    mark service-smoke
    echo "==> metadata service smoke (DOMINO_SKIP_SERVICE=1 to skip)"
    if [ "${DOMINO_SKIP_SERVICE:-0}" = "1" ]; then
        echo "    skipped (DOMINO_SKIP_SERVICE=1)"
    else
        # 1,000 concurrent Domino tenant streams through the sharded
        # service; the schema-versioned SLO report must validate.
        service_dir=$(mktemp -d)
        trap 'rm -rf "$smoke_dir" "${bench_dir:-}" "${rivals_out:-}" "${trace_dir:-}" "${check_dir:-}" "$service_dir"' EXIT
        cargo run --release -q -p domino-service --bin domino-serve -- \
            --smoke "$service_dir"
        if command -v python3 >/dev/null 2>&1; then
            python3 tools/validate_service.py "$service_dir/SERVICE_report.json"
        else
            echo "    (python3 not found; skipping service report validation)"
        fi
    fi

    mark obs-smoke
    echo "==> observability plane smoke (DOMINO_SKIP_OBS=1 to skip)"
    if [ "${DOMINO_SKIP_OBS:-0}" = "1" ]; then
        echo "    skipped (DOMINO_SKIP_OBS=1)"
    else
        # An armed run: metrics rings + spans flushed to obs_dir, SLO
        # evaluated (shed_ratio only — the blocking policy never sheds,
        # so this passes on arbitrarily slow hosts where wall-clock p99
        # would not be stable), dashboard rendered once, artifacts
        # re-parsed by the independent Python implementation.
        obs_dir=$(mktemp -d)
        trap 'rm -rf "$smoke_dir" "${bench_dir:-}" "${rivals_out:-}" "${trace_dir:-}" "${check_dir:-}" "${service_dir:-}" "$obs_dir"' EXIT
        cargo run --release -q -p domino-service --bin domino-serve -- \
            --tenants 64 --events 120 --batch 32 --shards 2 --clients 2 \
            --obs "$obs_dir" --obs-interval 256 --span-rate 4 \
            --slo "shed_ratio<=0.5" --fail-on-shed \
            --out "$obs_dir/SERVICE_report.json"
        cargo run --release -q -p domino-service --bin domino-top -- \
            "$obs_dir" --once
        cargo run --release -q -p domino-service --bin domino-top -- \
            "$obs_dir" --once --csv >/dev/null
        if command -v python3 >/dev/null 2>&1; then
            python3 tools/validate_obs.py "$obs_dir"
        else
            echo "    (python3 not found; skipping obs artifact validation)"
        fi
        # The breach path: an unmeetable SLO must flip the exit status.
        if cargo run --release -q -p domino-service --bin domino-serve -- \
            --tenants 8 --events 64 --batch 32 --shards 2 \
            --obs "$obs_dir/breach" --slo "p99_ns<=1" \
            --out "$obs_dir/breach/SERVICE_report.json" >/dev/null 2>&1; then
            echo "    ERROR: --slo 'p99_ns<=1' did not exit nonzero"
            exit 1
        fi
        echo "    breach exit verified (--slo 'p99_ns<=1' failed as required)"
    fi

    mark ingest-smoke
    echo "==> trace ingestion smoke (DOMINO_SKIP_INGEST=1 to skip)"
    if [ "${DOMINO_SKIP_INGEST:-0}" = "1" ]; then
        echo "    skipped (DOMINO_SKIP_INGEST=1)"
    else
        # Synthesize a DMNOTRC1 trace, re-encode it under the Sequitur
        # codec, digest-verify both files decode identically, round-trip
        # through the ChampSim adapter, replay the file through the
        # service load generator, and cross-check the format with the
        # independent stdlib-Python reimplementation.
        ingest_dir=$(mktemp -d)
        trap 'rm -rf "$smoke_dir" "${bench_dir:-}" "${rivals_out:-}" "${trace_dir:-}" "${check_dir:-}" "${service_dir:-}" "${obs_dir:-}" "$ingest_dir"' EXIT
        ingest() { cargo run --release -q -p domino-trace --bin domino-ingest -- "$@"; }
        ingest synth oltp --events 30000 --chunk-events 1000 \
            --out "$ingest_dir/oltp.dmno"
        ingest compress "$ingest_dir/oltp.dmno" "$ingest_dir/oltp.seq.dmno"
        ingest verify "$ingest_dir/oltp.dmno" "$ingest_dir/oltp.seq.dmno"
        ingest export-champsim "$ingest_dir/oltp.dmno" "$ingest_dir/oltp.champsim"
        ingest champsim "$ingest_dir/oltp.champsim" "$ingest_dir/oltp2.dmno"
        ingest export-champsim "$ingest_dir/oltp2.dmno" "$ingest_dir/oltp2.champsim"
        cmp "$ingest_dir/oltp.champsim" "$ingest_dir/oltp2.champsim"
        cargo run --release -q -p domino-service --bin domino-serve -- \
            --tenants 64 --events 120 --batch 32 --shards 2 --clients 2 \
            --trace-file "$ingest_dir/oltp.seq.dmno" --base-events 30000 \
            --out "$ingest_dir/SERVICE_report.json"
        if command -v python3 >/dev/null 2>&1; then
            python3 tools/validate_ingest.py \
                "$ingest_dir/oltp.dmno" "$ingest_dir/oltp.seq.dmno"
            python3 tools/validate_service.py "$ingest_dir/SERVICE_report.json"
        else
            echo "    (python3 not found; skipping ingest format validation)"
        fi
    fi
fi

echo "check.sh: all clean"
summary
