/root/repo/target/debug/deps/domino_mem-22a1cd7fd38d48a7.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/history.rs crates/mem/src/interface.rs crates/mem/src/metadata.rs crates/mem/src/mshr.rs crates/mem/src/prefetch_buffer.rs crates/mem/src/streams.rs

/root/repo/target/debug/deps/libdomino_mem-22a1cd7fd38d48a7.rlib: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/history.rs crates/mem/src/interface.rs crates/mem/src/metadata.rs crates/mem/src/mshr.rs crates/mem/src/prefetch_buffer.rs crates/mem/src/streams.rs

/root/repo/target/debug/deps/libdomino_mem-22a1cd7fd38d48a7.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/history.rs crates/mem/src/interface.rs crates/mem/src/metadata.rs crates/mem/src/mshr.rs crates/mem/src/prefetch_buffer.rs crates/mem/src/streams.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/dram.rs:
crates/mem/src/history.rs:
crates/mem/src/interface.rs:
crates/mem/src/metadata.rs:
crates/mem/src/mshr.rs:
crates/mem/src/prefetch_buffer.rs:
crates/mem/src/streams.rs:
