//! Trace minimization: ddmin-style chunk removal with rerun-per-step.
//!
//! Given a failing trace and the predicate that reproduces the failure,
//! the shrinker repeatedly tries deleting contiguous chunks, halving
//! the chunk size from `len / 2` down to 1 — the final pass *is* the
//! single-event-deletion pass — and keeps any deletion that still
//! fails. The result is 1-minimal up to the run budget: no single
//! remaining event can be removed without losing the failure.

use domino_trace::event::AccessEvent;

/// Minimizes `trace` while `fails` keeps returning `true`.
///
/// `fails` must be deterministic (every oracle in this crate is: the
/// engines, models, and generators are all seeded or pure). `max_runs`
/// bounds how many times the predicate is invoked, so a slow oracle on
/// a huge trace still terminates promptly; the partially-shrunk trace
/// is returned when the budget runs out.
///
/// # Panics
///
/// Panics if the original `trace` does not fail — shrinking a passing
/// input indicates a harness bug, not an oracle violation.
pub fn shrink(
    trace: &[AccessEvent],
    fails: impl FnMut(&[AccessEvent]) -> bool,
    max_runs: usize,
) -> Vec<AccessEvent> {
    shrink_aligned(trace, fails, max_runs, 1)
}

/// [`shrink`] restricted to batch-aligned deletions: every removed
/// chunk starts at a multiple of `align` and spans a multiple of
/// `align` events (except at the trace tail, which nothing follows).
///
/// Batch-sensitive failures depend on where events fall *within* their
/// chunk — an unaligned deletion shifts every later event's in-chunk
/// position, so plain ddmin keeps discarding candidate deletions that
/// would reproduce under an aligned cut. Quantizing the cuts keeps each
/// surviving event's chunk offset fixed, and the result is
/// `align`-minimal: no aligned block can be removed without losing the
/// failure. `align == 1` is exactly [`shrink`].
///
/// # Panics
///
/// Panics if `align` is zero or the original `trace` does not fail.
pub fn shrink_aligned(
    trace: &[AccessEvent],
    mut fails: impl FnMut(&[AccessEvent]) -> bool,
    max_runs: usize,
    align: usize,
) -> Vec<AccessEvent> {
    assert!(align > 0, "alignment must be positive");
    assert!(fails(trace), "shrink() called on a passing trace");
    let round_up = |n: usize| n.div_ceil(align) * align;
    let mut best = trace.to_vec();
    let mut runs = 0usize;
    loop {
        let before = best.len();
        let mut chunk = round_up((best.len() / 2).max(1));
        loop {
            let mut start = 0;
            while start < best.len() {
                if runs == max_runs {
                    return best;
                }
                let end = (start + chunk).min(best.len());
                let mut candidate = Vec::with_capacity(best.len() - (end - start));
                candidate.extend_from_slice(&best[..start]);
                candidate.extend_from_slice(&best[end..]);
                runs += 1;
                if !candidate.is_empty() && fails(&candidate) {
                    // Keep the deletion; the next chunk now sits at
                    // the same offset.
                    best = candidate;
                } else if candidate.is_empty() && fails(&candidate) {
                    return candidate;
                } else {
                    start = end;
                }
            }
            if chunk == align {
                break;
            }
            chunk = round_up(chunk / 2).max(align);
        }
        // A full sweep at every granularity removed nothing: minimal.
        if best.len() == before {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_trace::addr::{Addr, Pc};

    fn ev(line: u64) -> AccessEvent {
        AccessEvent::read(Pc::new(1), Addr::new(line * 64))
    }

    #[test]
    fn shrinks_duplicate_line_to_two_events() {
        // Predicate: some line appears at least twice.
        let fails = |t: &[AccessEvent]| {
            t.iter()
                .enumerate()
                .any(|(i, a)| t[..i].iter().any(|b| b.line() == a.line()))
        };
        let mut trace: Vec<AccessEvent> = (0..400).map(ev).collect();
        trace.push(ev(123)); // the single duplicate
        let small = shrink(&trace, fails, 10_000);
        assert_eq!(small.len(), 2, "exactly the duplicated pair survives");
        assert_eq!(small[0].line(), small[1].line());
    }

    #[test]
    fn respects_run_budget() {
        let mut calls = 0usize;
        let trace: Vec<AccessEvent> = (0..64).map(ev).collect();
        let out = shrink(
            &trace,
            |_| {
                calls += 1;
                true
            },
            5,
        );
        // Initial check + 5 budgeted runs; result is whatever the budget
        // allowed, never larger than the input.
        assert!(calls <= 6);
        assert!(out.len() <= trace.len());
    }

    #[test]
    fn minimal_input_is_stable() {
        let trace = vec![ev(9)];
        let out = shrink(&trace, |t| !t.is_empty(), 100);
        assert_eq!(out.len(), 1);
    }

    #[test]
    #[should_panic(expected = "passing trace")]
    fn passing_trace_panics() {
        shrink(&[ev(1)], |_| false, 10);
    }

    #[test]
    fn aligned_cuts_preserve_chunk_offsets() {
        // Batch-sensitive predicate: the marker line must sit at offset
        // 2 within its 4-event chunk. Only 4-aligned deletions can keep
        // it reproducing, so every event the shrinker removes must have
        // left the marker's in-chunk position untouched.
        const ALIGN: usize = 4;
        let marker = 9999u64;
        let mut trace: Vec<AccessEvent> = (0..64).map(ev).collect();
        trace[26] = ev(marker); // 26 % 4 == 2
        let fails = |t: &[AccessEvent]| {
            t.iter()
                .enumerate()
                .any(|(i, e)| e.line() == ev(marker).line() && i % ALIGN == 2)
        };
        let small = shrink_aligned(&trace, fails, 10_000, ALIGN);
        assert!(fails(&small), "shrunk trace must still reproduce");
        assert_eq!(small.len(), ALIGN, "one aligned chunk survives");
        assert_eq!(small[2].line(), ev(marker).line());
    }

    #[test]
    fn align_one_matches_plain_shrink() {
        let fails = |t: &[AccessEvent]| {
            t.iter()
                .enumerate()
                .any(|(i, a)| t[..i].iter().any(|b| b.line() == a.line()))
        };
        let mut trace: Vec<AccessEvent> = (0..100).map(ev).collect();
        trace.push(ev(42));
        let a = shrink(&trace, fails, 10_000);
        let b = shrink_aligned(&trace, fails, 10_000, 1);
        assert_eq!(a, b, "align 1 is the plain shrinker");
    }
}
