//! Proof that the oracles have teeth: known bugs, injected and caught.
//!
//! Nine mutations live in the production crates behind
//! `#[cfg(domino_mutate)]`, each selected at runtime by the
//! `DOMINO_MUTATE` environment variable. The self-test re-executes the
//! current binary in `--smoke` mode once per mutation (plus one clean
//! control run) and asserts that every mutant run fails *and* names the
//! oracle expected to catch that bug. A mutation that slips through
//! means an oracle lost its teeth — the self-test fails loudly.
//!
//! The hooks only exist when the workspace is compiled with
//! `RUSTFLAGS="--cfg domino_mutate"`; see `TESTING.md` for the exact
//! build command.

use std::process::Command;

/// One injected bug and the oracle expected to catch it.
#[derive(Debug, Clone, Copy)]
pub struct Mutation {
    /// `DOMINO_MUTATE` value selecting the bug.
    pub name: &'static str,
    /// Oracle whose name must appear in the failing run's output.
    pub oracle: &'static str,
    /// What the bug does.
    pub what: &'static str,
}

/// Every injected mutation, with its catching oracle.
pub const MUTATIONS: [Mutation; 9] = [
    Mutation {
        name: "eit_skip_promotion",
        oracle: "eit_model",
        what: "EIT update refresh skips the super-entry LRU promotion",
    },
    Mutation {
        name: "mshr_retire_boundary",
        oracle: "mshr_model",
        what: "MSHR retirement treats the time boundary as exclusive",
    },
    Mutation {
        name: "buffer_missing_evict_count",
        oracle: "buffer_model",
        what: "prefetch-buffer capacity evictions are not counted",
    },
    Mutation {
        name: "buffer_sticky_take",
        oracle: "buffer_model",
        what: "buffer hits leave the entry resident",
    },
    Mutation {
        name: "ring_wrap_off_by_one",
        oracle: "flight_recorder_chronology",
        what: "flight-recorder ring writes one slot past the wrap point",
    },
    Mutation {
        name: "timing_late_as_full",
        oracle: "cross_engine",
        what: "timing engine books late buffer hits as full misses",
    },
    Mutation {
        name: "batch_stale_contains",
        oracle: "batched_vs_scalar",
        what: "batched L1 membership probes read stale chunk-end state",
    },
    Mutation {
        name: "pangloss_victim_tiebreak",
        oracle: "pangloss_model",
        what: "Pangloss edge victim ties break to the newest edge instead of the oldest",
    },
    Mutation {
        name: "triangel_sampler_off_by_one",
        oracle: "triangel_model",
        what: "Triangel usefulness gate is off by one (> instead of >=)",
    },
];

/// Runs the full self-test. `out_dir` is forwarded to the child smoke
/// runs so their reproducer files land somewhere disposable.
///
/// Returns `Err` with a description on the first mutation that escapes
/// (or if this binary was not built with the mutation hooks).
pub fn run_self_test(out_dir: &str) -> Result<(), String> {
    if !cfg!(domino_mutate) {
        return Err("this binary was built without the mutation hooks.\n\
             Rebuild with:\n\
             \x20 RUSTFLAGS=\"--cfg domino_mutate\" \
             CARGO_TARGET_DIR=target/mutate \
             cargo run --release -p domino-check -- --self-test"
            .into());
    }
    let exe = std::env::current_exe().map_err(|e| format!("cannot find own binary: {e}"))?;

    // Control: with no mutation selected the hooks are dead code and the
    // smoke campaign must pass.
    println!("control: smoke with no mutation ...");
    let control = Command::new(&exe)
        .args(["--smoke", "--out", out_dir])
        .env_remove("DOMINO_MUTATE")
        .output()
        .map_err(|e| format!("control run failed to spawn: {e}"))?;
    if !control.status.success() {
        return Err(format!(
            "control smoke run FAILED with no mutation active:\n{}{}",
            String::from_utf8_lossy(&control.stdout),
            String::from_utf8_lossy(&control.stderr),
        ));
    }
    println!("control: ok");

    for m in MUTATIONS {
        println!("mutation {}: {} ...", m.name, m.what);
        let out = Command::new(&exe)
            .args(["--smoke", "--out", out_dir])
            .env("DOMINO_MUTATE", m.name)
            .output()
            .map_err(|e| format!("mutant run {} failed to spawn: {e}", m.name))?;
        let text = format!(
            "{}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        if out.status.success() {
            return Err(format!(
                "mutation {} ESCAPED: the smoke campaign passed with the bug \
                 active (expected oracle {})\n{text}",
                m.name, m.oracle
            ));
        }
        if !text.contains(m.oracle) {
            return Err(format!(
                "mutation {} was caught, but not by the expected oracle {} \
                 — output:\n{text}",
                m.name, m.oracle
            ));
        }
        println!("mutation {}: caught by {}", m.name, m.oracle);
    }
    println!("self-test: all {} mutations caught", MUTATIONS.len());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_names_are_unique() {
        for (i, a) in MUTATIONS.iter().enumerate() {
            for b in &MUTATIONS[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn expected_oracles_are_known_names() {
        let known = [
            "batched_vs_scalar",
            "cross_engine",
            "multicore_equivalence",
            "attribution_conservation",
            "attribution_totals",
            "flight_recorder_chronology",
            "trace_roundtrip",
            "epoch_monotonicity",
            "buffer_conservation",
            "eit_model",
            "mshr_model",
            "buffer_model",
            "cache_model",
            "pangloss_model",
            "triangel_model",
        ];
        for m in MUTATIONS {
            assert!(known.contains(&m.oracle), "unknown oracle {}", m.oracle);
        }
    }
}
