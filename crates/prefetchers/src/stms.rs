//! Sampled Temporal Memory Streaming (Wenisch et al., HPCA 2009) — the
//! state-of-the-art temporal prefetcher the paper compares against and
//! builds Domino upon.
//!
//! STMS keeps two off-chip tables (paper §III-A):
//!
//! * a per-core **History Table** (HT): circular log of triggering events;
//! * an **Index Table** (IT): for every miss address, a pointer to its
//!   last occurrence in the HT.
//!
//! Upon a miss, STMS reads the IT entry (one off-chip round trip), follows
//! the pointer into the HT (a second round trip), and replays the
//! addresses that followed the previous occurrence — so the first prefetch
//! of every stream costs **two** serial memory accesses, the timeliness
//! deficiency Domino's EIT removes (paper Figure 6).
//!
//! Index updates are *statistical*: only a sampled fraction (12.5 %) is
//! written back, which the original work showed performs like
//! always-update at far less bandwidth.

use domino_trace::FxHashMap;

use domino_mem::history::{HistoryTable, ROW_ENTRIES};
use domino_mem::interface::{
    CollectSink, PrefetchSink, Prefetcher, TriggerBatch, TriggerEvent, TriggerKind,
};
use domino_mem::metadata::UpdateSampler;
use domino_trace::addr::LineAddr;

use crate::config::TemporalConfig;
use domino_mem::streams::{top_up, StreamTable};

/// The STMS prefetcher.
///
/// ```
/// use domino_mem::{CollectSink, Prefetcher, TriggerEvent};
/// use domino_prefetchers::{Stms, TemporalConfig};
/// use domino_trace::addr::{LineAddr, Pc};
///
/// let mut stms = Stms::new(TemporalConfig::default());
/// let mut sink = CollectSink::new();
/// // First-ever miss: nothing to replay yet.
/// stms.on_trigger(&TriggerEvent::miss(Pc::new(1), LineAddr::new(10)), &mut sink);
/// assert!(sink.requests.is_empty());
/// ```
#[derive(Debug)]
pub struct Stms {
    cfg: TemporalConfig,
    ht: HistoryTable,
    /// Index Table: miss address → last sampled HT position.
    index: FxHashMap<LineAddr, u64>,
    streams: StreamTable<LineAddr>,
    sampler: UpdateSampler,
    lookups: u64,
    lookup_matches: u64,
}

impl Stms {
    /// Creates an STMS instance.
    pub fn new(cfg: TemporalConfig) -> Self {
        cfg.validate();
        Stms {
            ht: HistoryTable::new(cfg.ht_entries),
            index: FxHashMap::default(),
            streams: StreamTable::new(cfg.max_streams),
            sampler: UpdateSampler::new(cfg.sampling_probability, cfg.seed),
            cfg,
            lookups: 0,
            lookup_matches: 0,
        }
    }

    /// Appends a triggering event to the history, charging a block write
    /// when a full row (LogMiss buffer) spills to memory.
    fn log(&mut self, line: LineAddr, stream_head: bool, sink: &mut dyn PrefetchSink) -> u64 {
        let pos = self.ht.append(line, stream_head);
        if (pos + 1).is_multiple_of(ROW_ENTRIES as u64) {
            sink.metadata_write(1);
        }
        pos
    }

    /// Statistical index update (every logged event is a candidate).
    fn update_index(&mut self, line: LineAddr, pos: u64, sink: &mut dyn PrefetchSink) {
        if self.sampler.sample() {
            self.index.insert(line, pos);
            sink.metadata_write(1);
        }
    }

    /// Fraction of index lookups that found a live pointer (diagnostics).
    pub fn lookup_match_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.lookup_matches as f64 / self.lookups as f64
        }
    }
}

impl Prefetcher for Stms {
    fn name(&self) -> &str {
        "STMS"
    }

    fn reserve(&mut self, expected_events: usize) {
        self.ht.reserve(expected_events);
    }

    fn emit_counters(&self, sink: &mut dyn domino_telemetry::CounterSink) {
        sink.counter("index.lookups", self.lookups);
        sink.counter("index.matches", self.lookup_matches);
    }

    fn knows_line(&self, line: LineAddr) -> bool {
        self.index.contains_key(&line)
    }

    fn footprint_bytes(&self) -> usize {
        self.ht.footprint_bytes()
            + self.index.len() * (std::mem::size_of::<LineAddr>() + std::mem::size_of::<u64>())
    }

    fn on_trigger(&mut self, event: &TriggerEvent, sink: &mut dyn PrefetchSink) {
        let line = event.line;
        let mut trips = 0u8;
        match event.kind {
            TriggerKind::PrefetchHit => {
                let pos = self.log(line, false, sink);
                if self.streams.consume(line).is_some() {
                    let s = self.streams.mru_mut().expect("consume promoted it");
                    top_up(
                        s,
                        &self.ht,
                        self.cfg.degree,
                        line,
                        self.cfg.stream_end_detection,
                        &mut trips,
                        sink,
                    );
                }
                self.update_index(line, pos, sink);
            }
            TriggerKind::Miss => {
                // Late continuation: the miss matches a live stream's
                // prediction — keep following it instead of a new lookup.
                if self.streams.consume(line).is_some() {
                    let pos = self.log(line, false, sink);
                    let s = self.streams.mru_mut().expect("consume promoted it");
                    top_up(
                        s,
                        &self.ht,
                        self.cfg.degree,
                        line,
                        self.cfg.stream_end_detection,
                        &mut trips,
                        sink,
                    );
                    self.update_index(line, pos, sink);
                } else {
                    let pos = self.log(line, true, sink);
                    // Index lookup: one off-chip block read, always.
                    sink.metadata_read(1);
                    trips += 1;
                    self.lookups += 1;
                    let found = self
                        .index
                        .get(&line)
                        .copied()
                        .filter(|&p| p < pos && self.ht.is_live(p + 1));
                    if let Some(prev) = found {
                        self.lookup_matches += 1;
                        let (evicted, _id) = self.streams.allocate(prev + 1, None, line);
                        if let Some(dead) = evicted {
                            sink.discard_stream(dead.id);
                        }
                        let s = self.streams.mru_mut().expect("just allocated");
                        top_up(
                            s,
                            &self.ht,
                            self.cfg.degree,
                            line,
                            self.cfg.stream_end_detection,
                            &mut trips,
                            sink,
                        );
                    }
                    // Statistical index update.
                    self.update_index(line, pos, sink);
                }
            }
        }
    }

    fn train_predict_batch(&mut self, batch: &mut dyn TriggerBatch, sink: &mut CollectSink) {
        // Hash-then-probe: one read-only pass over the chunk's trigger
        // lines touches their Index Table buckets before the serial drain
        // dereferences them one by one. Probes do not mutate the index,
        // so the drain below is bit-identical to the default path.
        let mut warm = 0usize;
        for &line in batch.pending_lines() {
            if self.index.contains_key(&line) {
                warm += 1;
            }
        }
        std::hint::black_box(warm);
        while let Some(event) = batch.next(sink) {
            self.on_trigger(&event, sink);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_mem::interface::CollectSink;
    use domino_trace::addr::Pc;

    fn cfg() -> TemporalConfig {
        TemporalConfig {
            sampling_probability: 1.0, // deterministic updates for unit tests
            // Replay-length tests drive cold history where every entry is
            // a stream head; disable the heuristic except where tested.
            stream_end_detection: false,
            ..TemporalConfig::default()
        }
    }

    fn miss(line: u64) -> TriggerEvent {
        TriggerEvent::miss(Pc::new(0), LineAddr::new(line))
    }

    fn hit(line: u64) -> TriggerEvent {
        TriggerEvent::prefetch_hit(Pc::new(0), LineAddr::new(line))
    }

    /// Drives a miss sequence, returning all issued prefetch lines.
    fn run(stms: &mut Stms, lines: &[u64]) -> Vec<u64> {
        let mut out = Vec::new();
        for &l in lines {
            let mut sink = CollectSink::new();
            stms.on_trigger(&miss(l), &mut sink);
            out.extend(sink.requests.iter().map(|r| r.line.raw()));
        }
        out
    }

    #[test]
    fn replays_previous_occurrence() {
        let mut stms = Stms::new(cfg().with_degree(2));
        // First pass establishes history and index.
        run(&mut stms, &[1, 2, 3, 4, 5]);
        // Second pass: miss on 1 must prefetch 2 and 3.
        let mut sink = CollectSink::new();
        stms.on_trigger(&miss(1), &mut sink);
        let lines: Vec<u64> = sink.requests.iter().map(|r| r.line.raw()).collect();
        assert_eq!(lines, vec![2, 3]);
        // First prefetch of a stream needs two serial trips (IT + HT).
        assert!(sink.requests.iter().all(|r| r.delay_trips == 2));
    }

    #[test]
    fn prefetch_hit_continues_stream() {
        let mut stms = Stms::new(cfg().with_degree(2));
        run(&mut stms, &[1, 2, 3, 4, 5, 6]);
        let mut sink = CollectSink::new();
        stms.on_trigger(&miss(1), &mut sink); // prefetches 2,3
        sink.clear();
        stms.on_trigger(&hit(2), &mut sink); // consume 2, top up with 4
        let lines: Vec<u64> = sink.requests.iter().map(|r| r.line.raw()).collect();
        assert_eq!(lines, vec![4]);
        // Continuation from the already-fetched row: no extra trips.
        assert_eq!(sink.requests[0].delay_trips, 0);
    }

    #[test]
    fn no_prefetch_without_history_match() {
        let mut stms = Stms::new(cfg());
        let issued = run(&mut stms, &[10, 20, 30]);
        assert!(issued.is_empty());
    }

    #[test]
    fn single_address_lookup_follows_most_recent_occurrence() {
        // The junction pathology that motivates Domino: address 7 starts
        // one stream continuing 101,102 and another continuing 201,202.
        // STMS's single-address lookup always replays the *most recent*
        // occurrence — wrong whenever the program is in the other stream.
        let mut stms = Stms::new(cfg().with_degree(2));
        run(&mut stms, &[7, 101, 102, 900, 901, 7, 201, 202, 910, 911]);
        let mut sink = CollectSink::new();
        stms.on_trigger(&miss(7), &mut sink);
        let lines: Vec<u64> = sink.requests.iter().map(|r| r.line.raw()).collect();
        assert_eq!(
            lines,
            vec![201, 202],
            "STMS must follow the last occurrence regardless of context"
        );
    }

    #[test]
    fn late_continuation_keeps_stream_alive() {
        let mut stms = Stms::new(cfg().with_degree(1));
        run(&mut stms, &[1, 2, 3, 4, 5, 6]);
        let mut sink = CollectSink::new();
        stms.on_trigger(&miss(1), &mut sink); // prefetch 2 (degree 1)
        sink.clear();
        // Demand-miss on 2 (prefetch was late): stream must continue to 3,
        // without a new index lookup.
        stms.on_trigger(&miss(2), &mut sink);
        let lines: Vec<u64> = sink.requests.iter().map(|r| r.line.raw()).collect();
        assert_eq!(lines, vec![3]);
        assert_eq!(sink.meta_read_blocks, 0, "no IT read on continuation");
    }

    #[test]
    fn stream_end_detection_stops_at_recorded_head_runs() {
        let mut c = cfg().with_degree(4);
        c.stream_end_detection = true;
        let mut stms = Stms::new(c);
        // Cold first pass: every entry is a demand miss (stream head).
        run(&mut stms, &[1, 2, 3, 4, 5, 6, 7, 8]);
        // Second pass: replay stops at the first run of two consecutive
        // recorded heads — entries 2 and 3 — despite degree 4.
        let mut sink = CollectSink::new();
        stms.on_trigger(&miss(1), &mut sink);
        let lines: Vec<u64> = sink.requests.iter().map(|r| r.line.raw()).collect();
        assert_eq!(lines, vec![2, 3], "stop at the first head run");
        // Hits are logged as non-heads; replay from this pass's log can
        // run further — the heuristic bootstraps as coverage grows.
        stms.on_trigger(&hit(2), &mut CollectSink::new());
        stms.on_trigger(&hit(3), &mut CollectSink::new());
        stms.on_trigger(&miss(4), &mut CollectSink::new());
        stms.on_trigger(&miss(100), &mut CollectSink::new());
        let mut sink = CollectSink::new();
        stms.on_trigger(&miss(1), &mut sink);
        let lines: Vec<u64> = sink.requests.iter().map(|r| r.line.raw()).collect();
        // Replays the fresh log: 2 (hit), 3 (hit), 4 (head), 100 (head,
        // second of the run) — four prefetches, one past the old limit.
        assert!(
            lines.len() >= 3,
            "replay must extend past covered entries: {lines:?}"
        );
        assert_eq!(&lines[..2], &[2, 3]);
    }

    #[test]
    fn metadata_traffic_is_accounted() {
        let mut stms = Stms::new(cfg());
        let mut reads = 0;
        let mut writes = 0;
        for l in [1u64, 2, 3, 1, 2, 3, 1, 2, 3] {
            let mut sink = CollectSink::new();
            stms.on_trigger(&miss(l), &mut sink);
            reads += sink.meta_read_blocks;
            writes += sink.meta_write_blocks;
        }
        assert!(reads > 0, "index lookups must be charged");
        assert!(writes > 0, "sampled updates must be charged");
    }
}
