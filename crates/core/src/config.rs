//! Domino configuration.

use crate::eit::EitConfig;
use domino_mem::streams::ReplacePolicy;

/// Parameters of the Domino prefetcher.
///
/// Defaults are the paper's evaluated configuration (§IV-D and §V-A):
/// degree 4, four active streams, 12.5 % sampled metadata updates,
/// stream-end detection, a 16 M-entry History Table and a 2 M-row
/// Enhanced Index Table with three entries per super-entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DominoConfig {
    /// Prefetch degree (in-flight prefetches per stream).
    pub degree: usize,
    /// Number of concurrently tracked streams.
    pub max_streams: usize,
    /// Probability that a metadata update is recorded (statistical
    /// updates; the paper uses 12.5 %).
    pub sampling_probability: f64,
    /// Stream-end detection (divergence hints), as in STMS.
    pub stream_end_detection: bool,
    /// History Table capacity in entries; `0` = unbounded.
    /// The paper settles on 16 M entries (Figure 9).
    pub ht_entries: usize,
    /// Enhanced Index Table geometry. The paper settles on 2 M rows
    /// (Figure 10).
    pub eit: EitConfig,
    /// Stream replacement policy. The paper replaces streams round-robin
    /// (§III) while hits keep promoting in the LRU stack.
    pub stream_replacement: ReplacePolicy,
    /// Sampler seed.
    pub seed: u64,
}

impl Default for DominoConfig {
    fn default() -> Self {
        DominoConfig {
            degree: 4,
            max_streams: 4,
            sampling_probability: 0.125,
            stream_end_detection: true,
            ht_entries: 16 * 1024 * 1024,
            eit: EitConfig::default(),
            stream_replacement: ReplacePolicy::RoundRobin,
            seed: 0xD0_0D0,
        }
    }
}

impl DominoConfig {
    /// Same configuration with a different degree.
    pub fn with_degree(mut self, degree: usize) -> Self {
        self.degree = degree;
        self
    }

    /// Validates parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics if degree or stream count is zero, or the sampling
    /// probability is outside `[0, 1]`.
    pub fn validate(&self) {
        assert!(self.degree > 0, "degree must be positive");
        assert!(self.max_streams > 0, "need at least one stream");
        assert!(
            (0.0..=1.0).contains(&self.sampling_probability),
            "sampling probability out of range"
        );
        self.eit.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DominoConfig::default();
        assert_eq!(c.degree, 4);
        assert_eq!(c.max_streams, 4);
        assert_eq!(c.ht_entries, 16 * 1024 * 1024);
        assert_eq!(c.eit.rows, 2 * 1024 * 1024);
        assert_eq!(c.eit.entries_per_super, 3);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "degree")]
    fn zero_degree_rejected() {
        DominoConfig::default().with_degree(0).validate();
    }
}
