/root/repo/target/release/deps/domino_trace-17bced3ddf70b793.d: crates/trace/src/lib.rs crates/trace/src/addr.rs crates/trace/src/event.rs crates/trace/src/hash.rs crates/trace/src/io.rs crates/trace/src/reuse.rs crates/trace/src/rng.rs crates/trace/src/stats.rs crates/trace/src/workload/mod.rs crates/trace/src/workload/catalog.rs crates/trace/src/workload/document.rs crates/trace/src/workload/noise.rs crates/trace/src/workload/spatial.rs crates/trace/src/workload/spec.rs crates/trace/src/workload/temporal.rs Cargo.toml

/root/repo/target/release/deps/libdomino_trace-17bced3ddf70b793.rmeta: crates/trace/src/lib.rs crates/trace/src/addr.rs crates/trace/src/event.rs crates/trace/src/hash.rs crates/trace/src/io.rs crates/trace/src/reuse.rs crates/trace/src/rng.rs crates/trace/src/stats.rs crates/trace/src/workload/mod.rs crates/trace/src/workload/catalog.rs crates/trace/src/workload/document.rs crates/trace/src/workload/noise.rs crates/trace/src/workload/spatial.rs crates/trace/src/workload/spec.rs crates/trace/src/workload/temporal.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/addr.rs:
crates/trace/src/event.rs:
crates/trace/src/hash.rs:
crates/trace/src/io.rs:
crates/trace/src/reuse.rs:
crates/trace/src/rng.rs:
crates/trace/src/stats.rs:
crates/trace/src/workload/mod.rs:
crates/trace/src/workload/catalog.rs:
crates/trace/src/workload/document.rs:
crates/trace/src/workload/noise.rs:
crates/trace/src/workload/spatial.rs:
crates/trace/src/workload/spec.rs:
crates/trace/src/workload/temporal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
