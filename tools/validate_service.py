#!/usr/bin/env python3
"""Validates SERVICE_report.json emitted by domino-serve.

Usage: validate_service.py <file>...

Checks the domino-service/1 schema structurally: field presence and
types, histogram shape (counts == bounds + 1, bounds strictly
increasing), percentile ordering (p50 <= p95 <= p99), and totals
consistency (per-shard batches/events/shed/gaps sum to the run totals,
per_shard length matches shard_count). Exits non-zero with a per-file
message on the first problem, so tools/check.sh can gate on it. Uses
only the stdlib.
"""

import json
import sys
from pathlib import Path

SCHEMA = "domino-service/1"
U64_MAX = 2**64 - 1

RUN_U64_FIELDS = (
    "tenants",
    "events_per_tenant",
    "request_batch",
    "clients",
    "seed",
    "shard_count",
    "events_offered",
    "total_events",
    "total_batches",
    "total_shed",
    "total_gap_events",
    "total_evictions",
    "total_resets",
    "wall_ns",
)
SHARD_U64_FIELDS = (
    "shard",
    "tenants",
    "batches",
    "events",
    "shed",
    "evictions",
    "resets",
    "gap_events",
    "peak_tenants",
    "peak_footprint_bytes",
    "busy_ns",
    "wall_ns",
)


def fail(path, msg):
    sys.exit(f"validate_service: {path}: {msg}")


def is_u64(v):
    return isinstance(v, int) and not isinstance(v, bool) and 0 <= v <= U64_MAX


def check_latency(path, obj, where):
    bounds = obj.get("latency_bounds_ns")
    counts = obj.get("latency_counts")
    if not isinstance(bounds, list) or not all(is_u64(b) for b in bounds):
        fail(path, f"{where}: bad latency_bounds_ns")
    if sorted(bounds) != bounds or len(set(bounds)) != len(bounds):
        fail(path, f"{where}: latency bounds not strictly increasing")
    if not isinstance(counts, list) or len(counts) != len(bounds) + 1:
        got = len(counts) if isinstance(counts, list) else counts
        fail(path, f"{where}: want {len(bounds) + 1} latency buckets, got {got!r}")
    if not all(is_u64(c) for c in counts) or not is_u64(obj.get("latency_sum_ns")):
        fail(path, f"{where}: bad latency counts or sum")
    pcts = [obj.get(k) for k in ("p50_ns", "p95_ns", "p99_ns")]
    if not all(is_u64(p) for p in pcts):
        fail(path, f"{where}: missing or non-u64 percentile field")
    if not pcts[0] <= pcts[1] <= pcts[2]:
        fail(path, f"{where}: percentiles out of order: {pcts}")
    total = sum(counts)
    if total > 0 and pcts[0] == 0:
        fail(path, f"{where}: populated histogram reports p50 == 0")
    return total


def check_throughput(path, obj, where):
    v = obj.get("throughput_eps")
    if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
        fail(path, f"{where}: bad throughput_eps {v!r}")


def check_report(path, r):
    if not isinstance(r, dict):
        fail(path, "report is not an object")
    if r.get("schema") != SCHEMA:
        fail(path, f"schema is {r.get('schema')!r}, want {SCHEMA!r}")
    if not isinstance(r.get("system"), str) or not r["system"]:
        fail(path, "missing or empty string field 'system'")
    for key in RUN_U64_FIELDS:
        if not is_u64(r.get(key)):
            fail(path, f"missing or non-u64 field {key!r}")
    check_throughput(path, r, "run")
    run_latency_n = check_latency(path, r, "run")
    shards = r.get("per_shard")
    if not isinstance(shards, list) or not shards:
        fail(path, "per_shard must be a non-empty list")
    if len(shards) != r["shard_count"]:
        fail(path, f"shard_count={r['shard_count']} but {len(shards)} per_shard entries")
    sums = {k: 0 for k in ("batches", "events", "shed", "gap_events", "evictions", "resets")}
    shard_latency_n = 0
    for i, s in enumerate(shards):
        where = f"per_shard[{i}]"
        if not isinstance(s, dict):
            fail(path, f"{where}: not an object")
        for key in SHARD_U64_FIELDS:
            if not is_u64(s.get(key)):
                fail(path, f"{where}: missing or non-u64 field {key!r}")
        if s["shard"] != i:
            fail(path, f"{where}: shard index {s['shard']} out of order")
        check_throughput(path, s, where)
        shard_latency_n += check_latency(path, s, where)
        for k in sums:
            sums[k] += s[k]
    for k, total_key in (
        ("batches", "total_batches"),
        ("events", "total_events"),
        ("shed", "total_shed"),
        ("gap_events", "total_gap_events"),
        ("evictions", "total_evictions"),
        ("resets", "total_resets"),
    ):
        if sums[k] != r[total_key]:
            fail(path, f"per-shard {k} sum to {sums[k]}, but {total_key}={r[total_key]}")
    if run_latency_n != shard_latency_n:
        fail(path, f"aggregate latency holds {run_latency_n} samples, shards hold {shard_latency_n}")
    if run_latency_n != r["total_batches"]:
        fail(path, f"latency holds {run_latency_n} samples for {r['total_batches']} batches")
    if r["total_events"] + r["total_gap_events"] > r["events_offered"]:
        fail(path, "served + gap events exceed the offered stream length")


def main(argv):
    if len(argv) < 2:
        sys.exit(__doc__.strip())
    for arg in argv[1:]:
        path = Path(arg)
        try:
            r = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as e:
            fail(path, str(e))
        check_report(path, r)
        print(f"validate_service: {path}: OK")


if __name__ == "__main__":
    main(sys.argv)
