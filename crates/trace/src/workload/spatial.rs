//! Spatial behaviour: page-local delta scans.
//!
//! Models streaming over buffers, column scans, and log appends. Each scan
//! picks a page (usually a cold one) and walks it with a repeating delta
//! pattern drawn from the workload's small pattern vocabulary. The
//! *addresses* never repeat (cold pages), so temporal prefetchers cannot
//! cover them, but the *delta sequence* repeats, which is exactly what VLDP
//! learns — giving the orthogonality the paper demonstrates in Figure 16.

use crate::addr::{LineAddr, Pc, LINES_PER_PAGE};
use crate::event::AccessEvent;
use crate::rng::SimRng;

use super::spec::SpatialParams;

/// Base line number of the spatial address region.
const SPATIAL_REGION_BASE: u64 = 0x0200_0000_0000;

/// Base of the PC region used by scan loops.
const SPATIAL_PC_BASE: u64 = 0x80_0000;

/// Number of recently scanned pages kept for warm revisits.
const RECENT_PAGES: usize = 32;

#[derive(Debug, Clone)]
struct Scan {
    line: LineAddr,
    pattern: usize,
    pattern_pos: usize,
    remaining: usize,
}

/// Generator of spatial (delta-scan) accesses.
#[derive(Debug)]
pub struct SpatialGen {
    params: SpatialParams,
    rng: SimRng,
    next_page: u64,
    recent_pages: Vec<u64>,
    scan: Option<Scan>,
}

impl SpatialGen {
    /// Builds the generator from `params`.
    pub fn new(params: &SpatialParams, rng: SimRng) -> Self {
        assert!(
            !params.patterns.is_empty(),
            "spatial behaviour requires at least one delta pattern"
        );
        SpatialGen {
            params: params.clone(),
            rng,
            next_page: SPATIAL_REGION_BASE / LINES_PER_PAGE,
            recent_pages: Vec::new(),
            scan: None,
        }
    }

    fn new_scan(&mut self) -> Scan {
        let page = if !self.recent_pages.is_empty() && !self.rng.chance(self.params.cold_page_frac)
        {
            self.recent_pages[self.rng.index(self.recent_pages.len())]
        } else {
            let p = self.next_page;
            self.next_page += 1;
            if self.recent_pages.len() == RECENT_PAGES {
                self.recent_pages.remove(0);
            }
            self.recent_pages.push(p);
            p
        };
        let pattern = self.rng.index(self.params.patterns.len());
        let start_off = self.rng.index(8) as u64;
        Scan {
            line: LineAddr::new(page * LINES_PER_PAGE + start_off),
            pattern,
            pattern_pos: 0,
            remaining: (self.rng.geometric(self.params.scan_len_mean) as usize).max(2),
        }
    }

    /// Emits the next spatial access.
    pub fn step(&mut self, _top_rng: &mut SimRng) -> AccessEvent {
        let needs_new = match &self.scan {
            None => true,
            Some(s) => s.remaining == 0,
        };
        if needs_new {
            self.scan = Some(self.new_scan());
        }
        let params_pc_pool = self.params.pc_pool.max(1);
        let jitter = self.params.jitter;
        let jump = self.rng.chance(jitter);
        let jump_off = self.rng.index(64) as u64;
        let scan = self.scan.as_mut().expect("scan just ensured");
        let line = scan.line;
        let pattern = &self.params.patterns[scan.pattern];
        let delta = pattern[scan.pattern_pos % pattern.len()];
        scan.pattern_pos += 1;
        let next = if jump {
            // Irregular intra-page jump: scans take branches.
            LineAddr::new(line.page() * LINES_PER_PAGE + jump_off)
        } else {
            scan.line.offset(delta)
        };
        // Stay within the page: a scan ends at the page boundary, like a
        // real streaming loop.
        if next.page() != line.page() {
            scan.remaining = 0;
        } else {
            scan.line = next;
            scan.remaining -= 1;
        }
        let pc = Pc::new(SPATIAL_PC_BASE + (scan.pattern % params_pc_pool) as u64 * 4);
        AccessEvent::read(pc, line.to_addr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(params: SpatialParams) -> SpatialGen {
        SpatialGen::new(&params, SimRng::seed(77))
    }

    #[test]
    fn scans_stay_within_pages() {
        // Scans must terminate at page boundaries. With a single +13 pattern
        // and only cold pages, a scan that (incorrectly) continued across a
        // boundary would enter the next page at offset 1..=12, whereas legal
        // scan starts are always at offset < 8. So: the first line observed
        // on each page must sit below offset 8, and all later lines on that
        // page must extend a +13 run from it.
        let params = SpatialParams {
            patterns: vec![vec![13]],
            jitter: 0.0,
            cold_page_frac: 1.0,
            scan_len_mean: 100.0,
            ..SpatialParams::default()
        };
        let mut g = gen(params);
        let mut top = SimRng::seed(0);
        let mut first_offset: std::collections::HashMap<u64, u64> =
            std::collections::HashMap::new();
        for _ in 0..2000 {
            let line = g.step(&mut top).line();
            let first = *first_offset
                .entry(line.page())
                .or_insert(line.page_offset());
            assert!(
                first < 8,
                "scan entered page {} at offset {first}",
                line.page()
            );
            assert_eq!(
                (line.page_offset() - first) % 13,
                0,
                "line off-pattern within page"
            );
        }
        assert!(first_offset.len() > 100, "expected many pages scanned");
    }

    #[test]
    fn cold_pages_advance_monotonically() {
        let params = SpatialParams {
            cold_page_frac: 1.0,
            ..SpatialParams::default()
        };
        let mut g = gen(params);
        let mut top = SimRng::seed(0);
        let mut pages = Vec::new();
        for _ in 0..500 {
            pages.push(g.step(&mut top).line().page());
        }
        let mut sorted = pages.clone();
        sorted.dedup();
        let mut strictly_increasing = true;
        for w in sorted.windows(2) {
            if w[1] <= w[0] {
                strictly_increasing = false;
            }
        }
        assert!(strictly_increasing, "cold scans should use fresh pages");
    }

    #[test]
    fn deltas_follow_declared_patterns() {
        let params = SpatialParams {
            patterns: vec![vec![2]],
            jitter: 0.0,
            cold_page_frac: 1.0,
            scan_len_mean: 16.0,
            ..SpatialParams::default()
        };
        let mut g = gen(params);
        let mut top = SimRng::seed(0);
        let lines: Vec<_> = (0..200).map(|_| g.step(&mut top).line()).collect();
        let mut stride2 = 0;
        let mut total = 0;
        for w in lines.windows(2) {
            if w[0].page() == w[1].page() {
                total += 1;
                if w[1].raw() == w[0].raw() + 2 {
                    stride2 += 1;
                }
            }
        }
        assert!(total > 0);
        assert_eq!(stride2, total, "all in-page steps must follow delta 2");
    }

    #[test]
    #[should_panic(expected = "at least one delta pattern")]
    fn empty_patterns_panic() {
        let params = SpatialParams {
            patterns: vec![],
            ..SpatialParams::default()
        };
        SpatialGen::new(&params, SimRng::seed(1));
    }
}
