/root/repo/target/release/deps/domino_trace-f3763d52cd5fe00b.d: crates/trace/src/lib.rs crates/trace/src/addr.rs crates/trace/src/event.rs crates/trace/src/hash.rs crates/trace/src/io.rs crates/trace/src/reuse.rs crates/trace/src/rng.rs crates/trace/src/stats.rs crates/trace/src/workload/mod.rs crates/trace/src/workload/catalog.rs crates/trace/src/workload/document.rs crates/trace/src/workload/noise.rs crates/trace/src/workload/spatial.rs crates/trace/src/workload/spec.rs crates/trace/src/workload/temporal.rs

/root/repo/target/release/deps/domino_trace-f3763d52cd5fe00b: crates/trace/src/lib.rs crates/trace/src/addr.rs crates/trace/src/event.rs crates/trace/src/hash.rs crates/trace/src/io.rs crates/trace/src/reuse.rs crates/trace/src/rng.rs crates/trace/src/stats.rs crates/trace/src/workload/mod.rs crates/trace/src/workload/catalog.rs crates/trace/src/workload/document.rs crates/trace/src/workload/noise.rs crates/trace/src/workload/spatial.rs crates/trace/src/workload/spec.rs crates/trace/src/workload/temporal.rs

crates/trace/src/lib.rs:
crates/trace/src/addr.rs:
crates/trace/src/event.rs:
crates/trace/src/hash.rs:
crates/trace/src/io.rs:
crates/trace/src/reuse.rs:
crates/trace/src/rng.rs:
crates/trace/src/stats.rs:
crates/trace/src/workload/mod.rs:
crates/trace/src/workload/catalog.rs:
crates/trace/src/workload/document.rs:
crates/trace/src/workload/noise.rs:
crates/trace/src/workload/spatial.rs:
crates/trace/src/workload/spec.rs:
crates/trace/src/workload/temporal.rs:
