//! Obviously-correct reference models for the optimized structures.
//!
//! Each model keeps the *semantics* of a production component in the
//! most transparent representation available — nested `Vec`s in
//! replacement order, linear scans, no slabs, no heaps, no packed
//! prefixes — so the differential oracles can drive both through the
//! same op stream and compare step-for-step. Where the production code
//! had a pre-optimization layout (the per-set-`Vec` cache, the
//! nested-`Vec` EIT rows) the model *is* that layout, resurrected.
//!
//! The models are deliberately slow (linear everything); they exist to
//! be read and believed, not to be fast.

use domino::eit::EitEntry;
use domino_mem::cache::{CacheConfig, Replacement};
use domino_mem::interface::{TriggerEvent, TriggerKind};
use domino_mem::prefetch_buffer::{BufferedPrefetch, InsertOutcome, PrefetchBufferStats};
use domino_trace::addr::{LineAddr, Pc};

/// One reference super-entry: a tag plus its continuations, oldest
/// first — exactly the nested-`Vec` picture of paper Figure 7.
#[derive(Debug, Clone)]
struct RefSuper {
    tag: LineAddr,
    /// LRU list, front = oldest, back = most recent.
    entries: Vec<EitEntry>,
}

/// Nested-`Vec` Enhanced Index Table with two-level LRU: rows hold
/// super-entries oldest-first, super-entries hold continuations
/// oldest-first, and both levels promote with `remove` + `push`.
///
/// Mirrors `domino::eit::Eit` with a finite row count; the row hash is
/// the same multiplicative hash, so a given tag lands in the same row
/// in both implementations.
#[derive(Debug, Clone)]
pub struct ReferenceEit {
    rows: Vec<Vec<RefSuper>>,
    super_cap: usize,
    entry_cap: usize,
}

impl ReferenceEit {
    /// Creates an empty table with `rows` rows, `super_cap` super-entries
    /// per row, and `entry_cap` entries per super-entry.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(rows: usize, super_cap: usize, entry_cap: usize) -> Self {
        assert!(rows > 0 && super_cap > 0 && entry_cap > 0, "degenerate EIT");
        ReferenceEit {
            rows: vec![Vec::new(); rows],
            super_cap,
            entry_cap,
        }
    }

    /// The production row hash (multiplicative), verbatim.
    fn row_index(&self, tag: LineAddr) -> usize {
        let h = tag.raw().wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (h % self.rows.len() as u64) as usize
    }

    /// Looks up `tag`, promoting its super-entry to MRU. Returns the
    /// entries oldest-first (a clone; the model is not hot-path code).
    pub fn lookup(&mut self, tag: LineAddr) -> Option<Vec<EitEntry>> {
        let r = self.row_index(tag);
        let row = &mut self.rows[r];
        let pos = row.iter().position(|se| se.tag == tag)?;
        let se = row.remove(pos);
        row.push(se);
        Some(row.last().expect("just pushed").entries.clone())
    }

    /// Side-effect-free membership probe.
    pub fn probe(&self, tag: LineAddr) -> bool {
        let r = self.row_index(tag);
        self.rows[r].iter().any(|se| se.tag == tag)
    }

    /// Records `tag → (next, pointer)` with LRU at both levels; returns
    /// the tag of a super-entry evicted by capacity pressure, if any.
    pub fn update(&mut self, tag: LineAddr, next: LineAddr, pointer: u64) -> Option<LineAddr> {
        let r = self.row_index(tag);
        let super_cap = self.super_cap;
        let entry_cap = self.entry_cap;
        let row = &mut self.rows[r];
        let mut evicted = None;
        match row.iter().position(|se| se.tag == tag) {
            Some(pos) => {
                let se = row.remove(pos);
                row.push(se);
            }
            None => {
                if row.len() == super_cap {
                    evicted = Some(row.remove(0).tag);
                }
                row.push(RefSuper {
                    tag,
                    entries: Vec::new(),
                });
            }
        }
        let entries = &mut row.last_mut().expect("just placed").entries;
        if let Some(p) = entries.iter().position(|e| e.addr == next) {
            let mut e = entries.remove(p);
            e.pointer = pointer;
            entries.push(e);
        } else {
            if entries.len() == entry_cap {
                entries.remove(0);
            }
            entries.push(EitEntry {
                addr: next,
                pointer,
            });
        }
        evicted
    }
}

/// Linear-scan MSHR file: one `Vec` of live `(line, done_at)` pairs.
/// Mirrors `domino_mem::mshr::MshrFile` (slab + free list + min-heap)
/// semantically: merge on duplicate lines, stall when full, retire at
/// an *inclusive* time boundary.
#[derive(Debug, Clone)]
pub struct ReferenceMshr {
    capacity: usize,
    live: Vec<(LineAddr, f64)>,
    allocations: u64,
    merges: u64,
    stalls: u64,
}

impl ReferenceMshr {
    /// Creates a file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file needs capacity");
        ReferenceMshr {
            capacity,
            live: Vec::new(),
            allocations: 0,
            merges: 0,
            stalls: 0,
        }
    }

    /// Tracks a miss on `line` completing at `done_at`; merges secondary
    /// misses, returns `None` (and counts a stall) when full.
    pub fn allocate(&mut self, line: LineAddr, done_at: f64) -> Option<f64> {
        if let Some(&(_, t)) = self.live.iter().find(|(l, _)| *l == line) {
            self.merges += 1;
            return Some(t);
        }
        if self.live.len() == self.capacity {
            self.stalls += 1;
            return None;
        }
        self.live.push((line, done_at));
        self.allocations += 1;
        Some(done_at)
    }

    /// Merges with an in-flight miss on `line`, if any.
    pub fn completion_of(&mut self, line: LineAddr) -> Option<f64> {
        if let Some(&(_, t)) = self.live.iter().find(|(l, _)| *l == line) {
            self.merges += 1;
            return Some(t);
        }
        None
    }

    /// Releases every register whose miss completed at or before `now`.
    pub fn retire_until(&mut self, now: f64) {
        self.live.retain(|&(_, t)| t > now);
    }

    /// Earliest completion among outstanding misses.
    pub fn earliest_completion(&self) -> Option<f64> {
        self.live
            .iter()
            .map(|&(_, t)| t)
            .fold(None, |acc: Option<f64>, t| {
                Some(acc.map_or(t, |a| a.min(t)))
            })
    }

    /// Outstanding miss count.
    pub fn in_flight(&self) -> usize {
        self.live.len()
    }

    /// `(allocations, merges, structural_stalls)` counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.allocations, self.merges, self.stalls)
    }
}

/// `Vec`-based prefetch buffer, index 0 = LRU victim end. Mirrors
/// `domino_mem::prefetch_buffer::PrefetchBuffer` including its lifetime
/// statistics, so buffer-conservation claims can be cross-checked
/// against a model whose accounting is visibly correct.
#[derive(Debug, Clone)]
pub struct ReferenceBuffer {
    capacity: usize,
    entries: Vec<BufferedPrefetch>,
    stats: PrefetchBufferStats,
}

impl ReferenceBuffer {
    /// Creates a buffer of `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "prefetch buffer needs capacity");
        ReferenceBuffer {
            capacity,
            entries: Vec::new(),
            stats: PrefetchBufferStats::default(),
        }
    }

    /// Inserts a prefetched line; duplicates drop, full buffers evict
    /// the LRU entry (counted unused).
    pub fn insert(&mut self, line: LineAddr, ready_at: f64, stream: Option<u32>) -> InsertOutcome {
        self.stats.inserted += 1;
        if self.entries.iter().any(|e| e.line == line) {
            self.stats.duplicate_inserts += 1;
            return InsertOutcome::Duplicate;
        }
        let victim = if self.entries.len() == self.capacity {
            self.stats.evicted_unused += 1;
            Some(self.entries.remove(0))
        } else {
            None
        };
        self.entries.push(BufferedPrefetch {
            line,
            ready_at,
            stream,
        });
        match victim {
            Some(v) => InsertOutcome::Evicted(v),
            None => InsertOutcome::Inserted,
        }
    }

    /// Demand lookup: removes and returns the entry on a hit.
    pub fn take(&mut self, line: LineAddr) -> Option<BufferedPrefetch> {
        let pos = self.entries.iter().position(|e| e.line == line)?;
        self.stats.hits += 1;
        Some(self.entries.remove(pos))
    }

    /// Membership peek.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.entries.iter().any(|e| e.line == line)
    }

    /// Discards all entries of `stream`; returns how many.
    pub fn discard_stream(&mut self, stream: u32) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.stream != Some(stream));
        let discarded = before - self.entries.len();
        self.stats.discarded_unused += discarded as u64;
        discarded
    }

    /// Buffered block count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> PrefetchBufferStats {
        self.stats
    }
}

/// The pre-flat set-associative cache: per-set `Vec`s in replacement
/// order (index 0 the victim end), exactly as the original
/// implementation kept them. Mirrors `domino_mem::cache::SetAssocCache`
/// including the Random-policy RNG advancing on every insert *before*
/// the presence check.
#[derive(Debug, Clone)]
pub struct ReferenceCache {
    config: CacheConfig,
    set_mask: u64,
    sets: Vec<Vec<LineAddr>>,
    rand_state: u64,
    hits: u64,
    misses: u64,
}

impl ReferenceCache {
    /// Creates an empty cache of the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        ReferenceCache {
            config,
            set_mask: sets as u64 - 1,
            sets: vec![Vec::with_capacity(config.ways); sets],
            rand_state: 0x9e37_79b9_7f4a_7c15,
            hits: 0,
            misses: 0,
        }
    }

    fn set_index(&self, line: LineAddr) -> usize {
        (line.raw() & self.set_mask) as usize
    }

    /// Demand access: hit/miss plus LRU promotion.
    pub fn access(&mut self, line: LineAddr) -> bool {
        let promote = self.config.replacement == Replacement::Lru;
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            if promote {
                let l = set.remove(pos);
                set.push(l);
            }
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Membership peek (no counters, no promotion).
    pub fn contains(&self, line: LineAddr) -> bool {
        self.sets[self.set_index(line)].contains(&line)
    }

    /// Fills `line`, returning an evicted victim if the set was full.
    pub fn insert(&mut self, line: LineAddr) -> Option<LineAddr> {
        let replacement = self.config.replacement;
        let ways = self.config.ways;
        let idx = self.set_index(line);
        // The RNG advances on every insert under Random — before the
        // presence check — matching the production cache exactly.
        if replacement == Replacement::Random {
            self.rand_state ^= self.rand_state << 13;
            self.rand_state ^= self.rand_state >> 7;
            self.rand_state ^= self.rand_state << 17;
        }
        let victim_pos = (self.rand_state % ways as u64) as usize;
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            if replacement == Replacement::Lru {
                let l = set.remove(pos);
                set.push(l);
            }
            return None;
        }
        if set.len() == ways {
            let evict_pos = match replacement {
                Replacement::Lru | Replacement::Fifo => 0,
                Replacement::Random => victim_pos,
            };
            let evicted = set.remove(evict_pos);
            set.push(line);
            Some(evicted)
        } else {
            set.push(line);
            None
        }
    }

    /// Drops `line` if present; reports whether it was.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            set.remove(pos);
            true
        } else {
            false
        }
    }

    /// `(hits, misses)` counters.
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Total resident lines across sets.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether no line is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Everything one trigger produced, in issue order — the reference side
/// of the rival-prefetcher differentials.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RefTriggerOutput {
    /// Lines prefetched (all on-chip rivals issue with zero delay trips).
    pub predicted: Vec<LineAddr>,
    /// Tags whose metadata entry was evicted this trigger.
    pub replaced: Vec<LineAddr>,
}

/// One reference Pangloss entry at a fixed way position: a source tag
/// and its weighted successor edges in slot order.
#[derive(Debug, Clone)]
struct RefPanglossEntry {
    tag: LineAddr,
    /// `(successor, frequency)` in slot order; replacements happen in
    /// place, exactly like the production slab's fixed-width edge array.
    edges: Vec<(LineAddr, u8)>,
}

/// Positional-`Vec` Pangloss: the set-associative transition table as
/// `sets × ways` explicit `Option` slots, linear scans everywhere, and
/// `knows_line` answered by walking every edge in the table rather than
/// by the production's refcount index.
///
/// Mirrors `domino_prefetchers::Pangloss`: same modulo set hash, same
/// minimum-frequency edge victim (ties to the lowest slot), same
/// minimum-total-frequency entry victim (ties to the lowest way), same
/// strongest-edge chain walk.
#[derive(Debug, Clone)]
pub struct ReferencePangloss {
    sets: Vec<Vec<Option<RefPanglossEntry>>>,
    fanout: usize,
    degree: usize,
    prev: Option<LineAddr>,
    trains: u64,
    predictions: u64,
    edge_evictions: u64,
    entry_evictions: u64,
}

impl ReferencePangloss {
    /// Creates an empty table with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(sets: usize, ways: usize, fanout: usize, degree: usize) -> Self {
        assert!(
            sets > 0 && ways > 0 && fanout > 0 && degree > 0,
            "degenerate table"
        );
        ReferencePangloss {
            sets: vec![vec![None; ways]; sets],
            fanout,
            degree,
            prev: None,
            trains: 0,
            predictions: 0,
            edge_evictions: 0,
            entry_evictions: 0,
        }
    }

    fn set_of(&self, line: LineAddr) -> usize {
        (line.raw() % self.sets.len() as u64) as usize
    }

    fn train(&mut self, from: LineAddr, to: LineAddr, replaced: &mut Vec<LineAddr>) {
        self.trains += 1;
        let fanout = self.fanout;
        let set = self.set_of(from);
        let ways = &mut self.sets[set];
        if let Some(entry) = ways.iter_mut().flatten().find(|e| e.tag == from) {
            if let Some(edge) = entry.edges.iter_mut().find(|(line, _)| *line == to) {
                edge.1 = edge.1.saturating_add(1); // saturate, never wrap
            } else if entry.edges.len() < fanout {
                entry.edges.push((to, 1));
            } else {
                // Minimum-frequency victim, ties to the lowest slot.
                let mut victim = 0;
                for i in 1..entry.edges.len() {
                    if entry.edges[i].1 < entry.edges[victim].1 {
                        victim = i;
                    }
                }
                entry.edges[victim] = (to, 1);
                self.edge_evictions += 1;
            }
            return;
        }
        // Allocate: first empty way, else the minimum-total-frequency
        // way (ties to the lowest index).
        let way = match ways.iter().position(Option::is_none) {
            Some(w) => w,
            None => {
                let weight = |e: &RefPanglossEntry| -> u32 {
                    e.edges.iter().map(|&(_, c)| u32::from(c)).sum()
                };
                let mut victim = 0;
                for i in 1..ways.len() {
                    let (a, b) = (ways[i].as_ref(), ways[victim].as_ref());
                    if weight(a.expect("full set")) < weight(b.expect("full set")) {
                        victim = i;
                    }
                }
                replaced.push(ways[victim].as_ref().expect("full set").tag);
                self.entry_evictions += 1;
                victim
            }
        };
        ways[way] = Some(RefPanglossEntry {
            tag: from,
            edges: vec![(to, 1)],
        });
    }

    fn strongest(&self, line: LineAddr) -> Option<LineAddr> {
        let entry = self.sets[self.set_of(line)]
            .iter()
            .flatten()
            .find(|e| e.tag == line)?;
        let mut best = 0;
        for i in 1..entry.edges.len() {
            if entry.edges[i].1 > entry.edges[best].1 {
                best = i;
            }
        }
        Some(entry.edges[best].0)
    }

    /// Applies one triggering event (miss or prefetch hit), returning
    /// everything it produced.
    pub fn step(&mut self, event: &TriggerEvent) -> RefTriggerOutput {
        let mut out = RefTriggerOutput::default();
        let line = event.line;
        if let Some(prev) = self.prev.replace(line) {
            if prev != line {
                self.train(prev, line, &mut out.replaced);
            }
        }
        let mut cur = line;
        for _ in 0..self.degree {
            let Some(next) = self.strongest(cur) else {
                break;
            };
            if next == line || out.predicted.contains(&next) {
                break;
            }
            out.predicted.push(next);
            self.predictions += 1;
            cur = next;
        }
        out
    }

    /// Whether `line` is recorded as any edge's target (full table scan).
    pub fn knows_line(&self, line: LineAddr) -> bool {
        self.sets
            .iter()
            .flatten()
            .flatten()
            .any(|e| e.edges.iter().any(|&(target, _)| target == line))
    }

    /// Counter values in the production `emit_counters` order.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("pangloss.trains", self.trains),
            ("pangloss.predictions", self.predictions),
            ("pangloss.edge_evictions", self.edge_evictions),
            ("pangloss.entry_evictions", self.entry_evictions),
        ]
    }
}

/// One reference Triangel history slot: `tag → next` with confidence.
#[derive(Debug, Clone, Copy)]
struct RefHistEntry {
    tag: LineAddr,
    next: LineAddr,
    conf: u8,
}

/// One reference sampler slot.
#[derive(Debug, Clone, Copy)]
struct RefSampleEntry {
    line: LineAddr,
    pc: Pc,
    stamp: u64,
}

/// Positional-`Vec` Triangel: history and sampler as explicit `Option`
/// slot grids, per-PC stats as a linear association list, `knows_line`
/// by scanning every history entry.
///
/// Mirrors `domino_prefetchers::Triangel`: same modulo set hashes, same
/// sampling hash, same usefulness (`reused >= train_threshold`) and
/// timeliness (`timely >= deep_threshold`) gates, same oldest-stamp
/// sampler victim and minimum-confidence history victim (ties to the
/// lowest way).
#[derive(Debug, Clone)]
pub struct ReferenceTriangel {
    history: Vec<Vec<Option<RefHistEntry>>>,
    sampler: Vec<Vec<Option<RefSampleEntry>>>,
    /// `(pc, sampled, reused, timely)` in first-seen order.
    pc_stats: Vec<(Pc, u8, u8, u8)>,
    max_pcs: usize,
    train_threshold: u8,
    deep_threshold: u8,
    timely_distance: u64,
    degree: usize,
    sample_shift: u32,
    prev: Option<(LineAddr, Pc)>,
    now: u64,
    samples: u64,
    reuses: u64,
    trains: u64,
    predictions: u64,
    entry_evictions: u64,
}

/// Geometry and thresholds for [`ReferenceTriangel::new`] (mirrors the
/// production `TriangelConfig` field for field).
#[derive(Debug, Clone, Copy)]
pub struct RefTriangelParams {
    /// History sets × ways.
    pub hist_sets: usize,
    /// History entries per set.
    pub hist_ways: usize,
    /// Sampler sets.
    pub sampler_sets: usize,
    /// Sampler entries per set.
    pub sampler_ways: usize,
    /// Maximum tracked PCs.
    pub max_pcs: usize,
    /// Usefulness threshold on the reuse counter.
    pub train_threshold: u8,
    /// Timeliness threshold on the timely counter.
    pub deep_threshold: u8,
    /// Minimum stamp gap for a timely reuse.
    pub timely_distance: u64,
    /// Deep chain-walk depth.
    pub degree: usize,
    /// 1-in-2^shift sampling (0 samples everything).
    pub sample_shift: u32,
}

impl ReferenceTriangel {
    /// Creates an empty model.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(p: RefTriangelParams) -> Self {
        assert!(
            p.hist_sets > 0 && p.hist_ways > 0 && p.sampler_sets > 0 && p.sampler_ways > 0,
            "degenerate tables"
        );
        assert!(p.max_pcs > 0 && p.degree > 0, "degenerate bounds");
        ReferenceTriangel {
            history: vec![vec![None; p.hist_ways]; p.hist_sets],
            sampler: vec![vec![None; p.sampler_ways]; p.sampler_sets],
            pc_stats: Vec::new(),
            max_pcs: p.max_pcs,
            train_threshold: p.train_threshold,
            deep_threshold: p.deep_threshold,
            timely_distance: p.timely_distance,
            degree: p.degree,
            sample_shift: p.sample_shift,
            prev: None,
            now: 0,
            samples: 0,
            reuses: 0,
            trains: 0,
            predictions: 0,
            entry_evictions: 0,
        }
    }

    fn sampled(&self, line: LineAddr) -> bool {
        self.sample_shift == 0
            || line.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - self.sample_shift) == 0
    }

    fn stats_index(&mut self, pc: Pc) -> Option<usize> {
        if let Some(i) = self.pc_stats.iter().position(|&(p, ..)| p == pc) {
            return Some(i);
        }
        if self.pc_stats.len() >= self.max_pcs {
            return None;
        }
        self.pc_stats.push((pc, 0, 0, 0));
        Some(self.pc_stats.len() - 1)
    }

    fn sample(&mut self, line: LineAddr, pc: Pc) {
        let set = (line.raw() % self.sampler.len() as u64) as usize;
        let now = self.now;
        let timely_distance = self.timely_distance;
        if let Some(entry) = self.sampler[set]
            .iter_mut()
            .flatten()
            .find(|e| e.line == line)
        {
            let (same_pc, timely) = (entry.pc == pc, now - entry.stamp >= timely_distance);
            entry.pc = pc;
            entry.stamp = now;
            if same_pc {
                if let Some(i) = self.stats_index(pc) {
                    self.pc_stats[i].2 = self.pc_stats[i].2.saturating_add(1);
                    if timely {
                        self.pc_stats[i].3 = self.pc_stats[i].3.saturating_add(1);
                    }
                }
                self.reuses += 1;
            } else if let Some(i) = self.stats_index(pc) {
                self.pc_stats[i].1 = self.pc_stats[i].1.saturating_add(1);
            }
            return;
        }
        // Insert: first empty way, else the oldest stamp (lowest way on
        // ties).
        let ways = &self.sampler[set];
        let way = match ways.iter().position(Option::is_none) {
            Some(w) => w,
            None => {
                let mut victim = 0;
                for i in 1..ways.len() {
                    let (a, b) = (ways[i].expect("full set"), ways[victim].expect("full set"));
                    if a.stamp < b.stamp {
                        victim = i;
                    }
                }
                victim
            }
        };
        self.sampler[set][way] = Some(RefSampleEntry {
            line,
            pc,
            stamp: now,
        });
        if let Some(i) = self.stats_index(pc) {
            self.pc_stats[i].1 = self.pc_stats[i].1.saturating_add(1);
        }
        self.samples += 1;
    }

    fn is_useful(&self, pc: Pc) -> bool {
        self.pc_stats
            .iter()
            .find(|&&(p, ..)| p == pc)
            .is_some_and(|&(_, _, reused, _)| reused >= self.train_threshold)
    }

    fn depth_for(&self, pc: Pc) -> usize {
        let deep = self
            .pc_stats
            .iter()
            .find(|&&(p, ..)| p == pc)
            .is_some_and(|&(_, _, _, timely)| timely >= self.deep_threshold);
        if deep {
            self.degree
        } else {
            1
        }
    }

    fn train(&mut self, from: LineAddr, to: LineAddr, replaced: &mut Vec<LineAddr>) {
        self.trains += 1;
        let set = (from.raw() % self.history.len() as u64) as usize;
        let ways = &mut self.history[set];
        if let Some(entry) = ways.iter_mut().flatten().find(|e| e.tag == from) {
            if entry.next == to {
                entry.conf = entry.conf.saturating_add(1);
            } else if entry.conf > 1 {
                entry.conf -= 1;
            } else {
                entry.next = to;
                entry.conf = 1;
            }
            return;
        }
        let way = match ways.iter().position(Option::is_none) {
            Some(w) => w,
            None => {
                let mut victim = 0;
                for i in 1..ways.len() {
                    let (a, b) = (ways[i].expect("full set"), ways[victim].expect("full set"));
                    if a.conf < b.conf {
                        victim = i;
                    }
                }
                replaced.push(ways[victim].expect("full set").tag);
                self.entry_evictions += 1;
                victim
            }
        };
        ways[way] = Some(RefHistEntry {
            tag: from,
            next: to,
            conf: 1,
        });
    }

    fn lookup(&self, line: LineAddr) -> Option<LineAddr> {
        let set = (line.raw() % self.history.len() as u64) as usize;
        self.history[set]
            .iter()
            .flatten()
            .find(|e| e.tag == line)
            .map(|e| e.next)
    }

    /// Applies one triggering event, returning everything it produced.
    pub fn step(&mut self, event: &TriggerEvent) -> RefTriggerOutput {
        let mut out = RefTriggerOutput::default();
        let (line, pc) = (event.line, event.pc);
        self.now += 1;
        if event.kind == TriggerKind::Miss && self.sampled(line) {
            self.sample(line, pc);
        }
        if let Some((prev_line, prev_pc)) = self.prev.replace((line, pc)) {
            if prev_line != line && self.is_useful(prev_pc) {
                self.train(prev_line, line, &mut out.replaced);
            }
        }
        if self.is_useful(pc) {
            let depth = self.depth_for(pc).min(self.degree);
            let mut cur = line;
            for _ in 0..depth {
                let Some(next) = self.lookup(cur) else {
                    break;
                };
                if next == line || out.predicted.contains(&next) {
                    break;
                }
                out.predicted.push(next);
                self.predictions += 1;
                cur = next;
            }
        }
        out
    }

    /// Whether `line` is any history entry's `next` (full table scan).
    pub fn knows_line(&self, line: LineAddr) -> bool {
        self.history
            .iter()
            .flatten()
            .flatten()
            .any(|e| e.next == line)
    }

    /// Counter values in the production `emit_counters` order.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("triangel.samples", self.samples),
            ("triangel.reuses", self.reuses),
            ("triangel.trains", self.trains),
            ("triangel.predictions", self.predictions),
            ("triangel.entry_evictions", self.entry_evictions),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn reference_eit_two_level_lru() {
        let mut eit = ReferenceEit::new(1, 2, 2);
        assert_eq!(eit.update(line(1), line(10), 0), None);
        assert_eq!(eit.update(line(2), line(20), 1), None);
        // Promote tag 1; the next capacity eviction takes tag 2.
        assert!(eit.lookup(line(1)).is_some());
        assert_eq!(eit.update(line(3), line(30), 2), Some(line(2)));
        assert!(!eit.probe(line(2)));
        // Entry LRU: refresh promotes, capacity drops the oldest.
        eit.update(line(1), line(11), 3);
        eit.update(line(1), line(10), 4); // refresh 10 → MRU
        eit.update(line(1), line(12), 5); // evicts 11
        let entries = eit.lookup(line(1)).unwrap();
        let addrs: Vec<u64> = entries.iter().map(|e| e.addr.raw()).collect();
        assert_eq!(addrs, vec![10, 12]);
    }

    #[test]
    fn reference_mshr_merges_stalls_retires() {
        let mut m = ReferenceMshr::new(2);
        assert_eq!(m.allocate(line(1), 50.0), Some(50.0));
        assert_eq!(m.allocate(line(1), 99.0), Some(50.0), "merged");
        assert_eq!(m.allocate(line(2), 60.0), Some(60.0));
        assert_eq!(m.allocate(line(3), 70.0), None, "full");
        assert_eq!(m.counters(), (2, 1, 1));
        assert_eq!(m.earliest_completion(), Some(50.0));
        m.retire_until(50.0); // inclusive boundary
        assert_eq!(m.in_flight(), 1);
    }

    #[test]
    fn reference_buffer_counts_lifetimes() {
        let mut b = ReferenceBuffer::new(2);
        b.insert(line(1), 0.0, Some(0));
        b.insert(line(1), 1.0, None);
        b.insert(line(2), 0.0, Some(1));
        b.insert(line(3), 0.0, Some(0)); // evicts line 1
        assert!(b.take(line(2)).is_some());
        assert_eq!(b.discard_stream(0), 1);
        let s = b.stats();
        assert_eq!(
            (
                s.inserted,
                s.duplicate_inserts,
                s.hits,
                s.evicted_unused,
                s.discarded_unused
            ),
            (4, 1, 1, 1, 1)
        );
        assert!(b.is_empty());
    }

    #[test]
    fn reference_pangloss_learns_and_evicts_min_frequency() {
        // 8 sets keep the tags (2, 4, 6, 8) conflict-free so the test
        // exercises edge eviction, not entry eviction.
        let mut p = ReferencePangloss::new(8, 2, 2, 2);
        let mut drive = |l: u64| p.step(&TriggerEvent::miss(Pc::new(0), line(l)));
        // 2 → 4 twice (strong), 2 → 6 once (weak), then a third successor.
        for l in [2u64, 4, 2, 4, 2, 6, 2, 8] {
            drive(l);
        }
        assert!(p.knows_line(line(4)), "strong edge survives");
        assert!(!p.knows_line(line(6)), "minimum-frequency edge evicted");
        assert!(p.knows_line(line(8)));
        // Chain walk issues the strongest successor.
        p.prev = None;
        let out = p.step(&TriggerEvent::miss(Pc::new(0), line(2)));
        assert_eq!(out.predicted, vec![line(4)]);
        assert!(p
            .counters()
            .iter()
            .any(|&(n, v)| n == "pangloss.edge_evictions" && v == 1));
    }

    #[test]
    fn reference_triangel_gates_training_on_reuse() {
        let p = RefTriangelParams {
            hist_sets: 4,
            hist_ways: 2,
            sampler_sets: 2,
            sampler_ways: 2,
            max_pcs: 4,
            train_threshold: 1,
            deep_threshold: 8,
            timely_distance: 1000,
            degree: 2,
            sample_shift: 0,
        };
        fn drive(t: &mut ReferenceTriangel, pc: u64, l: u64) -> RefTriggerOutput {
            t.step(&TriggerEvent::miss(Pc::new(pc), LineAddr::new(l)))
        }
        let mut t = ReferenceTriangel::new(p);
        // No reuse yet: nothing trains.
        drive(&mut t, 1, 10);
        drive(&mut t, 1, 11);
        assert_eq!(t.counters()[2], ("triangel.trains", 0));
        // Reuse on 10 makes PC 1 useful; the next transitions train.
        drive(&mut t, 1, 10);
        drive(&mut t, 1, 12);
        assert!(t.knows_line(line(12)));
        t.prev = None;
        let out = t.step(&TriggerEvent::miss(Pc::new(1), line(10)));
        assert_eq!(out.predicted, vec![line(12)], "untimely PC walks one step");
    }
}
