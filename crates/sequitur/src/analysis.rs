//! Grammar-level statistics and repetition coverage.
//!
//! Once a miss sequence has been compressed by [`Sequitur`], the grammar's
//! shape quantifies the sequence's temporal structure:
//!
//! * rules = repeated subsequences ("temporal streams" in the paper's
//!   terminology),
//! * the *grammar coverage* is the fraction of input positions derived
//!   through a second-or-later use of some rule — i.e. positions whose
//!   surrounding subsequence already occurred, which an oracle temporal
//!   prefetcher could in principle have predicted.

use std::collections::HashMap;

use crate::grammar::Sequitur;
use crate::histogram::Histogram;
use crate::node::SymKey;

/// Summary statistics of a grammar.
#[derive(Debug, Clone, PartialEq)]
pub struct GrammarStats {
    /// Terminals consumed.
    pub input_len: u64,
    /// Live rules excluding the start rule.
    pub rules: usize,
    /// Total symbols across all live rule bodies (grammar size).
    pub grammar_symbols: usize,
    /// Input length divided by grammar size (≥ 1; higher = more repetitive).
    pub compression_ratio: f64,
    /// Mean expanded length of non-start rules (repeated-stream length).
    pub mean_rule_expansion: f64,
    /// Histogram of expanded rule lengths.
    pub rule_length_histogram: Histogram,
}

impl GrammarStats {
    /// Computes statistics for `g`.
    pub fn of(g: &Sequitur) -> Self {
        let mut grammar_symbols = 0usize;
        let mut expansion_sum = 0u64;
        let mut rules = 0usize;
        let mut hist = Histogram::fig12();
        let mut expansion_cache: HashMap<u32, u64> = HashMap::new();
        for rule in g.live_rules() {
            grammar_symbols += g.rule_body(rule).len();
            if rule != 0 {
                rules += 1;
                let len = expanded_len(g, rule, &mut expansion_cache);
                expansion_sum += len;
                hist.record(len);
            }
        }
        let input_len = g.input_len();
        GrammarStats {
            input_len,
            rules,
            grammar_symbols,
            compression_ratio: if grammar_symbols == 0 {
                1.0
            } else {
                input_len as f64 / grammar_symbols as f64
            },
            mean_rule_expansion: if rules == 0 {
                0.0
            } else {
                expansion_sum as f64 / rules as f64
            },
            rule_length_histogram: hist,
        }
    }
}

fn expanded_len(g: &Sequitur, rule: u32, cache: &mut HashMap<u32, u64>) -> u64 {
    if let Some(&len) = cache.get(&rule) {
        return len;
    }
    let mut len = 0;
    for sym in g.rule_body(rule) {
        len += match sym {
            SymKey::Term(_) => 1,
            SymKey::Rule(r) => expanded_len(g, r, cache),
        };
    }
    cache.insert(rule, len);
    len
}

/// Fraction of input positions derived through a repeated (second-or-later)
/// rule use — the grammar's estimate of temporal-prefetching opportunity.
///
/// Walks the derivation of the start rule. The first time a rule is
/// encountered its expansion is *not* counted as covered (the subsequence
/// had not been seen yet), but nested rules inside it may still be repeats.
/// Every later use of the rule covers its whole expansion.
pub fn grammar_coverage(g: &Sequitur) -> f64 {
    if g.input_len() == 0 {
        return 0.0;
    }
    let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
    let mut covered = 0u64;
    let mut cache: HashMap<u32, u64> = HashMap::new();
    // First occurrence of a rule: recurse (inner rules may still repeat).
    // Later occurrences: the whole expansion repeats an earlier subsequence.
    fn walk(
        g: &Sequitur,
        rule: u32,
        seen: &mut std::collections::HashSet<u32>,
        covered: &mut u64,
        cache: &mut HashMap<u32, u64>,
    ) {
        for sym in g.rule_body(rule) {
            if let SymKey::Rule(r) = sym {
                if seen.insert(r) {
                    walk(g, r, seen, covered, cache);
                } else {
                    *covered += expanded_len(g, r, cache);
                }
            }
        }
    }
    walk(g, 0, &mut seen, &mut covered, &mut cache);
    covered as f64 / g.input_len() as f64
}

/// Stream lengths as the grammar sees them: every *repeated* (second or
/// later, in derivation order) rule occurrence is a stream whose length
/// is the rule's expansion — the subsequence replays something already
/// seen. Returns the Figure-12-bucketed histogram of those lengths.
///
/// This is the grammar-side counterpart of the oracle replay's
/// stream-length histogram; the two measure the same phenomenon by
/// different algorithms and should broadly agree.
pub fn grammar_stream_lengths(g: &Sequitur) -> Histogram {
    let mut hist = Histogram::fig12();
    if g.input_len() == 0 {
        return hist;
    }
    let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
    let mut cache: HashMap<u32, u64> = HashMap::new();
    fn walk(
        g: &Sequitur,
        rule: u32,
        seen: &mut std::collections::HashSet<u32>,
        hist: &mut Histogram,
        cache: &mut HashMap<u32, u64>,
    ) {
        for sym in g.rule_body(rule) {
            if let SymKey::Rule(r) = sym {
                if seen.insert(r) {
                    walk(g, r, seen, hist, cache);
                } else {
                    hist.record(expanded_len(g, r, cache));
                }
            }
        }
    }
    walk(g, 0, &mut seen, &mut hist, &mut cache);
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_empty_grammar() {
        let g = Sequitur::new();
        let s = GrammarStats::of(&g);
        assert_eq!(s.input_len, 0);
        assert_eq!(s.rules, 0);
        assert_eq!(s.mean_rule_expansion, 0.0);
    }

    #[test]
    fn random_input_has_low_coverage() {
        // Distinct symbols: no repetition at all.
        let g = Sequitur::from_sequence(0..500u64);
        assert_eq!(grammar_coverage(&g), 0.0);
        let s = GrammarStats::of(&g);
        assert!(s.compression_ratio <= 1.01);
    }

    #[test]
    fn repeated_block_has_high_coverage() {
        let block: Vec<u64> = (0..64).collect();
        let mut input = Vec::new();
        for _ in 0..16 {
            input.extend_from_slice(&block);
        }
        let g = Sequitur::from_sequence(input.iter().copied());
        let cov = grammar_coverage(&g);
        assert!(cov > 0.8, "coverage {cov}");
        let s = GrammarStats::of(&g);
        assert!(s.compression_ratio > 3.0, "ratio {}", s.compression_ratio);
    }

    #[test]
    fn coverage_is_a_fraction() {
        let input = [1u64, 2, 3, 1, 2, 3, 9, 9, 9, 9];
        let g = Sequitur::from_sequence(input.iter().copied());
        let cov = grammar_coverage(&g);
        assert!((0.0..=1.0).contains(&cov), "coverage {cov}");
    }

    #[test]
    fn grammar_streams_match_block_structure() {
        let block: Vec<u64> = (0..20).collect();
        let mut input = Vec::new();
        for _ in 0..6 {
            input.extend_from_slice(&block);
        }
        let g = Sequitur::from_sequence(input.iter().copied());
        let hist = grammar_stream_lengths(&g);
        assert!(hist.total() > 0, "repetition must yield streams");
        // Total covered symbols across streams equal the grammar coverage.
        let covered: f64 = hist.mean() * hist.total() as f64;
        let cov = grammar_coverage(&g) * input.len() as f64;
        assert!((covered - cov).abs() < 1e-6, "{covered} vs {cov}");
    }

    #[test]
    fn grammar_streams_empty_for_random_input() {
        let g = Sequitur::from_sequence(0..200u64);
        assert_eq!(grammar_stream_lengths(&g).total(), 0);
    }

    #[test]
    fn mean_rule_expansion_reflects_block_size() {
        let block: Vec<u64> = (0..32).collect();
        let mut input = Vec::new();
        for _ in 0..8 {
            input.extend_from_slice(&block);
        }
        let g = Sequitur::from_sequence(input.iter().copied());
        let s = GrammarStats::of(&g);
        assert!(s.mean_rule_expansion >= 2.0);
    }
}
