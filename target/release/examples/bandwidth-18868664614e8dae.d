/root/repo/target/release/examples/bandwidth-18868664614e8dae.d: examples/bandwidth.rs

/root/repo/target/release/examples/bandwidth-18868664614e8dae: examples/bandwidth.rs

examples/bandwidth.rs:
