/root/repo/target/release/examples/figures-35a12db30310689d.d: examples/figures.rs Cargo.toml

/root/repo/target/release/examples/libfigures-35a12db30310689d.rmeta: examples/figures.rs Cargo.toml

examples/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
