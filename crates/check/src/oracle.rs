//! The three oracle tiers.
//!
//! Tier 1 opens with the **batched-vs-scalar differential**: the SoA
//! batched hot path must produce byte-for-byte the same coverage,
//! timing, and multicore reports as the scalar per-event loop, at every
//! checked batch size and across warmup boundaries that do not divide
//! the batch. Then the **cross-engine differential**: the
//! coverage and timing engines evolve the L1, the prefetch buffer, and
//! the prefetcher through *identical* sequences — only the clock
//! differs — so wherever their metrics overlap they must agree exactly:
//! demand-miss counts, covered misses, metadata traffic, and the final
//! `knows_line` metadata state. A one-core multicore run must further be
//! bit-identical to the single-core timing engine.
//!
//! Tier 2 (**model-based**, [`check_reference_models`]): the same trace
//! deterministically derives an op stream that drives each optimized
//! structure and its [`crate::reference`] model side by side, comparing
//! every return value. Op choice and operands come only from the event
//! index and line address, so shrinking the trace shrinks the op
//! stream. Beyond the memory-system structures, this tier also steps
//! the optimized rival prefetchers (Pangloss, Triangel) against their
//! obviously-correct reference models over tiny folded configurations,
//! comparing every trigger's predictions, replacements, metadata
//! membership, and the final counters.
//!
//! Tier 3 (**invariant audit**, inside [`check_system_trace`]): one
//! telemetry-observed coverage run checks flight-recorder bucket
//! conservation against engine totals, ring chronology, serialization
//! round-trips, per-epoch counter monotonicity, and prefetch-buffer
//! lifetime conservation (every fill is eventually hit, evicted,
//! discarded, or left resident — exactly once).
//!
//! Tier 4 (**service equivalence**, inside [`check_system_trace`]): a
//! multi-tenant sharded `domino-service` run over interleaved rotations
//! of the trace must be indistinguishable, per tenant, from independent
//! single-tenant runs — same coverage report bytes, same decision
//! digest, same final metadata membership. This is the isolation and
//! linearity anchor for the metadata service.
//!
//! Tier 5 (**observability audit**, inside [`check_system_trace`]): an
//! *armed* service run (metrics rings + span tracing on) audited
//! against the plane's own invariants — span chronology (submit ≤
//! enqueue ≤ dequeue ≤ step ≤ reply), deterministic-sampler membership
//! and exact sampled-count prediction, interval-counter conservation
//! (ring totals == final shard stats), and serialization round-trips
//! of both record formats.
//!
//! Tier 6 (**stream parity**, [`check_stream_parity`]): the trace is
//! written to `DMNOTRC1` files (raw and Sequitur-compressed) and
//! replayed through the double-buffered file source into both engines;
//! reports and decision digests must be byte-identical to the
//! cached-slice runs at every checked batch size, with a file chunk
//! size that divides neither the batch nor the trace.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use domino::eit::{Eit, EitConfig};
use domino_mem::cache::{CacheConfig, Replacement, SetAssocCache};
use domino_mem::interface::{CollectSink, Prefetcher, TriggerEvent};
use domino_mem::mshr::MshrFile;
use domino_mem::prefetch_buffer::PrefetchBuffer;
use domino_prefetchers::{Pangloss, PanglossConfig, Triangel, TriangelConfig};
use domino_service::{BatchRequest, MetadataService, ObsConfig, OverloadPolicy, ServiceConfig};
use domino_sim::config::SystemConfig;
use domino_sim::engine::{
    run_coverage, run_coverage_observed, run_coverage_session, run_coverage_streamed,
    run_coverage_streamed_session, run_coverage_with_batch,
};
use domino_sim::multicore::{run_multicore, run_multicore_with_batch};
use domino_sim::roster::System;
use domino_sim::timing::{run_timing, run_timing_streamed, run_timing_with_batch};
use domino_telemetry::trace::{TraceFile, TraceMeta};
use domino_telemetry::{RingFile, SpanFile, SpanSampler, Telemetry};
use domino_trace::addr::{LineAddr, LINE_BYTES};
use domino_trace::event::AccessEvent;
use domino_trace::stream::{write_trace_file, Codec, FileSource};

use crate::reference::{
    RefTriangelParams, ReferenceBuffer, ReferenceCache, ReferenceEit, ReferenceMshr,
    ReferencePangloss, ReferenceTriangel,
};

/// Prefetch degree used for every checked system.
pub const DEGREE: usize = 4;

/// Flight-recorder ring capacity used by the invariant audit; small so
/// campaign traces wrap it many times and chronology bugs surface.
const RING_CAPACITY: usize = 128;

/// One oracle failure: which oracle tripped and what it saw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable oracle name (`cross_engine`, `eit_model`, ...).
    pub oracle: &'static str,
    /// Human-readable mismatch description.
    pub detail: String,
    /// Batch size under which the violation manifested, if the failing
    /// oracle is batch-sensitive. Recorded in the reproducer so replay
    /// and shrinking rerun under the exact same chunking.
    pub batch: Option<u32>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)?;
        if let Some(b) = self.batch {
            write!(f, " (batch {b})")?;
        }
        Ok(())
    }
}

fn violation(oracle: &'static str, detail: String) -> Violation {
    Violation {
        oracle,
        detail,
        batch: None,
    }
}

macro_rules! ensure_eq {
    ($oracle:expr, $left:expr, $right:expr, $($what:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(violation(
                $oracle,
                format!("{}: {:?} != {:?}", format_args!($($what)*), l, r),
            ));
        }
    }};
}

/// Batch sizes the batched-vs-scalar oracle exercises: one that is not
/// a divisor of anything interesting (odd, smaller than most traces)
/// and the production default.
pub const CHECKED_BATCHES: [u32; 2] = [7, 64];

/// Runs every oracle that involves a prefetching system on `trace`.
///
/// The batched-vs-scalar tier runs first: it owns every batching bug by
/// construction, so a chunking defect is always reported under its name
/// even when downstream oracles (which run at the ambient batch size)
/// would also trip over it.
pub fn check_system_trace(sys: System, trace: &[AccessEvent]) -> Result<(), Violation> {
    batched_vs_scalar(sys, trace)?;
    cross_engine(sys, trace)?;
    multicore_equivalence(sys, trace)?;
    invariant_audit(sys, trace)?;
    service_equivalence(sys, trace)?;
    observability_audit(sys, trace)?;
    check_stream_parity(sys, trace)
}

/// Runs the system-independent reference-model differentials on the op
/// stream derived from `trace`.
pub fn check_reference_models(trace: &[AccessEvent]) -> Result<(), Violation> {
    eit_model(trace)?;
    mshr_model(trace)?;
    buffer_model(trace)?;
    cache_model(trace)?;
    pangloss_model(trace)?;
    triangel_model(trace)
}

/// Every oracle: tier 1 and 3 for `sys`, then the tier-2 models.
pub fn check_trace(sys: System, trace: &[AccessEvent]) -> Result<(), Violation> {
    check_system_trace(sys, trace)?;
    check_reference_models(trace)
}

/// Tier 1: the batched SoA hot path vs the scalar per-event loop.
///
/// Every report a figure can print must be *byte-for-byte* identical
/// between `batch == 1` (the scalar loop) and any larger batch, so the
/// comparison is on the full `Debug` rendering of each report — `f64`
/// Debug is shortest-roundtrip and therefore injective, making string
/// equality equivalent to bit equality of every field.
fn batched_vs_scalar(sys: System, trace: &[AccessEvent]) -> Result<(), Violation> {
    for batch in CHECKED_BATCHES {
        check_batched_parity(sys, trace, batch)?;
    }
    Ok(())
}

/// Compares scalar and `batch`-chunked runs of all three engines on
/// `trace`. Public so `--replay` can rerun a reproducer under exactly
/// the recorded batch size.
pub fn check_batched_parity(
    sys: System,
    trace: &[AccessEvent],
    batch: u32,
) -> Result<(), Violation> {
    const O: &str = "batched_vs_scalar";
    let cfg = SystemConfig::paper();
    let label = sys.label();
    let mismatch = |engine: &str, warmup: usize, scalar: String, batched: String| Violation {
        oracle: O,
        detail: format!(
            "{label}: {engine} (warmup {warmup}) diverges at batch {batch}:\n\
             scalar:  {scalar}\n\
             batched: {batched}"
        ),
        batch: Some(batch),
    };
    // Two warmups: none, and one that is deliberately not a batch
    // multiple so the warmup-boundary chunk clamp is exercised.
    for warmup in [0, trace.len() / 3] {
        let mut p = sys.build(DEGREE);
        let scalar = format!(
            "{:?}",
            run_coverage_with_batch(&cfg, trace, p.as_mut(), warmup, 1)
        );
        let mut p = sys.build(DEGREE);
        let batched = format!(
            "{:?}",
            run_coverage_with_batch(&cfg, trace, p.as_mut(), warmup, batch)
        );
        if scalar != batched {
            return Err(mismatch("coverage", warmup, scalar, batched));
        }
        let mut p = sys.build(DEGREE);
        let scalar = format!(
            "{:?}",
            run_timing_with_batch(&cfg, trace, p.as_mut(), warmup, 1)
        );
        let mut p = sys.build(DEGREE);
        let batched = format!(
            "{:?}",
            run_timing_with_batch(&cfg, trace, p.as_mut(), warmup, batch)
        );
        if scalar != batched {
            return Err(mismatch("timing", warmup, scalar, batched));
        }
    }
    // Multicore: two cores sharing the LLC, scalar vs per-core staged.
    if !trace.is_empty() {
        let cfg2 = SystemConfig {
            cores: 2,
            ..SystemConfig::paper()
        };
        let traces = vec![trace.to_vec(), trace.to_vec()];
        let build = || vec![sys.build(DEGREE), sys.build(DEGREE)];
        let scalar = format!(
            "{:?}",
            run_multicore_with_batch(&cfg2, traces.clone(), build(), 1)
        );
        let batched = format!(
            "{:?}",
            run_multicore_with_batch(&cfg2, traces, build(), batch)
        );
        if scalar != batched {
            return Err(mismatch("multicore", 0, scalar, batched));
        }
    }
    Ok(())
}

/// Chunk size the stream-parity oracle writes its trace files with:
/// prime, so file chunks straddle every batch boundary and (for any
/// trace longer than 37 events) never divide the trace.
const STREAM_CHUNK_EVENTS: u32 = 37;

/// Tier 6: **stream parity** — replaying the trace from a `DMNOTRC1`
/// file through the double-buffered [`FileSource`] must be byte-for-byte
/// identical to the cached-slice engines, for both the raw and the
/// Sequitur-compressed codec, across the checked batch sizes and a
/// warmup that divides neither the batch nor the file chunk. Compares
/// the decision digest (coverage) and the full `Debug` report rendering
/// of both engines, like the batched-vs-scalar tier.
pub fn check_stream_parity(sys: System, trace: &[AccessEvent]) -> Result<(), Violation> {
    const O: &str = "stream_parity";
    let cfg = SystemConfig::paper();
    let label = sys.label();
    let io_err = |what: &str, e: &dyn fmt::Display| violation(O, format!("{label}: {what}: {e}"));
    let dir = std::env::temp_dir();
    for codec in [Codec::Raw, Codec::Sequitur] {
        let path = dir.join(format!(
            "domino-check-stream-{}-{}-{}.dmno",
            std::process::id(),
            label.replace([' ', '/'], "_"),
            codec.label()
        ));
        write_trace_file(&path, trace, STREAM_CHUNK_EVENTS, codec)
            .map_err(|e| io_err("write trace file", &e))?;
        let result = stream_parity_one_file(sys, trace, &cfg, &path, codec);
        std::fs::remove_file(&path).ok();
        result?;
    }
    Ok(())
}

/// One codec's worth of [`check_stream_parity`]: every checked batch,
/// coverage (digest + report) and timing (report), warmed and unwarmed.
fn stream_parity_one_file(
    sys: System,
    trace: &[AccessEvent],
    cfg: &SystemConfig,
    path: &std::path::Path,
    codec: Codec,
) -> Result<(), Violation> {
    const O: &str = "stream_parity";
    let label = sys.label();
    let open = || {
        FileSource::open(path).map_err(|e| {
            violation(
                O,
                format!("{label}: open {} ({codec:?}): {e}", path.display()),
            )
        })
    };
    let stream_err =
        |e: &dyn fmt::Display| violation(O, format!("{label}: streamed run ({codec:?}): {e}"));
    for batch in CHECKED_BATCHES {
        let mismatch = |engine: &str, warmup: usize, cached: String, streamed: String| Violation {
            oracle: O,
            detail: format!(
                "{label}: {engine} ({codec:?} codec, warmup {warmup}) diverges at batch {batch}:\n\
                 cached:   {cached}\n\
                 streamed: {streamed}"
            ),
            batch: Some(batch),
        };
        // Coverage with decision digest (warmup 0 — the digest session
        // has no warmup notion, matching run_coverage_session).
        let mut p = sys.build(DEGREE);
        let (want_report, want_digest) =
            run_coverage_session(cfg, trace, p.as_mut(), batch as usize);
        let mut source = open()?;
        let mut p = sys.build(DEGREE);
        let (got_report, got_digest) =
            run_coverage_streamed_session(cfg, &mut source, p.as_mut(), batch as usize)
                .map_err(|e| stream_err(&e))?;
        if want_digest != got_digest {
            return Err(mismatch(
                "coverage digest",
                0,
                format!("{want_digest:#018x}"),
                format!("{got_digest:#018x}"),
            ));
        }
        let (want, got) = (format!("{want_report:?}"), format!("{got_report:?}"));
        if want != got {
            return Err(mismatch("coverage", 0, want, got));
        }
        // Both engines across the warmup boundary.
        for warmup in [0, trace.len() / 3] {
            let mut p = sys.build(DEGREE);
            let want = format!(
                "{:?}",
                run_coverage_with_batch(cfg, trace, p.as_mut(), warmup, batch)
            );
            let mut source = open()?;
            let mut p = sys.build(DEGREE);
            let got = run_coverage_streamed(cfg, &mut source, p.as_mut(), warmup, batch as usize)
                .map_err(|e| stream_err(&e))?;
            let got = format!("{got:?}");
            if want != got {
                return Err(mismatch("coverage", warmup, want, got));
            }
            let mut p = sys.build(DEGREE);
            let want = format!(
                "{:?}",
                run_timing_with_batch(cfg, trace, p.as_mut(), warmup, batch)
            );
            let mut source = open()?;
            let mut p = sys.build(DEGREE);
            let got = run_timing_streamed(cfg, &mut source, p.as_mut(), warmup, batch as usize)
                .map_err(|e| stream_err(&e))?;
            let got = format!("{got:?}");
            if want != got {
                return Err(mismatch("timing", warmup, want, got));
            }
        }
    }
    Ok(())
}

/// Tier 1: coverage vs timing on the shared metric surface.
fn cross_engine(sys: System, trace: &[AccessEvent]) -> Result<(), Violation> {
    const O: &str = "cross_engine";
    let cfg = SystemConfig::paper();
    let mut cov_p = sys.build(DEGREE);
    let cov = run_coverage(&cfg, trace, cov_p.as_mut());
    let mut tim_p = sys.build(DEGREE);
    let tim = run_timing(&cfg, trace, tim_p.as_mut());
    let label = sys.label();
    ensure_eq!(
        O,
        cov.covered,
        tim.timely_hits + tim.late_hits,
        "{label}: covered misses vs timely+late buffer hits"
    );
    ensure_eq!(
        O,
        cov.baseline_misses,
        tim.timely_hits + tim.late_hits + tim.full_misses,
        "{label}: baseline misses vs timing miss classes"
    );
    ensure_eq!(
        O,
        cov.meta_read_blocks * LINE_BYTES,
        tim.traffic.metadata_read,
        "{label}: metadata read traffic (bytes)"
    );
    ensure_eq!(
        O,
        cov.meta_write_blocks * LINE_BYTES,
        tim.traffic.metadata_write,
        "{label}: metadata write traffic (bytes)"
    );
    // Same trigger sequence → same learned metadata. `knows_line` is
    // pure, so probing every distinct line compares the final states.
    for ev in trace {
        let line = ev.line();
        ensure_eq!(
            O,
            cov_p.knows_line(line),
            tim_p.knows_line(line),
            "{label}: knows_line({}) after both runs",
            line.raw()
        );
    }
    Ok(())
}

/// Tier 1: `run_multicore` with one core must reproduce `run_timing`
/// bit-for-bit (the pollution term vanishes at one core).
fn multicore_equivalence(sys: System, trace: &[AccessEvent]) -> Result<(), Violation> {
    const O: &str = "multicore_equivalence";
    let cfg = SystemConfig {
        cores: 1,
        ..SystemConfig::paper()
    };
    let mut p = sys.build(DEGREE);
    let single = run_timing(&cfg, trace, p.as_mut());
    let multi = run_multicore(&cfg, vec![trace.to_vec()], vec![sys.build(DEGREE)]);
    let core = &multi.per_core[0];
    let label = sys.label();
    ensure_eq!(O, single.name, core.name, "{label}: report name");
    ensure_eq!(
        O,
        single.instructions,
        core.instructions,
        "{label}: instructions"
    );
    ensure_eq!(
        O,
        (single.timely_hits, single.late_hits, single.full_misses),
        (core.timely_hits, core.late_hits, core.full_misses),
        "{label}: miss classification"
    );
    ensure_eq!(
        O,
        single.total_ns.to_bits(),
        core.total_ns.to_bits(),
        "{label}: total_ns ({} vs {})",
        single.total_ns,
        core.total_ns
    );
    ensure_eq!(
        O,
        (
            single.dependent_stall_ns.to_bits(),
            single.independent_stall_ns.to_bits()
        ),
        (
            core.dependent_stall_ns.to_bits(),
            core.independent_stall_ns.to_bits()
        ),
        "{label}: stall breakdown"
    );
    ensure_eq!(
        O,
        (
            single.traffic.demand,
            single.traffic.prefetch,
            single.traffic.metadata_read,
            single.traffic.metadata_write
        ),
        (
            core.traffic.demand,
            core.traffic.prefetch,
            core.traffic.metadata_read,
            core.traffic.metadata_write
        ),
        "{label}: traffic by category"
    );
    Ok(())
}

/// Tier 3: one observed coverage run, audited through the telemetry
/// hooks the engines already carry.
fn invariant_audit(sys: System, trace: &[AccessEvent]) -> Result<(), Violation> {
    let cfg = SystemConfig::paper();
    let epoch = (trace.len() as u64 / 8).max(1);
    let mut tel = Telemetry::with_epoch(epoch);
    tel.enable_trace(RING_CAPACITY);
    let mut p = sys.build(DEGREE);
    let report = run_coverage_observed(&cfg, trace, p.as_mut(), 0, &mut tel);
    let rec = tel.take_tracer().expect("tracer was enabled");
    let label = sys.label();

    // Bucket conservation: every demand miss lands in exactly one
    // attribution bucket, and the online totals match the engine's.
    let a = rec.attribution();
    if !a.is_conserved() {
        return Err(violation(
            "attribution_conservation",
            format!("{label}: buckets {a:?} do not sum to demand misses"),
        ));
    }
    ensure_eq!(
        "attribution_totals",
        a.demand_misses,
        report.baseline_misses,
        "{label}: recorder demand misses vs engine baseline misses"
    );
    ensure_eq!(
        "attribution_totals",
        a.covered + a.late,
        report.covered,
        "{label}: recorder covered(+late) vs engine covered"
    );

    // Ring chronology: the coverage engine stamps every record with the
    // access index, so oldest-first iteration must be nondecreasing.
    let mut last = 0u64;
    for (i, ev) in rec.events().enumerate() {
        if ev.time < last {
            return Err(violation(
                "flight_recorder_chronology",
                format!(
                    "{label}: ring event {i} at time {} after time {last} \
                     (recorded {}, wrapped {})",
                    ev.time,
                    rec.recorded(),
                    rec.wrapped()
                ),
            ));
        }
        last = ev.time;
    }

    // Serialization round-trip: bytes → TraceFile → verify, and the
    // replayed attribution must match the online one when no event was
    // lost to ring wrap.
    let meta = TraceMeta {
        workload: "checker".into(),
        component: label.clone(),
        kind: "coverage".into(),
        events: trace.len() as u64,
        seed: 0,
        warmup: 0,
    };
    let bytes = rec.to_bytes(&meta);
    let file = TraceFile::from_bytes(&bytes)
        .map_err(|e| violation("trace_roundtrip", format!("{label}: parse failed: {e}")))?;
    file.verify()
        .map_err(|e| violation("trace_roundtrip", format!("{label}: verify failed: {e}")))?;
    ensure_eq!(
        "trace_roundtrip",
        (file.recorded, file.events.len()),
        (rec.recorded(), rec.len()),
        "{label}: round-tripped event counts"
    );
    if !file.wrapped() {
        ensure_eq!(
            "trace_roundtrip",
            file.replayed_attribution(),
            a,
            "{label}: replayed vs online attribution"
        );
    }

    // Epoch series: every emitted counter is cumulative, so every column
    // must be monotonically nondecreasing across epochs.
    let run = tel.finish(|_| {});
    for (col, field) in run.fields.iter().enumerate() {
        let mut prev = 0u64;
        for (row_idx, row) in run.epochs.iter().enumerate() {
            let v = row[col];
            if v < prev {
                return Err(violation(
                    "epoch_monotonicity",
                    format!(
                        "{label}: counter {field} falls from {prev} to {v} \
                         at epoch row {row_idx}"
                    ),
                ));
            }
            prev = v;
        }
    }

    // Buffer lifetime conservation. Each insert is a duplicate or
    // creates a resident entry; entries leave by demand hit, capacity
    // eviction, or stream discard; leftovers count as overpredictions.
    // With warmup 0: inserted == duplicates + hits + overpredictions.
    if let Some(final_row) = run.epochs.last() {
        let col = |name: &str| -> Option<u64> {
            run.fields
                .iter()
                .position(|f| f == name)
                .map(|i| final_row[i])
        };
        match (
            col("buffer.inserted"),
            col("buffer.duplicate_inserts"),
            col("buffer.hits"),
        ) {
            (Some(inserted), Some(duplicates), Some(hits)) => {
                let lhs = i128::from(inserted);
                let rhs =
                    i128::from(duplicates) + i128::from(hits) + i128::from(report.overpredictions);
                if lhs != rhs {
                    return Err(violation(
                        "buffer_conservation",
                        format!(
                            "{label}: inserted {inserted} != duplicates {duplicates} \
                             + hits {hits} + overpredictions {} ({lhs} vs {rhs})",
                            report.overpredictions
                        ),
                    ));
                }
            }
            _ => {
                return Err(violation(
                    "buffer_conservation",
                    format!("{label}: buffer counters missing from telemetry row"),
                ));
            }
        }
    }
    Ok(())
}

/// Tier 4: the sharded multi-tenant metadata service vs independent
/// single-tenant runs.
///
/// Four tenants replay rotations of the checker trace through a
/// two-shard service, interleaved in small non-divisor batches under the
/// blocking policy. Every tenant must then be indistinguishable from a
/// lone `run_coverage_session` over its own stream: same coverage report
/// (full `Debug` rendering, so bit equality), same decision digest, and
/// same final metadata membership over every line the tenant touched.
/// Any cross-tenant leak, shard-scheduling dependence, or batching
/// defect in the service layer breaks one of the three.
fn service_equivalence(sys: System, trace: &[AccessEvent]) -> Result<(), Violation> {
    const O: &str = "service_equivalence";
    if trace.is_empty() {
        return Ok(());
    }
    const TENANTS: usize = 4;
    /// Deliberately not a divisor of anything, so request boundaries
    /// land mid-everything.
    const REQUEST_BATCH: usize = 17;
    let label = sys.label();
    let len = trace.len();
    // Tenant t replays the trace rotated by t quarters: every stream
    // touches the same lines (maximal aliasing pressure) while being a
    // genuinely different sequence.
    let streams: Vec<Arc<[AccessEvent]>> = (0..TENANTS)
        .map(|t| {
            let cut = t * len / TENANTS;
            let mut v = Vec::with_capacity(len);
            v.extend_from_slice(&trace[cut..]);
            v.extend_from_slice(&trace[..cut]);
            v.into()
        })
        .collect();
    let service = MetadataService::start(ServiceConfig {
        shards: 2,
        queue_depth: 4,
        policy: OverloadPolicy::Block,
        degree: DEGREE,
        system: SystemConfig::paper(),
        ..ServiceConfig::default()
    });
    {
        let client = service.client();
        let mut cursor = [0usize; TENANTS];
        let mut live = TENANTS;
        while live > 0 {
            live = 0;
            for (t, cursor) in cursor.iter_mut().enumerate() {
                if *cursor >= len {
                    continue;
                }
                let start = *cursor;
                let end = (start + REQUEST_BATCH).min(len);
                *cursor = end;
                if end < len {
                    live += 1;
                }
                client.submit(BatchRequest {
                    tenant: t as u64,
                    system: sys,
                    trace: Arc::clone(&streams[t]),
                    base: 0,
                    len: len as u32,
                    start: start as u32,
                    end: end as u32,
                    enqueued: Instant::now(),
                    span: None,
                });
            }
        }
    }
    let result = service.shutdown();
    for (t, stream) in streams.iter().enumerate() {
        let mut reference = sys.build(DEGREE);
        let (ref_report, ref_digest) =
            run_coverage_session(&SystemConfig::paper(), stream, reference.as_mut(), 64);
        let Some(fin) = result.tenant(t as u64) else {
            return Err(violation(
                O,
                format!("{label}: tenant {t} did not survive to a single final"),
            ));
        };
        ensure_eq!(
            O,
            (fin.evicted, fin.gap_events, fin.resets),
            (false, 0, 0),
            "{label}: tenant {t} ran without pressure events"
        );
        ensure_eq!(
            O,
            fin.digest,
            ref_digest,
            "{label}: tenant {t} decision digest vs single-tenant run"
        );
        ensure_eq!(
            O,
            format!("{:?}", fin.report),
            format!("{ref_report:?}"),
            "{label}: tenant {t} coverage report vs single-tenant run"
        );
        for ev in stream.iter() {
            let line = ev.line();
            ensure_eq!(
                O,
                fin.prefetcher.knows_line(line),
                reference.knows_line(line),
                "{label}: tenant {t} knows_line({}) vs single-tenant run",
                line.raw()
            );
        }
    }
    Ok(())
}

/// Tier 5: the observability plane audited against its own invariants.
///
/// One *armed* service run (2 shards, blocking policy, span rate 2,
/// deliberately tiny rings so long traces wrap them) over rotated
/// tenant streams, then:
///
/// - **Span chronology**: every stored span satisfies
///   submit ≤ enqueue ≤ dequeue ≤ step ≤ reply.
/// - **Sampler determinism**: the number of recorded spans equals the
///   count predicted by replaying the pure sampling function over the
///   exact (tenant, batch-start) pairs the load submitted, and every
///   stored span is a member the sampler would have selected.
/// - **Interval-counter conservation**: the metrics ring's unwrapped
///   totals equal the shard's final stats for every shared counter —
///   sampling on a cadence must lose nothing by shutdown.
/// - **Round-trips**: both serialized forms (`DMNOMTR1`, `DMNOSPN1`)
///   parse back and pass their own `verify()`.
fn observability_audit(sys: System, trace: &[AccessEvent]) -> Result<(), Violation> {
    const O: &str = "observability_audit";
    if trace.is_empty() {
        return Ok(());
    }
    const TENANTS: usize = 3;
    const REQUEST_BATCH: usize = 13;
    const SPAN_RATE: u32 = 2;
    const SPAN_SEED: u64 = 0x0B5E7;
    let label = sys.label();
    let len = trace.len();
    let streams: Vec<Arc<[AccessEvent]>> = (0..TENANTS)
        .map(|t| {
            let cut = t * len / TENANTS;
            let mut v = Vec::with_capacity(len);
            v.extend_from_slice(&trace[cut..]);
            v.extend_from_slice(&trace[..cut]);
            v.into()
        })
        .collect();
    let sampler = SpanSampler::new(SPAN_RATE, SPAN_SEED);
    let service = MetadataService::start(ServiceConfig {
        shards: 2,
        queue_depth: 4,
        policy: OverloadPolicy::Block,
        degree: DEGREE,
        system: SystemConfig::paper(),
        obs: Some(ObsConfig {
            interval_events: 32,
            ring_rows: 8,
            span_rate: SPAN_RATE,
            span_seed: SPAN_SEED,
            span_capacity: 1024,
            live_dir: None,
        }),
        ..ServiceConfig::default()
    });
    // Predicted sampled-span count per shard, from the pure sampling
    // function over the exact (tenant, batch-start) pairs submitted.
    let mut predicted = [0u64; 2];
    {
        let client = service.client();
        let mut cursor = [0usize; TENANTS];
        let mut live = TENANTS;
        while live > 0 {
            live = 0;
            for (t, cursor) in cursor.iter_mut().enumerate() {
                if *cursor >= len {
                    continue;
                }
                let start = *cursor;
                let end = (start + REQUEST_BATCH).min(len);
                *cursor = end;
                if end < len {
                    live += 1;
                }
                if sampler.sampled(t as u64, start as u64) {
                    predicted[client.shard_of(t as u64)] += 1;
                }
                client.submit(BatchRequest {
                    tenant: t as u64,
                    system: sys,
                    trace: Arc::clone(&streams[t]),
                    base: 0,
                    len: len as u32,
                    start: start as u32,
                    end: end as u32,
                    enqueued: Instant::now(),
                    span: None,
                });
            }
        }
    }
    let result = service.shutdown();
    for shard in &result.shards {
        let stats = &shard.stats;
        let Some(obs) = &shard.obs else {
            return Err(violation(
                O,
                format!(
                    "{label}: shard {} armed run produced no obs outcome",
                    stats.shard
                ),
            ));
        };
        // Span chronology and sampler membership, pre-serialization.
        for span in obs.spans.spans() {
            if !span.chronological() {
                return Err(violation(
                    O,
                    format!(
                        "{label}: shard {} span tenant {} seq {} out of order: \
                         submit {} enqueue {} dequeue {} step {} reply {}",
                        stats.shard,
                        span.tenant,
                        span.seq,
                        span.submit_ns,
                        span.enqueue_ns,
                        span.dequeue_ns,
                        span.step_ns,
                        span.reply_ns
                    ),
                ));
            }
            if !sampler.sampled(span.tenant, span.seq) {
                return Err(violation(
                    O,
                    format!(
                        "{label}: shard {} stored span (tenant {}, seq {}) the \
                         deterministic sampler would not have selected",
                        stats.shard, span.tenant, span.seq
                    ),
                ));
            }
        }
        ensure_eq!(
            O,
            obs.spans.recorded(),
            predicted[stats.shard],
            "{label}: shard {} recorded spans vs pure-sampler prediction",
            stats.shard
        );
        // Interval-counter conservation: cadence sampling plus the
        // drain-time tail sample must conserve every shared counter.
        let total = |name: &str| obs.ring.column(name).map(|c| obs.ring.totals()[c]);
        for (name, expect) in [
            ("events", stats.events),
            ("batches", stats.batches),
            ("shed", stats.shed),
            ("gap_events", stats.gap_events),
            ("evictions", stats.evictions),
            ("resets", stats.resets),
        ] {
            ensure_eq!(
                O,
                total(name),
                Some(expect),
                "{label}: shard {} ring total {name} vs final stats",
                stats.shard
            );
        }
        // Serialization round-trips: both record formats parse back and
        // pass their own verifiers, and the ring file conserves totals.
        let source = format!("shard-{}", stats.shard);
        let ring_file = RingFile::from_bytes(&obs.ring.to_bytes(&source, 32))
            .map_err(|e| violation(O, format!("{label}: ring round-trip: {e}")))?;
        ring_file
            .verify()
            .map_err(|e| violation(O, format!("{label}: ring verify: {e}")))?;
        ensure_eq!(
            O,
            ring_file.totals,
            obs.ring.totals().to_vec(),
            "{label}: shard {} serialized ring totals",
            stats.shard
        );
        let span_file = SpanFile::from_bytes(&obs.spans.to_bytes(&source, sampler))
            .map_err(|e| violation(O, format!("{label}: span round-trip: {e}")))?;
        span_file
            .verify()
            .map_err(|e| violation(O, format!("{label}: span verify: {e}")))?;
        ensure_eq!(
            O,
            span_file.recorded,
            obs.spans.recorded(),
            "{label}: shard {} serialized span count",
            stats.shard
        );
    }
    Ok(())
}

/// Tier 2: flat-slab EIT vs the nested-`Vec` reference.
///
/// Tags fold into a 13-line pool over a 3-row table so refreshes,
/// promotions, and capacity evictions all happen constantly.
fn eit_model(trace: &[AccessEvent]) -> Result<(), Violation> {
    const O: &str = "eit_model";
    let mut flat = Eit::new(EitConfig {
        rows: 3,
        super_entries_per_row: 2,
        entries_per_super: 3,
    });
    let mut model = ReferenceEit::new(3, 2, 3);
    for (i, pair) in trace.windows(2).enumerate() {
        let tag = LineAddr::new(pair[0].line().raw() % 13);
        let next = LineAddr::new(pair[1].line().raw() % 13);
        let evicted_flat = flat.update(tag, next, i as u64);
        let evicted_model = model.update(tag, next, i as u64);
        ensure_eq!(
            O,
            evicted_flat,
            evicted_model,
            "op {i}: update({}, {}) eviction",
            tag.raw(),
            next.raw()
        );
        if i % 5 == 0 {
            let model_entries = model.lookup(next);
            let flat_entries = flat.lookup(next).map(|se| se.entries().to_vec());
            ensure_eq!(
                O,
                flat_entries,
                model_entries,
                "op {i}: lookup({}) entries",
                next.raw()
            );
        }
        if i % 7 == 0 {
            ensure_eq!(
                O,
                flat.probe(tag),
                model.probe(tag),
                "op {i}: probe({})",
                tag.raw()
            );
        }
    }
    Ok(())
}

/// Tier 2: min-heap MSHR file vs the linear-scan reference. Completion
/// times are integer offsets of the simulated clock, so retirement-
/// boundary ties (`done_at == now`) occur by construction.
fn mshr_model(trace: &[AccessEvent]) -> Result<(), Violation> {
    const O: &str = "mshr_model";
    let mut heap = MshrFile::new(4);
    let mut model = ReferenceMshr::new(4);
    let mut now = 0.0f64;
    for (i, ev) in trace.iter().enumerate() {
        let line = LineAddr::new(ev.line().raw() % 11);
        let done = now + (ev.line().raw() % 7) as f64;
        match i % 5 {
            0..=2 => {
                ensure_eq!(
                    O,
                    heap.allocate(line, done),
                    model.allocate(line, done),
                    "op {i}: allocate({}, {done}) at now {now}",
                    line.raw()
                );
            }
            3 => {
                ensure_eq!(
                    O,
                    heap.completion_of(line),
                    model.completion_of(line),
                    "op {i}: completion_of({})",
                    line.raw()
                );
            }
            _ => {
                heap.retire_until(now);
                model.retire_until(now);
                ensure_eq!(
                    O,
                    heap.earliest_completion(),
                    model.earliest_completion(),
                    "op {i}: earliest completion after retire_until({now})"
                );
            }
        }
        ensure_eq!(
            O,
            heap.in_flight(),
            model.in_flight(),
            "op {i}: in-flight count at now {now}"
        );
        if i % 3 == 0 {
            now += 1.0;
        }
    }
    ensure_eq!(O, heap.counters(), model.counters(), "final counters");
    Ok(())
}

/// Tier 2: production prefetch buffer vs the `Vec` reference, compared
/// on every outcome, occupancy, and the lifetime statistics.
fn buffer_model(trace: &[AccessEvent]) -> Result<(), Violation> {
    const O: &str = "buffer_model";
    let mut prod = PrefetchBuffer::new(4);
    let mut model = ReferenceBuffer::new(4);
    for (i, ev) in trace.iter().enumerate() {
        let line = LineAddr::new(ev.line().raw() % 9);
        let stream = Some((i % 3) as u32);
        match i % 4 {
            0 | 1 => {
                ensure_eq!(
                    O,
                    prod.insert(line, i as f64, stream),
                    model.insert(line, i as f64, stream),
                    "op {i}: insert({})",
                    line.raw()
                );
            }
            2 => {
                let a = prod
                    .take(line)
                    .map(|e| (e.line, e.ready_at.to_bits(), e.stream));
                let b = model
                    .take(line)
                    .map(|e| (e.line, e.ready_at.to_bits(), e.stream));
                ensure_eq!(O, a, b, "op {i}: take({})", line.raw());
            }
            _ => {
                ensure_eq!(
                    O,
                    prod.contains(line),
                    model.contains(line),
                    "op {i}: contains({})",
                    line.raw()
                );
                if i % 8 == 3 {
                    let s = (i % 3) as u32;
                    ensure_eq!(
                        O,
                        prod.discard_stream(s),
                        model.discard_stream(s),
                        "op {i}: discard_stream({s})"
                    );
                }
            }
        }
        ensure_eq!(O, prod.len(), model.len(), "op {i}: occupancy");
    }
    let (p, m) = (prod.stats(), model.stats());
    ensure_eq!(
        O,
        (
            p.inserted,
            p.hits,
            p.evicted_unused,
            p.discarded_unused,
            p.duplicate_inserts
        ),
        (
            m.inserted,
            m.hits,
            m.evicted_unused,
            m.discarded_unused,
            m.duplicate_inserts
        ),
        "final lifetime statistics"
    );
    Ok(())
}

/// Tier 2: flat set-associative cache vs the per-set-`Vec` reference,
/// across all three replacement policies.
fn cache_model(trace: &[AccessEvent]) -> Result<(), Violation> {
    const O: &str = "cache_model";
    for replacement in [Replacement::Lru, Replacement::Fifo, Replacement::Random] {
        let config = CacheConfig {
            size_bytes: 4 * 2 * LINE_BYTES,
            ways: 2,
            replacement,
        };
        let pool = (config.sets() * config.ways * 2) as u64;
        let mut flat = SetAssocCache::new(config);
        let mut model = ReferenceCache::new(config);
        for (i, ev) in trace.iter().enumerate() {
            let line = LineAddr::new(ev.line().raw() % pool);
            match (ev.line().raw() ^ i as u64) % 10 {
                0..=3 => {
                    ensure_eq!(
                        O,
                        flat.access(line),
                        model.access(line),
                        "{replacement:?} op {i}: access({})",
                        line.raw()
                    );
                }
                4..=7 => {
                    ensure_eq!(
                        O,
                        flat.insert(line),
                        model.insert(line),
                        "{replacement:?} op {i}: insert({})",
                        line.raw()
                    );
                }
                8 => {
                    ensure_eq!(
                        O,
                        flat.invalidate(line),
                        model.invalidate(line),
                        "{replacement:?} op {i}: invalidate({})",
                        line.raw()
                    );
                }
                _ => {
                    ensure_eq!(
                        O,
                        flat.contains(line),
                        model.contains(line),
                        "{replacement:?} op {i}: contains({})",
                        line.raw()
                    );
                }
            }
            ensure_eq!(
                O,
                flat.len(),
                model.len(),
                "{replacement:?} op {i}: occupancy"
            );
        }
        ensure_eq!(
            O,
            flat.hit_miss(),
            model.hit_miss(),
            "{replacement:?}: final hit/miss counters"
        );
    }
    Ok(())
}

/// Compares one trigger's production sink against a reference step:
/// same predicted lines, same replacements, all-immediate requests, and
/// zero off-chip metadata traffic (both rivals are on-chip designs).
fn check_rival_step(
    oracle: &'static str,
    i: usize,
    line: LineAddr,
    sink: &CollectSink,
    predicted: &[LineAddr],
    replaced: &[LineAddr],
) -> Result<(), Violation> {
    let issued: Vec<LineAddr> = sink.requests.iter().map(|r| r.line).collect();
    ensure_eq!(
        oracle,
        issued,
        predicted,
        "op {i}: predictions for {}",
        line.raw()
    );
    ensure_eq!(
        oracle,
        sink.replaced,
        replaced,
        "op {i}: replacements for {}",
        line.raw()
    );
    if let Some(r) = sink
        .requests
        .iter()
        .find(|r| r.delay_trips != 0 || r.stream.is_some())
    {
        return Err(violation(
            oracle,
            format!("op {i}: on-chip rival issued a delayed or stream-tagged request: {r:?}"),
        ));
    }
    ensure_eq!(
        oracle,
        (sink.meta_read_blocks, sink.meta_write_blocks),
        (0u64, 0u64),
        "op {i}: off-chip metadata traffic from an on-chip rival"
    );
    Ok(())
}

/// Collects a prefetcher's counters into an ordered name/value list.
fn collect_counters(p: &dyn Prefetcher) -> Vec<(String, u64)> {
    let mut counters = Vec::new();
    let mut sink = |name: &str, value: u64| counters.push((name.to_string(), value));
    p.emit_counters(&mut sink);
    counters
}

/// Tier 2: the slab-backed Pangloss vs the positional-`Vec` reference.
///
/// A tiny table (2 × 2, fan-out 2) over lines folded into a 13-line pool
/// keeps every set full and frequency ties constant, so edge and entry
/// victim selection are exercised on every generator family at smoke
/// scale. Every trigger compares predictions, replacements, and
/// `knows_line`; the run ends on a full counter comparison.
fn pangloss_model(trace: &[AccessEvent]) -> Result<(), Violation> {
    const O: &str = "pangloss_model";
    let mut prod = Pangloss::new(PanglossConfig {
        sets: 2,
        ways: 2,
        fanout: 2,
        degree: 2,
    });
    let mut model = ReferencePangloss::new(2, 2, 2, 2);
    let mut sink = CollectSink::new();
    for (i, ev) in trace.iter().enumerate() {
        let line = LineAddr::new(ev.line().raw() % 13);
        let event = if i % 5 == 3 {
            TriggerEvent::prefetch_hit(ev.pc, line)
        } else {
            TriggerEvent::miss(ev.pc, line)
        };
        sink.clear();
        prod.on_trigger(&event, &mut sink);
        let out = model.step(&event);
        check_rival_step(O, i, line, &sink, &out.predicted, &out.replaced)?;
        ensure_eq!(
            O,
            prod.knows_line(line),
            model.knows_line(line),
            "op {i}: knows_line({})",
            line.raw()
        );
        if i % 7 == 0 {
            let probe = LineAddr::new((ev.line().raw() + i as u64) % 13);
            ensure_eq!(
                O,
                prod.knows_line(probe),
                model.knows_line(probe),
                "op {i}: probe knows_line({})",
                probe.raw()
            );
        }
    }
    let expected: Vec<(String, u64)> = model
        .counters()
        .into_iter()
        .map(|(n, v)| (n.to_string(), v))
        .collect();
    ensure_eq!(O, collect_counters(&prod), expected, "final counters");
    Ok(())
}

/// Tier 2: the slab-backed Triangel vs the positional-`Vec` reference.
///
/// Lines fold into an 11-line pool and PCs into 3, with sample-everything
/// and a usefulness threshold of 1, so sampler reuse, the train gate, the
/// timeliness deepening, and history eviction all trip within a smoke
/// trace. Every fifth trigger is a prefetch hit, exercising the
/// miss-only sampler gate.
fn triangel_model(trace: &[AccessEvent]) -> Result<(), Violation> {
    const O: &str = "triangel_model";
    let mut prod = Triangel::new(TriangelConfig {
        hist_sets: 2,
        hist_ways: 2,
        sampler_sets: 2,
        sampler_ways: 2,
        max_pcs: 4,
        train_threshold: 1,
        deep_threshold: 2,
        timely_distance: 4,
        degree: 2,
        sample_shift: 0,
    });
    let mut model = ReferenceTriangel::new(RefTriangelParams {
        hist_sets: 2,
        hist_ways: 2,
        sampler_sets: 2,
        sampler_ways: 2,
        max_pcs: 4,
        train_threshold: 1,
        deep_threshold: 2,
        timely_distance: 4,
        degree: 2,
        sample_shift: 0,
    });
    let mut sink = CollectSink::new();
    for (i, ev) in trace.iter().enumerate() {
        let line = LineAddr::new(ev.line().raw() % 11);
        let pc = domino_trace::addr::Pc::new(ev.pc.raw() % 3);
        let event = if i % 5 == 3 {
            TriggerEvent::prefetch_hit(pc, line)
        } else {
            TriggerEvent::miss(pc, line)
        };
        sink.clear();
        prod.on_trigger(&event, &mut sink);
        let out = model.step(&event);
        check_rival_step(O, i, line, &sink, &out.predicted, &out.replaced)?;
        ensure_eq!(
            O,
            prod.knows_line(line),
            model.knows_line(line),
            "op {i}: knows_line({})",
            line.raw()
        );
        if i % 7 == 0 {
            let probe = LineAddr::new((ev.line().raw() + i as u64) % 11);
            ensure_eq!(
                O,
                prod.knows_line(probe),
                model.knows_line(probe),
                "op {i}: probe knows_line({})",
                probe.raw()
            );
        }
    }
    let expected: Vec<(String, u64)> = model
        .counters()
        .into_iter()
        .map(|(n, v)| (n.to_string(), v))
        .collect();
    ensure_eq!(O, collect_counters(&prod), expected, "final counters");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Generator;

    #[test]
    fn clean_build_passes_every_oracle() {
        // A cheap slice of the full campaign: if the production tree is
        // unmutated, no oracle may fire.
        for g in [Generator::Stride, Generator::PointerChase] {
            let trace = g.generate(7, 600);
            check_reference_models(&trace).expect("reference models agree");
            for sys in [System::Baseline, System::NextLine, System::Domino] {
                check_system_trace(sys, &trace).expect("engines agree");
            }
        }
    }

    #[test]
    fn empty_trace_is_clean() {
        check_trace(System::Domino, &[]).expect("empty trace trips nothing");
    }

    #[test]
    fn violation_displays_oracle_name() {
        let v = violation("cross_engine", "covered mismatch".into());
        assert_eq!(v.to_string(), "[cross_engine] covered mismatch");
        let v = Violation {
            batch: Some(7),
            ..v
        };
        assert_eq!(v.to_string(), "[cross_engine] covered mismatch (batch 7)");
    }

    #[test]
    fn batched_parity_holds_on_adversarial_trace() {
        // Direct exercise of the public parity entry point (the replay
        // path) at a batch that does not divide the trace length.
        let trace = Generator::PointerChase.generate(3, 501);
        for sys in [System::Stms, System::Domino] {
            check_batched_parity(sys, &trace, 7).expect("scalar and batched agree");
        }
    }
}
