/root/repo/target/debug/deps/micro-69a29be24a0cce8c.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-69a29be24a0cce8c.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
