/root/repo/target/debug/deps/explore-e49070abebee7559.d: crates/sim/src/bin/explore.rs Cargo.toml

/root/repo/target/debug/deps/libexplore-e49070abebee7559.rmeta: crates/sim/src/bin/explore.rs Cargo.toml

crates/sim/src/bin/explore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
