//! Trace serialization: save and load access traces as plain text, so the
//! simulator can also run traces collected elsewhere (e.g. converted from
//! ChampSim or gem5 logs) instead of the synthetic models.
//!
//! Format: one event per line, `#`-comments allowed,
//!
//! ```text
//! # pc addr kind gap dependent
//! 0x400000 0x10000040 R 30 1
//! 0x400004 0x10000080 W 12 0
//! ```
//!
//! `pc` and `addr` are hex (with or without `0x`), `kind` is `R`/`W`,
//! `gap` is the decimal instruction gap, `dependent` is `0`/`1`.

use std::io::{BufRead, Write};

use crate::addr::{Addr, Pc};
use crate::event::{AccessEvent, AccessKind};

/// Error from parsing a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseTraceError {}

fn parse_hex(s: &str) -> Option<u64> {
    let s = s
        .strip_prefix("0x")
        .or_else(|| s.strip_prefix("0X"))
        .unwrap_or(s);
    u64::from_str_radix(s, 16).ok()
}

/// Parses one event line (exposed for streaming parsers).
fn parse_line(line: &str) -> Result<Option<AccessEvent>, String> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let mut parts = trimmed.split_whitespace();
    let pc = parts
        .next()
        .and_then(parse_hex)
        .ok_or("missing or invalid pc")?;
    let addr = parts
        .next()
        .and_then(parse_hex)
        .ok_or("missing or invalid addr")?;
    let kind = match parts.next() {
        Some("R") | Some("r") => AccessKind::Read,
        Some("W") | Some("w") => AccessKind::Write,
        other => return Err(format!("invalid kind {other:?}")),
    };
    let gap: u32 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or("missing or invalid gap")?;
    let dependent = match parts.next() {
        Some("0") => false,
        Some("1") => true,
        other => return Err(format!("invalid dependent flag {other:?}")),
    };
    if parts.next().is_some() {
        return Err("trailing fields".into());
    }
    Ok(Some(AccessEvent {
        pc: Pc::new(pc),
        addr: Addr::new(addr),
        kind,
        gap_insts: gap,
        dependent,
    }))
}

/// Reads a trace from any [`BufRead`] source.
///
/// # Errors
///
/// Returns a [`ParseTraceError`] naming the first malformed line; I/O
/// errors are reported at line 0.
pub fn read_trace<R: BufRead>(reader: R) -> Result<Vec<AccessEvent>, ParseTraceError> {
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| ParseTraceError {
            line: 0,
            message: format!("I/O error: {e}"),
        })?;
        match parse_line(&line) {
            Ok(Some(ev)) => out.push(ev),
            Ok(None) => {}
            Err(message) => {
                return Err(ParseTraceError {
                    line: i + 1,
                    message,
                })
            }
        }
    }
    Ok(out)
}

/// Writes a trace to any [`Write`] sink in the format [`read_trace`]
/// accepts. A mutable reference can be passed for `writer`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<'a, W, I>(mut writer: W, events: I) -> std::io::Result<()>
where
    W: Write,
    I: IntoIterator<Item = &'a AccessEvent>,
{
    writeln!(writer, "# pc addr kind gap dependent")?;
    for ev in events {
        writeln!(
            writer,
            "{:#x} {:#x} {} {} {}",
            ev.pc.raw(),
            ev.addr.raw(),
            if ev.kind.is_read() { "R" } else { "W" },
            ev.gap_insts,
            u8::from(ev.dependent),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::catalog;
    use std::io::BufReader;

    #[test]
    fn round_trip_preserves_events() {
        let original: Vec<AccessEvent> = catalog::oltp().generator(5).take(500).collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, &original).unwrap();
        let parsed = read_trace(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# header\n\n0x4 0x40 R 10 0\n  # another\n0x8 0x80 W 5 1\n";
        let parsed = read_trace(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].pc, Pc::new(4));
        assert!(parsed[1].dependent);
        assert_eq!(parsed[1].kind, AccessKind::Write);
    }

    #[test]
    fn hex_prefix_is_optional() {
        let text = "400000 10000040 R 1 0\n";
        let parsed = read_trace(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(parsed[0].pc, Pc::new(0x40_0000));
    }

    #[test]
    fn malformed_lines_are_located() {
        let text = "0x4 0x40 R 10 0\n0x4 0x40 Q 10 0\n";
        let err = read_trace(BufReader::new(text.as_bytes())).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("kind"));
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn trailing_fields_rejected() {
        let text = "0x4 0x40 R 10 0 junk\n";
        let err = read_trace(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(err.message.contains("trailing"));
    }
}
