/root/repo/target/debug/deps/domino-4b12c66a43b54541.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/domino.rs crates/core/src/eit.rs crates/core/src/naive.rs

/root/repo/target/debug/deps/libdomino-4b12c66a43b54541.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/domino.rs crates/core/src/eit.rs crates/core/src/naive.rs

/root/repo/target/debug/deps/libdomino-4b12c66a43b54541.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/domino.rs crates/core/src/eit.rs crates/core/src/naive.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/domino.rs:
crates/core/src/eit.rs:
crates/core/src/naive.rs:
