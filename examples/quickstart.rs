//! Quickstart: run Domino against STMS on one workload and print the
//! headline metrics of the paper — coverage, overpredictions, stream
//! length, stream-start timeliness, and speedup.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use domino_repro::sim::{run_coverage, run_timing, System, SystemConfig};
use domino_repro::trace::workload::catalog;

fn main() {
    let system = SystemConfig::paper();
    let spec = catalog::oltp();
    let events = 300_000;
    println!("workload: {} ({events} accesses)\n", spec.name);

    let trace: Vec<_> = spec.generator(42).take(events).collect();

    let mut baseline = System::Baseline.build(1);
    let base_timing = run_timing(&system, &trace, baseline.as_mut());

    println!(
        "{:<8} {:>9} {:>14} {:>12} {:>12} {:>9}",
        "system", "coverage", "overpredicts", "stream len", "start trips", "speedup"
    );
    for sys in [System::Stms, System::Domino] {
        let mut p = sys.build(4);
        let cov = run_coverage(&system, &trace, p.as_mut());
        let mut p = sys.build(4);
        let timing = run_timing(&system, &trace, p.as_mut());
        println!(
            "{:<8} {:>8.1}% {:>13.1}% {:>12.2} {:>12.2} {:>8.2}x",
            sys.label(),
            cov.coverage() * 100.0,
            cov.overprediction_rate() * 100.0,
            cov.mean_stream_length(),
            cov.mean_first_prefetch_trips(),
            timing.speedup_over(&base_timing),
        );
    }
    println!(
        "\nDomino opens streams after ~1 metadata round trip where STMS needs 2,\n\
         and its two-address confirmation picks the right stream at junctions —\n\
         the paper's two headline mechanisms (Figures 6 and 3)."
    );
}
