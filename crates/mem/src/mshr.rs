//! Miss-status holding registers.
//!
//! MSHRs bound how many distinct line misses can be outstanding at once —
//! the hardware ceiling on memory-level parallelism. Table I gives the
//! paper's configuration: 32 MSHRs at the L1-D, 64 at the L2. The interval
//! timing model uses an [`MshrFile`] to cap how many overlapping misses a
//! ROB window can issue.

use domino_telemetry::CounterSink;
use domino_trace::addr::LineAddr;

/// One in-flight miss.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    line: LineAddr,
    done_at: f64,
    merged: u32,
}

/// A file of miss-status holding registers.
///
/// Registers live in a fixed slab with a free-list, and completion
/// times sit in a hand-rolled binary min-heap over slab slots — so
/// [`MshrFile::earliest_completion`] is O(1) and
/// [`MshrFile::retire_until`] pops only the registers that actually
/// complete, instead of re-scanning the whole file on every full-MSHR
/// stall in the timing model. All storage is allocated once at
/// construction.
///
/// ```
/// use domino_mem::mshr::MshrFile;
/// use domino_trace::addr::LineAddr;
///
/// let mut mshrs = MshrFile::new(2);
/// assert!(mshrs.allocate(LineAddr::new(1), 100.0).is_some());
/// assert!(mshrs.allocate(LineAddr::new(2), 120.0).is_some());
/// assert!(mshrs.allocate(LineAddr::new(3), 130.0).is_none(), "full");
/// mshrs.retire_until(125.0);
/// assert!(mshrs.allocate(LineAddr::new(3), 130.0).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    /// Register slab, `capacity` slots; `live` marks occupancy.
    slots: Vec<Entry>,
    live: Vec<bool>,
    /// Stack of unoccupied slot indices.
    free: Vec<u32>,
    /// Min-heap of `(done_at, slot)` over the live registers.
    heap: Vec<(f64, u32)>,
    allocations: u64,
    merges: u64,
    stalls: u64,
}

impl MshrFile {
    /// Creates a file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file needs capacity");
        MshrFile {
            capacity,
            slots: vec![
                Entry {
                    line: LineAddr::default(),
                    done_at: 0.0,
                    merged: 0,
                };
                capacity
            ],
            live: vec![false; capacity],
            free: (0..capacity as u32).rev().collect(),
            heap: Vec::with_capacity(capacity),
            allocations: 0,
            merges: 0,
            stalls: 0,
        }
    }

    fn heap_push(&mut self, done_at: f64, slot: u32) {
        self.heap.push((done_at, slot));
        let mut i = self.heap.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[parent].0 <= self.heap[i].0 {
                break;
            }
            self.heap.swap(parent, i);
            i = parent;
        }
    }

    fn heap_pop(&mut self) -> Option<(f64, u32)> {
        let n = self.heap.len();
        if n == 0 {
            return None;
        }
        self.heap.swap(0, n - 1);
        let top = self.heap.pop();
        let mut i = 0;
        let n = self.heap.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut min = i;
            if l < n && self.heap[l].0 < self.heap[min].0 {
                min = l;
            }
            if r < n && self.heap[r].0 < self.heap[min].0 {
                min = r;
            }
            if min == i {
                break;
            }
            self.heap.swap(i, min);
            i = min;
        }
        top
    }

    /// Merges a secondary miss into a live register for `line`, if any.
    fn merge(&mut self, line: LineAddr) -> Option<f64> {
        for i in 0..self.capacity {
            if self.live[i] && self.slots[i].line == line {
                self.slots[i].merged += 1;
                self.merges += 1;
                return Some(self.slots[i].done_at);
            }
        }
        None
    }

    /// Attempts to track a miss on `line` completing at `done_at`.
    ///
    /// Returns the completion time on success. A miss on an
    /// already-tracked line merges (secondary miss) and returns the
    /// existing completion time. Returns `None` — and counts a structural
    /// stall — when all registers are busy.
    pub fn allocate(&mut self, line: LineAddr, done_at: f64) -> Option<f64> {
        if let Some(t) = self.merge(line) {
            return Some(t);
        }
        let Some(slot) = self.free.pop() else {
            self.stalls += 1;
            return None;
        };
        self.slots[slot as usize] = Entry {
            line,
            done_at,
            merged: 0,
        };
        self.live[slot as usize] = true;
        self.heap_push(done_at, slot);
        self.allocations += 1;
        Some(done_at)
    }

    /// If `line` is already in flight, merges (secondary miss) and
    /// returns the existing completion time without a new transfer.
    pub fn completion_of(&mut self, line: LineAddr) -> Option<f64> {
        self.merge(line)
    }

    /// Restores the freshly-constructed state (all registers free, zeroed
    /// counters) without releasing the slab, free-list, or heap storage,
    /// so sweep cells can reuse the file without reallocating.
    pub fn reset(&mut self) {
        self.live.fill(false);
        self.free.clear();
        self.free.extend((0..self.capacity as u32).rev());
        self.heap.clear();
        self.allocations = 0;
        self.merges = 0;
        self.stalls = 0;
    }

    /// Releases all registers whose miss completed at or before `now`.
    pub fn retire_until(&mut self, now: f64) {
        // Injected bug for the checker self-test: treat the retirement
        // boundary as exclusive, leaking registers whose miss completes
        // exactly at `now`.
        #[cfg(domino_mutate)]
        let exclusive = crate::mutate_active("mshr_retire_boundary");
        #[cfg(not(domino_mutate))]
        let exclusive = false;
        while let Some(&(t, slot)) = self.heap.first() {
            if t > now || (exclusive && t >= now) {
                break;
            }
            self.heap_pop();
            self.live[slot as usize] = false;
            self.free.push(slot);
        }
    }

    /// Earliest completion time among outstanding misses, if any — the
    /// time a stalled allocator must wait for.
    pub fn earliest_completion(&self) -> Option<f64> {
        self.heap.first().map(|&(t, _)| t)
    }

    /// Outstanding miss count.
    pub fn in_flight(&self) -> usize {
        self.capacity - self.free.len()
    }

    /// `(allocations, merges, structural_stalls)` counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.allocations, self.merges, self.stalls)
    }

    /// Register count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Reports MSHR counters under `prefix` (e.g. `l1_mshr.allocations`).
    pub fn emit_counters(&self, prefix: &str, sink: &mut dyn CounterSink) {
        sink.counter(&format!("{prefix}.allocations"), self.allocations);
        sink.counter(&format!("{prefix}.merges"), self.merges);
        sink.counter(&format!("{prefix}.stalls"), self.stalls);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn secondary_miss_merges() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.allocate(line(1), 100.0), Some(100.0));
        assert_eq!(m.allocate(line(1), 999.0), Some(100.0), "merged");
        assert_eq!(m.in_flight(), 1);
        let (alloc, merges, _) = m.counters();
        assert_eq!((alloc, merges), (1, 1));
    }

    #[test]
    fn full_file_stalls() {
        let mut m = MshrFile::new(1);
        m.allocate(line(1), 50.0);
        assert_eq!(m.allocate(line(2), 60.0), None);
        assert_eq!(m.counters().2, 1);
        assert_eq!(m.earliest_completion(), Some(50.0));
    }

    #[test]
    fn retire_frees_registers() {
        let mut m = MshrFile::new(2);
        m.allocate(line(1), 50.0);
        m.allocate(line(2), 80.0);
        m.retire_until(60.0);
        assert_eq!(m.in_flight(), 1);
        assert!(m.allocate(line(3), 90.0).is_some());
    }

    #[test]
    fn earliest_completion_empty() {
        let m = MshrFile::new(2);
        assert_eq!(m.earliest_completion(), None);
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_panics() {
        MshrFile::new(0);
    }
}
