#!/usr/bin/env python3
"""Bench regression guard: compare a fresh figure-sweep benchmark against
the committed baseline.

Usage: bench_guard.py BASELINE_JSON FRESH_JSON

Both files must be `domino-bench-sweep/4` documents (written by
`cargo run --release --example figures`). The guard refuses to compare
runs from different configurations (events per workload or batch size
mismatch) — a cross-config ratio is meaningless, not merely noisy. It
fails (exit 1) if any figure's replay throughput (`events_per_sec`) in
the fresh run drops more than the threshold below the committed
baseline, and applies the same rule to each point of the jobs-scaling
curve that the fresh host can actually drive (fresh `host_cores` >=
the point's job count; oversubscribed points are reported but skipped),
to each streaming-throughput source, and to each system of the
modern-rivals roster section (per-system replay throughput of STMS,
Digram, Domino, Pangloss, Triangel on one OLTP timing cell). The streaming section is also
held to two absolute invariants measured on the fresh run itself: the
raw file-backed stream must reach at least STREAM_RATIO of the
cached-slice throughput (the out-of-core acceptance bound — skipped on
single-core hosts, where the read-ahead thread cannot overlap the
simulation and the ratio would measure the scheduler), and every
source's peak resident trace bytes must stay within its declared
budget. Failure messages carry both throughput numbers so a regression
is diagnosable from the log alone. Skip the guard entirely with
DOMINO_SKIP_BENCH_GUARD=1 in `tools/check.sh` (e.g. on loaded CI
machines or foreign hardware where the committed numbers do not apply).
"""

import json
import sys

# Allowed slowdown before the guard trips. Generous enough for host noise,
# tight enough to catch a real regression in the event loop.
THRESHOLD = 0.25

# Minimum file-streamed/cached throughput ratio on the fresh run: the
# double-buffered read-ahead must keep out-of-core replay within 10% of
# the in-memory slice.
STREAM_RATIO = 0.90

SCHEMA = "domino-bench-sweep/4"


def load(path):
    with open(path) as f:
        data = json.load(f)
    schema = data.get("schema")
    if schema != SCHEMA:
        sys.exit(f"{path}: unexpected schema {schema!r} (want {SCHEMA!r})")
    return data


def figure_map(data):
    return {f["name"]: float(f["events_per_sec"]) for f in data["figures"]}


def scaling_map(data):
    return {
        (p["figure"], int(p["jobs"])): float(p["events_per_sec"])
        for p in data.get("scaling", [])
    }


def streaming_map(data):
    return {s["source"]: s for s in data.get("streaming", [])}


def rivals_map(data):
    return {
        r["system"]: float(r["events_per_sec"]) for r in data.get("rivals", [])
    }


def check_streaming_invariants(fresh):
    """Absolute bounds on the fresh run's streaming section, independent
    of the committed baseline: streamed/cached ratio and memory budget."""
    streaming = streaming_map(fresh)
    failed = []
    for source, s in sorted(streaming.items()):
        peak, budget = int(s["peak_resident_bytes"]), int(s["budget_bytes"])
        if peak > budget:
            failed.append(
                f"streaming {source}: peak resident {peak} bytes exceeds the "
                f"declared budget {budget}"
            )
    ratio = fresh.get("stream_file_vs_cached_ratio")
    if ratio is not None:
        # Measured by the sweep itself from temporally adjacent passes,
        # so host frequency drift between runs cancels out. The floor
        # presumes the read-ahead thread can actually run beside the
        # consumer; on a single-core host decode time-slices with the
        # simulation and the ratio measures the scheduler (same policy
        # as oversubscribed scaling points).
        ratio = float(ratio)
        if int(fresh.get("host_cores", 1)) < 2:
            print(
                f"    streamed/cached ratio {ratio:.2f}x  "
                f"skipped (single-core host cannot overlap decode)"
            )
        else:
            verdict = "ok" if ratio >= STREAM_RATIO else "REGRESSED"
            print(
                f"    streamed/cached ratio {ratio:.2f}x "
                f"(floor {STREAM_RATIO:.2f}x)  {verdict}"
            )
            if ratio < STREAM_RATIO:
                failed.append(
                    f"streaming file: out-of-core replay reached only "
                    f"{ratio:.2f}x of the cached-slice throughput "
                    f"(floor {STREAM_RATIO:.2f}x)"
                )
    return failed


def check_same_config(baseline, fresh):
    """Refuse to compare runs whose throughput numbers are incommensurable."""
    for knob in ("events_per_workload", "batch"):
        b, f = baseline.get(knob), fresh.get(knob)
        if b != f:
            sys.exit(
                f"bench guard: configuration mismatch on {knob!r}: baseline ran "
                f"with {b}, fresh with {f} — throughput ratios across different "
                f"configurations are meaningless; regenerate the baseline or "
                f"rerun the sweep at the committed settings"
            )


def compare(label, pairs):
    """pairs: [(name, base_eps, fresh_eps_or_None, skip_reason_or_None)].

    Prints a table; returns failure strings naming both numbers."""
    failed = []
    print(
        f"    {label:<16} {'baseline ev/s':>14} {'fresh ev/s':>14} "
        f"{'ratio':>7}  verdict"
    )
    for name, base_eps, fresh_eps, skip in pairs:
        if skip is not None:
            print(f"    {name:<16} {base_eps:>14.0f} {'-':>14} {'-':>7}  {skip}")
            continue
        if fresh_eps is None:
            print(f"    {name:<16} {base_eps:>14.0f} {'-':>14} {'-':>7}  MISSING")
            failed.append(
                f"{name}: present in baseline ({base_eps:.0f} ev/s) but missing "
                f"from the fresh run"
            )
            continue
        ratio = fresh_eps / base_eps if base_eps > 0 else float("inf")
        ok = ratio >= 1.0 - THRESHOLD
        verdict = "ok" if ok else "REGRESSED"
        print(
            f"    {name:<16} {base_eps:>14.0f} {fresh_eps:>14.0f} "
            f"{ratio:>6.2f}x  {verdict}"
        )
        if not ok:
            failed.append(
                f"{name}: fresh {fresh_eps:.0f} ev/s is {ratio:.2f}x of "
                f"baseline {base_eps:.0f} ev/s"
            )
    return failed


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} BASELINE_JSON FRESH_JSON")
    baseline = load(sys.argv[1])
    fresh = load(sys.argv[2])
    check_same_config(baseline, fresh)

    base_figs = figure_map(baseline)
    fresh_figs = figure_map(fresh)
    pairs = [
        (name, eps, fresh_figs.get(name), None)
        for name, eps in sorted(base_figs.items())
    ]
    failed = compare("figure", pairs)

    base_scaling = scaling_map(baseline)
    if base_scaling:
        fresh_scaling = scaling_map(fresh)
        host_cores = int(fresh.get("host_cores", 1))
        pairs = []
        for (figure, jobs), eps in sorted(base_scaling.items()):
            name = f"{figure}@jobs{jobs}"
            if jobs > host_cores:
                # An oversubscribed point measures the scheduler, not the
                # event loop; the committed number came from a host that
                # could drive it.
                pairs.append(
                    (name, eps, None, f"skipped ({host_cores}-core host)")
                )
            else:
                pairs.append((name, eps, fresh_scaling.get((figure, jobs)), None))
        print()
        failed += compare("scaling point", pairs)

    base_streaming = streaming_map(baseline)
    if base_streaming:
        fresh_streaming = streaming_map(fresh)
        pairs = [
            (
                f"stream:{source}",
                float(s["events_per_sec"]),
                (
                    float(fresh_streaming[source]["events_per_sec"])
                    if source in fresh_streaming
                    else None
                ),
                None,
            )
            for source, s in sorted(base_streaming.items())
        ]
        print()
        failed += compare("streaming", pairs)
    failed += check_streaming_invariants(fresh)

    base_rivals = rivals_map(baseline)
    if base_rivals:
        fresh_rivals = rivals_map(fresh)
        pairs = [
            (f"rival:{system}", eps, fresh_rivals.get(system), None)
            for system, eps in sorted(base_rivals.items())
        ]
        print()
        failed += compare("rival system", pairs)

    if failed:
        print()
        for f in failed:
            print(f"    FAIL {f}")
        sys.exit(
            f"bench guard: {len(failed)} measurement(s) more than "
            f"{THRESHOLD:.0%} below the committed BENCH_sweep.json"
        )
    print(f"    all measurements within {THRESHOLD:.0%} of the committed baseline")


if __name__ == "__main__":
    main()
