//! Parallel sweep executor for figure/table runs.
//!
//! Every paper figure is a sweep over independent (workload × prefetcher
//! × parameter) cells, each of which replays a trace through its own
//! private engine state — embarrassingly parallel work that the figure
//! runners used to execute strictly sequentially. This module fans such
//! runs across a dependency-free scoped-thread pool
//! (`std::thread::scope`; the build environment cannot fetch crates, so
//! no rayon) while keeping results **deterministic**: they are returned
//! in submission order regardless of completion order or job count.
//!
//! The job count resolves, in priority order, from
//! [`set_jobs_override`] (used by tests and the `figures` example), the
//! `DOMINO_JOBS` environment variable, and finally
//! [`std::thread::available_parallelism`].
//!
//! ```
//! use domino_sim::exec;
//! let squares = exec::sweep((0..8).map(|i| move || i * i));
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Job-count override set programmatically; 0 means "not set".
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the sweep job count for this process, taking precedence
/// over `DOMINO_JOBS`. Pass `None` to restore env/host resolution.
/// Used by the determinism tests and the `--jobs` flag of the figures
/// example; safer than mutating the environment from threaded code.
pub fn set_jobs_override(jobs: Option<usize>) {
    JOBS_OVERRIDE.store(jobs.unwrap_or(0), Ordering::SeqCst);
}

/// Resolves the number of worker threads a sweep will use: the
/// [`set_jobs_override`] value if set, else `DOMINO_JOBS` if set and
/// positive, else the host's available parallelism.
pub fn jobs() -> usize {
    let forced = JOBS_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(val) = std::env::var("DOMINO_JOBS") {
        if let Ok(n) = val.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs every closure of `tasks` and returns their results **in
/// submission order**, fanning the work across [`jobs`] scoped threads.
///
/// Workers claim tasks through a shared atomic cursor (dynamic
/// scheduling: long cells don't straggle behind a static partition) and
/// each result is written to the slot of its submission index, so the
/// output is byte-for-byte identical at any job count.
pub fn sweep<T, F, I>(tasks: I) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
    I: IntoIterator<Item = F>,
{
    sweep_with(jobs(), tasks)
}

/// [`sweep`] with an explicit job count (mainly for tests).
pub fn sweep_with<T, F, I>(jobs: usize, tasks: I) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
    I: IntoIterator<Item = F>,
{
    // Each task sits in a Mutex<Option<..>> cell so the claiming worker
    // can move it out; the atomic cursor hands every index to exactly
    // one worker, so the locks are uncontended.
    let cells: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let n = cells.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = jobs.max(1).min(n);
    if workers == 1 {
        return cells
            .into_iter()
            .map(|c| (c.into_inner().expect("unpoisoned").expect("present"))())
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let slot_cells: Vec<Mutex<&mut Option<T>>> = slots.iter_mut().map(Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let task = cells[i]
                    .lock()
                    .expect("unpoisoned")
                    .take()
                    .expect("claimed exactly once");
                let result = task();
                **slot_cells[i].lock().expect("unpoisoned") = Some(result);
            });
        }
    });
    drop(slot_cells);
    slots
        .into_iter()
        .map(|s| s.expect("every task ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_submission_order() {
        let out = sweep_with(4, (0..64).map(|i| move || i * 3));
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_matches_parallel() {
        let serial = sweep_with(1, (0..37).map(|i| move || i * i + 1));
        let parallel = sweep_with(8, (0..37).map(|i| move || i * i + 1));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_sweep_is_empty() {
        let out: Vec<u64> = sweep_with(4, Vec::<fn() -> u64>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_tasks() {
        let out = sweep_with(64, (0..3).map(|i| move || i));
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn override_takes_precedence() {
        set_jobs_override(Some(3));
        assert_eq!(jobs(), 3);
        set_jobs_override(None);
        assert!(jobs() >= 1);
    }
}
