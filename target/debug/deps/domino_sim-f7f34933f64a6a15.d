/root/repo/target/debug/deps/domino_sim-f7f34933f64a6a15.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/exec.rs crates/sim/src/figures.rs crates/sim/src/multicore.rs crates/sim/src/report.rs crates/sim/src/roster.rs crates/sim/src/stats.rs crates/sim/src/svg.rs crates/sim/src/timing.rs crates/sim/src/trace_cache.rs

/root/repo/target/debug/deps/libdomino_sim-f7f34933f64a6a15.rlib: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/exec.rs crates/sim/src/figures.rs crates/sim/src/multicore.rs crates/sim/src/report.rs crates/sim/src/roster.rs crates/sim/src/stats.rs crates/sim/src/svg.rs crates/sim/src/timing.rs crates/sim/src/trace_cache.rs

/root/repo/target/debug/deps/libdomino_sim-f7f34933f64a6a15.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/exec.rs crates/sim/src/figures.rs crates/sim/src/multicore.rs crates/sim/src/report.rs crates/sim/src/roster.rs crates/sim/src/stats.rs crates/sim/src/svg.rs crates/sim/src/timing.rs crates/sim/src/trace_cache.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/exec.rs:
crates/sim/src/figures.rs:
crates/sim/src/multicore.rs:
crates/sim/src/report.rs:
crates/sim/src/roster.rs:
crates/sim/src/stats.rs:
crates/sim/src/svg.rs:
crates/sim/src/timing.rs:
crates/sim/src/trace_cache.rs:
