//! Byte-budget tests for [`domino_sim::trace_cache`]: the cache must
//! drop whole least-recently-used entries once resident bytes exceed
//! the budget, keep the entry it is handing out, and stay correct under
//! concurrent lookups. Runs in its own process (integration test), so
//! the budget override cannot leak into other suites.

use std::sync::{Arc, Barrier, Mutex};

use domino_sim::trace_cache::{
    resident_trace_bytes, resident_trace_entries, set_cache_budget_for_tests, shared_trace,
};
use domino_trace::workload::catalog;

const EVENT_BYTES: u64 = std::mem::size_of::<domino_trace::AccessEvent>() as u64;

/// The budget override and the cache are process-global; tests that
/// change the budget must not interleave.
static BUDGET_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn budget_evicts_lru_entries_and_keeps_the_newest() {
    let _guard = BUDGET_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Room for roughly two 10k-event traces.
    let events = 10_000usize;
    set_cache_budget_for_tests(Some(2 * events as u64 * EVENT_BYTES + 1024));
    // Distinct seeds → distinct entries of equal size.
    let a = shared_trace(&catalog::oltp(), events, 0xB0D6_0001);
    let b = shared_trace(&catalog::oltp(), events, 0xB0D6_0002);
    assert!(resident_trace_bytes() <= 2 * events as u64 * EVENT_BYTES + 1024);
    // A third entry pushes the total over budget: the oldest (a) must
    // go, the newest must stay resident.
    let c = shared_trace(&catalog::oltp(), events, 0xB0D6_0003);
    assert!(
        resident_trace_bytes() <= 2 * events as u64 * EVENT_BYTES + 1024,
        "resident {} bytes exceeds the budget",
        resident_trace_bytes()
    );
    // Held Arcs keep their traces alive and correct regardless of
    // eviction.
    assert_eq!(a.len(), events);
    assert_ne!(a[..], b[..]);
    // `c` was just inserted, so a repeat lookup still shares it ...
    let c2 = shared_trace(&catalog::oltp(), events, 0xB0D6_0003);
    assert!(Arc::ptr_eq(&c, &c2), "newest entry must survive eviction");
    // ... while the evicted key regenerates into a fresh allocation
    // with identical contents.
    let a2 = shared_trace(&catalog::oltp(), events, 0xB0D6_0001);
    assert!(
        !Arc::ptr_eq(&a, &a2),
        "oldest entry should have been evicted"
    );
    assert_eq!(a[..], a2[..]);
    set_cache_budget_for_tests(None);
}

#[test]
fn tiny_budget_still_serves_every_request() {
    let _guard = BUDGET_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Budget below a single trace: every lookup materializes, hands the
    // trace out, and the cache immediately sheds everything except the
    // entry in hand.
    set_cache_budget_for_tests(Some(1));
    let events = 2_000usize;
    let threads = 8;
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let trace = shared_trace(&catalog::web_search(), events, 0xC0FF_EE00 + t as u64);
                assert_eq!(trace.len(), events);
                trace
            })
        })
        .collect();
    let traces: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("no thread panicked"))
        .collect();
    // All eight traces are alive in our hands; the cache itself keeps at
    // most one materialized entry (the most recent lookup's).
    assert!(
        resident_trace_entries() <= 1,
        "cache held more than the newest entry"
    );
    for (i, t) in traces.iter().enumerate() {
        let direct: Vec<_> = catalog::web_search()
            .generator(0xC0FF_EE00 + i as u64)
            .take(events)
            .collect();
        assert_eq!(&t[..], &direct[..], "seed {i} trace corrupted by eviction");
    }
    set_cache_budget_for_tests(None);
}
