//! `domino-serve`: run the sharded metadata service under the
//! deterministic load generator and emit `SERVICE_report.json`.
//!
//! ```text
//! domino-serve [--tenants N] [--events N] [--batch N] [--shards N]
//!              [--queue N] [--clients N] [--policy block|shed]
//!              [--system LABEL] [--seed N] [--degree N]
//!              [--tenant-budget BYTES] [--shard-budget BYTES]
//!              [--base-events N] [--trace-file FILE] [--out FILE]
//!              [--fail-on-shed] [--obs DIR] [--obs-interval EVENTS]
//!              [--obs-ring ROWS] [--span-rate N] [--span-seed N]
//!              [--slo SPEC]
//! domino-serve --smoke DIR
//! ```
//!
//! `--trace-file FILE` replaces the synthesized catalog traces with a
//! `DMNOTRC1` trace (written by `domino-ingest`): the first
//! `--base-events` events are decoded once and shared, and every tenant
//! windows into that one allocation.
//!
//! `--smoke` is the fixed CI preset wired into `tools/check.sh`: 1,000
//! tenant streams over 4 shards under the blocking policy, report
//! written to `DIR/SERVICE_report.json` and validated by
//! `tools/validate_service.py`.
//!
//! `--obs DIR` arms the live observability plane: shards flush their
//! serialized metrics/span rings into `DIR` while the run is live
//! (tail them with `domino-top DIR`), and the run ends with
//! `DIR/OBS_report.json`. `--slo SPEC` (requires `--obs`) evaluates
//! declarative thresholds with burn-rate windows and exits nonzero on
//! breach; `--fail-on-shed` exits nonzero when any request was shed.

use std::path::PathBuf;
use std::process::ExitCode;

use domino_service::{
    render_obs_report, render_report, run_failed, run_load, LoadPlan, MetadataService, ObsConfig,
    OverloadPolicy, ServiceConfig, SloReport, SloSpec,
};
use domino_sim::roster::System;
use domino_telemetry::RingFile;

fn usage() -> ExitCode {
    eprintln!(
        "usage: domino-serve [--tenants N] [--events N] [--batch N] [--shards N]\n\
         \x20                   [--queue N] [--clients N] [--policy block|shed]\n\
         \x20                   [--system LABEL] [--seed N] [--degree N]\n\
         \x20                   [--tenant-budget BYTES] [--shard-budget BYTES]\n\
         \x20                   [--base-events N] [--trace-file FILE] [--out FILE]\n\
         \x20                   [--fail-on-shed] [--obs DIR] [--obs-interval EVENTS]\n\
         \x20                   [--obs-ring ROWS] [--span-rate N] [--span-seed N]\n\
         \x20                   [--slo SPEC]\n\
         \x20      domino-serve --smoke DIR"
    );
    ExitCode::FAILURE
}

fn roster_labels() -> String {
    System::all()
        .iter()
        .map(System::label)
        .collect::<Vec<_>>()
        .join(", ")
}

/// Accepts decimal or `0x`-prefixed values.
fn parse_u64(v: &str) -> Option<u64> {
    match v.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => v.parse().ok(),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut plan = LoadPlan::default();
    let mut cfg = ServiceConfig::default();
    let mut out: Option<PathBuf> = None;
    let mut obs_dir: Option<PathBuf> = None;
    let mut obs_cfg = ObsConfig::default();
    let mut slo: Option<SloSpec> = None;
    let mut fail_on_shed = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => match it.next() {
                Some(dir) => out = Some(PathBuf::from(dir).join("SERVICE_report.json")),
                None => return usage(),
            },
            "--tenants" => match it.next().and_then(|v| parse_u64(v)) {
                Some(v) if v > 0 => plan.tenants = v,
                _ => return usage(),
            },
            "--events" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => plan.events_per_tenant = v,
                None => return usage(),
            },
            "--batch" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => plan.request_batch = v,
                _ => return usage(),
            },
            "--shards" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => cfg.shards = v,
                _ => return usage(),
            },
            "--queue" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => cfg.queue_depth = v,
                _ => return usage(),
            },
            "--clients" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => plan.clients = v,
                _ => return usage(),
            },
            "--policy" => match it.next().and_then(|v| OverloadPolicy::from_label(v)) {
                Some(p) => cfg.policy = p,
                None => {
                    eprintln!("error: --policy takes block or shed");
                    return ExitCode::FAILURE;
                }
            },
            "--system" => match it.next() {
                Some(label) => match System::from_label(label) {
                    Some(sys) => plan.system = sys,
                    None => {
                        eprintln!(
                            "error: unknown system label {label:?}\nvalid systems: {}",
                            roster_labels()
                        );
                        return ExitCode::FAILURE;
                    }
                },
                None => return usage(),
            },
            "--seed" => match it.next().and_then(|v| parse_u64(v)) {
                Some(v) => plan.seed = v,
                None => return usage(),
            },
            "--degree" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => cfg.degree = v,
                _ => return usage(),
            },
            "--tenant-budget" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.tenant_budget_bytes = v,
                None => return usage(),
            },
            "--shard-budget" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.shard_budget_bytes = v,
                None => return usage(),
            },
            "--base-events" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => plan.base_events = v,
                None => return usage(),
            },
            "--trace-file" => match it.next() {
                Some(f) => plan.trace_file = Some(PathBuf::from(f)),
                None => return usage(),
            },
            "--out" => match it.next() {
                Some(f) => out = Some(PathBuf::from(f)),
                None => return usage(),
            },
            "--obs" => match it.next() {
                Some(dir) => obs_dir = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--obs-interval" => match it.next().and_then(|v| parse_u64(v)) {
                Some(v) if v > 0 => obs_cfg.interval_events = v,
                _ => return usage(),
            },
            "--obs-ring" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => obs_cfg.ring_rows = v,
                _ => return usage(),
            },
            "--span-rate" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => obs_cfg.span_rate = v,
                None => return usage(),
            },
            "--span-seed" => match it.next().and_then(|v| parse_u64(v)) {
                Some(v) => obs_cfg.span_seed = v,
                None => return usage(),
            },
            "--slo" => match it.next() {
                Some(spec) => match SloSpec::parse(spec) {
                    Ok(parsed) => slo = Some(parsed),
                    Err(e) => {
                        eprintln!("error: --slo: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => return usage(),
            },
            "--fail-on-shed" => fail_on_shed = true,
            _ => return usage(),
        }
    }
    if slo.is_some() && obs_dir.is_none() {
        eprintln!("error: --slo needs the metrics rings; pass --obs DIR too");
        return ExitCode::FAILURE;
    }
    // Validate (and pre-decode) the trace file before spawning anything,
    // so a bad file is one clear error instead of a mid-run panic. A
    // short file clamps the per-tenant stream length: windows cannot
    // extend past the file.
    if let Some(path) = &plan.trace_file {
        match domino_sim::shared_file_trace(path, plan.base_events) {
            Ok(trace) => {
                if trace.len() < plan.events_per_tenant {
                    println!(
                        "note: {} holds {} events; clamping --events {} down",
                        path.display(),
                        trace.len(),
                        plan.events_per_tenant
                    );
                    plan.events_per_tenant = trace.len();
                }
            }
            Err(e) => {
                eprintln!("error: --trace-file {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(dir) = &obs_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: mkdir {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        obs_cfg.live_dir = Some(dir.clone());
        cfg.obs = Some(obs_cfg.clone());
    }
    println!(
        "domino-serve: {} tenants x {} events (batch {}), {} shards (queue {}, {}), \
         {} clients, system {}, seed {:#x}",
        plan.tenants,
        plan.events_per_tenant,
        plan.request_batch,
        cfg.shards,
        cfg.queue_depth,
        cfg.policy.label(),
        plan.clients,
        plan.system.label(),
        plan.seed
    );
    let service = MetadataService::start(cfg);
    let load = {
        let client = service.client();
        run_load(&client, &plan)
    };
    let result = service.shutdown();
    let report = render_report(&plan, &load, &result);
    // Incomplete = lost events anywhere: a shed mid-stream gap, an
    // eviction restart, or a truncated tail (every accepted batch after
    // the first shed being rejected leaves processed short of the
    // stream). Tenants with no accepted batch at all have no final.
    let finished: u64 = result
        .finals()
        .filter(|f| !f.evicted && f.gap_events == 0 && f.processed == plan.events_per_tenant)
        .count() as u64;
    let incomplete = plan.tenants - finished;
    println!(
        "served {} events in {} batches ({} shed, {} tenants incomplete) over {:.1} ms",
        result.total_events(),
        result.total_batches(),
        result.total_shed(),
        incomplete,
        load.wall_ns as f64 / 1e6
    );
    match out {
        Some(path) => {
            if let Some(dir) = path.parent() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("error: mkdir {}: {e}", dir.display());
                    return ExitCode::FAILURE;
                }
            }
            if let Err(e) = std::fs::write(&path, &report) {
                eprintln!("error: write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("report: {}", path.display());
        }
        None => print!("{report}"),
    }
    // The observability epilogue: parse the per-shard rings back from
    // their serialized form (exactly what domino-top reads), evaluate
    // the SLOs, and write the schema-versioned OBS_report.json.
    let mut slo_report = SloReport::none();
    if let Some(dir) = &obs_dir {
        let mut rings = Vec::new();
        let mut spans = Vec::new();
        for shard in &result.shards {
            let Some(obs) = &shard.obs else { continue };
            let source = format!("shard-{}", shard.stats.shard);
            let bytes = obs.ring.to_bytes(&source, obs_cfg.interval_events);
            match RingFile::from_bytes(&bytes) {
                Ok(f) => rings.push(f),
                Err(e) => {
                    eprintln!("error: shard {} ring: {e}", shard.stats.shard);
                    return ExitCode::FAILURE;
                }
            }
            let chronological = obs.spans.spans().all(|s| s.chronological());
            spans.push((obs.spans.recorded(), obs.spans.len() as u64, chronological));
        }
        if let Some(spec) = &slo {
            slo_report = spec.evaluate(&rings);
            for o in &slo_report.objectives {
                println!(
                    "slo {}: value {:.3} vs {:.3} — fast burn {:.2}, slow burn {:.2}{}",
                    o.name,
                    o.value,
                    o.threshold,
                    o.fast_burn,
                    o.slow_burn,
                    if o.breached { " [BREACH]" } else { "" }
                );
            }
        }
        let obs_doc = render_obs_report(&obs_cfg, &rings, &spans, &slo_report);
        let obs_path = dir.join("OBS_report.json");
        if let Err(e) = std::fs::write(&obs_path, &obs_doc) {
            eprintln!("error: write {}: {e}", obs_path.display());
            return ExitCode::FAILURE;
        }
        println!("obs report: {}", obs_path.display());
    }
    if run_failed(result.total_shed(), fail_on_shed, slo_report.breached) {
        if fail_on_shed && result.total_shed() > 0 {
            eprintln!(
                "domino-serve: FAIL — {} requests shed (--fail-on-shed)",
                result.total_shed()
            );
        }
        if slo_report.breached {
            eprintln!("domino-serve: FAIL — SLO breached ({})", slo_report.spec);
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
