//! Telemetry report CLI: renders per-epoch tables (or CSV) from the JSON
//! run reports emitted by figure sweeps, and flags anomalous epochs.
//!
//! ```text
//! report <path> [--csv] [--factor F]
//! report --smoke <dir>
//! ```
//!
//! `<path>` is a single `telemetry_*.json` cell file, a
//! `TELEMETRY_sweep.json` aggregate, or a directory containing either.
//! For every report the CLI prints one table of per-epoch *deltas* (the
//! JSON stores cumulative rows) with derived accuracy/coverage columns,
//! then flags epochs whose prefetch accuracy drops more than `F`×
//! (default 2) below the run mean — the signature of a prefetcher
//! thrashing its tables mid-run.
//!
//! `--smoke` runs a tiny observed Figure 13 sweep and writes its
//! telemetry files into `<dir>` — CI uses this to validate the schema
//! end-to-end without a full figures run.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use domino_sim::figures::{fig13, Scale};
use domino_sim::observe;
use domino_sim::report::FigureTable;
use domino_telemetry::{json, RunReport};

fn usage() -> ExitCode {
    eprintln!("usage: report <file-or-dir> [--csv] [--factor F]");
    eprintln!("       report --smoke <dir>");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<PathBuf> = None;
    let mut csv = false;
    let mut factor = 2.0f64;
    let mut smoke: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--csv" => csv = true,
            "--factor" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(f) if f > 1.0 => factor = f,
                _ => {
                    eprintln!("--factor needs a number > 1");
                    return ExitCode::FAILURE;
                }
            },
            "--smoke" => match it.next() {
                Some(dir) => smoke = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            other if path.is_none() && !other.starts_with('-') => {
                path = Some(PathBuf::from(other));
            }
            _ => return usage(),
        }
    }
    if let Some(dir) = smoke {
        return run_smoke(&dir);
    }
    let Some(path) = path else { return usage() };
    let reports = match load_reports(&path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if reports.is_empty() {
        eprintln!("error: no telemetry reports under {}", path.display());
        return ExitCode::FAILURE;
    }
    for r in &reports {
        render(r, csv, factor);
    }
    ExitCode::SUCCESS
}

/// Runs a tiny observed Figure 13 sweep and writes its telemetry into
/// `dir` (schema smoke test for CI).
fn run_smoke(dir: &Path) -> ExitCode {
    observe::set_epoch_override(Some(5_000));
    let tables = fig13(&Scale {
        events: 20_000,
        seed: 42,
    });
    drop(tables);
    let reports = observe::drain();
    match observe::write_reports(dir, &reports) {
        Ok(paths) => {
            println!("wrote {} telemetry files to {}", paths.len(), dir.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Loads every report reachable from `path` (cell file, aggregate file,
/// or directory of either).
fn load_reports(path: &Path) -> Result<Vec<RunReport>, String> {
    if path.is_dir() {
        let mut files: Vec<PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("{}: {e}", path.display()))?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
                name.starts_with("telemetry_") && name.ends_with(".json")
            })
            .collect();
        files.sort();
        if files.is_empty() {
            // Fall back to the aggregate if no per-cell files are there.
            let agg = path.join("TELEMETRY_sweep.json");
            if agg.is_file() {
                return load_reports(&agg);
            }
        }
        let mut out = Vec::new();
        for f in files {
            out.extend(load_reports(&f)?);
        }
        return Ok(out);
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let is_aggregate = path
        .file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n == "TELEMETRY_sweep.json");
    if is_aggregate {
        let v = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let schema = v.get("schema").and_then(json::Json::as_str);
        if schema != Some(observe::SWEEP_SCHEMA) {
            return Err(format!(
                "{}: unsupported sweep schema {schema:?}",
                path.display()
            ));
        }
        v.get("reports")
            .and_then(json::Json::as_arr)
            .ok_or_else(|| format!("{}: missing reports array", path.display()))?
            .iter()
            .map(|r| RunReport::from_value(r).map_err(|e| format!("{}: {e}", path.display())))
            .collect()
    } else {
        Ok(vec![
            RunReport::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))?
        ])
    }
}

/// Accuracy numerator/denominator fields: prefetch-buffer hits over
/// inserts, present in both coverage and timing reports.
const ACC_NUM: &str = "buffer.hits";
const ACC_DEN: &str = "buffer.inserted";

/// A derived per-epoch rate as a finite table cell: epochs with a zero
/// denominator (an epoch that issued no prefetches, or a baseline with
/// no misses) render as 0 rather than NaN/inf, keeping the CSV export
/// machine-parseable.
fn finite_rate(rates: Option<&Vec<Option<f64>>>, index: usize) -> f64 {
    rates
        .and_then(|v| v.get(index).copied().flatten())
        .filter(|v| v.is_finite())
        .unwrap_or(0.0)
}

/// Builds the per-epoch delta table (with derived accuracy/coverage
/// columns) for one report.
fn delta_table(r: &RunReport) -> FigureTable {
    let mut columns = r.fields.clone();
    let acc = r.field(ACC_NUM).is_some() && r.field(ACC_DEN).is_some();
    let cov = r.field("covered").is_some() && r.field("baseline_misses").is_some();
    if acc {
        columns.push("accuracy".into());
    }
    if cov {
        columns.push("coverage".into());
    }
    let mut t = FigureTable::new(
        format!(
            "{} / {} [{}] — per-epoch deltas (epoch {} accesses, events {}, warmup {})",
            r.workload, r.component, r.kind, r.epoch_accesses, r.events, r.warmup
        ),
        "epoch",
        columns,
    );
    let acc_rates = r.epoch_rate(ACC_NUM, ACC_DEN);
    let cov_rates = r.epoch_rate("covered", "baseline_misses");
    for d in r.deltas() {
        let mut row: Vec<f64> = d.values.iter().map(|&v| v as f64).collect();
        if acc {
            row.push(finite_rate(acc_rates.as_ref(), d.index));
        }
        if cov {
            row.push(finite_rate(cov_rates.as_ref(), d.index));
        }
        t.push_row(format!("{}", d.index), row);
    }
    t
}

/// One percentile as a table cell: `-` for an empty histogram, and
/// `>bound` when the rank lands in the overflow bucket (the shared
/// percentile helper reports that as `u64::MAX`).
fn pct_label(h: &domino_telemetry::FixedHistogram, p: f64) -> String {
    match h.percentile(p) {
        None => "-".into(),
        Some(u64::MAX) => format!(">{}", h.bounds().last().copied().unwrap_or(0)),
        Some(bound) => bound.to_string(),
    }
}

/// Prints one report as a per-epoch delta table plus anomaly flags.
fn render(r: &RunReport, csv: bool, factor: f64) {
    let t = delta_table(r);
    if csv {
        print!("{}", t.to_csv());
    } else {
        println!("{t}");
        for (name, h) in &r.histograms {
            let buckets: Vec<String> = h
                .counts()
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| format!("{} x{}", h.label(i), c))
                .collect();
            println!(
                "  hist {name}: n={} mean={:.1} p50={} p95={} p99={} [{}]",
                h.total(),
                h.mean(),
                pct_label(h, 0.50),
                pct_label(h, 0.95),
                pct_label(h, 0.99),
                buckets.join(", ")
            );
        }
    }
    if r.field(ACC_NUM).is_some() && r.field(ACC_DEN).is_some() {
        let flagged = r.anomalous_epochs(ACC_NUM, ACC_DEN, factor);
        if !flagged.is_empty() {
            println!(
                "  !! anomaly: epochs {flagged:?} have accuracy more than {factor:.1}x below the run mean"
            );
        }
    }
    if !csv {
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A report whose second epoch issued no prefetches and whose
    /// baseline saw no misses — both derived-rate denominators are zero.
    fn zero_denominator_report() -> RunReport {
        RunReport {
            schema: domino_telemetry::SCHEMA.to_string(),
            workload: "synthetic".into(),
            component: "Domino".into(),
            kind: "coverage".into(),
            events: 20,
            seed: 1,
            warmup: 0,
            epoch_accesses: 10,
            fields: vec![
                "buffer.hits".into(),
                "buffer.inserted".into(),
                "covered".into(),
                "baseline_misses".into(),
            ],
            // Cumulative rows: epoch 1 adds nothing, so its deltas are
            // all zero.
            epochs: vec![vec![3, 4, 3, 8], vec![3, 4, 3, 8]],
            histograms: Vec::new(),
            counters: Vec::new(),
        }
    }

    #[test]
    fn zero_issued_epochs_render_finite_csv() {
        let t = delta_table(&zero_denominator_report());
        let csv = t.to_csv();
        assert!(
            !csv.contains("NaN") && !csv.contains("inf"),
            "derived columns must stay finite:\n{csv}"
        );
        // Epoch 0 still gets the real rates...
        assert_eq!(t.value("0", "accuracy"), Some(0.75));
        assert_eq!(t.value("0", "coverage"), Some(0.375));
        // ...and the zero-denominator epoch reads 0, not NaN.
        assert_eq!(t.value("1", "accuracy"), Some(0.0));
        assert_eq!(t.value("1", "coverage"), Some(0.0));
    }

    #[test]
    fn percentile_labels_on_known_buckets() {
        use domino_telemetry::FixedHistogram;
        // Bounds 10/100/1000; 20 values in the first bucket, 70 in the
        // second, 9 in the third, 1 overflow — the shared helper's
        // canonical shape: p50 lands in bucket 100, p99 at 1000.
        let h = FixedHistogram::from_parts(vec![10, 100, 1000], vec![20, 70, 9, 1], 0);
        assert_eq!(pct_label(&h, 0.50), "100");
        assert_eq!(pct_label(&h, 0.95), "1000");
        assert_eq!(pct_label(&h, 0.99), "1000");
        // The full-population percentile hits the overflow record.
        assert_eq!(pct_label(&h, 1.0), ">1000");
        // Empty histogram: no percentile at all.
        let empty = FixedHistogram::new(&[10, 100]);
        assert_eq!(pct_label(&empty, 0.5), "-");
    }

    #[test]
    fn finite_rate_guards_every_degenerate_shape() {
        assert_eq!(finite_rate(None, 0), 0.0);
        let rates = vec![Some(0.5), None, Some(f64::INFINITY)];
        assert_eq!(finite_rate(Some(&rates), 0), 0.5);
        assert_eq!(finite_rate(Some(&rates), 1), 0.0, "zero denominator");
        assert_eq!(finite_rate(Some(&rates), 2), 0.0, "non-finite rate");
        assert_eq!(finite_rate(Some(&rates), 9), 0.0, "out of range");
    }
}
