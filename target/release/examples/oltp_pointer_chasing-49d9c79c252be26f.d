/root/repo/target/release/examples/oltp_pointer_chasing-49d9c79c252be26f.d: examples/oltp_pointer_chasing.rs Cargo.toml

/root/repo/target/release/examples/liboltp_pointer_chasing-49d9c79c252be26f.rmeta: examples/oltp_pointer_chasing.rs Cargo.toml

examples/oltp_pointer_chasing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
