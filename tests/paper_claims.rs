//! End-to-end checks of the paper's qualitative claims on the synthetic
//! workloads, at a scale small enough for CI. These are the invariants
//! EXPERIMENTS.md verifies at full scale; here they guard regressions.

use domino_repro::sequitur::oracle::{oracle_replay, OracleConfig};
use domino_repro::sim::figures::Scale;
use domino_repro::sim::{baseline_miss_sequence, run_coverage, run_timing, System, SystemConfig};
use domino_repro::trace::workload::catalog;
use domino_repro::trace::workload::WorkloadSpec;

const SCALE: Scale = Scale {
    events: 120_000,
    seed: 42,
};

fn coverage(spec: &WorkloadSpec, sys: System, degree: usize) -> f64 {
    let system = SystemConfig::paper();
    let trace: Vec<_> = spec.generator(SCALE.seed).take(SCALE.events).collect();
    let mut p = sys.build(degree);
    run_coverage(&system, &trace, p.as_mut()).coverage()
}

/// Claim (§V-B, Figure 11): Domino has the highest coverage of the
/// temporal prefetchers, and STMS beats Digram.
#[test]
fn domino_beats_stms_beats_digram_on_temporal_workloads() {
    for spec in [
        catalog::oltp(),
        catalog::web_search(),
        catalog::web_apache(),
    ] {
        let domino = coverage(&spec, System::Domino, 1);
        let stms = coverage(&spec, System::Stms, 1);
        let digram = coverage(&spec, System::Digram, 1);
        assert!(
            domino > stms,
            "{}: Domino {domino:.3} must beat STMS {stms:.3}",
            spec.name
        );
        assert!(
            stms > digram,
            "{}: STMS {stms:.3} must beat Digram {digram:.3}",
            spec.name
        );
    }
}

/// Claim (Figure 1): a large gap separates STMS from the opportunity.
#[test]
fn stms_leaves_much_of_the_opportunity_uncovered() {
    let system = SystemConfig::paper();
    let spec = catalog::oltp();
    let trace: Vec<_> = spec.generator(SCALE.seed).take(SCALE.events).collect();
    let seq = baseline_miss_sequence(&system, &trace);
    let opp = oracle_replay(&seq, &OracleConfig::default()).coverage();
    let stms = coverage(&spec, System::Stms, 1);
    assert!(
        stms < 0.8 * opp,
        "STMS {stms:.3} should fall well short of opportunity {opp:.3}"
    );
}

/// Claim (§V-B): PC localization (ISB) underperforms global-history
/// temporal prefetching on server workloads.
#[test]
fn isb_trails_global_history_prefetchers() {
    for spec in [catalog::oltp(), catalog::data_serving()] {
        let isb = coverage(&spec, System::Isb, 1);
        let stms = coverage(&spec, System::Stms, 1);
        assert!(
            isb < stms,
            "{}: ISB {isb:.3} must trail STMS {stms:.3}",
            spec.name
        );
    }
}

/// Claim (Figure 2): Sequitur-oracle streams are much longer than
/// STMS streams.
#[test]
fn oracle_streams_are_longer_than_stms_streams() {
    let system = SystemConfig::paper();
    let spec = catalog::web_search();
    let trace: Vec<_> = spec.generator(SCALE.seed).take(SCALE.events).collect();
    let seq = baseline_miss_sequence(&system, &trace);
    let oracle = oracle_replay(&seq, &OracleConfig::default());
    let mut p = System::Stms.build(1);
    let stms = run_coverage(&system, &trace, p.as_mut());
    assert!(
        oracle.mean_stream_length() > 1.4 * stms.mean_stream_length(),
        "oracle {:.2} vs STMS {:.2}",
        oracle.mean_stream_length(),
        stms.mean_stream_length()
    );
}

/// Claim (Figure 6): Domino opens streams with fewer serial metadata
/// round trips than STMS.
#[test]
fn domino_opens_streams_faster_than_stms() {
    let system = SystemConfig::paper();
    let spec = catalog::oltp();
    let trace: Vec<_> = spec.generator(SCALE.seed).take(SCALE.events).collect();
    let mut stms = System::Stms.build(4);
    let s = run_coverage(&system, &trace, stms.as_mut());
    let mut dom = System::Domino.build(4);
    let d = run_coverage(&system, &trace, dom.as_mut());
    assert!(
        d.mean_first_prefetch_trips() < s.mean_first_prefetch_trips(),
        "Domino {:.2} trips vs STMS {:.2}",
        d.mean_first_prefetch_trips(),
        s.mean_first_prefetch_trips()
    );
}

/// Claim (Figure 13): at degree 4, Domino's overpredictions are well
/// below STMS's, near Digram's.
#[test]
fn domino_overpredicts_less_than_stms_at_degree_four() {
    let system = SystemConfig::paper();
    let spec = catalog::oltp();
    let trace: Vec<_> = spec.generator(SCALE.seed).take(SCALE.events).collect();
    let rate = |sys: System| {
        let mut p = sys.build(4);
        run_coverage(&system, &trace, p.as_mut()).overprediction_rate()
    };
    let stms = rate(System::Stms);
    let digram = rate(System::Digram);
    let domino = rate(System::Domino);
    assert!(
        domino < stms,
        "Domino {domino:.3} must overpredict less than STMS {stms:.3}"
    );
    assert!(
        digram <= domino,
        "Digram {digram:.3} should be the most conservative (≤ {domino:.3})"
    );
}

/// Claim (Figure 14): Domino delivers the best speedup of the temporal
/// prefetchers under the timing model.
#[test]
fn domino_has_best_speedup_on_oltp() {
    let system = SystemConfig::paper();
    let spec = catalog::oltp();
    let trace: Vec<_> = spec.generator(SCALE.seed).take(SCALE.events).collect();
    let mut base = System::Baseline.build(1);
    let baseline = run_timing(&system, &trace, base.as_mut());
    let speedup = |sys: System| {
        let mut p = sys.build(4);
        run_timing(&system, &trace, p.as_mut()).speedup_over(&baseline)
    };
    let domino = speedup(System::Domino);
    let stms = speedup(System::Stms);
    assert!(domino > 1.0, "Domino must speed up OLTP: {domino:.3}");
    assert!(domino > stms, "Domino {domino:.3} must beat STMS {stms:.3}");
}

/// Claim (Figure 16): the spatio-temporal stack covers more than either
/// component on workloads with both behaviours.
#[test]
fn spatio_temporal_stack_beats_components() {
    for spec in [catalog::data_serving(), catalog::mapreduce_c()] {
        let vldp = coverage(&spec, System::Vldp, 4);
        let domino = coverage(&spec, System::Domino, 4);
        let both = coverage(&spec, System::VldpPlusDomino, 4);
        assert!(
            both > vldp.max(domino),
            "{}: stack {both:.3} must beat VLDP {vldp:.3} and Domino {domino:.3}",
            spec.name
        );
    }
}

/// The two independent opportunity measures (Sequitur grammar coverage
/// and longest-stream oracle replay) must agree on ordering and be close
/// in magnitude — they are independent implementations of the same
/// concept.
#[test]
fn opportunity_measures_cross_validate() {
    use domino_repro::sequitur::{analysis, Sequitur};
    let system = SystemConfig::paper();
    let mut pairs = Vec::new();
    for spec in [
        catalog::oltp(),
        catalog::sat_solver(),
        catalog::web_search(),
    ] {
        let trace: Vec<_> = spec.generator(SCALE.seed).take(SCALE.events).collect();
        let seq = baseline_miss_sequence(&system, &trace);
        let grammar = Sequitur::from_sequence(seq.iter().copied().take(60_000));
        let g = analysis::grammar_coverage(&grammar);
        let o = oracle_replay(&seq, &OracleConfig::default()).coverage();
        assert!(
            (g - o).abs() < 0.12,
            "{}: grammar {g:.3} vs oracle {o:.3} diverge",
            spec.name
        );
        pairs.push((spec.name.clone(), g, o));
    }
    // Ordering agreement: OLTP/WebSearch > SAT on both measures.
    let by = |name: &str| pairs.iter().find(|(n, _, _)| n == name).unwrap().clone();
    let (_, g_sat, o_sat) = by("SAT Solver");
    for n in ["OLTP", "Web Search"] {
        let (_, g, o) = by(n);
        assert!(g > g_sat && o > o_sat, "{n} must beat SAT on both measures");
    }
}

/// Claim (§V-C): the SAT Solver's on-the-fly dataset defeats everyone.
#[test]
fn sat_solver_is_hard_for_all_prefetchers() {
    let sat = catalog::sat_solver();
    for sys in [System::Stms, System::Digram, System::Domino] {
        let c = coverage(&sat, sys, 1);
        assert!(
            c < 0.25,
            "{}: {c:.3} should stay low on SAT Solver",
            sys.label()
        );
    }
    // And it is the hardest workload for Domino.
    let sat_cov = coverage(&sat, System::Domino, 1);
    for spec in [catalog::oltp(), catalog::web_search()] {
        assert!(coverage(&spec, System::Domino, 1) > sat_cov);
    }
}
