//! Sequitur chunk codec for `DMNOTRC1` (`codec = 1`).
//!
//! Server miss streams are highly repetitive — that repetitiveness is the
//! entire premise of temporal prefetching, and the same property makes the
//! traces compress well under grammar inference. Each chunk is encoded
//! independently so decompression stays chunk-local and bounded:
//!
//! ```text
//! dict_len  u32
//! dict      dict_len * 24-byte records   (distinct events, first-appearance order)
//! rule_len  u32
//! rules     rule_len entries: sym_len u32, then sym_len u32 symbols
//! ```
//!
//! The event sequence is first mapped to dictionary ids, a Sequitur grammar
//! is inferred over the id sequence (`crates/sequitur`), and the grammar is
//! serialized via [`domino_sequitur::Sequitur::export_rules`]: entry 0 is
//! the start rule and a symbol is either a dictionary id (high bit clear)
//! or `0x8000_0000 | rule_index`. Decoding expands the start rule with an
//! explicit stack, guarded against malformed (cyclic or over-producing)
//! grammars so hostile bytes error out instead of looping or ballooning.

use std::collections::HashMap;

use domino_sequitur::{ExportSym, Sequitur};

use crate::event::AccessEvent;
use crate::stream::format::{decode_record, encode_record, TraceFileError, RECORD_BYTES};

const RULE_BIT: u32 = 0x8000_0000;

/// Encodes one chunk of events as dictionary + serialized grammar.
pub(crate) fn encode_chunk(events: &[AccessEvent]) -> Vec<u8> {
    let mut dict: Vec<AccessEvent> = Vec::new();
    let mut ids_of: HashMap<[u8; RECORD_BYTES], u32> = HashMap::new();
    let mut ids: Vec<u64> = Vec::with_capacity(events.len());
    let mut rec = [0u8; RECORD_BYTES];
    for ev in events {
        encode_record(ev, &mut rec);
        let next = dict.len() as u32;
        let id = *ids_of.entry(rec).or_insert_with(|| {
            dict.push(*ev);
            next
        });
        ids.push(u64::from(id));
    }
    let grammar = Sequitur::from_sequence(ids);
    let rules = grammar.export_rules();

    let mut out = Vec::new();
    out.extend_from_slice(&(dict.len() as u32).to_le_bytes());
    for ev in &dict {
        encode_record(ev, &mut rec);
        out.extend_from_slice(&rec);
    }
    out.extend_from_slice(&(rules.len() as u32).to_le_bytes());
    for body in &rules {
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        for sym in body {
            let word = match *sym {
                ExportSym::Term(id) => {
                    debug_assert!(id < u64::from(RULE_BIT), "dict ids fit 31 bits");
                    id as u32
                }
                ExportSym::Rule(idx) => RULE_BIT | idx,
            };
            out.extend_from_slice(&word.to_le_bytes());
        }
    }
    out
}

fn read_u32(
    bytes: &[u8],
    pos: &mut usize,
    chunk: usize,
    what: &str,
) -> Result<u32, TraceFileError> {
    let end = *pos + 4;
    if end > bytes.len() {
        return Err(TraceFileError::BadGrammar {
            chunk,
            detail: format!("payload truncated reading {what}"),
        });
    }
    let v = u32::from_le_bytes(bytes[*pos..end].try_into().expect("4 bytes"));
    *pos = end;
    Ok(v)
}

/// Decodes one chunk payload, returning the events plus the codec's
/// auxiliary working-set size in bytes (dictionary + rule tables), which
/// feeds resident-memory accounting.
pub(crate) fn decode_chunk(
    bytes: &[u8],
    expected_events: u32,
    chunk: usize,
) -> Result<(Vec<AccessEvent>, u64), TraceFileError> {
    let mut pos = 0usize;
    let dict_len = read_u32(bytes, &mut pos, chunk, "dictionary length")? as usize;
    if dict_len > expected_events as usize {
        return Err(TraceFileError::BadGrammar {
            chunk,
            detail: format!("dictionary of {dict_len} entries exceeds {expected_events} events"),
        });
    }
    let dict_end = pos + dict_len * RECORD_BYTES;
    if dict_end > bytes.len() {
        return Err(TraceFileError::BadGrammar {
            chunk,
            detail: "payload truncated inside dictionary".into(),
        });
    }
    let mut dict = Vec::with_capacity(dict_len);
    for (i, rec) in bytes[pos..dict_end].chunks_exact(RECORD_BYTES).enumerate() {
        let rec: &[u8; RECORD_BYTES] = rec.try_into().expect("exact chunks");
        match decode_record(rec) {
            Ok(ev) => dict.push(ev),
            Err(detail) => {
                return Err(TraceFileError::BadRecord {
                    chunk,
                    detail: format!("dictionary entry {i}: {detail}"),
                })
            }
        }
    }
    pos = dict_end;

    let rule_len = read_u32(bytes, &mut pos, chunk, "rule count")? as usize;
    if rule_len == 0 {
        return Err(TraceFileError::BadGrammar {
            chunk,
            detail: "no rules (start rule required)".into(),
        });
    }
    // Remaining bytes bound the total symbol count, so a hostile rule_len
    // cannot force a huge allocation.
    if rule_len > bytes.len().saturating_sub(pos) / 4 + 1 {
        return Err(TraceFileError::BadGrammar {
            chunk,
            detail: format!("rule count {rule_len} exceeds payload size"),
        });
    }
    let mut rules: Vec<Vec<u32>> = Vec::with_capacity(rule_len);
    let mut total_syms = 0u64;
    for r in 0..rule_len {
        let sym_len = read_u32(bytes, &mut pos, chunk, "rule body length")? as usize;
        if sym_len > bytes.len().saturating_sub(pos) / 4 {
            return Err(TraceFileError::BadGrammar {
                chunk,
                detail: format!("rule {r} body of {sym_len} symbols exceeds payload size"),
            });
        }
        let mut body = Vec::with_capacity(sym_len);
        for _ in 0..sym_len {
            let word = read_u32(bytes, &mut pos, chunk, "symbol")?;
            if word & RULE_BIT != 0 {
                let idx = word & !RULE_BIT;
                if idx as usize >= rule_len || idx == 0 {
                    return Err(TraceFileError::BadGrammar {
                        chunk,
                        detail: format!("rule {r} references invalid rule {idx}"),
                    });
                }
            } else if word as usize >= dict_len {
                return Err(TraceFileError::BadGrammar {
                    chunk,
                    detail: format!("rule {r} references dictionary id {word} >= {dict_len}"),
                });
            }
            body.push(word);
        }
        total_syms += sym_len as u64;
        rules.push(body);
    }
    if pos != bytes.len() {
        return Err(TraceFileError::BadGrammar {
            chunk,
            detail: format!("{} trailing bytes after the grammar", bytes.len() - pos),
        });
    }

    // Expand the start rule with an explicit stack. Sequitur grammars are
    // acyclic, but these bytes may not be from Sequitur: cap both the
    // output length and the number of expansion steps so cyclic or
    // over-producing grammars terminate with an error.
    let mut out = Vec::with_capacity(expected_events as usize);
    let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
    let step_limit = u64::from(expected_events) * 2 + total_syms * 2 + 64;
    let mut steps = 0u64;
    while let Some((rule, sym_pos)) = stack.pop() {
        steps += 1;
        if steps > step_limit {
            return Err(TraceFileError::BadGrammar {
                chunk,
                detail: "grammar expansion does not terminate".into(),
            });
        }
        let body = &rules[rule as usize];
        if sym_pos >= body.len() {
            continue;
        }
        let word = body[sym_pos];
        stack.push((rule, sym_pos + 1));
        if word & RULE_BIT != 0 {
            if stack.len() > rules.len() + 1 {
                return Err(TraceFileError::BadGrammar {
                    chunk,
                    detail: "grammar recursion exceeds rule count (cycle)".into(),
                });
            }
            stack.push((word & !RULE_BIT, 0));
        } else {
            if out.len() == expected_events as usize {
                return Err(TraceFileError::BadGrammar {
                    chunk,
                    detail: format!("grammar expands past the indexed {expected_events} events"),
                });
            }
            out.push(dict[word as usize]);
        }
    }
    if out.len() != expected_events as usize {
        return Err(TraceFileError::BadGrammar {
            chunk,
            detail: format!(
                "grammar expands to {} events, index says {expected_events}",
                out.len()
            ),
        });
    }
    let aux_bytes = (dict.len() * RECORD_BYTES) as u64 + total_syms * 4 + rule_len as u64 * 24;
    Ok((out, aux_bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::catalog;

    fn sample(n: usize) -> Vec<AccessEvent> {
        catalog::data_serving().generator(3).take(n).collect()
    }

    #[test]
    fn chunk_round_trips() {
        for n in [0usize, 1, 17, 500, 2000] {
            let events = sample(n);
            let bytes = encode_chunk(&events);
            let (decoded, aux) = decode_chunk(&bytes, n as u32, 0).unwrap();
            assert_eq!(decoded, events);
            if n > 0 {
                assert!(aux > 0);
            }
        }
    }

    #[test]
    fn repetitive_chunks_shrink() {
        // A repeated motif: grammar + dictionary must beat raw records.
        let motif = sample(64);
        let mut events = Vec::new();
        for _ in 0..64 {
            events.extend_from_slice(&motif);
        }
        let bytes = encode_chunk(&events);
        assert!(
            bytes.len() < events.len() * RECORD_BYTES / 4,
            "compressed {} bytes vs raw {}",
            bytes.len(),
            events.len() * RECORD_BYTES
        );
        let (decoded, _) = decode_chunk(&bytes, events.len() as u32, 0).unwrap();
        assert_eq!(decoded, events);
    }

    #[test]
    fn wrong_event_count_is_detected() {
        let events = sample(100);
        let bytes = encode_chunk(&events);
        let err = decode_chunk(&bytes, 99, 0).unwrap_err();
        assert!(matches!(err, TraceFileError::BadGrammar { .. }), "{err}");
        let err = decode_chunk(&bytes, 101, 0).unwrap_err();
        assert!(matches!(err, TraceFileError::BadGrammar { .. }), "{err}");
    }

    #[test]
    fn cyclic_grammar_errors_instead_of_looping() {
        // dict: 1 entry; rules: start -> rule 1, rule 1 -> rule 1 (cycle).
        let ev = sample(1);
        let mut rec = [0u8; RECORD_BYTES];
        encode_record(&ev[0], &mut rec);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&rec);
        bytes.extend_from_slice(&2u32.to_le_bytes()); // two rules
        bytes.extend_from_slice(&1u32.to_le_bytes()); // start: 1 symbol
        bytes.extend_from_slice(&(RULE_BIT | 1).to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes()); // rule 1: 1 symbol
        bytes.extend_from_slice(&(RULE_BIT | 1).to_le_bytes()); // itself
        let err = decode_chunk(&bytes, 4, 0).unwrap_err();
        assert!(matches!(err, TraceFileError::BadGrammar { .. }), "{err}");
    }

    #[test]
    fn truncated_payload_errors() {
        let events = sample(64);
        let bytes = encode_chunk(&events);
        for cut in [0, 2, 5, bytes.len() / 2, bytes.len() - 1] {
            let err = decode_chunk(&bytes[..cut], 64, 3).unwrap_err();
            match err {
                TraceFileError::BadGrammar { chunk, .. }
                | TraceFileError::BadRecord { chunk, .. } => assert_eq!(chunk, 3),
                other => panic!("unexpected error {other}"),
            }
        }
    }
}
