/root/repo/target/release/deps/micro-49345e3b18ddc587.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/release/deps/libmicro-49345e3b18ddc587.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
