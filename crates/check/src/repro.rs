//! The `DMNOCHK1` reproducer file format.
//!
//! A sibling of the flight recorder's `DMNOFLT1` format (same header
//! discipline: magic, version, reserved word, length-prefixed strings,
//! little-endian fixed-width records). A reproducer pins everything a
//! failure needs to replay exactly: the system label, the oracle that
//! fired, the generator and seed that produced the original trace, and
//! the shrunk event list itself. `domino-check --replay <file>` decodes
//! it and reruns the oracle.
//!
//! Layout:
//!
//! ```text
//! "DMNOCHK1"  magic, 8 bytes
//! u32         version (2; version-1 files still decode)
//! u32         batch size that manifested the failure (0 = unset;
//!             the reserved word of version-1 files)
//! str         system label     (u32 length + UTF-8 bytes)
//! str         oracle name
//! str         generator name
//! u64         fuzzer seed
//! u64         event count
//! records     24 bytes each: pc u64, addr u64, gap u32,
//!             kind u8 (0 = read, 1 = write), dependent u8, pad u16
//! ```

use domino_trace::addr::{Addr, Pc};
use domino_trace::event::{AccessEvent, AccessKind};

/// File magic.
pub const MAGIC: &[u8; 8] = b"DMNOCHK1";
/// Current format version. Version 2 repurposed the reserved header
/// word as the failing batch size; version-1 files decode with no
/// recorded batch.
pub const VERSION: u32 = 2;
/// Bytes per event record.
const RECORD_BYTES: usize = 24;

/// A decoded (or to-be-written) failure reproducer.
#[derive(Debug, Clone, PartialEq)]
pub struct Reproducer {
    /// Roster label of the failing system ([`domino_sim::roster::System::label`]).
    pub system: String,
    /// Name of the oracle that fired.
    pub oracle: String,
    /// Name of the generator that produced the original trace.
    pub generator: String,
    /// Fuzzer seed of the failing case.
    pub seed: u64,
    /// Batch size the violation manifested under (`None` for
    /// batch-insensitive oracles and version-1 files). Replay reruns
    /// the batched engines at exactly this chunking.
    pub batch: Option<u32>,
    /// The shrunk trace.
    pub events: Vec<AccessEvent>,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Bounded little-endian reader.
struct Cursor<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.b.len() {
            return Err(format!(
                "truncated file: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.b.len() - self.pos
            ));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("bad UTF-8 in header: {e}"))
    }
}

impl Reproducer {
    /// Serializes to the `DMNOCHK1` byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.events.len() * RECORD_BYTES);
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, VERSION);
        put_u32(&mut out, self.batch.unwrap_or(0));
        put_str(&mut out, &self.system);
        put_str(&mut out, &self.oracle);
        put_str(&mut out, &self.generator);
        put_u64(&mut out, self.seed);
        put_u64(&mut out, self.events.len() as u64);
        for ev in &self.events {
            put_u64(&mut out, ev.pc.raw());
            put_u64(&mut out, ev.addr.raw());
            put_u32(&mut out, ev.gap_insts);
            out.push(match ev.kind {
                AccessKind::Read => 0,
                AccessKind::Write => 1,
            });
            out.push(u8::from(ev.dependent));
            out.extend_from_slice(&0u16.to_le_bytes());
        }
        out
    }

    /// Decodes a `DMNOCHK1` file, validating magic, version, and
    /// record contents.
    pub fn from_bytes(b: &[u8]) -> Result<Reproducer, String> {
        let mut c = Cursor { b, pos: 0 };
        if c.take(8)? != MAGIC {
            return Err("bad magic: not a domino-check reproducer".into());
        }
        let version = c.u32()?;
        if !(1..=VERSION).contains(&version) {
            return Err(format!("unsupported reproducer version {version}"));
        }
        // Version 1 wrote a zeroed reserved word here; version 2 stores
        // the failing batch size in it (still 0 when unset).
        let batch = match c.u32()? {
            0 => None,
            b => Some(b),
        };
        let system = c.string()?;
        let oracle = c.string()?;
        let generator = c.string()?;
        let seed = c.u64()?;
        let count = c.u64()? as usize;
        let mut events = Vec::with_capacity(count.min(1 << 20));
        for i in 0..count {
            let pc = c.u64()?;
            let addr = c.u64()?;
            let gap = c.u32()?;
            let kind = match c.take(1)?[0] {
                0 => AccessKind::Read,
                1 => AccessKind::Write,
                k => return Err(format!("record {i}: unknown access kind {k}")),
            };
            let dependent = match c.take(1)?[0] {
                0 => false,
                1 => true,
                d => return Err(format!("record {i}: bad dependent flag {d}")),
            };
            let _pad = c.u16()?;
            events.push(AccessEvent {
                pc: Pc::new(pc),
                addr: Addr::new(addr),
                kind,
                gap_insts: gap,
                dependent,
            });
        }
        if c.pos != b.len() {
            return Err(format!("{} trailing bytes after records", b.len() - c.pos));
        }
        Ok(Reproducer {
            system,
            oracle,
            generator,
            seed,
            batch,
            events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Reproducer {
        Reproducer {
            system: "Domino".into(),
            oracle: "cross_engine".into(),
            generator: "pointer-chase".into(),
            seed: 0xD0C5,
            batch: Some(64),
            events: vec![
                AccessEvent {
                    pc: Pc::new(0x500_000),
                    addr: Addr::new(u64::MAX - 63),
                    kind: AccessKind::Read,
                    gap_insts: 7,
                    dependent: true,
                },
                AccessEvent {
                    pc: Pc::new(1),
                    addr: Addr::new(64),
                    kind: AccessKind::Write,
                    gap_insts: 0,
                    dependent: false,
                },
            ],
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let r = sample();
        let decoded = Reproducer::from_bytes(&r.to_bytes()).expect("valid file");
        assert_eq!(decoded, r);
    }

    #[test]
    fn record_size_is_stable() {
        let r = sample();
        let empty = Reproducer {
            events: Vec::new(),
            ..r.clone()
        };
        assert_eq!(
            r.to_bytes().len() - empty.to_bytes().len(),
            2 * RECORD_BYTES
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut b = sample().to_bytes();
        b[0] = b'X';
        assert!(Reproducer::from_bytes(&b).unwrap_err().contains("magic"));
    }

    #[test]
    fn bad_version_rejected() {
        let mut b = sample().to_bytes();
        b[8] = 99;
        assert!(Reproducer::from_bytes(&b).unwrap_err().contains("version"));
        b[8] = 0;
        assert!(Reproducer::from_bytes(&b).unwrap_err().contains("version"));
    }

    #[test]
    fn version_1_decodes_without_batch() {
        // A v2 file with no batch recorded is byte-identical to v1
        // except for the version word, so patching it back reproduces a
        // real v1 file exactly.
        let r = Reproducer {
            batch: None,
            ..sample()
        };
        let mut b = r.to_bytes();
        b[8] = 1;
        let decoded = Reproducer::from_bytes(&b).expect("v1 files stay readable");
        assert_eq!(decoded, r);
    }

    #[test]
    fn batch_survives_roundtrip() {
        let r = sample();
        assert_eq!(r.batch, Some(64));
        let decoded = Reproducer::from_bytes(&r.to_bytes()).expect("valid file");
        assert_eq!(decoded.batch, Some(64));
    }

    #[test]
    fn truncation_rejected() {
        let b = sample().to_bytes();
        assert!(Reproducer::from_bytes(&b[..b.len() - 3])
            .unwrap_err()
            .contains("truncated"));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut b = sample().to_bytes();
        b.push(0);
        assert!(Reproducer::from_bytes(&b).unwrap_err().contains("trailing"));
    }

    #[test]
    fn bad_kind_rejected() {
        let r = Reproducer {
            events: vec![AccessEvent::read(Pc::new(1), Addr::new(0))],
            ..sample()
        };
        let mut b = r.to_bytes();
        let kind_off = b.len() - RECORD_BYTES + 20;
        b[kind_off] = 9;
        assert!(Reproducer::from_bytes(&b).unwrap_err().contains("kind"));
    }
}
