//! The naive two-index-table Domino (paper §III-A, last paragraph).
//!
//! Before presenting the practical EIT design, the paper sketches the
//! obvious implementation of one-and-two-address lookup: keep *two*
//! Index Tables — one keyed by a single triggering event, one keyed by
//! the pair — plus the History Table. It works, but costs one extra
//! off-chip access per stream (two index reads instead of one) and its
//! first prefetch still waits two round trips, "and as such,
//! significantly wastes precious off-chip bandwidth".
//!
//! [`NaiveDomino`] implements that strawman so the ablation benches can
//! measure exactly what the EIT saves: compare its metadata traffic and
//! `delay_trips` against [`crate::Domino`] at equal coverage.

use domino_trace::FxHashMap;

use domino_mem::history::{HistoryTable, ROW_ENTRIES};
use domino_mem::interface::{PrefetchRequest, PrefetchSink, Prefetcher, TriggerEvent, TriggerKind};
use domino_mem::metadata::UpdateSampler;
use domino_mem::streams::{top_up, StreamTable};
use domino_trace::addr::LineAddr;

use crate::config::DominoConfig;

type PairKey = (LineAddr, LineAddr);

/// The strawman one-and-two-address prefetcher with two Index Tables.
#[derive(Debug)]
pub struct NaiveDomino {
    cfg: DominoConfig,
    ht: HistoryTable,
    /// Single-address IT: line → HT position of its last occurrence.
    single: FxHashMap<LineAddr, u64>,
    /// Pair IT: (prev, line) → HT position of `line`.
    pair: FxHashMap<PairKey, u64>,
    streams: StreamTable<PairKey>,
    sampler: UpdateSampler,
    prev: Option<LineAddr>,
    /// Single-address prediction awaiting the next event.
    speculative: Option<(LineAddr, u32)>,
    next_spec_id: u32,
}

const SPEC_ID_BASE: u32 = 0x2000_0000;

impl NaiveDomino {
    /// Creates the strawman prefetcher. The EIT geometry in `cfg` is
    /// ignored (this design has hash-map index tables).
    pub fn new(cfg: DominoConfig) -> Self {
        cfg.validate();
        NaiveDomino {
            ht: HistoryTable::new(cfg.ht_entries),
            single: FxHashMap::default(),
            pair: FxHashMap::default(),
            streams: StreamTable::new(cfg.max_streams),
            sampler: UpdateSampler::new(cfg.sampling_probability, cfg.seed ^ 0x7A17E),
            cfg,
            prev: None,
            speculative: None,
            next_spec_id: SPEC_ID_BASE,
        }
    }

    fn log(&mut self, line: LineAddr, stream_head: bool, sink: &mut dyn PrefetchSink) -> u64 {
        let pos = self.ht.append(line, stream_head);
        if (pos + 1).is_multiple_of(ROW_ENTRIES as u64) {
            sink.metadata_write(1);
        }
        pos
    }

    /// Sampled updates to both index tables. Each is a row
    /// fetch-modify-writeback, and there are two tables — double the
    /// practical design's update traffic.
    fn record(
        &mut self,
        prev: Option<LineAddr>,
        line: LineAddr,
        pos: u64,
        sink: &mut dyn PrefetchSink,
    ) {
        if self.sampler.sample() {
            sink.metadata_read(1);
            self.single.insert(line, pos);
            sink.metadata_write(1);
            if let Some(p) = prev {
                sink.metadata_read(1);
                self.pair.insert((p, line), pos);
                sink.metadata_write(1);
            }
        }
    }
}

impl Prefetcher for NaiveDomino {
    fn name(&self) -> &str {
        "Domino-Naive"
    }

    fn reserve(&mut self, expected_events: usize) {
        self.ht.reserve(expected_events);
    }

    fn on_trigger(&mut self, event: &TriggerEvent, sink: &mut dyn PrefetchSink) {
        let line = event.line;
        let prev = self.prev.replace(line);
        let speculative = self.speculative.take();
        if let Some((spec, id)) = speculative {
            if spec != line {
                sink.discard_stream(id);
            }
        }
        // Stream continuation (hit or late miss).
        if self.streams.consume(line).is_some() {
            let pos = self.log(line, false, sink);
            let mut trips = 0u8;
            let s = self.streams.mru_mut().expect("consume promoted it");
            top_up(
                s,
                &self.ht,
                self.cfg.degree,
                line,
                self.cfg.stream_end_detection,
                &mut trips,
                sink,
            );
            self.record(prev, line, pos, sink);
            return;
        }
        if event.kind != TriggerKind::Miss {
            let pos = self.log(line, false, sink);
            self.record(prev, line, pos, sink);
            return;
        }
        let pos = self.log(line, true, sink);
        // Two-address lookup first: one IT read + (on match) one HT read.
        let mut trips = 1u8;
        sink.metadata_read(1);
        let pair_hit = prev.and_then(|p| {
            let key = (p, line);
            self.pair
                .get(&key)
                .copied()
                .filter(|&q| q < pos && self.ht.is_live(q + 1))
                .map(|q| (key, q))
        });
        if let Some((key, q)) = pair_hit {
            let (evicted, _) = self.streams.allocate(q + 1, None, key);
            if let Some(dead) = evicted {
                sink.discard_stream(dead.id);
            }
            let s = self.streams.mru_mut().expect("just allocated");
            top_up(
                s,
                &self.ht,
                self.cfg.degree,
                line,
                self.cfg.stream_end_detection,
                &mut trips,
                sink,
            );
        } else {
            // Fall back to the single-address IT: a SECOND index read —
            // the extra off-chip access the practical design eliminates.
            sink.metadata_read(1);
            trips += 1;
            if let Some(&p) = self.single.get(&line) {
                if self.ht.is_live(p + 1) {
                    if let Some(next) = self.ht.get(p + 1) {
                        if next.line != line {
                            // One HT read to obtain the successor.
                            sink.metadata_read(1);
                            trips += 1;
                            let id = self.next_spec_id;
                            self.next_spec_id =
                                SPEC_ID_BASE | (self.next_spec_id + 1) & 0x1FFF_FFFF;
                            sink.prefetch(PrefetchRequest {
                                line: next.line,
                                delay_trips: trips,
                                stream: Some(id),
                            });
                            self.speculative = Some((next.line, id));
                        }
                    }
                }
            }
        }
        self.record(prev, line, pos, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_mem::interface::CollectSink;
    use domino_trace::addr::Pc;

    fn cfg() -> DominoConfig {
        DominoConfig {
            sampling_probability: 1.0,
            stream_end_detection: false,
            ht_entries: 0,
            eit: crate::eit::EitConfig::unbounded(),
            ..DominoConfig::default()
        }
    }

    fn miss(line: u64) -> TriggerEvent {
        TriggerEvent::miss(Pc::new(0), LineAddr::new(line))
    }

    fn run(d: &mut NaiveDomino, lines: &[u64]) -> Vec<(u64, u8)> {
        let mut out = Vec::new();
        for &l in lines {
            let mut sink = CollectSink::new();
            d.on_trigger(&miss(l), &mut sink);
            out.extend(sink.requests.iter().map(|r| (r.line.raw(), r.delay_trips)));
        }
        out
    }

    #[test]
    fn pair_match_replays_stream() {
        let mut d = NaiveDomino::new(cfg().with_degree(2));
        run(&mut d, &[1, 2, 3, 4, 5]);
        let issued = run(&mut d, &[1, 2]);
        let lines: Vec<u64> = issued.iter().map(|&(l, _)| l).collect();
        assert!(lines.contains(&3), "pair (1,2) must replay: {lines:?}");
    }

    #[test]
    fn single_fallback_costs_three_trips() {
        let mut d = NaiveDomino::new(cfg().with_degree(1));
        run(&mut d, &[1, 2, 3, 4, 5]);
        // Fresh miss on 1 (pair (5,1) unknown): falls back to the single
        // IT, paying pair-IT read + single-IT read + HT read.
        let issued = run(&mut d, &[1]);
        assert_eq!(issued.len(), 1);
        assert_eq!(issued[0].0, 2);
        assert_eq!(issued[0].1, 3, "two index reads + one history read");
    }

    #[test]
    fn costs_more_metadata_reads_than_practical_domino() {
        use crate::{Domino, DominoConfig};
        let seq: Vec<u64> = (0..200).map(|i| (i * 13) % 50).collect();
        let mut naive_reads = 0;
        let mut practical_reads = 0;
        let mut n = NaiveDomino::new(cfg());
        let mut p = Domino::new(DominoConfig {
            sampling_probability: 1.0,
            ht_entries: 0,
            eit: crate::eit::EitConfig::unbounded(),
            ..DominoConfig::default()
        });
        for &l in &seq {
            let mut sink = CollectSink::new();
            n.on_trigger(&miss(l), &mut sink);
            naive_reads += sink.meta_read_blocks;
            let mut sink = CollectSink::new();
            p.on_trigger(&miss(l), &mut sink);
            practical_reads += sink.meta_read_blocks;
        }
        assert!(
            naive_reads > practical_reads,
            "naive {naive_reads} vs practical {practical_reads}"
        );
    }
}
