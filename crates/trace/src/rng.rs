//! Deterministic random-number utilities for workload generation.
//!
//! Every generator in this crate is seeded explicitly so traces are exactly
//! reproducible — a requirement for comparing prefetchers on *the same* miss
//! sequence, as the paper does.
//!
//! The generator is a self-contained xoshiro256++ (public-domain algorithm
//! by Blackman and Vigna) seeded through SplitMix64, so the crate carries
//! no external dependency and builds in offline environments.

/// A small, fast, deterministic RNG with the sampling helpers the workload
/// models need.
///
/// ```
/// use domino_trace::rng::SimRng;
/// let mut a = SimRng::seed(7);
/// let mut b = SimRng::seed(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

/// SplitMix64 step, used only to expand the seed into the xoshiro state.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        let mut s = seed;
        SimRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Derives an independent child RNG; used to give each workload
    /// component its own stream so adding one component does not perturb
    /// the others.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.next_u64() ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        SimRng::seed(s)
    }

    /// Uniform draw in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        // Lemire's multiply-shift; bias is < bound / 2^64, irrelevant at
        // simulation bounds.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw in `[0, bound)` as `usize`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Geometric draw: number of trials until first success for success
    /// probability `1/mean`, i.e. a draw with the given mean, minimum 1.
    ///
    /// Used for burst lengths and instruction gaps.
    pub fn geometric(&mut self, mean: f64) -> u64 {
        if mean <= 1.0 {
            return 1;
        }
        let p = 1.0 / mean;
        let u: f64 = self.unit().max(f64::MIN_POSITIVE);
        let draw = (u.ln() / (1.0 - p).ln()).ceil();
        (draw as u64).max(1)
    }

    /// Uniform `f64` in `[0, 1)` (53 random mantissa bits).
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Raw 64-bit draw (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Picks a weighted index; weights need not be normalised.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "weighted() requires nonempty positive weights"
        );
        let mut draw = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            draw -= w;
            if draw < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SimRng::seed(99);
        let mut b = SimRng::seed(99);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        assert_ne!((a.next_u64(), a.next_u64()), (b.next_u64(), b.next_u64()));
    }

    #[test]
    fn forks_are_independent_of_sibling_use() {
        let mut root1 = SimRng::seed(5);
        let mut root2 = SimRng::seed(5);
        let mut f1 = root1.fork(1);
        let _unused = root2.fork(1);
        let mut f1b = SimRng::seed(5).fork(1);
        assert_eq!(f1.next_u64(), f1b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SimRng::seed(3);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
        }
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn below_zero_panics() {
        SimRng::seed(0).below(0);
    }

    #[test]
    fn unit_is_a_fraction() {
        let mut rng = SimRng::seed(12);
        for _ in 0..10_000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed(1);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn geometric_mean_is_close() {
        let mut rng = SimRng::seed(11);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| rng.geometric(8.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 8.0).abs() < 0.5, "observed mean {mean}");
    }

    #[test]
    fn geometric_minimum_is_one() {
        let mut rng = SimRng::seed(2);
        assert_eq!(rng.geometric(0.5), 1);
        for _ in 0..100 {
            assert!(rng.geometric(1.5) >= 1);
        }
    }

    #[test]
    fn weighted_respects_zero_weights() {
        let mut rng = SimRng::seed(4);
        for _ in 0..200 {
            let i = rng.weighted(&[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn weighted_rough_proportions() {
        let mut rng = SimRng::seed(8);
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            counts[rng.weighted(&[1.0, 3.0])] += 1;
        }
        let frac = counts[1] as f64 / 10_000.0;
        assert!((frac - 0.75).abs() < 0.03, "observed {frac}");
    }
}
