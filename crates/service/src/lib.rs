//! A sharded, concurrent, multi-tenant prefetch-metadata service.
//!
//! The paper's defining design choice is that correlation metadata lives
//! **off-chip** and is consulted over a request/response channel (§III).
//! This crate pushes that to its logical extreme: a long-running service
//! that fields thousands of independent tenant miss streams against
//! sharded metadata state, the shape such a component would take inside
//! a storage or caching tier serving heavy multi-tenant traffic.
//!
//! Architecture, in one pass through the modules:
//!
//! * [`session`] — one [`session::TenantSession`] per tenant: an owned
//!   prefetcher plus an incremental
//!   [`domino_sim::CoverageSession`], so a tenant's stream replayed in
//!   request-batch increments produces decisions **bit-identical** to a
//!   single-tenant `sim` run of the same stream (the batched-parity
//!   invariant from the coverage engine makes chunk boundaries
//!   irrelevant).
//! * [`shard`] — shard-per-thread state: each worker owns the sessions
//!   of the tenants hashed to it, so no lock ever guards metadata.
//!   Enforces the memory-pressure policy: per-tenant budgets reset a
//!   tenant's metadata in place; a shard-wide budget evicts whole
//!   sessions in LRU order.
//! * [`service`] — the front: tenant→shard hashing, bounded request
//!   queues, and the counted backpressure policy
//!   ([`service::OverloadPolicy::Block`] applies backpressure to the
//!   submitter, [`service::OverloadPolicy::Shed`] rejects and counts).
//! * [`load`] — a deterministic load generator synthesizing tenant
//!   streams as windows into the shared Table-II workload traces
//!   ([`domino_sim::trace_cache::shared_tenant_slice`]).
//! * [`report`] — the schema-versioned `SERVICE_report.json`: per-shard
//!   throughput plus p50/p95/p99 request latency out of
//!   [`domino_telemetry::FixedHistogram`]s.
//! * [`obs`] — the **live observability plane** (opt-in via
//!   [`ServiceConfig::obs`]): per-shard
//!   [`domino_telemetry::MetricsRing`]s sampled on an event-count
//!   cadence, deterministic 1-in-N request span tracing
//!   ([`domino_telemetry::SpanRing`]), and the `OBS_report.json`
//!   renderer. `domino-top` tails the serialized rings.
//! * [`slo`] — declarative SLO thresholds (p99 latency, shed ratio,
//!   eviction rate) with fast/slow-window burn-rate evaluation;
//!   `domino-serve --slo` exits nonzero on breach.
//!
//! Correctness is anchored by the `domino-check` `service_equivalence`
//! oracle tier: an N-tenant sharded run must match N independent
//! single-tenant runs per tenant — same coverage report bytes, same
//! decision digest, same metadata membership. The observability plane
//! gets its own `observability_audit` tier (span chronology,
//! interval-counter conservation) and must leave disarmed runs
//! byte-identical.

pub mod load;
pub mod obs;
pub mod report;
pub mod service;
pub mod session;
pub mod shard;
pub mod slo;

pub use load::{run_load, tenant_stream, LoadPlan, LoadReport};
pub use obs::{
    latency_from_columns, render_obs_report, shard_metric_specs, ObsConfig, ObsFront,
    ShardObsOutcome, SpanStart, OBS_SCHEMA,
};
pub use report::{render_report, LATENCY_BOUNDS_NS, SCHEMA};
pub use service::{MetadataService, OverloadPolicy, ServiceClient, ServiceConfig, ServiceResult};
pub use session::{TenantFinal, TenantSession};
pub use shard::{BatchRequest, ShardOutcome, ShardStats};
pub use slo::{Objective, SloReport, SloSpec};

/// The `domino-serve` exit decision, factored out so the satellite exit
/// paths are unit-testable: a run fails when `--fail-on-shed` was asked
/// and any work was shed, or when the SLO evaluation breached.
pub fn run_failed(total_shed: u64, fail_on_shed: bool, slo_breached: bool) -> bool {
    (fail_on_shed && total_shed > 0) || slo_breached
}

#[cfg(test)]
mod exit_tests {
    use super::run_failed;

    #[test]
    fn shed_work_fails_only_when_asked() {
        assert!(!run_failed(5, false, false), "pre-PR default: shed ignored");
        assert!(run_failed(5, true, false), "--fail-on-shed with shed work");
        assert!(!run_failed(0, true, false), "clean run passes");
    }

    #[test]
    fn slo_breach_fails_regardless_of_shed() {
        assert!(run_failed(0, false, true));
        assert!(run_failed(3, true, true));
        assert!(!run_failed(0, false, false));
    }
}
