//! `domino-ingest`: create, convert, compress, and verify `DMNOTRC1`
//! trace files (see `domino_trace::stream` and DESIGN.md §12).
//!
//! ```text
//! domino-ingest synth WORKLOAD --events N [--seed N] [--chunk-events N]
//!               [--compress] --out FILE
//! domino-ingest champsim IN.champsim OUT.dmno [--chunk-events N] [--compress]
//! domino-ingest export-champsim IN.dmno OUT.champsim
//! domino-ingest compress IN.dmno OUT.dmno
//! domino-ingest inspect FILE
//! domino-ingest verify FILE [FILE2]
//! domino-ingest list-workloads
//! ```
//!
//! `verify` decodes every chunk (digest-checked) and, given a second file,
//! additionally requires both to decode to the identical event sequence —
//! the raw-vs-compressed cross-check the ingest smoke stage runs.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use domino_trace::stream::{
    format::write_trace_file, read_champsim, write_champsim, ChampSimRecord, Codec, TraceReader,
    TraceWriter, DEFAULT_CHUNK_EVENTS, RECORD_BYTES,
};
use domino_trace::workload::{catalog, WorkloadSpec};

fn usage() -> ExitCode {
    eprintln!(
        "usage: domino-ingest synth WORKLOAD --events N [--seed N] [--chunk-events N]\n\
         \x20                    [--compress] --out FILE\n\
         \x20      domino-ingest champsim IN.champsim OUT.dmno [--chunk-events N] [--compress]\n\
         \x20      domino-ingest export-champsim IN.dmno OUT.champsim\n\
         \x20      domino-ingest compress IN.dmno OUT.dmno\n\
         \x20      domino-ingest inspect FILE\n\
         \x20      domino-ingest verify FILE [FILE2]\n\
         \x20      domino-ingest list-workloads"
    );
    ExitCode::FAILURE
}

/// Case/spacing-insensitive workload lookup: `oltp`, `web-search`,
/// `"Web Search"` all resolve.
fn find_workload(name: &str) -> Option<WorkloadSpec> {
    let norm = |s: &str| {
        s.chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .map(|c| c.to_ascii_lowercase())
            .collect::<String>()
    };
    let want = norm(name);
    catalog::all().into_iter().find(|w| norm(&w.name) == want)
}

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("domino-ingest: error: {msg}");
    ExitCode::FAILURE
}

fn synth(args: &[String]) -> ExitCode {
    let mut it = args.iter();
    let Some(workload) = it.next() else {
        return usage();
    };
    let Some(spec) = find_workload(workload) else {
        let names = catalog::all()
            .iter()
            .map(|w| w.name.clone())
            .collect::<Vec<_>>()
            .join(", ");
        return fail(format!("unknown workload {workload:?}; one of: {names}"));
    };
    let mut events: Option<u64> = None;
    let mut seed = 42u64;
    let mut chunk_events = DEFAULT_CHUNK_EVENTS;
    let mut codec = Codec::Raw;
    let mut out: Option<PathBuf> = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--events" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => events = Some(v),
                None => return usage(),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage(),
            },
            "--chunk-events" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => chunk_events = v,
                _ => return usage(),
            },
            "--compress" => codec = Codec::Sequitur,
            "--out" => match it.next() {
                Some(f) => out = Some(PathBuf::from(f)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let (Some(events), Some(out)) = (events, out) else {
        return usage();
    };
    let mut writer = match TraceWriter::create(&out, chunk_events, codec) {
        Ok(w) => w,
        Err(e) => return fail(e),
    };
    let mut gen = spec.generator(seed);
    for _ in 0..events {
        let ev = gen.next().expect("workload generators are infinite");
        if let Err(e) = writer.push(ev) {
            return fail(e);
        }
    }
    match writer.finish() {
        Ok(summary) => {
            println!(
                "wrote {}: {} events, {} chunks, {} bytes ({} codec, {:.2} bytes/event)",
                out.display(),
                summary.events,
                summary.chunks,
                summary.file_bytes,
                codec.label(),
                summary.file_bytes as f64 / summary.events.max(1) as f64,
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}

fn reencode(input: &Path, output: &Path, chunk_events: Option<u32>, codec: Codec) -> ExitCode {
    let mut reader = match TraceReader::open(input) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    let chunk_events = chunk_events.unwrap_or_else(|| reader.chunk_events());
    let mut writer = match TraceWriter::create(output, chunk_events, codec) {
        Ok(w) => w,
        Err(e) => return fail(e),
    };
    let mut chunk = Vec::new();
    for idx in 0..reader.chunk_count() {
        if let Err(e) = reader.read_chunk_into(idx, &mut chunk) {
            return fail(e);
        }
        if let Err(e) = writer.write_events(&chunk) {
            return fail(e);
        }
    }
    match writer.finish() {
        Ok(summary) => {
            let raw_bytes = summary.events * RECORD_BYTES as u64;
            println!(
                "wrote {}: {} events, {} chunks, {} bytes ({} codec, {:.1}% of raw)",
                output.display(),
                summary.events,
                summary.chunks,
                summary.file_bytes,
                codec.label(),
                100.0 * summary.file_bytes as f64 / raw_bytes.max(1) as f64,
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}

fn champsim_import(args: &[String]) -> ExitCode {
    let mut it = args.iter();
    let (Some(input), Some(output)) = (it.next(), it.next()) else {
        return usage();
    };
    let mut chunk_events = DEFAULT_CHUNK_EVENTS;
    let mut codec = Codec::Raw;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--chunk-events" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => chunk_events = v,
                _ => return usage(),
            },
            "--compress" => codec = Codec::Sequitur,
            _ => return usage(),
        }
    }
    let file = match File::open(input) {
        Ok(f) => f,
        Err(e) => return fail(format!("{input}: {e}")),
    };
    let records = match read_champsim(BufReader::new(file)) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    let events: Vec<_> = records.iter().map(|r| r.to_event()).collect();
    match write_trace_file(Path::new(output.as_str()), &events, chunk_events, codec) {
        Ok(summary) => {
            println!(
                "imported {} champsim records -> {}: {} chunks, {} bytes",
                records.len(),
                output,
                summary.chunks,
                summary.file_bytes
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}

fn champsim_export(input: &str, output: &str) -> ExitCode {
    let mut reader = match TraceReader::open(Path::new(input)) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    let sink = match File::create(output) {
        Ok(f) => BufWriter::new(f),
        Err(e) => return fail(format!("{output}: {e}")),
    };
    let mut sink = sink;
    let mut chunk = Vec::new();
    let mut records = Vec::new();
    let mut total = 0u64;
    for idx in 0..reader.chunk_count() {
        if let Err(e) = reader.read_chunk_into(idx, &mut chunk) {
            return fail(e);
        }
        records.clear();
        records.extend(chunk.iter().map(ChampSimRecord::from_event));
        if let Err(e) = write_champsim(&mut sink, &records) {
            return fail(e);
        }
        total += records.len() as u64;
    }
    println!("exported {total} champsim records -> {output}");
    ExitCode::SUCCESS
}

fn inspect(path: &str) -> ExitCode {
    let reader = match TraceReader::open(Path::new(path)) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    let raw_bytes = reader.events() * RECORD_BYTES as u64;
    let payload = reader.payload_bytes();
    println!("{path}:");
    println!("  codec          {}", reader.codec().label());
    println!("  events         {}", reader.events());
    println!("  chunk_events   {}", reader.chunk_events());
    println!("  chunks         {}", reader.chunk_count());
    println!("  payload bytes  {payload}");
    println!(
        "  vs raw         {:.1}%",
        100.0 * payload as f64 / raw_bytes.max(1) as f64
    );
    let show = reader.chunk_count().min(4);
    for idx in 0..show {
        println!(
            "  chunk {idx}: {} events, {} bytes",
            reader.chunk_len(idx),
            reader.chunk_bytes(idx)
        );
    }
    if reader.chunk_count() > show {
        println!("  ... {} more chunks", reader.chunk_count() - show);
    }
    ExitCode::SUCCESS
}

fn verify(paths: &[String]) -> ExitCode {
    let mut decoded: Vec<Vec<domino_trace::AccessEvent>> = Vec::new();
    for path in paths {
        let mut reader = match TraceReader::open(Path::new(path)) {
            Ok(r) => r,
            Err(e) => return fail(format!("{path}: {e}")),
        };
        match reader.read_all() {
            Ok(events) => {
                println!(
                    "{path}: OK — {} events in {} chunks, all digests verified",
                    events.len(),
                    reader.chunk_count()
                );
                decoded.push(events);
            }
            Err(e) => return fail(format!("{path}: {e}")),
        }
    }
    if decoded.len() == 2 {
        if decoded[0] != decoded[1] {
            return fail("files decode to different event sequences");
        }
        println!("both files decode to the identical event sequence");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "synth" => synth(rest),
        "champsim" => champsim_import(rest),
        "export-champsim" => match rest {
            [input, output] => champsim_export(input, output),
            _ => usage(),
        },
        "compress" => match rest {
            [input, output] => reencode(Path::new(input), Path::new(output), None, Codec::Sequitur),
            _ => usage(),
        },
        "inspect" => match rest {
            [path] => inspect(path),
            _ => usage(),
        },
        "verify" => match rest {
            paths @ ([_] | [_, _]) => verify(paths),
            _ => usage(),
        },
        "list-workloads" => {
            for w in catalog::all() {
                println!("{}", w.name);
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
