//! Benchmark-only crate: see the `benches/` directory (figures, ablations, micro).
