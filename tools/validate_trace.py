#!/usr/bin/env python3
"""Validates binary flight-recorder traces emitted by figure sweeps.

Usage: validate_trace.py <dir-or-file>...

Accepts directories (validates every trace_*.bin) or individual files.
An independent stdlib-only reimplementation of the `DMNOFLT1` format
documented in crates/telemetry/src/trace.rs, so format drift between
the Rust writer and this checker fails CI. Checks per file:

  * magic, version, and UTF-8 run labels;
  * the record array is exactly as long as the header says, with no
    trailing bytes, and every record has a known event kind and cause;
  * conservation: the six loss buckets sum to the demand-miss count;
  * when the ring did not wrap, replaying the stored miss-classifying
    events reproduces the header attribution exactly.
"""

import struct
import sys
from pathlib import Path

MAGIC = b"DMNOFLT1"
VERSION = 1
RECORD_BYTES = 32

# EventKind repr(u8) values (trace.rs).
KINDS = set(range(1, 11))
DEMAND_HIT, LATE_ARRIVAL, DEMAND_MISS = 5, 6, 10
# LossCause repr(u8) values.
CAUSES = set(range(0, 7))
CAUSE_EVICTED, CAUSE_DROPPED, CAUSE_MISPREDICTED = 3, 4, 5

BUCKETS = ("covered", "late", "evicted_unused", "dropped", "mispredicted", "no_metadata")


def fail(path, msg):
    sys.exit(f"validate_trace: {path}: {msg}")


class Cursor:
    def __init__(self, b):
        self.b = b
        self.pos = 0

    def take(self, n):
        if self.pos + n > len(self.b):
            raise ValueError(
                f"truncated: need {n} bytes at offset {self.pos}, "
                f"have {len(self.b) - self.pos}"
            )
        s = self.b[self.pos : self.pos + n]
        self.pos += n
        return s

    def u32(self):
        return struct.unpack("<I", self.take(4))[0]

    def u64(self):
        return struct.unpack("<Q", self.take(8))[0]

    def string(self):
        return self.take(self.u32()).decode("utf-8")


def check_trace(path):
    b = path.read_bytes()
    c = Cursor(b)
    try:
        if c.take(8) != MAGIC:
            fail(path, "bad magic: not a domino flight-recorder trace")
        version = c.u32()
        if version != VERSION:
            fail(path, f"unsupported trace version {version}")
        c.u32()  # reserved
        labels = {k: c.string() for k in ("workload", "component", "kind")}
        for k, v in labels.items():
            if not v:
                fail(path, f"empty {k} label")
        c.u64(), c.u64(), c.u64()  # events, seed, warmup
        capacity = c.u64()
        recorded = c.u64()
        demand_misses = c.u64()
        header = {name: c.u64() for name in BUCKETS}
        count = c.u64()
        if len(b) - c.pos != count * RECORD_BYTES:
            fail(
                path,
                f"header says {count} records but {len(b) - c.pos} payload "
                f"bytes remain ({count * RECORD_BYTES} expected)",
            )
        replay = dict.fromkeys(BUCKETS, 0)
        replay_misses = 0
        for i in range(count):
            kind, cause, _pad, _stream, _time, _line, _aux = struct.unpack(
                "<BBHIQQQ", c.take(RECORD_BYTES)
            )
            if kind not in KINDS:
                fail(path, f"record {i}: unknown event kind {kind}")
            if cause not in CAUSES:
                fail(path, f"record {i}: unknown loss cause {cause}")
            if kind == DEMAND_HIT:
                replay_misses += 1
                replay["covered"] += 1
            elif kind == LATE_ARRIVAL:
                replay_misses += 1
                replay["late"] += 1
            elif kind == DEMAND_MISS:
                replay_misses += 1
                if cause == CAUSE_EVICTED:
                    replay["evicted_unused"] += 1
                elif cause == CAUSE_DROPPED:
                    replay["dropped"] += 1
                elif cause == CAUSE_MISPREDICTED:
                    replay["mispredicted"] += 1
                else:
                    replay["no_metadata"] += 1
    except ValueError as e:
        fail(path, str(e))
    if sum(header.values()) != demand_misses:
        fail(
            path,
            f"attribution not conserved: buckets sum to {sum(header.values())} "
            f"but demand_misses = {demand_misses}",
        )
    if recorded <= capacity:
        if count != recorded:
            fail(path, f"unwrapped ring stores {count} events but recorded {recorded}")
        if replay != header or replay_misses != demand_misses:
            fail(path, f"replayed attribution {replay} disagrees with header {header}")
    return demand_misses


def check_dir(d):
    files = sorted(d.glob("trace_*.bin"))
    if not files:
        fail(d, "no trace_*.bin found")
    for p in files:
        check_trace(p)
    print(f"validate_trace: {d}: {len(files)} trace(s) OK")


def main(argv):
    if len(argv) < 2:
        sys.exit(__doc__.strip())
    for arg in argv[1:]:
        path = Path(arg)
        if path.is_dir():
            check_dir(path)
        else:
            check_trace(path)
            print(f"validate_trace: {path}: OK")


if __name__ == "__main__":
    main(sys.argv)
