/root/repo/target/release/examples/bandwidth-91475afb7e071922.d: examples/bandwidth.rs Cargo.toml

/root/repo/target/release/examples/libbandwidth-91475afb7e071922.rmeta: examples/bandwidth.rs Cargo.toml

examples/bandwidth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
