//! Trace statistics used for sanity checks and workload calibration.

use crate::hash::FxHashMap;

use crate::addr::{LineAddr, Pc};
use crate::event::AccessEvent;

/// Aggregate statistics over a trace prefix.
///
/// ```
/// use domino_trace::{stats::TraceStats, workload::catalog};
///
/// let stats = TraceStats::from_events(catalog::oltp().generator(1).take(20_000));
/// assert_eq!(stats.accesses, 20_000);
/// assert!(stats.unique_lines > 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceStats {
    /// Total accesses observed.
    pub accesses: u64,
    /// Reads observed.
    pub reads: u64,
    /// Distinct cache lines touched.
    pub unique_lines: usize,
    /// Distinct PCs observed.
    pub unique_pcs: usize,
    /// Accesses flagged as pointer-dependent.
    pub dependent: u64,
    /// Sum of instruction gaps (for misses-per-kilo-instruction estimates).
    pub total_gap_insts: u64,
    /// Count of consecutive line pairs `(a, b)` seen more than once —
    /// a cheap proxy for temporal repetitiveness.
    pub repeated_pairs: usize,
    /// Total distinct consecutive line pairs.
    pub unique_pairs: usize,
}

impl TraceStats {
    /// Computes statistics over an event stream.
    pub fn from_events<I: IntoIterator<Item = AccessEvent>>(events: I) -> Self {
        let mut stats = TraceStats::default();
        let mut lines: FxHashMap<LineAddr, ()> = FxHashMap::default();
        let mut pcs: FxHashMap<Pc, ()> = FxHashMap::default();
        let mut pairs: FxHashMap<(u64, u64), u32> = FxHashMap::default();
        let mut prev: Option<LineAddr> = None;
        for ev in events {
            stats.accesses += 1;
            if ev.kind.is_read() {
                stats.reads += 1;
            }
            if ev.dependent {
                stats.dependent += 1;
            }
            stats.total_gap_insts += u64::from(ev.gap_insts);
            let line = ev.line();
            lines.insert(line, ());
            pcs.insert(ev.pc, ());
            if let Some(p) = prev {
                *pairs.entry((p.raw(), line.raw())).or_default() += 1;
            }
            prev = Some(line);
        }
        stats.unique_lines = lines.len();
        stats.unique_pcs = pcs.len();
        stats.unique_pairs = pairs.len();
        stats.repeated_pairs = pairs.values().filter(|&&c| c > 1).count();
        stats
    }

    /// Fraction of consecutive pairs that recur — the repetitiveness proxy.
    pub fn pair_repeat_fraction(&self) -> f64 {
        if self.unique_pairs == 0 {
            0.0
        } else {
            self.repeated_pairs as f64 / self.unique_pairs as f64
        }
    }

    /// Mean instructions between accesses.
    pub fn mean_gap(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_gap_insts as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::catalog;

    #[test]
    fn empty_trace_yields_zeroes() {
        let stats = TraceStats::from_events(std::iter::empty());
        assert_eq!(stats.accesses, 0);
        assert_eq!(stats.pair_repeat_fraction(), 0.0);
        assert_eq!(stats.mean_gap(), 0.0);
    }

    #[test]
    fn oltp_is_more_repetitive_than_sat_solver() {
        let oltp = TraceStats::from_events(catalog::oltp().generator(3).take(60_000));
        let sat = TraceStats::from_events(catalog::sat_solver().generator(3).take(60_000));
        assert!(
            oltp.pair_repeat_fraction() > sat.pair_repeat_fraction(),
            "oltp {} vs sat {}",
            oltp.pair_repeat_fraction(),
            sat.pair_repeat_fraction()
        );
    }

    #[test]
    fn gap_means_track_spec() {
        let spec = catalog::web_apache();
        let stats = TraceStats::from_events(spec.generator(9).take(50_000));
        let expected = spec.gap_mean;
        assert!(
            (stats.mean_gap() - expected).abs() / expected < 0.15,
            "gap mean {} expected ~{expected}",
            stats.mean_gap()
        );
    }

    #[test]
    fn pc_working_set_is_bounded() {
        let stats = TraceStats::from_events(catalog::oltp().generator(5).take(40_000));
        // Loop PCs + scan PCs + noise PCs: bounded, far below access count.
        assert!(stats.unique_pcs < 2000, "pcs {}", stats.unique_pcs);
        assert!(stats.unique_pcs > 10);
    }
}
