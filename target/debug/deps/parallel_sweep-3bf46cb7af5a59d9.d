/root/repo/target/debug/deps/parallel_sweep-3bf46cb7af5a59d9.d: tests/parallel_sweep.rs

/root/repo/target/debug/deps/parallel_sweep-3bf46cb7af5a59d9: tests/parallel_sweep.rs

tests/parallel_sweep.rs:
