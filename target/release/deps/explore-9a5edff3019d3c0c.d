/root/repo/target/release/deps/explore-9a5edff3019d3c0c.d: crates/sim/src/bin/explore.rs Cargo.toml

/root/repo/target/release/deps/libexplore-9a5edff3019d3c0c.rmeta: crates/sim/src/bin/explore.rs Cargo.toml

crates/sim/src/bin/explore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
