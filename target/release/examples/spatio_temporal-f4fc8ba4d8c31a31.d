/root/repo/target/release/examples/spatio_temporal-f4fc8ba4d8c31a31.d: examples/spatio_temporal.rs

/root/repo/target/release/examples/spatio_temporal-f4fc8ba4d8c31a31: examples/spatio_temporal.rs

examples/spatio_temporal.rs:
