//! Dependency-free benchmark harness.
//!
//! A minimal stand-in for criterion that works in offline build
//! environments: each benchmark runs a warm-up period, then as many
//! iterations as fit in a fixed time budget, and reports mean wall-clock
//! per iteration plus element throughput. Use from a `harness = false`
//! bench target:
//!
//! ```no_run
//! use domino_bench::Harness;
//! let mut h = Harness::new("micro");
//! h.bench("sum", 1_000, || (0u64..1_000).sum::<u64>());
//! ```

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark group: shared warm-up and measurement budget, aligned
/// console output.
pub struct Harness {
    group: String,
    warmup: Duration,
    budget: Duration,
    /// Collected (name, mean seconds per iter, elements per second).
    pub results: Vec<BenchResult>,
}

/// Outcome of a single benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub name: String,
    pub iters: u64,
    pub mean_secs: f64,
    pub elems_per_sec: f64,
}

impl Harness {
    pub fn new(group: &str) -> Self {
        println!("== {group} ==");
        Harness {
            group: group.to_string(),
            warmup: Duration::from_millis(300),
            budget: Duration::from_secs(2),
            results: Vec::new(),
        }
    }

    /// Overrides the per-benchmark warm-up period.
    pub fn warmup(mut self, d: Duration) -> Self {
        self.warmup = d;
        self
    }

    /// Overrides the per-benchmark measurement budget.
    pub fn budget(mut self, d: Duration) -> Self {
        self.budget = d;
        self
    }

    /// Runs `f` repeatedly for the time budget and prints mean latency
    /// and throughput (`items` elements processed per call).
    pub fn bench<T>(&mut self, name: &str, items: u64, mut f: impl FnMut() -> T) {
        // Warm-up: at least one call, then until the warm-up clock expires.
        let start = Instant::now();
        black_box(f());
        while start.elapsed() < self.warmup {
            black_box(f());
        }

        let mut iters = 0u64;
        let measure = Instant::now();
        while measure.elapsed() < self.budget {
            black_box(f());
            iters += 1;
        }
        let total = measure.elapsed().as_secs_f64();
        let mean = total / iters as f64;
        let throughput = items as f64 * iters as f64 / total;
        println!(
            "{:<44} {:>12}  {:>14}/s  ({iters} iters)",
            format!("{}/{}", self.group, name),
            format_time(mean),
            format_count(throughput),
        );
        self.results.push(BenchResult {
            name: name.to_string(),
            iters,
            mean_secs: mean,
            elems_per_sec: throughput,
        });
    }
}

/// Human-readable duration (s / ms / µs / ns).
pub fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Human-readable count (G / M / k).
pub fn format_count(n: f64) -> String {
    if n >= 1e9 {
        format!("{:.2} G", n / 1e9)
    } else if n >= 1e6 {
        format!("{:.2} M", n / 1e6)
    } else if n >= 1e3 {
        format!("{:.2} k", n / 1e3)
    } else {
        format!("{n:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_results() {
        let mut h = Harness::new("test")
            .warmup(Duration::from_millis(1))
            .budget(Duration::from_millis(10));
        h.bench("noop", 10, || 1 + 1);
        assert_eq!(h.results.len(), 1);
        assert!(h.results[0].iters > 0);
        assert!(h.results[0].mean_secs > 0.0);
    }

    #[test]
    fn formatting_covers_ranges() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
        assert!(format_count(2e9).ends_with(" G"));
        assert!(format_count(2e6).ends_with(" M"));
        assert!(format_count(2e3).ends_with(" k"));
        assert_eq!(format_count(2.0), "2.0");
    }
}
