//! Property-based tests for the Sequitur grammar and the oracle replay.
//!
//! The two Sequitur invariants (digram uniqueness, rule utility) and the
//! lossless-reconstruction property must hold for *every* input; random
//! sequences over small alphabets are the harshest exercise because they
//! maximize rule churn (create/absorb/expand cycles).
//!
//! Inputs are drawn from a seeded [`SimRng`] so the suite is fully
//! deterministic and dependency-free.

use domino_sequitur::oracle::{oracle_replay, OracleConfig};
use domino_sequitur::{analysis, GrammarStats, Sequitur};
use domino_trace::rng::SimRng;

fn seq(rng: &mut SimRng, alphabet: u64, min: usize, max: usize) -> Vec<u64> {
    let len = min + rng.index(max - min);
    (0..len).map(|_| rng.below(alphabet)).collect()
}

/// Expansion reproduces the input exactly, for any sequence.
#[test]
fn expansion_is_lossless() {
    for case in 0..256u64 {
        let mut rng = SimRng::seed(0x5E0_0000 + case);
        let input = seq(&mut rng, 8, 0, 400);
        let g = Sequitur::from_sequence(input.iter().copied());
        assert_eq!(g.expand(), input);
    }
}

/// Both grammar invariants hold after every prefix of any input.
#[test]
fn invariants_hold_incrementally() {
    for case in 0..256u64 {
        let mut rng = SimRng::seed(0x1_4C00 + case);
        let input = seq(&mut rng, 6, 0, 120);
        let mut g = Sequitur::new();
        for &t in &input {
            g.push(t);
            if let Err(e) = g.check_invariants() {
                panic!("invariant violated: {e}");
            }
        }
    }
}

/// Wider alphabets (less rule churn) must also stay lossless and valid.
#[test]
fn wide_alphabet_lossless() {
    for case in 0..256u64 {
        let mut rng = SimRng::seed(0x71D_E000 + case);
        let input = seq(&mut rng, 1000, 0, 300);
        let g = Sequitur::from_sequence(input.iter().copied());
        assert_eq!(g.expand(), input);
        assert!(g.check_invariants().is_ok());
    }
}

/// Grammar coverage is always a valid fraction, and zero for inputs
/// with no repeated digram.
#[test]
fn coverage_bounds() {
    for case in 0..256u64 {
        let mut rng = SimRng::seed(0xC0F_E000 + case);
        let input = seq(&mut rng, 16, 0, 300);
        let g = Sequitur::from_sequence(input.iter().copied());
        let cov = analysis::grammar_coverage(&g);
        assert!((0.0..=1.0).contains(&cov));
    }
}

/// Grammar size never exceeds input size (compression, never expansion).
#[test]
fn grammar_never_larger_than_input() {
    for case in 0..256u64 {
        let mut rng = SimRng::seed(0x6_4A00 + case);
        let input = seq(&mut rng, 10, 1, 300);
        let g = Sequitur::from_sequence(input.iter().copied());
        let stats = GrammarStats::of(&g);
        assert!(
            stats.grammar_symbols as u64 <= stats.input_len + 1,
            "grammar {} vs input {}",
            stats.grammar_symbols,
            stats.input_len
        );
    }
}

/// Oracle accounting: covered misses equal the sum of stream lengths,
/// and coverage is a fraction.
#[test]
fn oracle_accounting() {
    for case in 0..256u64 {
        let mut rng = SimRng::seed(0x0AC_1E00 + case);
        let input = seq(&mut rng, 32, 0, 500);
        let r = oracle_replay(&input, &OracleConfig::default());
        assert!(r.covered <= r.total);
        let hist_streams: u64 = r.stream_lengths.counts().iter().sum();
        assert_eq!(hist_streams, r.streams);
        let mean_times_streams = r.mean_stream_length() * r.streams as f64;
        assert!(
            (mean_times_streams - r.covered as f64).abs() < 1e-6,
            "streams sum {} vs covered {}",
            mean_times_streams,
            r.covered
        );
    }
}

/// Doubling a sequence always yields at least 40% oracle coverage on
/// the second half (minus the single trigger miss).
#[test]
fn oracle_covers_verbatim_repeats() {
    for case in 0..256u64 {
        let mut rng = SimRng::seed(0x4E_9E00 + case);
        let base = seq(&mut rng, 64, 8, 100);
        let mut input = base.clone();
        input.extend_from_slice(&base);
        let r = oracle_replay(&input, &OracleConfig::default());
        // The entire second half except stream (re)starts is coverable.
        assert!(
            r.covered as usize + 8 >= base.len() / 2,
            "covered {} of {} repeated",
            r.covered,
            base.len()
        );
    }
}
