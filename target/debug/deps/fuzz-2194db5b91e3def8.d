/root/repo/target/debug/deps/fuzz-2194db5b91e3def8.d: crates/prefetchers/tests/fuzz.rs Cargo.toml

/root/repo/target/debug/deps/libfuzz-2194db5b91e3def8.rmeta: crates/prefetchers/tests/fuzz.rs Cargo.toml

crates/prefetchers/tests/fuzz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
