/root/repo/target/release/deps/domino-b2409c92e70e06fc.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/domino.rs crates/core/src/eit.rs crates/core/src/naive.rs

/root/repo/target/release/deps/domino-b2409c92e70e06fc: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/domino.rs crates/core/src/eit.rs crates/core/src/naive.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/domino.rs:
crates/core/src/eit.rs:
crates/core/src/naive.rs:
