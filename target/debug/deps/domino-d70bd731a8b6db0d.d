/root/repo/target/debug/deps/domino-d70bd731a8b6db0d.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/domino.rs crates/core/src/eit.rs crates/core/src/naive.rs

/root/repo/target/debug/deps/domino-d70bd731a8b6db0d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/domino.rs crates/core/src/eit.rs crates/core/src/naive.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/domino.rs:
crates/core/src/eit.rs:
crates/core/src/naive.rs:
