/root/repo/target/release/deps/domino_sequitur-7caffa7b9595a123.d: crates/sequitur/src/lib.rs crates/sequitur/src/analysis.rs crates/sequitur/src/grammar.rs crates/sequitur/src/histogram.rs crates/sequitur/src/node.rs crates/sequitur/src/oracle.rs

/root/repo/target/release/deps/libdomino_sequitur-7caffa7b9595a123.rlib: crates/sequitur/src/lib.rs crates/sequitur/src/analysis.rs crates/sequitur/src/grammar.rs crates/sequitur/src/histogram.rs crates/sequitur/src/node.rs crates/sequitur/src/oracle.rs

/root/repo/target/release/deps/libdomino_sequitur-7caffa7b9595a123.rmeta: crates/sequitur/src/lib.rs crates/sequitur/src/analysis.rs crates/sequitur/src/grammar.rs crates/sequitur/src/histogram.rs crates/sequitur/src/node.rs crates/sequitur/src/oracle.rs

crates/sequitur/src/lib.rs:
crates/sequitur/src/analysis.rs:
crates/sequitur/src/grammar.rs:
crates/sequitur/src/histogram.rs:
crates/sequitur/src/node.rs:
crates/sequitur/src/oracle.rs:
